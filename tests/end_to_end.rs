//! Workspace-level integration tests through the facade crate: every layer
//! (simulator → core groups → hierarchy → toolkit → applications) in one
//! scenario each.

use isis_repro::core::testutil::cluster;
use isis_repro::core::{CastKind, IsisConfig};
use isis_repro::hier::config::LargeGroupConfig;
use isis_repro::hier::harness::large_cluster;
use isis_repro::sim::SimDuration;

#[test]
fn facade_exposes_the_whole_stack() {
    // Simulator.
    let mut sim: isis_repro::sim::Sim<isis_repro::core::IsisProcess<
        isis_repro::core::testutil::RecorderApp,
    >> = isis_repro::sim::Sim::new(isis_repro::sim::SimConfig::ideal(1));
    let nd = sim.add_nodes(1)[0];
    let p = sim.spawn(
        nd,
        isis_repro::core::IsisProcess::with_defaults(Default::default()),
    );
    sim.invoke(p, |proc_, ctx| {
        proc_
            .create_group(isis_repro::core::GroupId(1), ctx)
            .unwrap()
    });
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.process(p).is_member(isis_repro::core::GroupId(1)));
}

#[test]
fn core_group_ordering_through_facade() {
    let mut c = cluster(4, IsisConfig::default(), 3);
    let gid = c.gid;
    for i in 0..6 {
        let s = c.pids[i % 4];
        c.sim.invoke(s, move |p, ctx| {
            p.cast(gid, CastKind::Total, format!("x{i}"), ctx).unwrap();
        });
    }
    c.settle();
    c.assert_identical_logs();
}

#[test]
fn hierarchy_through_facade_bounds_failure_scope() {
    let mut c = large_cluster(24, LargeGroupConfig::new(2, 3), 5);
    let victim = *c
        .members
        .iter()
        .find(|&&m| !c.sim.process(m).app().is_rep(c.lgid))
        .unwrap();
    let victim_leaf = c.sim.process(victim).app().leaf_of(c.lgid).unwrap();
    let before: Vec<(isis_repro::sim::Pid, u64)> = c
        .live_members()
        .iter()
        .map(|&m| (m, c.leaf_view_of(m).map_or(0, |v| v.view_id)))
        .collect();
    c.sim.crash(victim);
    c.run_for(SimDuration::from_secs(20));
    for (m, vid) in before {
        if m == victim {
            continue;
        }
        let leaf = c.sim.process(m).app().leaf_of(c.lgid).unwrap();
        let now = c.leaf_view_of(m).map_or(0, |v| v.view_id);
        if leaf == victim_leaf {
            assert!(now > vid);
        } else {
            assert_eq!(now, vid, "{m} outside the leaf was disturbed");
        }
    }
}

/// Golden-digest regression for the `Transport` refactor: the simulator now
/// drives processes through the same `Endpoint`/`Action` surface that real
/// network backends (crates/net) use, and this scenario pins the exact
/// traffic digest of a core cluster and a hierarchy run. Any change to the
/// engine, the transport dispatch, or the protocol stack that alters even
/// one message or timestamp shows up here as a digest mismatch.
#[test]
fn transport_refactor_digests_are_stable() {
    // Core layer: 12 mixed-kind casts over a 5-process group.
    let mut c = cluster(5, IsisConfig::default(), 42);
    let gid = c.gid;
    let kinds = [CastKind::Fifo, CastKind::Causal, CastKind::Total];
    for i in 0..12 {
        let s = c.pids[i % 5];
        let kind = kinds[i % 3];
        c.sim.invoke(s, move |p, ctx| {
            p.cast(gid, kind, format!("m{i}"), ctx).unwrap();
        });
    }
    c.settle();
    let st = c.sim.stats();
    assert_eq!(
        (
            st.messages_sent,
            st.messages_delivered,
            st.bytes_sent,
            c.sim.now().as_micros(),
        ),
        (3063, 3063, 437008, 30000007),
        "core digest drifted: engine/transport behavior changed"
    );

    // Hierarchy layer: 5 broadcasts through a 24-member LAN hierarchy.
    let mut h = isis_repro::hier::harness::large_cluster_lan(24, LargeGroupConfig::new(2, 4), 7);
    for i in 0..5 {
        let origin = h.members[3];
        h.lbcast(origin, &format!("b{i}"));
    }
    h.run_for(SimDuration::from_secs(30));
    h.assert_uniform_lbcast_logs();
    let st = h.sim.stats();
    assert_eq!(
        (
            st.messages_sent,
            st.messages_delivered,
            st.bytes_sent,
            h.sim.now().as_micros(),
        ),
        (15451, 15451, 793192, 30011296),
        "hierarchy digest drifted: engine/transport behavior changed"
    );
}

/// The conservative parallel engine must be invisible in the output: the
/// same hierarchy scenario as above, run with 4 worker shards, produces the
/// exact digest of the sequential run. This is the end-to-end counterpart
/// of the byte-identity tests inside `now_sim::par` — full protocol stack,
/// LAN latency model, real broadcast traffic.
#[test]
fn parallel_execution_matches_sequential_digests() {
    let digest = |jobs: usize| {
        let mut h = isis_repro::hier::harness::large_cluster_with(
            24,
            LargeGroupConfig::new(2, 4),
            isis_repro::core::IsisConfig::default(),
            isis_repro::sim::SimConfig::lan(7).with_jobs(jobs),
        );
        for i in 0..5 {
            let origin = h.members[3];
            h.lbcast(origin, &format!("b{i}"));
        }
        h.run_for(SimDuration::from_secs(30));
        h.assert_uniform_lbcast_logs();
        let st = h.sim.stats();
        (
            st.messages_sent,
            st.messages_delivered,
            st.bytes_sent,
            h.sim.now().as_micros(),
            format!("{:?}", st.counters()),
        )
    };
    let seq = digest(1);
    assert_eq!(
        (seq.0, seq.1, seq.2, seq.3),
        (15451, 15451, 793192, 30011296),
        "sequential baseline drifted"
    );
    assert_eq!(digest(4), seq, "4-shard run diverged from sequential");
}

#[test]
fn workloads_through_facade() {
    let t = isis_repro::apps::run_trading_hier(
        15,
        10,
        200,
        LargeGroupConfig::new(2, 3),
        9,
    );
    assert!((t.delivery_ratio - 1.0).abs() < 1e-9);
    let f = isis_repro::apps::run_factory(9, 6, 2, 1, 9);
    assert!(f.conserved);
    assert!(f.committed > 0);
}
