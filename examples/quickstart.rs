//! Quickstart: virtually synchronous process groups in a simulated
//! network of workstations.
//!
//! Forms a five-member ISIS group, broadcasts with total order, crashes a
//! member mid-traffic, and shows that every survivor delivered exactly the
//! same message sequence — the virtual synchrony property everything else
//! in this repository builds on.
//!
//! Run with: `cargo run --example quickstart`

use isis_repro::core::testutil::cluster;
use isis_repro::core::{CastKind, IsisConfig};
use isis_repro::sim::SimDuration;

fn main() {
    // Five workstations, one process group, deterministic seed.
    let mut c = cluster(5, IsisConfig::default(), 42);
    let gid = c.gid;
    println!("group {gid} formed: {:?}", c.pids);

    // Everyone broadcasts concurrently with total order (ABCAST).
    for (i, &p) in c.pids.clone().iter().enumerate() {
        c.sim.invoke(p, move |proc_, ctx| {
            proc_
                .cast(gid, CastKind::Total, format!("hello-from-{i}"), ctx)
                .unwrap();
        });
    }
    c.sim.run_for(SimDuration::from_secs(2));

    // Crash one member, keep broadcasting.
    let victim = c.pids[3];
    println!("crashing {victim} ...");
    c.sim.crash(victim);
    c.cast_and_settle(c.pids[0], CastKind::Total, "after-the-crash");
    c.await_membership(4, SimDuration::from_secs(60));
    c.sim.run_for(SimDuration::from_secs(5));

    // Every survivor has the identical delivery log.
    for (pid, log) in c.live_logs() {
        println!("{pid} delivered ({} msgs): {log:?}", log.len());
    }
    c.assert_identical_logs();
    println!("virtual synchrony holds: all survivors agree, in order.");

    let st = c.sim.stats();
    println!(
        "simulated {:.1}s, {} messages ({} delivered), {} view changes",
        c.sim.now().as_secs_f64(),
        st.messages_sent,
        st.messages_delivered,
        st.counter("isis.views_installed"),
    );
}
