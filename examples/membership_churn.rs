//! Membership churn: the hierarchy absorbing crashes and a total leaf
//! failure while broadcasts keep flowing, a latecomer joining afterwards —
//! and, as a prologue, the section-5 name service resolving a group name
//! to its leader contacts.
//!
//! Run with: `cargo run --release --example membership_churn`

use isis_repro::core::{GroupId, IsisProcess};
use isis_repro::hier::config::LargeGroupConfig;
use isis_repro::hier::harness::{large_cluster, RecorderBiz};
use isis_repro::hier::{HierApp, LargeGroupId, NameService};
use isis_repro::sim::{Pid, Sim, SimConfig, SimDuration};

/// Prologue: a replicated name-server group binds "the-floor" and answers
/// a client's resolution — the paper's name-to-address mapping.
fn name_service_prologue(lgid: LargeGroupId, leader_contacts: Vec<Pid>) {
    let ns_gid = GroupId(500);
    let mut sim: Sim<IsisProcess<NameService>> = Sim::new(SimConfig::ideal(9));
    let nodes = sim.add_nodes(3);
    let s0 = sim.spawn(nodes[0], IsisProcess::with_defaults(NameService::new()));
    let s1 = sim.spawn(nodes[1], IsisProcess::with_defaults(NameService::new()));
    sim.invoke(s0, move |p, ctx| p.create_group(ns_gid, ctx).unwrap());
    sim.invoke(s1, move |p, ctx| p.join(ns_gid, s0, ctx).unwrap());
    sim.run_for(SimDuration::from_secs(5));
    let lc = leader_contacts.clone();
    sim.invoke(s0, move |p, ctx| {
        p.with_app(ctx, |app, up| app.bind("the-floor", lgid, lc.clone(), up));
    });
    sim.run_for(SimDuration::from_secs(1));

    let client = sim.spawn(nodes[2], IsisProcess::with_defaults(NameService::new()));
    let ticket = sim
        .invoke(client, move |p, ctx| {
            p.with_app(ctx, |app, up| app.resolve(s1, "the-floor", up))
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(1));
    let answer = sim.process(client).app().answers.get(&ticket).cloned();
    println!(
        "name service: 'the-floor' resolved (via replica s1) to {:?}",
        answer.flatten()
    );
}

fn main() {
    let cfg = LargeGroupConfig::new(2, 3);
    let mut c = large_cluster(30, cfg.clone(), 21);
    let lgid = c.lgid;
    println!(
        "formed: {} members in {} leaves",
        c.leader_hier_view().unwrap().total_members(),
        c.leader_hier_view().unwrap().num_leaves()
    );

    name_service_prologue(lgid, c.leaders.clone());

    // Churn: kill three members (one per phase) with broadcasts between.
    for round in 0..3 {
        let victim = c.live_members()[7 + round * 5];
        println!("round {round}: crash {victim}, then broadcast");
        c.sim.crash(victim);
        c.run_for(SimDuration::from_secs(3));
        let origin = c.live_members()[0];
        c.lbcast(origin, &format!("round-{round}"));
        c.run_for(SimDuration::from_secs(10));
    }

    // Total leaf failure.
    let v = c.leader_hier_view().unwrap().clone();
    let doomed = v.leaves.last().unwrap().gid;
    let members: Vec<_> = c
        .members
        .iter()
        .copied()
        .filter(|&m| c.sim.is_alive(m) && c.sim.process(m).app().leaf_of(lgid) == Some(doomed))
        .collect();
    println!("killing leaf {doomed:?} ({} members) outright", members.len());
    for m in members {
        c.sim.crash(m);
    }
    c.run_for(SimDuration::from_secs(30));

    // A latecomer joins through a (resolved) leader contact — any leader
    // member works, not just the active one.
    let nd = c.sim.add_nodes(1)[0];
    let late = c.sim.spawn(
        nd,
        IsisProcess::new(
            HierApp::with_timers(RecorderBiz::default(), cfg.clone()),
            isis_repro::core::IsisConfig::default(),
        ),
    );
    let contact = c.leaders[1];
    c.sim.invoke(late, move |p, ctx| {
        p.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
    });
    c.members.push(late);
    c.run_for(SimDuration::from_secs(30));
    println!(
        "latecomer joined via non-primary leader contact: {}",
        c.sim.process(late).app().is_large_member(lgid)
    );

    // Final broadcast reaches every survivor including the latecomer.
    let origin = c.live_members()[2];
    c.lbcast(origin, "all-hands");
    c.run_for(SimDuration::from_secs(15));
    let total = c.live_members().len();
    let got = c
        .lbcast_logs()
        .iter()
        .filter(|(_, l)| l.contains(&"all-hands".to_string()))
        .count();
    let v = c.leader_hier_view().unwrap();
    println!(
        "final: {got}/{total} survivors delivered; {} leaves, epoch {}",
        v.num_leaves(),
        v.epoch
    );
    assert_eq!(got, total);
}
