//! The paper's contribution in action: a hierarchical large group.
//!
//! Builds a 60-member large group (leaf subgroups + leader group),
//! broadcasts through the bounded-fanout tree, inspects the structure,
//! kills an entire leaf, and shows the hierarchy repairing itself while
//! broadcasts keep flowing.
//!
//! Run with: `cargo run --example large_group`

use isis_repro::hier::config::LargeGroupConfig;
use isis_repro::hier::harness::large_cluster;
use isis_repro::sim::SimDuration;

fn main() {
    let cfg = LargeGroupConfig::new(3, 4); // resiliency 3, fanout 4.
    let mut c = large_cluster(60, cfg, 7);

    let v = c.leader_hier_view().unwrap().clone();
    println!(
        "large group formed: {} members in {} leaves, tree depth {}, epoch {}",
        v.total_members(),
        v.num_leaves(),
        v.depth(),
        v.epoch
    );
    for (i, leaf) in v.leaves.iter().enumerate() {
        println!(
            "  leaf[{i}] {:?}: {} members, rep {:?}, children {:?}",
            leaf.gid,
            leaf.size,
            leaf.rep(),
            v.children(i)
        );
    }

    // Tree broadcast: one submit, every member delivers.
    c.sim.stats_mut().enable_fanout_tracking();
    c.sim.stats_mut().reset_window();
    let origin = c.members[41];
    println!("\nbroadcasting from {origin} through the tree ...");
    c.lbcast(origin, "market-open");
    c.run_for(SimDuration::from_secs(10));
    let delivered = c
        .lbcast_logs()
        .iter()
        .filter(|(_, log)| log.contains(&"market-open".to_string()))
        .count();
    println!(
        "delivered at {delivered}/{} members; max destinations any process contacted: {} \
         (bound: fanout {} + leaf {} + parent/leader links)",
        c.members.len(),
        c.sim.stats().max_distinct_destinations(),
        c.cfg.fanout,
        c.cfg.max_leaf,
    );

    // Total leaf failure: the paper's headline repair case.
    let doomed = v.leaves.last().unwrap().gid;
    let doomed_members: Vec<_> = c
        .members
        .iter()
        .copied()
        .filter(|&m| c.sim.process(m).app().leaf_of(c.lgid) == Some(doomed))
        .collect();
    println!(
        "\nkilling leaf {doomed:?} entirely ({} members) ...",
        doomed_members.len()
    );
    for m in &doomed_members {
        c.sim.crash(*m);
    }
    c.run_for(SimDuration::from_secs(30));
    let v2 = c.leader_hier_view().unwrap().clone();
    println!(
        "repaired: {} leaves, epoch {} (dead leaf removed: {})",
        v2.num_leaves(),
        v2.epoch,
        v2.index_of(doomed).is_none()
    );

    // Broadcasts still reach every survivor.
    let origin = c.live_members()[0];
    c.lbcast(origin, "still-open");
    c.run_for(SimDuration::from_secs(10));
    let ok = c
        .lbcast_logs()
        .iter()
        .all(|(_, log)| log.contains(&"still-open".to_string()));
    println!("post-repair broadcast reached every survivor: {ok}");
}
