//! The paper's first motivating application: a trading room.
//!
//! "A typical installation will comprise perhaps 100 to 500 trading
//! analyst workstations ... often requiring sub-second response to events
//! detected over the data feeds." Runs the synthetic floor over the
//! hierarchical stack and over one flat group, and compares latency and
//! per-process fanout.
//!
//! Run with: `cargo run --release --example trading_room`

use isis_repro::apps::{run_trading_flat, run_trading_hier};
use isis_repro::hier::config::LargeGroupConfig;

fn main() {
    let analysts = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100usize);
    let quotes = 50;
    println!("trading floor with {analysts} analysts, {quotes} quotes at 200/s\n");

    let h = run_trading_hier(analysts, quotes, 200, LargeGroupConfig::new(3, 8), 11);
    println!(
        "hierarchical: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms | feed fanout {} | delivery {:.3}",
        h.p50_ms, h.p99_ms, h.max_ms, h.max_fanout, h.delivery_ratio
    );

    let f = run_trading_flat(analysts, quotes, 200, 11);
    println!(
        "flat baseline: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms | feed fanout {} | delivery {:.3}",
        f.p50_ms, f.p99_ms, f.max_ms, f.max_fanout, f.delivery_ratio
    );

    println!(
        "\nboth meet the paper's sub-second bar here, but the flat feed must talk to \
         {} analysts directly (and a flat group's liveness mesh is O(n²));\n\
         the hierarchy bounds every process's load at {} destinations however large the floor grows.",
        f.max_fanout, h.max_fanout
    );
}
