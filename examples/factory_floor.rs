//! The paper's second motivating application: manufacturing control.
//!
//! "Hundreds of work cells distributed throughout a factory communicate
//! with production monitoring and inventory control stations. Consistency
//! and reliability are important here." Work cells build products through
//! distributed transactions over a partitioned inventory; the run audits
//! the conservation invariant with and without cell crashes.
//!
//! Run with: `cargo run --release --example factory_floor`

use isis_repro::apps::run_factory;

fn main() {
    let cells = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20usize);

    for crashes in [0usize, 3] {
        println!("factory with {cells} work cells, {crashes} mid-run crashes:");
        let r = run_factory(cells, 8, 3, crashes, 5);
        println!(
            "  transactions: {} attempted, {} committed, {} aborted, {} unresolved",
            r.attempts, r.committed, r.aborted, r.unresolved
        );
        println!(
            "  inventory audit: {} parts consumed, {} products built -> conserved = {}",
            r.parts_consumed, r.products_built, r.conserved
        );
        println!(
            "  availability {:.3}, {} messages\n",
            r.availability, r.messages
        );
        assert!(r.conserved, "conservation must hold");
    }
    println!("consistency survived the failures: every committed build consumed exactly its parts.");
}
