//! Source scrubbing: a small lexer that removes comments and string
//! contents from Rust source so the rule passes can match tokens without
//! being fooled by doc text or payload literals, while keeping the comment
//! text available for `// detlint: allow(...)` directives.
//!
//! The output preserves line structure exactly: scrubbed line `i`
//! corresponds to source line `i`, so findings carry real line numbers.

/// One source line after scrubbing.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The code with comments removed; string literals keep their quotes but
    /// their contents collapse to `S` (or nothing when the literal is
    /// empty), so `.expect("")` remains distinguishable from `.expect("x")`.
    pub code: String,
    /// Concatenated comment text of the line (line and block comments).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: bool,
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32>, any: bool },
}

/// Scrubs `src` into per-line code/comment pairs and marks test regions.
pub fn scrub(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment = state {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str { raw_hashes: None, any: false };
                    i += 1;
                } else if c == 'r' && is_raw_string_start(&chars, i) {
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    cur.code.push('"');
                    state = State::Str { raw_hashes: Some(hashes), any: false };
                    i = j + 1; // past the opening quote
                } else if c == '\'' {
                    // Char literal or lifetime. `'x'` / `'\..'` are literals;
                    // everything else is a lifetime tick.
                    if let Some(end) = char_literal_end(&chars, i) {
                        cur.code.push_str("' '");
                        i = end;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes, any } => {
                let closed = match raw_hashes {
                    None => {
                        if c == '\\' {
                            // An escaped newline (string continuation) still
                            // ends the source line; don't swallow it or every
                            // later finding shifts by one line.
                            if chars.get(i + 1) == Some(&'\n') {
                                lines.push(std::mem::take(&mut cur));
                            }
                            i += 2; // skip the escaped char
                            state = State::Str { raw_hashes, any: true };
                            continue;
                        }
                        c == '"'
                    }
                    Some(h) => {
                        c == '"' && (0..h).all(|k| chars.get(i + 1 + k as usize) == Some(&'#'))
                    }
                };
                if closed {
                    if any {
                        cur.code.push('S');
                    }
                    cur.code.push('"');
                    i += 1 + raw_hashes.unwrap_or(0) as usize;
                    state = State::Code;
                } else {
                    i += 1;
                    state = State::Str { raw_hashes, any: true };
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

/// `r"`, `r#"`, `r##"`, … (and the byte forms `br"`, `br#"`) — but not a
/// plain identifier containing `r`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character (e.g. `for r in ..`
    // is fine either way, but `var"` is not a raw string). A single `b`
    // prefix is the one exception: `br#"…"#` is a raw byte string.
    let free = |j: usize| {
        j == 0 || {
            let p = chars[j - 1];
            !(p.is_alphanumeric() || p == '_')
        }
    };
    if !(free(i) || (chars[i - 1] == 'b' && free(i - 1))) {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// If position `i` (a `'`) starts a char literal, returns the index just
/// past its closing quote.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: skip the escaped character itself, then scan to
            // the closing quote (handles '\n', '\u{..}' — and '\'' / '\\',
            // where the escaped character must not be taken as the close).
            let mut j = i + 3;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1)
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 3),
        _ => None,
    }
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item's braces.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: usize = 0;
    let mut pending_attr = false;
    let mut test_starts: Vec<usize> = Vec::new(); // depths owning a test region
    for line in lines.iter_mut() {
        let started_in_test = !test_starts.is_empty();
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[test]")
            || line.code.contains("#[cfg(all(test")
        {
            pending_attr = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_starts.push(depth);
                        pending_attr = false;
                    }
                }
                '}' => {
                    if test_starts.last() == Some(&depth) {
                        test_starts.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // An attribute that applied to a braceless item
                // (`#[cfg(test)] use …;`) stops being pending.
                ';' => pending_attr = false,
                _ => {}
            }
        }
        line.in_test = started_in_test || !test_starts.is_empty() || pending_attr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_removed_but_kept_for_directives() {
        let l = scrub("let x = 1; // detlint: allow(R1): because\nlet y = 2;");
        assert_eq!(l[0].code.trim_end(), "let x = 1;");
        assert!(l[0].comment.contains("detlint: allow(R1)"));
        assert_eq!(l[1].code, "let y = 2;");
    }

    #[test]
    fn strings_collapse_but_keep_emptiness() {
        let l = scrub(r#"a.expect(""); b.expect("msg"); c("HashMap");"#);
        assert!(l[0].code.contains(r#"expect("")"#));
        assert!(l[0].code.contains(r#"expect("S")"#));
        assert!(!l[0].code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_escapes_do_not_confuse_the_lexer() {
        let l = scrub("let s = r#\"no \" end\"#; let t = \"a\\\"b\"; x();");
        assert!(l[0].code.contains("x();"));
        assert!(!l[0].code.contains("end"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = scrub("fn f<'a>(x: &'a str) -> char { '}' }");
        // The '}' literal must not close the brace depth.
        assert!(l[0].code.contains("' '"));
        assert!(l[0].code.contains("<'a>"));
    }

    #[test]
    fn block_comments_span_lines() {
        let l = scrub("a();\n/* HashMap\n still comment */ b();");
        assert_eq!(l[1].code, "");
        assert!(l[1].comment.contains("HashMap"));
        assert!(l[2].code.contains("b();"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let l = scrub(src);
        assert!(!l[0].in_test);
        assert!(l[1].in_test); // the attribute line itself
        assert!(l[2].in_test);
        assert!(l[3].in_test);
        assert!(l[4].in_test);
        assert!(!l[5].in_test);
    }

    #[test]
    fn test_attr_on_fn_marks_only_that_fn() {
        let src = "#[test]\nfn t() {\n  boom();\n}\nfn live() {}";
        let l = scrub(src);
        assert!(l[1].in_test && l[2].in_test && l[3].in_test);
        assert!(!l[4].in_test);
    }

    // ----- edge cases the flow parsers lean on ------------------------

    #[test]
    fn raw_string_with_hashes_hides_quotes_and_slashes() {
        let l = scrub("let s = r##\"quote \" and // and \"# inner\"##; tail();");
        assert!(l[0].code.contains("tail();"));
        assert!(!l[0].code.contains("quote"));
        assert!(!l[0].comment.contains("and"));
    }

    #[test]
    fn raw_byte_strings_are_one_literal() {
        let l = scrub("let s = br#\"x \" y\"#; after();");
        assert!(l[0].code.contains("after();"), "{:?}", l[0].code);
        assert!(!l[0].code.contains('#'), "{:?}", l[0].code);
        assert!(!l[0].code.contains('y'), "{:?}", l[0].code);
    }

    #[test]
    fn nested_block_comments_unwind_fully() {
        let src = "a();\n/* outer /* inner */ still comment */ b();\nc();";
        let l = scrub(src);
        assert_eq!(l[1].code.trim(), "b();");
        assert!(l[1].comment.contains("inner"));
        assert!(l[2].code.contains("c();"));
    }

    #[test]
    fn char_literals_holding_quote_and_slashes() {
        // '"' must not open a string; '/' twice must not start a comment;
        // '\'' and '\\' must not leak a stray quote into code.
        let l = scrub("let a = '\"'; let b = '/'; let c = '\\''; let d = '\\\\'; live();");
        assert!(l[0].code.contains("live();"), "{:?}", l[0].code);
        assert!(l[0].comment.is_empty());
        // Each literal collapses to the placeholder, so no quote survives.
        assert_eq!(l[0].code.matches('"').count(), 0, "{:?}", l[0].code);
    }

    #[test]
    fn multi_line_strings_keep_line_numbers() {
        // A plain newline inside the literal and an escaped continuation
        // must both preserve the physical line count.
        let src = "let s = \"first\nsecond\";\nx();\nlet t = \"one\\\ntwo\";\ny();";
        let l = scrub(src);
        assert_eq!(l.len(), 6);
        assert!(l[2].code.contains("x();"));
        assert!(l[5].code.contains("y();"));
    }

    #[test]
    fn unterminated_string_does_not_lose_the_tail() {
        // Malformed input (mid-edit files) must not panic or shift lines.
        let l = scrub("let s = \"never closed\nswallowed\n");
        assert_eq!(l.len(), 2);
        assert!(l[0].code.contains("let s"));
    }
}
