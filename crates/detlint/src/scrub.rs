//! Source scrubbing: a small lexer that removes comments and string
//! contents from Rust source so the rule passes can match tokens without
//! being fooled by doc text or payload literals, while keeping the comment
//! text available for `// detlint: allow(...)` directives.
//!
//! The output preserves line structure exactly: scrubbed line `i`
//! corresponds to source line `i`, so findings carry real line numbers.

/// One source line after scrubbing.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The code with comments removed; string literals keep their quotes but
    /// their contents collapse to `S` (or nothing when the literal is
    /// empty), so `.expect("")` remains distinguishable from `.expect("x")`.
    pub code: String,
    /// Concatenated comment text of the line (line and block comments).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: bool,
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32>, any: bool },
}

/// Scrubs `src` into per-line code/comment pairs and marks test regions.
pub fn scrub(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment = state {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str { raw_hashes: None, any: false };
                    i += 1;
                } else if c == 'r' && is_raw_string_start(&chars, i) {
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    cur.code.push('"');
                    state = State::Str { raw_hashes: Some(hashes), any: false };
                    i = j + 1; // past the opening quote
                } else if c == '\'' {
                    // Char literal or lifetime. `'x'` / `'\..'` are literals;
                    // everything else is a lifetime tick.
                    if let Some(end) = char_literal_end(&chars, i) {
                        cur.code.push_str("' '");
                        i = end;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes, any } => {
                let closed = match raw_hashes {
                    None => {
                        if c == '\\' {
                            i += 2; // skip the escaped char
                            state = State::Str { raw_hashes, any: true };
                            continue;
                        }
                        c == '"'
                    }
                    Some(h) => {
                        c == '"' && (0..h).all(|k| chars.get(i + 1 + k as usize) == Some(&'#'))
                    }
                };
                if closed {
                    if any {
                        cur.code.push('S');
                    }
                    cur.code.push('"');
                    i += 1 + raw_hashes.unwrap_or(0) as usize;
                    state = State::Code;
                } else {
                    i += 1;
                    state = State::Str { raw_hashes, any: true };
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

/// `r"`, `r#"`, `r##"`, … — but not a plain identifier containing `r`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character (e.g. `for r in ..`
    // is fine either way, but `var"` is not a raw string).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// If position `i` (a `'`) starts a char literal, returns the index just
/// past its closing quote.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote (handles '\n', '\u{..}').
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1)
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 3),
        _ => None,
    }
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item's braces.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: usize = 0;
    let mut pending_attr = false;
    let mut test_starts: Vec<usize> = Vec::new(); // depths owning a test region
    for line in lines.iter_mut() {
        let started_in_test = !test_starts.is_empty();
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[test]")
            || line.code.contains("#[cfg(all(test")
        {
            pending_attr = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_starts.push(depth);
                        pending_attr = false;
                    }
                }
                '}' => {
                    if test_starts.last() == Some(&depth) {
                        test_starts.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // An attribute that applied to a braceless item
                // (`#[cfg(test)] use …;`) stops being pending.
                ';' => pending_attr = false,
                _ => {}
            }
        }
        line.in_test = started_in_test || !test_starts.is_empty() || pending_attr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_removed_but_kept_for_directives() {
        let l = scrub("let x = 1; // detlint: allow(R1): because\nlet y = 2;");
        assert_eq!(l[0].code.trim_end(), "let x = 1;");
        assert!(l[0].comment.contains("detlint: allow(R1)"));
        assert_eq!(l[1].code, "let y = 2;");
    }

    #[test]
    fn strings_collapse_but_keep_emptiness() {
        let l = scrub(r#"a.expect(""); b.expect("msg"); c("HashMap");"#);
        assert!(l[0].code.contains(r#"expect("")"#));
        assert!(l[0].code.contains(r#"expect("S")"#));
        assert!(!l[0].code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_escapes_do_not_confuse_the_lexer() {
        let l = scrub("let s = r#\"no \" end\"#; let t = \"a\\\"b\"; x();");
        assert!(l[0].code.contains("x();"));
        assert!(!l[0].code.contains("end"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = scrub("fn f<'a>(x: &'a str) -> char { '}' }");
        // The '}' literal must not close the brace depth.
        assert!(l[0].code.contains("' '"));
        assert!(l[0].code.contains("<'a>"));
    }

    #[test]
    fn block_comments_span_lines() {
        let l = scrub("a();\n/* HashMap\n still comment */ b();");
        assert_eq!(l[1].code, "");
        assert!(l[1].comment.contains("HashMap"));
        assert!(l[2].code.contains("b();"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let l = scrub(src);
        assert!(!l[0].in_test);
        assert!(l[1].in_test); // the attribute line itself
        assert!(l[2].in_test);
        assert!(l[3].in_test);
        assert!(l[4].in_test);
        assert!(!l[5].in_test);
    }

    #[test]
    fn test_attr_on_fn_marks_only_that_fn() {
        let src = "#[test]\nfn t() {\n  boom();\n}\nfn live() {}";
        let l = scrub(src);
        assert!(l[1].in_test && l[2].in_test && l[3].in_test);
        assert!(!l[4].in_test);
    }
}
