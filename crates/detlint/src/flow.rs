//! Message-flow analysis (rules R6/R7): which protocol-message variants the
//! workspace constructs, which ones its handlers name, and which `match`
//! arms silently swallow the rest.
//!
//! "Protocol enum" is a naming-convention contract: any `enum` whose name
//! ends in `Msg`, `Payload` or `Cmd` and is defined in non-test source of
//! the protocol/transport crates is wire surface. Every such variant must
//! be *constructed* somewhere (else it is dead wire surface) and *named in
//! a pattern* somewhere (else nothing can ever react to it), and no match
//! that inspects a protocol enum may end in a bare `_ =>` arm — a new
//! variant added later would vanish without even a counter bump.
//!
//! `crates/net/src/wire.rs` is excluded from the construct/handle tally:
//! the codec necessarily names every variant on both sides, which would
//! mask genuinely dead surface. Parity of the codec itself is R8's job
//! (see [`crate::wireparity`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::scrub::{scrub, Line};
use crate::tok::{is_ident, path_chain, tokenize, Token};
use crate::{Finding, Rule, SourceFile};

/// Crates whose source participates in the message-flow graph.
const FLOW_SCOPE: [&str; 6] = [
    "crates/sim/src/",
    "crates/core/src/",
    "crates/hier/src/",
    "crates/net/src/",
    "crates/toolkit/src/",
    "crates/apps/src/",
];

/// The codec mirror: names every variant by construction, so it proves
/// nothing about live flow.
const TALLY_EXCLUDE: &str = "crates/net/src/wire.rs";

/// True when `name` follows the protocol-enum naming convention.
pub fn is_flow_enum_name(name: &str) -> bool {
    name.ends_with("Msg") || name.ends_with("Payload") || name.ends_with("Cmd")
}

/// An `enum` item found in a source file.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Enum name (without generics).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names with their 1-based definition lines.
    pub variants: Vec<(String, usize)>,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct Arm {
    /// 1-based line the pattern starts on.
    pub line: usize,
    /// Scrubbed pattern tokens up to `=>` (guard included).
    pub pattern: Vec<String>,
}

/// One `match` expression with its parsed arms.
#[derive(Clone, Debug)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// Arms in source order.
    pub arms: Vec<Arm>,
}

/// Extracts every enum definition from a scrubbed file.
pub fn extract_enums(rel: &str, lines: &[Line]) -> Vec<EnumDef> {
    let toks = tokenize(lines);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "enum" || i + 1 >= toks.len() || !is_ident(&toks[i + 1].text) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Skip generics/bounds to the `{` opening the body.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            i += 2;
            continue;
        }
        let mut variants = Vec::new();
        let mut k = j + 1;
        'body: while k < toks.len() {
            // Skip `#[...]` attributes before the variant name.
            while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                k += 2;
                let mut d = 1i32;
                while k < toks.len() && d > 0 {
                    match toks[k].text.as_str() {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            if k >= toks.len() || toks[k].text == "}" {
                break;
            }
            if !is_ident(&toks[k].text) {
                break; // malformed body; bail rather than loop
            }
            variants.push((toks[k].text.clone(), toks[k].line));
            k += 1;
            // Skip the payload/discriminant to the `,` ending this variant.
            let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => b += 1,
                    "]" => b -= 1,
                    "{" => br += 1,
                    "}" => {
                        if br == 0 {
                            break 'body; // enum body closed
                        }
                        br -= 1;
                    }
                    "," if p == 0 && b == 0 && br == 0 => {
                        k += 1;
                        continue 'body;
                    }
                    _ => {}
                }
                k += 1;
            }
            break;
        }
        out.push(EnumDef { name, file: rel.to_string(), line, variants });
        i = j + 1;
    }
    out
}

/// Extracts every `match` expression (with parsed arms) and, alongside,
/// the token-index spans that sit in pattern position (match-arm patterns,
/// `let`-bound patterns are handled separately by the caller).
pub fn extract_matches(lines: &[Line]) -> Vec<MatchSite> {
    let toks = tokenize(lines);
    let (sites, _) = parse_matches(&toks);
    sites
}

/// Parses `match` sites from a token stream; also returns every token index
/// range `[start, end)` that is a match-arm pattern.
fn parse_matches(toks: &[Token]) -> (Vec<MatchSite>, Vec<(usize, usize)>) {
    let mut sites = Vec::new();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "match" {
            i += 1;
            continue;
        }
        let site_line = toks[i].line;
        // Scrutinee: runs to the first `{` outside any bracket/paren group
        // (struct literals are not legal in a bare match scrutinee).
        let (mut p, mut b, mut cb) = (0i32, 0i32, 0i32);
        let mut j = i + 1;
        let mut found = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => b += 1,
                "]" => b -= 1,
                "{" if p == 0 && b == 0 && cb == 0 => {
                    found = true;
                    break;
                }
                "{" => cb += 1,
                "}" => cb -= 1,
                ";" if p == 0 && b == 0 && cb == 0 => break, // not a match expr
                _ => {}
            }
            j += 1;
        }
        if !found {
            i += 1;
            continue;
        }
        let mut arms = Vec::new();
        let mut k = j + 1;
        'outer: while k < toks.len() {
            if toks[k].text == "}" {
                break; // body ends
            }
            // Pattern: collect until `=>` at this arm's base depth.
            let arm_line = toks[k].line;
            let pat_start = k;
            let mut pat: Vec<String> = Vec::new();
            let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
            while k < toks.len() {
                let t = toks[k].text.as_str();
                if t == "="
                    && p == 0
                    && b == 0
                    && br == 0
                    && toks.get(k + 1).map(|x| x.text.as_str()) == Some(">")
                {
                    spans.push((pat_start, k));
                    k += 2;
                    break;
                }
                match t {
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => b += 1,
                    "]" => b -= 1,
                    "{" => br += 1,
                    "}" => {
                        if br == 0 {
                            break 'outer; // body ends mid-"pattern"
                        }
                        br -= 1;
                    }
                    _ => {}
                }
                pat.push(toks[k].text.clone());
                k += 1;
            }
            arms.push(Arm { line: arm_line, pattern: pat });
            // Arm expression: to a `,` at base depth, or just past a brace
            // group that returns to base depth (block arms omit the comma).
            let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
            while k < toks.len() {
                let t = toks[k].text.as_str();
                match t {
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => b += 1,
                    "]" => b -= 1,
                    "{" => br += 1,
                    "}" => {
                        if br == 0 {
                            break 'outer; // body ends
                        }
                        br -= 1;
                        if br == 0 && p == 0 && b == 0 {
                            k += 1;
                            if toks.get(k).map(|x| x.text.as_str()) == Some(",") {
                                k += 1;
                            }
                            continue 'outer;
                        }
                    }
                    "," if p == 0 && b == 0 && br == 0 => {
                        k += 1;
                        continue 'outer;
                    }
                    _ => {}
                }
                k += 1;
            }
            break;
        }
        sites.push(MatchSite { line: site_line, arms });
        i += 1; // nested matches are found by the continuing scan
    }
    (sites, spans)
}

/// `Enum::Variant` references in a token slice: the last two segments of
/// each path chain, when both look like a type and a variant (leading
/// uppercase). `Self::X` is skipped — the flow pass cannot resolve it.
fn variant_refs(toks: &[Token], start: usize, end: usize) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if !is_ident(&toks[i].text) {
            i += 1;
            continue;
        }
        let (segs, next) = path_chain(toks, i);
        if segs.len() >= 2 {
            let e = segs[segs.len() - 2];
            let v = segs[segs.len() - 1];
            if e != "Self"
                && e.chars().next().is_some_and(|c| c.is_uppercase())
                && v.chars().next().is_some_and(|c| c.is_uppercase())
            {
                out.push((e.to_string(), v.to_string(), toks[i].line));
            }
        }
        i = next.max(i + 1);
    }
    out
}

/// Per-file flow facts feeding the workspace-level R7 tally.
struct FileFacts {
    rel: String,
    sites: Vec<MatchSite>,
    /// (enum, variant, line) named in pattern position.
    handled: Vec<(String, String, usize)>,
    /// (enum, variant, line) in expression position (construction).
    constructed: Vec<(String, String, usize)>,
}

fn file_facts(rel: &str, lines: &[Line]) -> FileFacts {
    let toks = tokenize(lines);
    let (sites, mut pattern_spans) = parse_matches(&toks);

    // `let`-bound patterns (`if let E::V … = x`, `while let`, plain
    // destructuring `let`) and `matches!(x, E::V …)` also handle a variant.
    let mut i = 0;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "let" => {
                // Pattern runs to the `=` at depth 0 (or `else`/`;` for
                // malformed input).
                let start = i + 1;
                let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
                let mut j = start;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" => p += 1,
                        ")" => p -= 1,
                        "[" => b += 1,
                        "]" => b -= 1,
                        "{" => br += 1,
                        "}" => br -= 1,
                        "=" | ";" if p == 0 && b == 0 && br == 0 => break,
                        _ => {}
                    }
                    if p < 0 || b < 0 || br < 0 {
                        break; // `let` pattern ended by an enclosing close
                    }
                    j += 1;
                }
                pattern_spans.push((start, j));
                i = j;
            }
            "matches" if toks.get(i + 1).map(|t| t.text.as_str()) == Some("!") => {
                // Everything inside `matches!(…)` after the first `,` is
                // pattern position; counting the scrutinee too is a harmless
                // over-approximation.
                let mut j = i + 2;
                if toks.get(j).map(|t| t.text.as_str()) == Some("(") {
                    let start = j + 1;
                    let mut d = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "(" => d += 1,
                            ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    pattern_spans.push((start, j));
                }
                i = j;
            }
            _ => i += 1,
        }
    }

    // Classify every variant reference on a non-test line.
    let in_pattern = |idx: usize| pattern_spans.iter().any(|&(s, e)| idx >= s && idx < e);
    let mut handled = Vec::new();
    let mut constructed = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i].text) {
            i += 1;
            continue;
        }
        let (segs, next) = path_chain(&toks, i);
        if segs.len() >= 2 {
            let e = segs[segs.len() - 2].to_string();
            let v = segs[segs.len() - 1].to_string();
            let line = toks[i].line;
            let uppercase = |s: &str| s.chars().next().is_some_and(|c| c.is_uppercase());
            if e != "Self" && uppercase(&e) && uppercase(&v) && !lines[line - 1].in_test {
                // `use` imports are neither construction nor handling.
                let after_use = i > 0 && toks[i - 1].text == "use";
                if !after_use {
                    if in_pattern(i) {
                        handled.push((e, v, line));
                    } else {
                        constructed.push((e, v, line));
                    }
                }
            }
        }
        i = next.max(i + 1);
    }

    FileFacts { rel: rel.to_string(), sites, handled, constructed }
}

fn in_flow_scope(rel: &str) -> bool {
    FLOW_SCOPE.iter().any(|p| rel.starts_with(p)) && !rel.contains("/src/bin/")
}

/// Runs R6 and R7 over the whole file set. Findings are raw (allow
/// directives are applied by the caller).
pub fn lint_flow(files: &[SourceFile]) -> Vec<Finding> {
    // Protocol enums: naming convention, non-test source, flow scope.
    let mut enums: BTreeMap<String, EnumDef> = BTreeMap::new();
    let mut facts: Vec<FileFacts> = Vec::new();
    for f in files {
        let lines = scrub(&f.text);
        if in_flow_scope(&f.rel) {
            for e in extract_enums(&f.rel, &lines) {
                if is_flow_enum_name(&e.name) && !lines[e.line - 1].in_test {
                    enums.entry(e.name.clone()).or_insert(e);
                }
            }
        }
        if f.rel != TALLY_EXCLUDE {
            facts.push(file_facts(&f.rel, &lines));
        }
    }

    let mut out = Vec::new();

    // R6: no bare `_ =>` in a match that names a protocol-enum variant.
    for ff in &facts {
        if !in_flow_scope(&ff.rel) {
            continue;
        }
        for site in &ff.sites {
            let toks_of = |arm: &Arm| -> Vec<Token> {
                arm.pattern
                    .iter()
                    .map(|t| Token { text: t.clone(), line: arm.line })
                    .collect()
            };
            let proto: Option<String> = site.arms.iter().find_map(|arm| {
                let ts = toks_of(arm);
                variant_refs(&ts, 0, ts.len())
                    .into_iter()
                    .find(|(e, v, _)| {
                        enums.get(e).is_some_and(|d| d.variants.iter().any(|(n, _)| n == v))
                    })
                    .map(|(e, _, _)| e)
            });
            let Some(enum_name) = proto else { continue };
            for arm in &site.arms {
                if arm.pattern.len() == 1 && arm.pattern[0] == "_" {
                    out.push(Finding {
                        file: ff.rel.clone(),
                        line: arm.line,
                        rule: Rule::R6,
                        message: format!(
                            "bare `_ =>` arm in a match over protocol enum `{enum_name}` — \
                             name the remaining variants (so adding one forces a decision \
                             here) or bind them (`other =>`) and route through a traced \
                             unhandled path"
                        ),
                    });
                }
            }
        }
    }

    // R7: every protocol-enum variant is both constructed and handled
    // somewhere outside the codec mirror.
    let mut handled: BTreeSet<(String, String)> = BTreeSet::new();
    let mut constructed: BTreeSet<(String, String)> = BTreeSet::new();
    for ff in &facts {
        for (e, v, _) in &ff.handled {
            handled.insert((e.clone(), v.clone()));
        }
        for (e, v, _) in &ff.constructed {
            constructed.insert((e.clone(), v.clone()));
        }
    }
    for def in enums.values() {
        for (v, vline) in &def.variants {
            let key = (def.name.clone(), v.clone());
            let h = handled.contains(&key);
            let c = constructed.contains(&key);
            if h && c {
                continue;
            }
            let why = match (c, h) {
                (true, false) => "constructed but never named in any pattern — \
                                  deliveries of it are silently undeliverable",
                (false, true) => "named in patterns but never constructed — \
                                  dead wire surface",
                _ => "neither constructed nor handled anywhere — dead variant",
            };
            out.push(Finding {
                file: def.file.clone(),
                line: *vline,
                rule: Rule::R7,
                message: format!("protocol variant `{}::{v}` is {why}", def.name),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(src: &str) -> Vec<Line> {
        scrub(src)
    }

    #[test]
    fn enum_parser_reads_variants_with_payloads_and_attrs() {
        let src = "#[derive(Clone)]\npub enum FooMsg<Q> {\n  A,\n  #[allow(dead_code)]\n  B { x: u8, y: Vec<(u8, u8)> },\n  C(Box<Q>),\n}\n";
        let e = extract_enums("x.rs", &lines_of(src));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].name, "FooMsg");
        let names: Vec<&str> = e[0].variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(e[0].variants[1].1, 5); // B sits on line 5
    }

    #[test]
    fn match_parser_separates_arms_and_handles_blocks() {
        let src = "fn f(m: M) {\n  match m {\n    M::A { x } if x > 0 => go(x),\n    M::B(_) => { nested(); }\n    _ => {}\n  }\n}\n";
        let sites = extract_matches(&lines_of(src));
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].arms.len(), 3);
        assert_eq!(sites[0].arms[2].pattern, vec!["_".to_string()]);
        assert_eq!(sites[0].arms[2].line, 5);
    }

    #[test]
    fn nested_match_in_arm_expression_is_its_own_site() {
        let src = "fn f() {\n  match a {\n    X::P => match b { Y::Q => 1, Y::R => 2 },\n    X::S => 3,\n  };\n}\n";
        let sites = extract_matches(&lines_of(src));
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].arms.len(), 2, "{:?}", sites[0].arms);
    }

    #[test]
    fn r6_fires_only_on_protocol_matches() {
        let proto = SourceFile {
            rel: "crates/hier/src/fake.rs".into(),
            text: "pub enum FakeMsg { A, B }\nfn h(m: &FakeMsg) {\n  match m {\n    FakeMsg::A => on_a(),\n    _ => {}\n  }\n}\nfn mk() { let _ = (FakeMsg::A, FakeMsg::B); }\nfn h2(m: &FakeMsg) { if let FakeMsg::B = m { on_b(); } }\n".into(),
        };
        let f = lint_flow(std::slice::from_ref(&proto));
        let r6: Vec<&Finding> = f.iter().filter(|x| x.rule == Rule::R6).collect();
        assert_eq!(r6.len(), 1, "{f:?}");
        assert_eq!(r6[0].line, 5);

        // The same wildcard over a non-protocol scrutinee is fine.
        let plain = SourceFile {
            rel: "crates/hier/src/other.rs".into(),
            text: "fn g(x: Option<u8>) -> u8 {\n  match x {\n    Some(v) => v,\n    _ => 0,\n  }\n}\n".into(),
        };
        assert!(lint_flow(&[plain]).iter().all(|x| x.rule != Rule::R6));
    }

    #[test]
    fn r7_flags_unconstructed_and_unhandled_variants() {
        let f = SourceFile {
            rel: "crates/core/src/fake.rs".into(),
            text: "pub enum GhostMsg { Used, NeverMade, NeverRead }\nfn h(m: GhostMsg) {\n  match m {\n    GhostMsg::Used => {}\n    GhostMsg::NeverMade => {}\n    GhostMsg::NeverRead2 => {}\n  }\n}\nfn mk() { send(GhostMsg::Used); send(GhostMsg::NeverRead); }\n".into(),
        };
        let out = lint_flow(&[f]);
        let r7: Vec<&Finding> = out.iter().filter(|x| x.rule == Rule::R7).collect();
        assert_eq!(r7.len(), 2, "{out:?}");
        assert!(r7.iter().any(|x| x.message.contains("NeverMade") && x.line == 1));
        assert!(r7.iter().any(|x| x.message.contains("NeverRead")));
    }

    #[test]
    fn let_and_matches_count_as_handling() {
        let f = SourceFile {
            rel: "crates/core/src/fake.rs".into(),
            text: "pub enum PairMsg { A, B }\nfn mk() { (PairMsg::A, PairMsg::B); }\nfn h(m: &PairMsg) -> bool {\n  if let PairMsg::A = m { return true; }\n  matches!(m, PairMsg::B)\n}\n".into(),
        };
        let out = lint_flow(&[f]);
        assert!(out.iter().all(|x| x.rule != Rule::R7), "{out:?}");
    }

    #[test]
    fn test_code_and_out_of_scope_enums_are_ignored() {
        let f = SourceFile {
            rel: "crates/bench/src/fake.rs".into(),
            text: "pub enum BenchMsg { A }\n".into(),
        };
        assert!(lint_flow(&[f]).is_empty());
        let t = SourceFile {
            rel: "crates/core/src/fake.rs".into(),
            text: "#[cfg(test)]\nmod tests {\n  pub enum TestOnlyMsg { A }\n}\n".into(),
        };
        assert!(lint_flow(&[t]).is_empty());
    }
}
