//! CLI for the determinism linter: `cargo run -p detlint [-- --json] [root]`.
//!
//! Exits 0 when the tree is clean, 1 when any finding (or a bare allow
//! directive) survives, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{default_root, lint_workspace, to_json, Rule};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: detlint [--json] [workspace-root]");
                return ExitCode::from(0);
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("detlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .map(|r| (r, findings.iter().filter(|f| f.rule == *r).count()))
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        if findings.is_empty() {
            println!("detlint: clean ({} rules enforced)", Rule::ALL.len());
        } else {
            println!("detlint: {} finding(s) [{}]", findings.len(), per_rule.join(", "));
        }
    }
    ExitCode::from(if findings.is_empty() { 0 } else { 1 })
}
