//! Thread-topology audit for the threaded modules (rule R9).
//!
//! The daemon's concurrency contract is structural: one core thread owns
//! all mutable protocol state, satellite threads (accept loop, per-
//! connection readers, per-peer writers) communicate with it *only* over
//! `mpsc` channels, and the few flags shared by reference are declared
//! atomics inside `Arc`. Under that shape, `Arc<T>` without interior
//! mutability is immutable, so the invariant "cross-thread mutable state
//! flows only through channels or atomics" holds by construction — unless
//! someone introduces a lock or an interior-mutability cell. R9 therefore
//! bans the constructs that would break the shape (`Mutex`, `RwLock`,
//! `Condvar`, `UnsafeCell`, `static mut`) anywhere in `crates/net`, and
//! [`net_topology`] exposes the spawn/channel/Arc graph so tests can pin
//! the intended ensemble.
//!
//! The conservative parallel engine (`crates/sim/src/par.rs`) is the only
//! other place in the workspace that runs threads, and its determinism
//! argument leans on the same shape: worker shards exchange state with the
//! coordinator exclusively over `mpsc` channels, never through shared
//! memory, so the merge order — not the scheduler — decides every byte.
//! R9 audits it under the same bans as `crates/net`.

use crate::scrub::{scrub, Line};
use crate::tok::{is_ident, path_chain, tokenize};
use crate::{has_ident, Finding, Rule, SourceFile};

/// The code under audit: the net backend plus the parallel engine — every
/// file in the workspace that is allowed to touch an OS thread outside the
/// bench harness.
const R9_SCOPE: [&str; 2] = ["crates/net/", "crates/sim/src/par.rs"];

fn in_r9_scope(rel: &str) -> bool {
    R9_SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Constructs that would let mutable state cross threads outside channels
/// and declared atomics.
const BANNED: [(&str, &str); 4] = [
    ("Mutex", "lock-based sharing"),
    ("RwLock", "lock-based sharing"),
    ("Condvar", "lock-based signalling"),
    ("UnsafeCell", "raw interior mutability"),
];

/// One interesting site in the net crate's thread topology.
#[derive(Clone, Debug)]
pub struct Site {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Name of the enclosing function (empty at item level).
    pub context: String,
}

/// One `Arc<…>` occurrence with its inner type text.
#[derive(Clone, Debug)]
pub struct ArcSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The tokens between the angle brackets, joined by spaces.
    pub inner: String,
}

/// The static thread topology of `crates/net`.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// `thread::spawn` call sites.
    pub spawns: Vec<Site>,
    /// `mpsc::channel` / `mpsc::sync_channel` creation sites.
    pub channels: Vec<Site>,
    /// `Arc<…>` occurrences (shared-by-reference state).
    pub arcs: Vec<ArcSite>,
    /// `Atomic*` identifier occurrences (declared atomics).
    pub atomics: Vec<Site>,
}

fn scan_file(rel: &str, lines: &[Line], topo: &mut Topology) {
    let toks = tokenize(lines);
    let mut context = String::new();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        if t == "fn" && i + 1 < toks.len() && is_ident(&toks[i + 1].text) {
            context = toks[i + 1].text.clone();
            i += 2;
            continue;
        }
        if is_ident(t) {
            let (segs, next) = path_chain(&toks, i);
            let line = toks[i].line;
            let site = || Site { file: rel.to_string(), line, context: context.clone() };
            if segs.len() >= 2 {
                let pair = (segs[segs.len() - 2], segs[segs.len() - 1]);
                match pair {
                    ("thread", "spawn") => topo.spawns.push(site()),
                    ("mpsc", "channel") | ("mpsc", "sync_channel") => {
                        topo.channels.push(site())
                    }
                    _ => {}
                }
            }
            let last = segs[segs.len() - 1];
            if last.starts_with("Atomic") && last.len() > "Atomic".len() {
                topo.atomics.push(Site {
                    file: rel.to_string(),
                    line,
                    context: context.clone(),
                });
            }
            if last == "Arc" && toks.get(next).map(|x| x.text.as_str()) == Some("<") {
                let mut d = 0i32;
                let mut j = next;
                let mut inner: Vec<&str> = Vec::new();
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => d += 1,
                        ">" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        ";" | "{" => break, // a comparison, not generics
                        _ => {}
                    }
                    if d >= 1 && !(d == 1 && toks[j].text == "<") {
                        inner.push(&toks[j].text);
                    }
                    j += 1;
                }
                topo.arcs.push(ArcSite {
                    file: rel.to_string(),
                    line,
                    inner: inner.join(" "),
                });
                // Fall through to `next`, not past the generics: the inner
                // tokens still feed the atomics census below.
            }
            i = next.max(i + 1);
            continue;
        }
        i += 1;
    }
}

/// Builds the spawn/channel/Arc/atomic graph of every file under R9's
/// scope (the net backend and the parallel engine).
pub fn net_topology(files: &[SourceFile]) -> Topology {
    let mut topo = Topology::default();
    for f in files {
        if in_r9_scope(&f.rel) {
            scan_file(&f.rel, &scrub(&f.text), &mut topo);
        }
    }
    topo
}

/// Runs R9 over the whole file set. Findings are raw (allow directives are
/// applied by the caller).
pub fn lint_r9(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !in_r9_scope(&f.rel) {
            continue;
        }
        let lines = scrub(&f.text);
        for (idx, line) in lines.iter().enumerate() {
            for (tok, why) in BANNED {
                if has_ident(&line.code, tok) {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: idx + 1,
                        rule: Rule::R9,
                        message: format!(
                            "`{tok}` ({why}) in a threaded module — cross-thread mutable \
                             state must flow through mpsc channels or declared atomics \
                             (single-owner core thread, message-passing satellites)"
                        ),
                    });
                }
            }
            if line.code.contains("static mut ") {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: idx + 1,
                    rule: Rule::R9,
                    message: "`static mut` in a threaded module — cross-thread mutable \
                              state must flow through mpsc channels or declared atomics"
                        .to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(rel: &str, text: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), text: text.to_string() }
    }

    #[test]
    fn locks_and_cells_in_net_are_flagged() {
        let f = sf(
            "crates/net/src/bad.rs",
            "use std::sync::Mutex;\nfn go() {\n  let m = RwLock::new(0);\n  static mut COUNT: u32 = 0;\n}\n",
        );
        let out = lint_r9(std::slice::from_ref(&f));
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|x| x.rule == Rule::R9));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn channels_atomics_and_arcs_are_the_sanctioned_shape() {
        let f = sf(
            "crates/net/src/good.rs",
            "fn serve(stop: Arc<AtomicBool>) {\n  let (tx, rx) = mpsc::channel();\n  std::thread::spawn(move || drop(tx));\n}\n",
        );
        assert!(lint_r9(std::slice::from_ref(&f)).is_empty());
        let topo = net_topology(&[f]);
        assert_eq!(topo.spawns.len(), 1);
        assert_eq!(topo.spawns[0].context, "serve");
        assert_eq!(topo.channels.len(), 1);
        assert_eq!(topo.arcs.len(), 1);
        assert_eq!(topo.arcs[0].inner, "AtomicBool");
        assert!(!topo.atomics.is_empty());
    }

    #[test]
    fn locks_outside_net_are_not_r9_business() {
        let f = sf("crates/bench/src/par_sweep.rs", "use std::sync::Mutex;\n");
        assert!(lint_r9(&[f]).is_empty());
    }

    #[test]
    fn parallel_engine_is_under_the_r9_audit() {
        // Seeded violation: a lock smuggled into the parallel engine must
        // be flagged exactly like one in the net backend.
        let bad = sf(
            "crates/sim/src/par.rs",
            "fn merge() {\n  let shared = std::sync::Mutex::new(Vec::new());\n}\n",
        );
        let out = lint_r9(std::slice::from_ref(&bad));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::R9);
        assert_eq!(out[0].line, 2);

        // `static mut` is caught too.
        let worse = sf("crates/sim/src/par.rs", "static mut SLOTS: u32 = 0;\n");
        assert_eq!(lint_r9(&[worse]).len(), 1);

        // The sanctioned shape — scoped threads plus mpsc — is clean, and
        // the topology census sees the engine's spawn/channel sites.
        let good = sf(
            "crates/sim/src/par.rs",
            "fn cycle() {\n  let (tx, rx) = mpsc::sync_channel(8);\n  std::thread::spawn(move || drop(tx));\n}\n",
        );
        assert!(lint_r9(std::slice::from_ref(&good)).is_empty());
        let topo = net_topology(&[good]);
        assert_eq!(topo.spawns.len(), 1);
        assert_eq!(topo.channels.len(), 1);

        // The rest of the sim crate stays outside R9 (R2 already bans
        // threads there; a Mutex in single-threaded code is dead weight but
        // not a topology hazard).
        let other = sf("crates/sim/src/engine.rs", "use std::sync::Mutex;\n");
        assert!(lint_r9(&[other]).is_empty());
    }
}
