//! `detlint` — the workspace's determinism & protocol-safety linter.
//!
//! Every quantitative result in EXPERIMENTS.md is an *exact* count from a
//! deterministic simulation, so any ambient nondeterminism (hash-order
//! iteration, wall clocks, unseeded RNG) silently invalidates the tables.
//! This linter enforces the rules that keep replays byte-identical, both as
//! a CLI (`cargo run -p detlint`) and as a test inside this crate so
//! `cargo test` enforces them forever. See DESIGN.md, "Determinism rules".
//!
//! Rules:
//! - **R1** — no `HashMap`/`HashSet` in non-test code of the simulator,
//!   protocol, and fuzzer crates (`sim`, `core`, `hier`, `toolkit`,
//!   `chaos`): unordered containers make iteration order depend on
//!   `RandomState`, which leaks into message emission order, view
//!   contents, and scenario expansion order.
//! - **R2** — no wall-clock reads (`SystemTime`, `Instant`), OS threads
//!   (`thread::spawn`) or ambient RNG (`thread_rng`, `from_entropy`,
//!   `OsRng`, `rand::random`) anywhere under those crates, tests included:
//!   simulated time and the seeded [`now_sim::det_rand`] stream are the
//!   only admissible sources.
//! - **R3** — no `.unwrap()` / `.expect("")` in non-test protocol code
//!   (`core`, `hier`): a malformed or reordered message must surface as a
//!   protocol error, not a panic that takes down the process. A *messaged*
//!   `.expect("reason")` states an invariant and is allowed.
//! - **R4** — every public state-mutating function (`pub fn …(&mut self`)
//!   in `core`/`hier` is reachable from a `#[test]`, bench, example or
//!   binary: protocol code nothing exercises is dead weight that silently
//!   rots.
//! - **R5** — OS threads (`thread::scope`, `thread::spawn`) are permitted
//!   only in `crates/bench` harness code (the deterministic parallel sweep
//!   runner farms *whole independent simulations* across workers) and in
//!   `crates/net` (the real transport backend: accept loops, per-connection
//!   readers and daemon main loops are genuinely concurrent). No protocol
//!   or engine crate may ever touch a thread (inside one simulation,
//!   concurrency is simulated, never real). Protocol crates are covered by
//!   R2's thread ban; R5 closes the rest of the workspace.
//!
//! - **R6** — no bare `_ =>` arm in any `match` that inspects a protocol
//!   enum (an enum named `…Msg`/`…Payload`/`…Cmd` in protocol source): a
//!   variant added later would be swallowed without even a counter bump.
//!   Name the remaining variants, or bind them (`other =>`) and route
//!   through a traced unhandled path.
//! - **R7** — every protocol-enum variant is both *constructed* somewhere
//!   and *named in a pattern* somewhere (outside the wire codec, which
//!   names everything by definition): anything else is dead wire surface.
//! - **R8** — wire-schema parity: each `impl Wire for E` in `crates/net`
//!   must carry an encode arm *and* a decode arm for every variant of `E`,
//!   and no arm for a variant `E` no longer has. Decode matches on a tag
//!   byte with a `BadTag` catch-all, so drift compiles silently — R8 makes
//!   it a lint failure instead of a codec-fuzz lottery.
//! - **R9** — thread-topology audit for the threaded modules (`crates/net`
//!   and the parallel engine `crates/sim/src/par.rs`): cross-thread mutable
//!   state flows only through `mpsc` channels or declared atomics. The
//!   constructs that would break that shape (`Mutex`, `RwLock`, `Condvar`,
//!   `UnsafeCell`, `static mut`) are banned there.
//! - **R10** — every `// detlint: allow(...)` directive must still
//!   suppress a live finding; stale or unknown-rule directives are
//!   findings themselves, so suppressions cannot outlive their reason.
//!
//! Carve-out: `crates/net` is deliberately outside R2's scope and inside
//! R5's permit list. It is the one place real wall-clocks and OS threads
//! are the *point* — a daemon speaking sockets cannot run on simulated
//! time. The protocol crates it hosts remain fully covered: they never
//! read a clock or spawn a thread themselves, they only see `Ctx`.
//!
//! Second, narrower carve-out: `crates/sim/src/par.rs` (the conservative
//! parallel engine) may use `thread::scope`/`thread::spawn` — parallelism
//! there is a pure throughput device whose output is byte-identical to the
//! sequential run, so threads do not make it nondeterministic. Everything
//! else R2 bans (wall clocks, unseeded RNG) stays banned in that file, and
//! R9 audits its cross-thread state the same way it audits `crates/net`.
//!
//! Escape hatch: a finding is suppressed by a comment on the same or the
//! preceding line whose whole text is `detlint: allow(R1): <justification>`
//! (i.e. written as `// detlint: allow(R1): <justification>`). The
//! justification text is mandatory; a bare allow is itself reported, and
//! R10 retires any directive that stops suppressing something.

pub mod callgraph;
pub mod flow;
pub mod scrub;
pub mod threads;
mod tok;
pub mod wireparity;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use callgraph::{extract_fns, reachable};
use scrub::{scrub, Line};

/// The rule a finding belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered container in deterministic state/code.
    R1,
    /// Ambient nondeterminism (wall clock, threads, unseeded RNG).
    R2,
    /// Panic-on-malformed-input in protocol paths.
    R3,
    /// Unreachable public state-mutating protocol function.
    R4,
    /// OS-thread use outside the bench harness.
    R5,
    /// Bare `_ =>` arm swallowing protocol-enum variants.
    R6,
    /// Protocol variant constructed-but-unhandled or handled-but-never-made.
    R7,
    /// Wire-codec arm set drifted from the enum definition.
    R8,
    /// Lock/interior-mutability construct in the net backend.
    R9,
    /// Stale or malformed `detlint: allow` directive.
    R10,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 10] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
        Rule::R10,
    ];

    fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: `file:line: rule: message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// What part of the tree a file belongs to, by path convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FileRole {
    /// Library source under some `src/`.
    Src,
    /// Integration tests, benches, examples, binaries — R4 seed code.
    Harness,
}

fn role_of(rel: &str) -> FileRole {
    let seg = |s: &str| rel.contains(&format!("/{s}/")) || rel.starts_with(&format!("{s}/"));
    if seg("tests") || seg("benches") || seg("examples") || rel.contains("/src/bin/") {
        FileRole::Harness
    } else {
        FileRole::Src
    }
}

/// Crates whose *source* must use ordered containers (R1) and avoid
/// panicking protocol paths (R3 applies to the protocol subset).
const R1_SCOPE: [&str; 6] = [
    "crates/trace/src/",
    "crates/sim/src/",
    "crates/core/src/",
    "crates/hier/src/",
    "crates/toolkit/src/",
    "crates/chaos/src/",
];

/// Crates where ambient nondeterminism is banned everywhere, tests included.
/// Note `crates/net` is deliberately absent: the real transport backend is
/// the one crate allowed to read wall clocks (its whole job is mapping real
/// elapsed time onto the `SimTime` axis the protocols expect).
const R2_SCOPE: [&str; 6] = [
    "crates/trace/",
    "crates/sim/",
    "crates/core/",
    "crates/hier/",
    "crates/toolkit/",
    // The fuzzer's whole claim is "same seed, same counterexample" — one
    // wall-clock read or ambient-RNG draw and a reported violation stops
    // being replayable. Tests included, like the other deterministic crates.
    "crates/chaos/",
];

/// Crates whose code may use OS threads (exempt from R5): the bench
/// harness's parallel sweep runner, and the real network backend whose
/// accept/reader/daemon loops are genuinely concurrent.
const R5_THREADS_OK: [&str; 2] = ["crates/bench/", "crates/net/"];

/// The one file inside R2's scope allowed to use the two OS-thread tokens:
/// the conservative parallel engine (`now_sim::par`). It runs worker shards
/// on scoped threads *without* giving up determinism — every ordering
/// decision is made by the deterministic `(time, class, seq, src)` merge,
/// never by the scheduler — so the thread ban is lifted for exactly those
/// two tokens, there and nowhere else. Wall clocks and unseeded RNG remain
/// banned in the file, and R9's mutable-state audit (mpsc channels only, no
/// locks) covers it alongside `crates/net`.
const PAR_ENGINE: &str = "crates/sim/src/par.rs";

/// Protocol crates under the unwrap policy (R3) and dead-code rule (R4).
const R3_SCOPE: [&str; 3] = ["crates/trace/src/", "crates/core/src/", "crates/hier/src/"];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

/// Tokens that trigger R2, with the reason reported.
const R2_BANNED: [(&str, &str); 8] = [
    ("SystemTime", "wall-clock read"),
    ("Instant", "wall-clock read"),
    ("thread::spawn", "OS thread"),
    ("thread::scope", "OS thread"),
    ("thread_rng", "unseeded RNG"),
    ("from_entropy", "unseeded RNG"),
    ("OsRng", "unseeded RNG"),
    ("rand::random", "unseeded RNG"),
];

/// Looks for a `detlint: allow(rule)` directive on this or the preceding
/// line; also returns the 0-based index of the directive line found, so
/// R10 can tell live directives from stale ones. A directive *without*
/// justification does not suppress (the caller reports it separately).
fn allowed(lines: &[Line], idx: usize, rule: Rule) -> (AllowState, Option<usize>) {
    let mut state = (AllowState::None, None);
    for k in [idx.checked_sub(1), Some(idx)].into_iter().flatten() {
        match parse_allow(&lines[k].comment, rule) {
            AllowState::Justified => return (AllowState::Justified, Some(k)),
            AllowState::Bare => state = (AllowState::Bare, Some(k)),
            AllowState::None => {}
        }
    }
    state
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AllowState {
    None,
    /// `detlint: allow(Rx)` with no justification text.
    Bare,
    /// `detlint: allow(Rx): reason`.
    Justified,
}

/// A comment is a directive only when its trimmed text *starts* with
/// `detlint:` — prose that merely mentions the syntax (doc comments, this
/// very file) does not count. Returns the text inside `allow(...)`.
fn parse_directive(comment: &str) -> Option<&str> {
    let rest = comment.trim_start().strip_prefix("detlint:")?;
    let rest = rest.trim_start().strip_prefix("allow(")?;
    let close = rest.find(')')?;
    Some(rest[..close].trim())
}

fn parse_allow(comment: &str, rule: Rule) -> AllowState {
    if parse_directive(comment) != Some(rule.id()) {
        return AllowState::None;
    }
    // Re-find the close paren to inspect the justification tail.
    let rest = comment.trim_start();
    let Some(close) = rest.find(')') else {
        return AllowState::None;
    };
    let after = rest[close + 1..].trim_start();
    match after.strip_prefix(':') {
        Some(j) if !j.trim().is_empty() => AllowState::Justified,
        _ => AllowState::Bare,
    }
}

/// Emits `finding` unless an allow directive suppresses it; a bare
/// directive is converted into its own finding so justifications stay
/// mandatory. Directive lines that matched (either way) are recorded in
/// `used` — R10 retires the rest.
fn push_finding(
    out: &mut Vec<Finding>,
    lines: &[Line],
    idx: usize,
    used: &mut BTreeSet<usize>,
    finding: Finding,
) {
    match allowed(lines, idx, finding.rule) {
        (AllowState::Justified, k) => {
            used.extend(k);
        }
        (AllowState::Bare, k) => {
            used.extend(k);
            let rule = finding.rule;
            out.push(Finding {
                message: format!(
                    "allow({rule}) directive without justification — write `// detlint: allow({rule}): <reason>`"
                ),
                ..finding
            });
        }
        (AllowState::None, _) => out.push(finding),
    }
}

/// Lints one file's source text under the per-line rules (R1–R3, R5).
/// The whole-workspace rules (R4, R6–R10) need the full file set; see
/// [`lint_workspace`].
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let mut used = BTreeSet::new();
    lint_source_inner(rel, &scrub(source), &mut used)
}

fn lint_source_inner(rel: &str, lines: &[Line], used: &mut BTreeSet<usize>) -> Vec<Finding> {
    let mut out = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;

        // R1: unordered containers in non-test simulator/protocol source.
        if in_scope(rel, &R1_SCOPE) && !line.in_test {
            for container in ["HashMap", "HashSet"] {
                if has_ident(&line.code, container) {
                    push_finding(
                        &mut out,
                        lines,
                        idx,
                        used,
                        Finding {
                            file: rel.to_string(),
                            line: lineno,
                            rule: Rule::R1,
                            message: format!(
                                "`{container}` in deterministic code — iteration order depends on \
                                 RandomState; use `BTree{}` or a sorted wrapper",
                                &container[4..]
                            ),
                        },
                    );
                }
            }
        }

        // R2: ambient nondeterminism, everywhere in scope (tests included).
        if in_scope(rel, &R2_SCOPE) {
            for (tok, why) in R2_BANNED {
                // Carve-out: the parallel engine may use scoped OS threads
                // (see `PAR_ENGINE`); its clock and RNG stay banned.
                if rel == PAR_ENGINE && why == "OS thread" {
                    continue;
                }
                let hit = if tok.contains("::") {
                    line.code.contains(tok)
                } else {
                    has_ident(&line.code, tok)
                };
                if hit {
                    push_finding(
                        &mut out,
                        lines,
                        idx,
                        used,
                        Finding {
                            file: rel.to_string(),
                            line: lineno,
                            rule: Rule::R2,
                            message: format!(
                                "`{tok}` ({why}) — simulated time / seeded det_rand are the only \
                                 admissible sources here"
                            ),
                        },
                    );
                }
            }
        }

        // R5: OS threads only in the bench harness and the real network
        // backend. Protocol crates are already under R2's thread ban; R5
        // covers everything else.
        if !in_scope(rel, &R5_THREADS_OK) && !in_scope(rel, &R2_SCOPE) {
            for tok in ["thread::spawn", "thread::scope"] {
                if line.code.contains(tok) {
                    push_finding(
                        &mut out,
                        lines,
                        idx,
                        used,
                        Finding {
                            file: rel.to_string(),
                            line: lineno,
                            rule: Rule::R5,
                            message: format!(
                                "`{tok}` outside the bench harness and net backend — OS \
                                 threads are reserved for `crates/bench` sweep parallelism \
                                 and `crates/net` daemon loops; protocol and app code must \
                                 stay single-threaded and deterministic"
                            ),
                        },
                    );
                }
            }
        }

        // R3: unwrap policy in non-test protocol source.
        if in_scope(rel, &R3_SCOPE) && !line.in_test {
            if line.code.contains(".unwrap()") {
                push_finding(
                    &mut out,
                    lines,
                    idx,
                    used,
                    Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: Rule::R3,
                        message: "`.unwrap()` in protocol path — return an error or use \
                                  `.expect(\"invariant\")` with the invariant spelled out"
                            .to_string(),
                    },
                );
            }
            if line.code.contains(".expect(\"\")") {
                push_finding(
                    &mut out,
                    lines,
                    idx,
                    used,
                    Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: Rule::R3,
                        message: "empty `.expect(\"\")` — state the invariant being relied on"
                            .to_string(),
                    },
                );
            }
        }
    }
    out
}

/// True when `ident` appears in `code` as a whole word (not as a substring
/// of a longer identifier).
pub(crate) fn has_ident(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(ident) {
        let start = from + p;
        let end = start + ident.len();
        let pre = start
            .checked_sub(1)
            .map(|i| bytes[i] as char)
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let post = bytes
            .get(end)
            .map(|&b| b as char)
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if pre && post {
            return true;
        }
        from = end;
    }
    false
}

/// A file already loaded for linting; [`lint_files`] takes these so tests
/// can lint fixture strings without touching the filesystem.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Full source text.
    pub text: String,
}

/// Per-file record of which allow-directive lines suppressed something.
type UsedDirectives = BTreeMap<String, BTreeSet<usize>>;

/// Lints a set of files under all ten rules.
pub fn lint_files(files: &[SourceFile]) -> Vec<Finding> {
    let scrubbed: BTreeMap<String, Vec<Line>> =
        files.iter().map(|f| (f.rel.clone(), scrub(&f.text))).collect();
    let mut used: UsedDirectives = BTreeMap::new();

    let mut out = Vec::new();
    for f in files {
        let lines = &scrubbed[&f.rel];
        let u = used.entry(f.rel.clone()).or_default();
        out.extend(lint_source_inner(&f.rel, lines, u));
    }
    out.extend(lint_r4(files, &scrubbed, &mut used));

    // Workspace-level flow rules: route each raw finding through the allow
    // machinery of its own file.
    let raw: Vec<Finding> = flow::lint_flow(files)
        .into_iter()
        .chain(wireparity::lint_wire_parity(files))
        .chain(threads::lint_r9(files))
        .collect();
    for finding in raw {
        match scrubbed.get(&finding.file) {
            Some(lines) if finding.line >= 1 && finding.line <= lines.len() => {
                let u = used.entry(finding.file.clone()).or_default();
                let idx = finding.line - 1;
                push_finding(&mut out, lines, idx, u, finding);
            }
            _ => out.push(finding),
        }
    }

    out.extend(lint_r10(files, &scrubbed, &mut used));
    out.sort();
    out
}

/// Rule R4 over the whole file set: reachability of public `&mut self`
/// protocol functions from harness/test seeds.
fn lint_r4(
    files: &[SourceFile],
    scrubbed: &BTreeMap<String, Vec<Line>>,
    used: &mut UsedDirectives,
) -> Vec<Finding> {
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut seeds: BTreeSet<String> = BTreeSet::new();
    let mut targets: Vec<(String, usize, String)> = Vec::new();

    for f in files {
        let lines = &scrubbed[&f.rel];
        let defs = extract_fns(lines);
        let role = role_of(&f.rel);
        for d in &defs {
            graph.entry(d.name.clone()).or_default().extend(d.callees.iter().cloned());
            if role == FileRole::Harness || d.in_test || d.name == "main" {
                seeds.insert(d.name.clone());
                // Harness top-level code outside fns is rare; fn bodies
                // cover everything the workspace actually has.
            }
            if in_scope(&f.rel, &R3_SCOPE)
                && d.is_pub
                && d.takes_mut_self
                && !d.in_test
                && !d.name.starts_with('_')
            {
                targets.push((f.rel.clone(), d.line, d.name.clone()));
            }
        }
    }

    let live = reachable(&graph, &seeds);
    let mut out = Vec::new();
    for (rel, line, name) in targets {
        if !live.contains(&name) {
            let lines = &scrubbed[&rel];
            let u = used.entry(rel.clone()).or_default();
            push_finding(
                &mut out,
                lines,
                line - 1,
                u,
                Finding {
                    file: rel.clone(),
                    line,
                    rule: Rule::R4,
                    message: format!(
                        "public state-mutating fn `{name}` is unreachable from any test, bench, \
                         example or binary — dead protocol code"
                    ),
                },
            );
        }
    }
    out
}

/// Rule R10: every allow directive must still suppress a live finding and
/// must name a rule that exists. Runs last, after every other rule has
/// recorded which directive lines it consulted. Directives are audited in
/// reverse line order so that an `allow(R10)` placed on a deliberately
/// retained directive registers as used before its own turn comes.
fn lint_r10(
    files: &[SourceFile],
    scrubbed: &BTreeMap<String, Vec<Line>>,
    used: &mut UsedDirectives,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let lines = &scrubbed[&f.rel];
        let directives: Vec<(usize, String)> = lines
            .iter()
            .enumerate()
            .filter_map(|(idx, l)| parse_directive(&l.comment).map(|id| (idx, id.to_string())))
            .collect();
        for (idx, id) in directives.into_iter().rev() {
            let u = used.entry(f.rel.clone()).or_default();
            if !Rule::ALL.iter().any(|r| r.id() == id) {
                push_finding(
                    &mut out,
                    lines,
                    idx,
                    u,
                    Finding {
                        file: f.rel.clone(),
                        line: idx + 1,
                        rule: Rule::R10,
                        message: format!(
                            "allow directive names unknown rule `{id}` — it can never \
                             suppress anything (known rules: R1–R{})",
                            Rule::ALL.len()
                        ),
                    },
                );
            } else if !u.contains(&idx) {
                push_finding(
                    &mut out,
                    lines,
                    idx,
                    u,
                    Finding {
                        file: f.rel.clone(),
                        line: idx + 1,
                        rule: Rule::R10,
                        message: format!(
                            "stale `detlint: allow({id})` — it no longer suppresses any \
                             finding; remove it (or re-justify against a live finding)"
                        ),
                    },
                );
            }
        }
    }
    out
}

/// Directories walked when linting a real workspace tree.
const WALK_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Collects every `.rs` file beneath `root` (the workspace root).
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    if files.is_empty() {
        // A clean verdict over zero files is a trap (a typo'd root would
        // pass CI forever); insist the root actually holds the workspace.
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no .rs files under {} — not a workspace root?", root.display()),
        ));
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel,
                text: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` under all rules.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(lint_files(&collect_workspace(root)?))
}

/// The workspace root, assuming this crate lives at `<root>/crates/detlint`.
pub fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Renders findings as a machine-readable JSON report.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ----- R1 ---------------------------------------------------------

    /// The acceptance-criterion fixture: a synthetic `HashMap` iteration
    /// injected into `crates/hier/src/tree.rs` must be caught.
    #[test]
    fn r1_catches_injected_hashmap_iteration_in_tree() {
        let fixture = r#"
use std::collections::HashMap;
pub struct RepState {
    assigned: HashMap<u64, u64>,
}
impl RepState {
    pub fn flush(&mut self) {
        for (id, seq) in self.assigned.iter() {
            emit(*id, *seq);
        }
    }
}
"#;
        let f = lint_source("crates/hier/src/tree.rs", fixture);
        assert!(
            f.iter().filter(|x| x.rule == Rule::R1).count() >= 2,
            "import and field must both be flagged: {f:?}"
        );
    }

    #[test]
    fn r1_ignores_test_code_and_out_of_scope_files() {
        let fixture = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint_source("crates/hier/src/tree.rs", fixture).is_empty());
        let live = "use std::collections::HashMap;\n";
        assert!(lint_source("crates/bench/src/report.rs", live).is_empty());
        assert!(lint_source("crates/hier/tests/x.rs", live).is_empty());
    }

    #[test]
    fn r1_word_boundary_does_not_match_longer_idents() {
        assert!(lint_source("crates/sim/src/x.rs", "struct MyHashMapLike;\n").is_empty());
    }

    #[test]
    fn r1_allow_with_justification_suppresses() {
        let src = "// detlint: allow(R1): ordering is re-established by sort below\nuse std::collections::HashMap;\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_bare_allow_is_itself_a_finding() {
        let src = "use std::collections::HashMap; // detlint: allow(R1)\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R1]);
        assert!(f[0].message.contains("justification"));
    }

    // ----- chaos crate scope ------------------------------------------

    #[test]
    fn chaos_src_is_under_r1() {
        let src = "use std::collections::HashMap;\npub struct Census { counts: HashMap<String, u64> }\n";
        let f = lint_source("crates/chaos/src/census.rs", src);
        assert!(
            f.iter().filter(|x| x.rule == Rule::R1).count() >= 2,
            "unordered containers in the fuzzer must be flagged: {f:?}"
        );
    }

    #[test]
    fn chaos_is_under_r2_tests_included() {
        // A wall-clock read in fuzzer source would silently break
        // counterexample replay.
        let clock = "pub fn seed() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n";
        let f = lint_source("crates/chaos/src/gen.rs", clock);
        assert_eq!(rules_of(&f), vec![Rule::R2]);
        // Threads in chaos tests are R2 (not R5 — no double report).
        let threads = "#[test]\nfn t() { std::thread::spawn(|| {}); }\n";
        let f = lint_source("crates/chaos/tests/pipeline.rs", threads);
        assert_eq!(rules_of(&f), vec![Rule::R2]);
        // Ambient RNG in the sweep binary too.
        let rng = "fn main() { let s: u64 = rand::random(); }\n";
        let f = lint_source("crates/chaos/src/bin/chaos_sweep.rs", rng);
        assert_eq!(rules_of(&f), vec![Rule::R2]);
    }

    // ----- R2 ---------------------------------------------------------

    #[test]
    fn r2_flags_clocks_threads_and_entropy_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() {\n    let t0 = std::time::Instant::now();\n    std::thread::spawn(|| {});\n    let mut r = thread_rng();\n  }\n}\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R2, Rule::R2, Rule::R2]);
    }

    #[test]
    fn r2_does_not_apply_outside_protocol_crates() {
        let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }\n";
        assert!(lint_source("crates/bench/src/microbench.rs", src).is_empty());
    }

    #[test]
    fn r2_spawn_method_on_sim_is_fine() {
        let src = "fn go(sim: &mut Sim<P>) { let _p = sim.spawn(node, proc_); }\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_scoped_threads_in_protocol_crates() {
        let src = "fn t() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let f = lint_source("crates/sim/src/engine.rs", src);
        assert!(
            f.iter().any(|x| x.rule == Rule::R2),
            "thread::scope in a protocol crate must be R2: {f:?}"
        );
    }

    // ----- R3 ---------------------------------------------------------

    #[test]
    fn r3_flags_unwrap_and_empty_expect_in_protocol_code() {
        let src = "pub fn handle(&mut self) {\n  let v = self.q.pop().unwrap();\n  let w = self.m.get(&k).expect(\"\");\n}\n";
        let f = lint_source("crates/core/src/group.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R3, Rule::R3]);
    }

    #[test]
    fn r3_messaged_expect_and_test_unwrap_are_allowed() {
        let src = "pub fn handle(&mut self) {\n  let v = self.m.get(&k).expect(\"key just listed\");\n}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x().unwrap(); }\n}\n";
        assert!(lint_source("crates/core/src/group.rs", src).is_empty());
    }

    #[test]
    fn r3_unwrap_in_string_literal_is_ignored() {
        let src = "pub fn log(&mut self) { self.emit(\"call .unwrap() never\"); }\n";
        assert!(lint_source("crates/hier/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_does_not_apply_to_sim_or_toolkit() {
        let src = "pub fn go(&mut self) { self.q.pop().unwrap(); }\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        assert!(lint_source("crates/toolkit/src/flat/x.rs", src).is_empty());
    }

    // ----- R4 ---------------------------------------------------------

    fn sf(rel: &str, text: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), text: text.to_string() }
    }

    #[test]
    fn r4_flags_protocol_fn_unreachable_from_any_harness() {
        let files = [
            sf(
                "crates/core/src/process.rs",
                "impl P {\n  pub fn used(&mut self) {}\n  pub fn orphan(&mut self) {}\n}\n",
            ),
            sf("crates/core/tests/t.rs", "#[test]\nfn t() { p.used(); }\n"),
        ];
        let f: Vec<Finding> = lint_files(&files).into_iter().filter(|f| f.rule == Rule::R4).collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("orphan"));
    }

    #[test]
    fn r4_transitive_reachability_counts() {
        let files = [
            sf(
                "crates/hier/src/member.rs",
                "impl M {\n  pub fn deep(&mut self) {}\n}\npub fn shallow(h: &mut M) { h.deep(); }\n",
            ),
            sf("tests/e2e.rs", "#[test]\nfn t() { shallow(&mut m); }\n"),
        ];
        assert!(lint_files(&files).iter().all(|f| f.rule != Rule::R4));
    }

    #[test]
    fn r4_immutable_and_private_fns_are_exempt(){
        let files = [sf(
            "crates/core/src/x.rs",
            "impl P {\n  pub fn read_only(&self) {}\n  fn private_mut(&mut self) {}\n}\n",
        )];
        assert!(lint_files(&files).iter().all(|f| f.rule != Rule::R4));
    }

    // ----- R5 ---------------------------------------------------------

    #[test]
    fn r5_flags_threads_outside_bench() {
        let src = "fn go() { std::thread::spawn(|| {}); }\n";
        let f = lint_source("crates/apps/src/drivers.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R5]);
        let scoped = "fn go() { std::thread::scope(|s| {}); }\n";
        let f = lint_source("tests/e2e.rs", scoped);
        assert_eq!(rules_of(&f), vec![Rule::R5]);
    }

    #[test]
    fn r5_permits_threads_in_bench_harness() {
        let src = "pub fn par() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(lint_source("crates/bench/src/par_sweep.rs", src).is_empty());
        assert!(lint_source("crates/bench/tests/par.rs", src).is_empty());
    }

    #[test]
    fn r5_does_not_double_report_protocol_crates() {
        // Protocol crates are R2's territory: exactly one finding, not two.
        let src = "fn t() { std::thread::spawn(|| {}); }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::R2]);
    }

    // ----- crates/net carve-out ---------------------------------------

    #[test]
    fn net_backend_may_use_threads_and_wall_clocks() {
        // The real transport backend is the one crate where OS threads and
        // wall-clock reads are the point; neither R2 nor R5 fires there.
        let src = "pub fn serve() {\n  let epoch = std::time::Instant::now();\n  std::thread::spawn(move || { let _ = epoch.elapsed(); });\n  std::thread::scope(|s| { s.spawn(|| {}); });\n}\n";
        assert!(lint_source("crates/net/src/daemon.rs", src).is_empty());
        assert!(lint_source("crates/net/src/bin/now_cluster.rs", src).is_empty());
    }

    #[test]
    fn net_carve_out_does_not_leak_to_neighbours() {
        // The exemption is exactly `crates/net/` — thread use in app code,
        // workspace tests, or a hypothetical sibling still fires R5...
        let threads = "fn go() { std::thread::spawn(|| {}); }\n";
        for rel in [
            "crates/apps/src/drivers.rs",
            "crates/netx/src/lib.rs",
            "tests/cluster.rs",
        ] {
            let f = lint_source(rel, threads);
            assert_eq!(rules_of(&f), vec![Rule::R5], "{rel} must still be R5");
        }
        // ...and wall clocks in the sim/protocol crates still fire R2, even
        // in their test code.
        let clock = "fn t() { let _ = std::time::Instant::now(); }\n";
        for rel in ["crates/sim/src/engine.rs", "crates/hier/tests/t.rs"] {
            let f = lint_source(rel, clock);
            assert_eq!(rules_of(&f), vec![Rule::R2], "{rel} must still be R2");
        }
    }

    // ----- parallel-engine carve-out ----------------------------------

    #[test]
    fn parallel_engine_may_use_scoped_threads() {
        // The conservative parallel engine runs worker shards on scoped
        // threads; the thread tokens are exempt in exactly that file.
        let src = "fn cycle() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(lint_source("crates/sim/src/par.rs", src).is_empty());
        let spawn = "fn go() { let h = std::thread::spawn(|| {}); h.join().ok(); }\n";
        assert!(lint_source("crates/sim/src/par.rs", spawn).is_empty());
    }

    #[test]
    fn parallel_engine_carve_out_is_threads_only() {
        // Seeded violations: everything else R2 bans stays banned in the
        // engine file — a wall-clock read or ambient RNG there would let
        // real scheduling leak into simulated time.
        let clock = "fn h() { let _ = std::time::Instant::now(); }\n";
        let f = lint_source("crates/sim/src/par.rs", clock);
        assert_eq!(rules_of(&f), vec![Rule::R2]);
        let rng = "fn h() { let mut r = thread_rng(); }\n";
        let f = lint_source("crates/sim/src/par.rs", rng);
        assert_eq!(rules_of(&f), vec![Rule::R2]);
    }

    #[test]
    fn parallel_engine_carve_out_does_not_leak_to_neighbours() {
        // Seeded violation: the exemption is the one file, not the crate —
        // a thread token in any sibling sim source still fires R2.
        let src = "fn t() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        for rel in [
            "crates/sim/src/engine.rs",
            "crates/sim/src/pars.rs",
            "crates/sim/tests/par.rs",
        ] {
            let f = lint_source(rel, src);
            assert!(
                f.iter().any(|x| x.rule == Rule::R2),
                "{rel} must still be under R2's thread ban: {f:?}"
            );
        }
    }

    #[test]
    fn r5_allow_with_justification_suppresses() {
        let src = "// detlint: allow(R5): spawns a watchdog outside any simulation\nfn go() { std::thread::spawn(|| {}); }\n";
        assert!(lint_source("crates/apps/src/x.rs", src).is_empty());
    }

    // ----- plumbing ---------------------------------------------------

    #[test]
    fn json_report_shape() {
        let f = vec![Finding {
            file: "a/b.rs".into(),
            line: 3,
            rule: Rule::R1,
            message: "say \"hi\"".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"rule\": \"R1\""));
        assert!(j.contains("say \\\"hi\\\""));
        assert!(to_json(&[]).contains("\"count\": 0"));
    }

    /// The linter must hold on the workspace it ships in: this is the test
    /// that makes `cargo test -q` enforce R1–R10 forever.
    #[test]
    fn workspace_is_clean() {
        let findings = lint_workspace(&default_root()).expect("workspace readable");
        assert!(
            findings.is_empty(),
            "detlint found {} violation(s):\n{}",
            findings.len(),
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
