//! Approximate, name-based call graph for rule R4 (dead protocol code).
//!
//! Precision model: functions are identified by bare name, so two functions
//! sharing a name are merged. That makes reachability an *over*-approximation
//! — a colliding name keeps both alive — which is the right direction for a
//! linter: R4 never flags a function that is actually called, at the cost of
//! occasionally missing a dead one. Dynamic dispatch needs no special
//! handling for the same reason: `obj.handle(x)` contributes the edge
//! `handle` no matter which impl runs.

use std::collections::{BTreeMap, BTreeSet};

use crate::scrub::Line;
use crate::tok::{is_ident, tokenize, KEYWORDS};

/// One `fn` item found in a scrubbed file.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether the parameter list contains `&mut self`.
    pub takes_mut_self: bool,
    /// Whether the definition sits in a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Names called (idents immediately followed by `(`) inside the body.
    pub callees: BTreeSet<String>,
}

/// Extracts every `fn` definition (with body) from a scrubbed file.
pub fn extract_fns(lines: &[Line]) -> Vec<FnDef> {
    let toks = tokenize(lines);
    let in_test_at = |line_1based: usize| lines[line_1based - 1].in_test;
    let mut defs = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" || i + 1 >= toks.len() || !is_ident(&toks[i + 1].text) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;

        // Visibility: scan a few tokens back for `pub`, stopping at item
        // boundaries. Covers `pub`, `pub(crate)`, `pub const unsafe fn`.
        let mut is_pub = false;
        for k in (i.saturating_sub(8)..i).rev() {
            match toks[k].text.as_str() {
                "pub" => {
                    is_pub = true;
                    break;
                }
                ";" | "}" | "{" => break,
                _ => {}
            }
        }

        // Parameter list: the parenthesized group right after the name
        // (skipping generics `<...>`).
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle <= 0 => break,
                "{" | ";" => break, // malformed; bail to item scan
                _ => {}
            }
            j += 1;
        }
        let mut takes_mut_self = false;
        if j < toks.len() && toks[j].text == "(" {
            let mut depth = 0i32;
            let start = j;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            takes_mut_self = toks[start..=j.min(toks.len() - 1)]
                .windows(3)
                .any(|w| w[0].text == "&" && w[1].text == "mut" && w[2].text == "self");
        }

        // Body: next `{` before a `;` at this level; trait signatures end
        // with `;` and have no body.
        let mut body_callees = BTreeSet::new();
        let mut k = j;
        let mut has_body = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    has_body = true;
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
            if has_body {
                break;
            }
        }
        if has_body {
            let mut depth = 0i32;
            let mut m = k;
            while m < toks.len() {
                match toks[m].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            let end = m.min(toks.len()).saturating_sub(1);
            for w in k..end {
                let t = &toks[w].text;
                if is_ident(t)
                    && !KEYWORDS.contains(&t.as_str())
                    && toks[w + 1].text == "("
                {
                    body_callees.insert(t.clone());
                }
            }
        }

        defs.push(FnDef {
            name,
            line,
            is_pub,
            takes_mut_self,
            in_test: in_test_at(line),
            callees: body_callees,
        });
        // Continue scanning *inside* the body too, so nested/test-module fns
        // are extracted as their own definitions.
        i += 2;
    }
    defs
}

/// Computes the set of function names reachable from the given seed names by
/// closure over the merged name → callees map.
pub fn reachable(defs_by_name: &BTreeMap<String, BTreeSet<String>>, seeds: &BTreeSet<String>) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = seeds.clone();
    let mut frontier: Vec<String> = seeds.iter().cloned().collect();
    while let Some(name) = frontier.pop() {
        if let Some(callees) = defs_by_name.get(&name) {
            for c in callees {
                if seen.insert(c.clone()) {
                    frontier.push(c.clone());
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn defs(src: &str) -> Vec<FnDef> {
        extract_fns(&scrub(src))
    }

    #[test]
    fn finds_pub_mut_self_methods() {
        let src = "impl Foo {\n  pub fn poke(&mut self, x: u8) { self.bump(); }\n  fn quiet(&self) {}\n}";
        let d = defs(src);
        let poke = d.iter().find(|f| f.name == "poke").expect("poke found");
        assert!(poke.is_pub && poke.takes_mut_self);
        assert!(poke.callees.contains("bump"));
        let quiet = d.iter().find(|f| f.name == "quiet").expect("quiet found");
        assert!(!quiet.is_pub && !quiet.takes_mut_self);
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let d = defs("trait T {\n  fn sig(&mut self);\n  fn with_default(&self) { helper() }\n}");
        assert!(d.iter().any(|f| f.name == "sig" && f.callees.is_empty()));
        assert!(d
            .iter()
            .any(|f| f.name == "with_default" && f.callees.contains("helper")));
    }

    #[test]
    fn generics_do_not_hide_mut_self() {
        let d = defs("impl S {\n  pub fn go<F: Fn(u8) -> u8>(&mut self, f: F) {}\n}");
        assert!(d[0].takes_mut_self);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { target(); }\n}\npub fn target(&mut self) {}";
        let d = defs(src);
        assert!(d.iter().find(|f| f.name == "t").expect("t").in_test);
        assert!(!d.iter().find(|f| f.name == "target").expect("target").in_test);
    }

    #[test]
    fn reachability_closes_transitively() {
        let mut g: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        g.insert("a".into(), ["b"].iter().map(|s| s.to_string()).collect());
        g.insert("b".into(), ["c"].iter().map(|s| s.to_string()).collect());
        g.insert("d".into(), BTreeSet::new());
        let seeds: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        let r = reachable(&g, &seeds);
        assert!(r.contains("c"));
        assert!(!r.contains("d"));
    }
}
