//! Shared token stream over scrubbed source lines.
//!
//! Both the call-graph pass (R4) and the flow analyses (R6–R9) work on the
//! same representation: identifiers kept whole, every other non-whitespace
//! character emitted as a single-char token, each token carrying its 1-based
//! source line. Multi-char operators (`::`, `=>`) therefore arrive as
//! adjacent single-char tokens; the consumers match on those pairs.

use crate::scrub::Line;

/// One token of scrubbed code.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Identifier text or a single punctuation character.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

/// Keywords excluded when harvesting identifier-like callees/paths.
pub const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "move", "in",
    "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "self", "Self", "super",
    "crate", "const", "static", "type", "as", "dyn", "ref", "break", "continue", "unsafe",
    "async", "await", "true", "false",
];

/// Splits scrubbed lines into identifier and punctuation tokens.
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut cur = String::new();
        for c in line.code.chars() {
            if c.is_alphanumeric() || c == '_' {
                cur.push(c);
            } else {
                if !cur.is_empty() {
                    out.push(Token { text: std::mem::take(&mut cur), line: idx + 1 });
                }
                if !c.is_whitespace() {
                    out.push(Token { text: c.to_string(), line: idx + 1 });
                }
            }
        }
        if !cur.is_empty() {
            out.push(Token { text: cur, line: idx + 1 });
        }
    }
    out
}

/// True when the token text is an identifier (starts with a letter or `_`).
pub fn is_ident(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Walks a `A::B::C` path chain starting at token `i` (which must be an
/// ident) and returns the segment texts plus the index just past the chain.
/// A lone ident returns a one-element chain.
pub fn path_chain(toks: &[Token], i: usize) -> (Vec<&str>, usize) {
    let mut segs = vec![toks[i].text.as_str()];
    let mut j = i + 1;
    while j + 2 < toks.len()
        && toks[j].text == ":"
        && toks[j + 1].text == ":"
        && is_ident(&toks[j + 2].text)
    {
        segs.push(toks[j + 2].text.as_str());
        j += 3;
    }
    (segs, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    #[test]
    fn tokens_carry_lines_and_split_paths() {
        let t = tokenize(&scrub("a::b(x);\nfoo"));
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", ":", ":", "b", "(", "x", ")", ";", "foo"]);
        assert_eq!(t[0].line, 1);
        assert_eq!(t[8].line, 2);
    }

    #[test]
    fn path_chain_walks_segments() {
        let t = tokenize(&scrub("isis_core::CastKind::Total, next"));
        let (segs, end) = path_chain(&t, 0);
        assert_eq!(segs, ["isis_core", "CastKind", "Total"]);
        assert_eq!(t[end].text, ",");
    }
}
