//! Wire-schema parity (rule R8): the `Wire` codec in `crates/net` must
//! name every variant of every enum it serializes, on both the encode and
//! the decode side.
//!
//! The failure mode this closes is silent: `encode` matches on `self`, so
//! a new variant without an encode arm is a compile error — but `decode`
//! matches on a *tag byte* with a `t => Err(BadTag)` catch-all, so a
//! missing decode arm compiles cleanly and every message of the new kind
//! is rejected at the far end of a socket. R8 cross-checks each
//! `impl Wire for E` against `E`'s definition: every variant needs a
//! reference in the encode body *and* in the decode body, and neither side
//! may name a variant the enum no longer has.

use std::collections::BTreeSet;

use crate::flow::{extract_enums, EnumDef};
use crate::scrub::scrub;
use crate::tok::{is_ident, path_chain, tokenize, Token};
use crate::{Finding, Rule, SourceFile};

/// Where `Wire` impls live.
const WIRE_SCOPE: &str = "crates/net/";

/// One `impl Wire for T` block with its per-method variant references.
#[derive(Clone, Debug)]
pub struct WireImpl {
    /// The implementing type's name (generics stripped).
    pub type_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// 1-based line of `fn encode` (or the impl line if absent).
    pub encode_line: usize,
    /// 1-based line of `fn decode` (or the impl line if absent).
    pub decode_line: usize,
    /// `Self::X` / `TypeName::X` variant names referenced in `encode`.
    pub encode_refs: BTreeSet<String>,
    /// Same for `decode`.
    pub decode_refs: BTreeSet<String>,
}

/// Collects variant names referenced as `Self::X` or `<type>::X` between
/// token indices `[start, end)`.
fn self_refs(toks: &[Token], type_name: &str, start: usize, end: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if !is_ident(&toks[i].text) {
            i += 1;
            continue;
        }
        let (segs, next) = path_chain(toks, i);
        if segs.len() >= 2 {
            let base = segs[segs.len() - 2];
            let leaf = segs[segs.len() - 1];
            if (base == "Self" || base == type_name)
                && leaf.chars().next().is_some_and(|c| c.is_uppercase())
            {
                out.insert(leaf.to_string());
            }
        }
        i = next.max(i + 1);
    }
    out
}

/// Returns the index just past the brace group opening at `open` (which
/// must point at a `{`).
fn skip_braces(toks: &[Token], open: usize) -> usize {
    let mut d = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => d += 1,
            "}" => {
                d -= 1;
                if d == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Extracts every `impl … Wire for T { … }` block from one file.
pub fn extract_wire_impls(rel: &str, source: &str) -> Vec<WireImpl> {
    let lines = scrub(source);
    let toks = tokenize(&lines);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "impl" {
            i += 1;
            continue;
        }
        let impl_line = toks[i].line;
        // Scan the header to `{`, tracking the last depth-0 ident before
        // `for` (the trait) and the first ident after it (the type).
        let mut angle = 0i32;
        let mut j = i + 1;
        let mut trait_name: Option<String> = None;
        let mut type_name: Option<String> = None;
        let mut seen_for = false;
        while j < toks.len() {
            let t = toks[j].text.as_str();
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => break, // `impl T {}`-less forms; bail
                "for" if angle == 0 => seen_for = true,
                _ if angle == 0 && is_ident(t) => {
                    if seen_for {
                        if type_name.is_none() {
                            type_name = Some(t.to_string());
                        }
                    } else {
                        trait_name = Some(t.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            i += 1;
            continue;
        }
        let body_end = skip_braces(&toks, j);
        if trait_name.as_deref() != Some("Wire") {
            i += 1; // scan inside too: impls never nest in this tree
            continue;
        }
        let Some(type_name) = type_name else {
            // `impl Wire for (A, B)` and friends carry no variants.
            i = body_end;
            continue;
        };
        // Locate `fn encode` / `fn decode` bodies inside the impl.
        let mut enc = (impl_line, BTreeSet::new());
        let mut dec = (impl_line, BTreeSet::new());
        let mut k = j + 1;
        while k + 1 < body_end {
            if toks[k].text == "fn" && is_ident(&toks[k + 1].text) {
                let fname = toks[k + 1].text.clone();
                let fline = toks[k].line;
                // Find the fn body's `{` (signatures can hold `{` only in
                // default generics, which the codec does not use).
                let mut m = k + 2;
                while m < body_end && toks[m].text != "{" && toks[m].text != ";" {
                    m += 1;
                }
                if m < body_end && toks[m].text == "{" {
                    let fn_end = skip_braces(&toks, m);
                    let refs = self_refs(&toks, &type_name, m, fn_end);
                    match fname.as_str() {
                        "encode" => enc = (fline, refs),
                        "decode" => dec = (fline, refs),
                        _ => {}
                    }
                    k = fn_end;
                    continue;
                }
            }
            k += 1;
        }
        out.push(WireImpl {
            type_name,
            file: rel.to_string(),
            line: impl_line,
            encode_line: enc.0,
            decode_line: dec.0,
            encode_refs: enc.1,
            decode_refs: dec.1,
        });
        i = body_end;
    }
    out
}

/// All `Wire` impls in the net crate.
pub fn collect_wire_impls(files: &[SourceFile]) -> Vec<WireImpl> {
    let mut out = Vec::new();
    for f in files {
        if f.rel.starts_with(WIRE_SCOPE) {
            out.extend(extract_wire_impls(&f.rel, &f.text));
        }
    }
    out
}

/// All non-test enum definitions in the workspace, for parity lookup.
pub fn collect_enum_defs(files: &[SourceFile]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    for f in files {
        let lines = scrub(&f.text);
        out.extend(
            extract_enums(&f.rel, &lines)
                .into_iter()
                .filter(|e| !lines[e.line - 1].in_test),
        );
    }
    out
}

/// Runs R8 over the whole file set. Findings are raw (allow directives are
/// applied by the caller).
pub fn lint_wire_parity(files: &[SourceFile]) -> Vec<Finding> {
    let impls = collect_wire_impls(files);
    let enums = collect_enum_defs(files);
    let mut out = Vec::new();
    for im in &impls {
        let def = enums.iter().find(|e| e.name == im.type_name);
        let refs_any = !im.encode_refs.is_empty() || !im.decode_refs.is_empty();
        let Some(def) = def else {
            if refs_any {
                out.push(Finding {
                    file: im.file.clone(),
                    line: im.line,
                    rule: Rule::R8,
                    message: format!(
                        "`impl Wire for {}` names variants but no enum of that name \
                         exists in the workspace — stale codec",
                        im.type_name
                    ),
                });
            }
            continue;
        };
        if !refs_any {
            // A struct (or an enum encoded without naming variants, which
            // the codec style forbids) — parity has nothing to check.
            if !def.variants.is_empty() {
                out.push(Finding {
                    file: im.file.clone(),
                    line: im.line,
                    rule: Rule::R8,
                    message: format!(
                        "`impl Wire for {}` serializes an enum without naming any \
                         variant — tag arms must be explicit so R8 can audit them",
                        im.type_name
                    ),
                });
            }
            continue;
        }
        let variants: BTreeSet<&str> = def.variants.iter().map(|(n, _)| n.as_str()).collect();
        for v in &variants {
            if !im.encode_refs.contains(*v) {
                out.push(Finding {
                    file: im.file.clone(),
                    line: im.encode_line,
                    rule: Rule::R8,
                    message: format!(
                        "wire schema drift: `{}::{v}` ({}:{}) has no encode arm",
                        im.type_name, def.file, def.line
                    ),
                });
            }
            if !im.decode_refs.contains(*v) {
                out.push(Finding {
                    file: im.file.clone(),
                    line: im.decode_line,
                    rule: Rule::R8,
                    message: format!(
                        "wire schema drift: `{}::{v}` ({}:{}) has no decode arm — \
                         peers would reject it as BadTag",
                        im.type_name, def.file, def.line
                    ),
                });
            }
        }
        for r in im.encode_refs.union(&im.decode_refs) {
            if !variants.contains(r.as_str()) {
                out.push(Finding {
                    file: im.file.clone(),
                    line: im.line,
                    rule: Rule::R8,
                    message: format!(
                        "wire schema drift: codec names `{}::{r}` but the enum has no \
                         such variant",
                        im.type_name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(rel: &str, text: &str) -> SourceFile {
        SourceFile { rel: rel.to_string(), text: text.to_string() }
    }

    const ENUM_DEF: &str = "pub enum TinyMsg { A, B(u8) }\n";

    #[test]
    fn parity_holds_for_a_complete_codec() {
        let codec = "impl Wire for TinyMsg {\n  fn encode(&self, out: &mut Vec<u8>) {\n    match self {\n      TinyMsg::A => out.push(0),\n      TinyMsg::B(x) => { out.push(1); x.encode(out); }\n    }\n  }\n  fn decode(r: &mut WireReader) -> Result<Self, CodecError> {\n    Ok(match r.u8()? {\n      0 => Self::A,\n      1 => Self::B(u8::decode(r)?),\n      _t => return Err(CodecError::BadTag),\n    })\n  }\n}\n";
        let files = [sf("crates/core/src/msg.rs", ENUM_DEF), sf("crates/net/src/wire.rs", codec)];
        assert!(lint_wire_parity(&files).is_empty());
    }

    #[test]
    fn missing_decode_arm_is_flagged_at_the_decode_fn() {
        let codec = "impl Wire for TinyMsg {\n  fn encode(&self, out: &mut Vec<u8>) {\n    match self {\n      TinyMsg::A => out.push(0),\n      TinyMsg::B(x) => { out.push(1); x.encode(out); }\n    }\n  }\n  fn decode(r: &mut WireReader) -> Result<Self, CodecError> {\n    Ok(match r.u8()? {\n      0 => Self::A,\n      _t => return Err(CodecError::BadTag),\n    })\n  }\n}\n";
        let files = [sf("crates/core/src/msg.rs", ENUM_DEF), sf("crates/net/src/wire.rs", codec)];
        let f = lint_wire_parity(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::R8);
        assert_eq!(f[0].line, 8); // the `fn decode` line
        assert!(f[0].message.contains("TinyMsg::B"));
    }

    #[test]
    fn codec_arm_for_removed_variant_is_flagged() {
        let codec = "impl Wire for TinyMsg {\n  fn encode(&self, out: &mut Vec<u8>) {\n    match self { TinyMsg::A => out.push(0), TinyMsg::B(_) => out.push(1), TinyMsg::Gone => out.push(2) }\n  }\n  fn decode(r: &mut WireReader) -> Result<Self, CodecError> {\n    Ok(match r.u8()? { 0 => Self::A, 1 => Self::B(0), 2 => Self::Gone, _ => return Err(CodecError::BadTag) })\n  }\n}\n";
        let files = [sf("crates/core/src/msg.rs", ENUM_DEF), sf("crates/net/src/wire.rs", codec)];
        let f = lint_wire_parity(&files);
        assert!(f.iter().any(|x| x.message.contains("no such variant")), "{f:?}");
    }

    #[test]
    fn struct_impls_are_exempt() {
        let codec = "impl Wire for Pid {\n  fn encode(&self, out: &mut Vec<u8>) { self.0.encode(out) }\n  fn decode(r: &mut WireReader) -> Result<Self, CodecError> { Ok(Pid(u32::decode(r)?)) }\n}\nimpl<A: Wire, B: Wire> Wire for (A, B) {\n  fn encode(&self, out: &mut Vec<u8>) { self.0.encode(out); self.1.encode(out) }\n  fn decode(r: &mut WireReader) -> Result<Self, CodecError> { Ok((A::decode(r)?, B::decode(r)?)) }\n}\n";
        let files = [
            sf("crates/core/src/ids.rs", "pub struct Pid(pub u32);\n"),
            sf("crates/net/src/wire.rs", codec),
        ];
        assert!(lint_wire_parity(&files).is_empty());
    }
}
