//! Seeded-violation self-tests for the flow rules (R6–R10), plus pins on
//! what the analyzers actually see in the real workspace.
//!
//! Each rule gets a fixture with one injected violation and an assertion
//! on rule + file + line — so a future parser refactor that quietly stops
//! matching anything fails here, not in production drift. The pin tests
//! close the other hole: `workspace_is_clean` proves there are no
//! findings, these prove the analyzers are *looking at the right things*
//! (a checker that parses zero enums is also "clean").

use detlint::flow::is_flow_enum_name;
use detlint::threads::net_topology;
use detlint::wireparity::{collect_enum_defs, collect_wire_impls};
use detlint::{collect_workspace, default_root, lint_files, Finding, Rule, SourceFile};

fn sf(rel: &str, text: &str) -> SourceFile {
    SourceFile { rel: rel.to_string(), text: text.to_string() }
}

fn only(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- R6 ----

#[test]
fn r6_seeded_wildcard_fires_with_span() {
    let fixture = sf(
        "crates/hier/src/seeded.rs",
        "pub enum SeedMsg { Ping, Pong }\n\
         fn handle(m: &SeedMsg) {\n\
         \x20 match m {\n\
         \x20   SeedMsg::Ping => reply(),\n\
         \x20   _ => {}\n\
         \x20 }\n\
         }\n\
         fn mk() { send(SeedMsg::Ping); send(SeedMsg::Pong); }\n\
         fn h2(m: &SeedMsg) { if let SeedMsg::Pong = m { on_pong(); } }\n",
    );
    let f = lint_files(std::slice::from_ref(&fixture));
    let r6 = only(&f, Rule::R6);
    assert_eq!(r6.len(), 1, "{f:?}");
    assert_eq!(r6[0].file, "crates/hier/src/seeded.rs");
    assert_eq!(r6[0].line, 5, "the `_ =>` arm line");
    assert!(r6[0].message.contains("SeedMsg"));
}

#[test]
fn r6_named_binding_is_the_sanctioned_alternative() {
    let fixture = sf(
        "crates/hier/src/seeded.rs",
        "pub enum SeedMsg { Ping, Pong }\n\
         fn handle(m: SeedMsg) {\n\
         \x20 match m {\n\
         \x20   SeedMsg::Ping => reply(),\n\
         \x20   other => trace_unhandled(other),\n\
         \x20 }\n\
         }\n\
         fn mk() { send(SeedMsg::Ping); send(SeedMsg::Pong); }\n\
         fn h2(m: &SeedMsg) { if let SeedMsg::Pong = m { on_pong(); } }\n",
    );
    let f = lint_files(&[fixture]);
    assert!(only(&f, Rule::R6).is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- R7 ----

#[test]
fn r7_seeded_dead_surface_fires_with_spans() {
    let fixture = sf(
        "crates/core/src/seeded.rs",
        "pub enum SeedMsg {\n\
         \x20 Used,\n\
         \x20 NeverConstructed,\n\
         \x20 NeverHandled,\n\
         }\n\
         fn handle(m: SeedMsg) {\n\
         \x20 match m {\n\
         \x20   SeedMsg::Used => {}\n\
         \x20   SeedMsg::NeverConstructed => {}\n\
         \x20 }\n\
         }\n\
         fn mk() { send(SeedMsg::Used); send(SeedMsg::NeverHandled); }\n",
    );
    let f = lint_files(std::slice::from_ref(&fixture));
    let r7 = only(&f, Rule::R7);
    assert_eq!(r7.len(), 2, "{f:?}");
    let never_made = r7.iter().find(|x| x.message.contains("NeverConstructed")).expect("flagged");
    assert_eq!((never_made.file.as_str(), never_made.line), ("crates/core/src/seeded.rs", 3));
    assert!(never_made.message.contains("never constructed"));
    let never_read = r7.iter().find(|x| x.message.contains("NeverHandled")).expect("flagged");
    assert_eq!(never_read.line, 4);
    assert!(never_read.message.contains("never named in any pattern"));
}

// ---------------------------------------------------------------- R8 ----

const SEED_ENUM: &str = "pub enum SeedMsg { A, B }\n";

#[test]
fn r8_seeded_missing_decode_arm_fires_at_decode_fn() {
    let msg = sf("crates/core/src/seeded.rs", SEED_ENUM);
    let codec = sf(
        "crates/net/src/wire.rs",
        "impl Wire for SeedMsg {\n\
         \x20 fn encode(&self, out: &mut Vec<u8>) {\n\
         \x20   match self {\n\
         \x20     SeedMsg::A => out.push(0),\n\
         \x20     SeedMsg::B => out.push(1),\n\
         \x20   }\n\
         \x20 }\n\
         \x20 fn decode(r: &mut WireReader) -> Result<Self, CodecError> {\n\
         \x20   Ok(match r.u8()? {\n\
         \x20     0 => Self::A,\n\
         \x20     _t => return Err(CodecError::BadTag),\n\
         \x20   })\n\
         \x20 }\n\
         }\n",
    );
    let f = lint_files(&[msg, codec]);
    let r8 = only(&f, Rule::R8);
    assert_eq!(r8.len(), 1, "{f:?}");
    assert_eq!(r8[0].file, "crates/net/src/wire.rs");
    assert_eq!(r8[0].line, 8, "the `fn decode` line");
    assert!(r8[0].message.contains("SeedMsg::B"));
    assert!(r8[0].message.contains("decode"));
}

#[test]
fn r8_seeded_missing_encode_arm_fires_at_encode_fn() {
    let msg = sf("crates/core/src/seeded.rs", SEED_ENUM);
    let codec = sf(
        "crates/net/src/wire.rs",
        "impl Wire for SeedMsg {\n\
         \x20 fn encode(&self, out: &mut Vec<u8>) {\n\
         \x20   match self { SeedMsg::A => out.push(0), SeedMsg::B => out.push(1) }\n\
         \x20 }\n\
         \x20 fn decode(r: &mut WireReader) -> Result<Self, CodecError> {\n\
         \x20   Ok(match r.u8()? { 0 => Self::A, 1 => Self::B, _ => return Err(CodecError::BadTag) })\n\
         \x20 }\n\
         }\n",
    );
    // Baseline: complete codec is clean.
    let clean = lint_files(&[msg.clone(), codec]);
    assert!(only(&clean, Rule::R8).is_empty(), "{clean:?}");
    // Now grow the enum without touching the codec: both sides must fire.
    let grown = sf("crates/core/src/seeded.rs", "pub enum SeedMsg { A, B, C }\n");
    let codec = sf(
        "crates/net/src/wire.rs",
        "impl Wire for SeedMsg {\n\
         \x20 fn encode(&self, out: &mut Vec<u8>) {\n\
         \x20   match self { SeedMsg::A => out.push(0), SeedMsg::B => out.push(1) }\n\
         \x20 }\n\
         \x20 fn decode(r: &mut WireReader) -> Result<Self, CodecError> {\n\
         \x20   Ok(match r.u8()? { 0 => Self::A, 1 => Self::B, _ => return Err(CodecError::BadTag) })\n\
         \x20 }\n\
         }\n",
    );
    let f = lint_files(&[grown, codec]);
    let r8 = only(&f, Rule::R8);
    assert_eq!(r8.len(), 2, "one per missing side: {f:?}");
    assert!(r8.iter().any(|x| x.line == 2 && x.message.contains("no encode arm")));
    assert!(r8.iter().any(|x| x.line == 5 && x.message.contains("no decode arm")));
}

// ---------------------------------------------------------------- R9 ----

#[test]
fn r9_seeded_lock_in_net_fires_with_span() {
    let fixture = sf(
        "crates/net/src/seeded.rs",
        "use std::sync::mpsc;\n\
         fn share() {\n\
         \x20 let shared = std::sync::Mutex::new(Vec::new());\n\
         }\n",
    );
    let f = lint_files(std::slice::from_ref(&fixture));
    let r9 = only(&f, Rule::R9);
    assert_eq!(r9.len(), 1, "{f:?}");
    assert_eq!((r9[0].file.as_str(), r9[0].line), ("crates/net/src/seeded.rs", 3));
    assert!(r9[0].message.contains("Mutex"));
}

// --------------------------------------------------------------- R10 ----

#[test]
fn r10_stale_allow_fires_and_live_allow_does_not() {
    // Stale: the directive guards a line with nothing to suppress.
    let stale = sf(
        "crates/core/src/seeded.rs",
        "// detlint: allow(R3): popped right after a non-empty check\n\
         fn quiet() {}\n",
    );
    let f = lint_files(std::slice::from_ref(&stale));
    let r10 = only(&f, Rule::R10);
    assert_eq!(r10.len(), 1, "{f:?}");
    assert_eq!((r10[0].file.as_str(), r10[0].line), ("crates/core/src/seeded.rs", 1));
    assert!(r10[0].message.contains("stale"));

    // Live: the same directive suppressing a real R1 finding is not stale.
    let live = sf(
        "crates/sim/src/seeded.rs",
        "// detlint: allow(R1): ordering re-established by the sort below\n\
         use std::collections::HashMap;\n",
    );
    let f = lint_files(&[live]);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r10_unknown_rule_and_prose_mentions() {
    let unknown = sf(
        "crates/core/src/seeded.rs",
        "// detlint: allow(R42): rules from the future\nfn quiet() {}\n",
    );
    let f = lint_files(std::slice::from_ref(&unknown));
    let r10 = only(&f, Rule::R10);
    assert_eq!(r10.len(), 1, "{f:?}");
    assert!(r10[0].message.contains("unknown rule `R42`"));

    // Doc prose *mentioning* the syntax is not a directive.
    let prose = sf(
        "crates/core/src/seeded.rs",
        "//! Suppress with `// detlint: allow(R1): <reason>` on the line above.\nfn quiet() {}\n",
    );
    assert!(lint_files(&[prose]).is_empty());
}

#[test]
fn r10_bare_allow_counts_as_used_but_still_reports_missing_justification() {
    let bare = sf(
        "crates/sim/src/seeded.rs",
        "use std::collections::HashMap; // detlint: allow(R1)\n",
    );
    let f = lint_files(std::slice::from_ref(&bare));
    // Exactly one finding: the bare-allow complaint — not an extra R10.
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, Rule::R1);
    assert!(f[0].message.contains("justification"));
}

// ------------------------------------------------- workspace pins -------

#[test]
fn pin_flow_analyzer_sees_the_protocol_enums() {
    let files = collect_workspace(&default_root()).expect("workspace readable");
    let enums = collect_enum_defs(&files);
    for (name, want_variants) in [
        ("IsisMsg", 13),
        ("HierPayload", 4),
        ("TreeMsg", 6),
        ("CtlMsg", 12),
        ("LeaderCmd", 6),
        ("NameMsg", 4),
        ("HSvcMsg", 14),
    ] {
        assert!(is_flow_enum_name(name));
        let def = enums
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("enum {name} not found by the flow parser"));
        assert_eq!(def.variants.len(), want_variants, "{name} variant count");
    }
}

#[test]
fn pin_wire_parity_covers_the_codec_stack() {
    let files = collect_workspace(&default_root()).expect("workspace readable");
    let impls = collect_wire_impls(&files);
    // The full protocol stack: top-level message, the hier payload, every
    // nested payload enum, and the enum-ish leaf codecs.
    for name in [
        "IsisMsg", "HierPayload", "TreeMsg", "CtlMsg", "LeaderCmd", "CastKind", "LbcastStatus",
        "HierState",
    ] {
        let im = impls
            .iter()
            .find(|i| i.type_name == name)
            .unwrap_or_else(|| panic!("no Wire impl found for {name}"));
        assert!(
            !im.encode_refs.is_empty() && !im.decode_refs.is_empty(),
            "{name}: parity check would be vacuous (encode {:?} / decode {:?})",
            im.encode_refs,
            im.decode_refs
        );
    }
}

#[test]
fn pin_net_thread_topology_shape() {
    let files = collect_workspace(&default_root()).expect("workspace readable");
    let topo = net_topology(&files);
    let daemon_spawns: Vec<_> =
        topo.spawns.iter().filter(|s| s.file.ends_with("daemon.rs")).collect();
    // Core thread, accept loop, per-connection readers, per-peer writers.
    assert!(daemon_spawns.len() >= 4, "{daemon_spawns:?}");
    assert!(
        topo.channels.iter().filter(|c| c.file.ends_with("daemon.rs")).count() >= 3,
        "{:?}",
        topo.channels
    );
    assert!(!topo.atomics.is_empty());
    // Shared-by-reference state is atomics or immutable data — never locks.
    for arc in &topo.arcs {
        assert!(
            !arc.inner.contains("Mutex") && !arc.inner.contains("RwLock"),
            "lock smuggled through Arc: {arc:?}"
        );
    }
}

/// The acceptance check in executable form: all ten rules, zero findings.
#[test]
fn workspace_clean_under_all_ten_rules() {
    let files = collect_workspace(&default_root()).expect("workspace readable");
    let findings = lint_files(&files);
    assert!(
        findings.is_empty(),
        "{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(Rule::ALL.len(), 10);
}
