//! Wire payloads of the hierarchical layer.
//!
//! The hierarchy rides on `isis-core` as an application: every message here
//! travels either as a direct point-to-point payload or inside an intra-
//! group broadcast of a leaf or leader group.

use now_sim::Pid;

use isis_core::{GroupId, MsgId};

use crate::ids::{LargeGroupId, LbcastId};
use crate::view::HierView;

/// The payload type of the hierarchical layer, generic over the business
/// payload `Q`.
#[derive(Clone, Debug)]
pub enum HierPayload<Q> {
    /// Business traffic (intra-leaf casts and direct messages).
    Biz(Q),
    /// Tree-broadcast protocol traffic.
    Tree(TreeMsg<Q>),
    /// Hierarchy control plane.
    Ctl(CtlMsg),
    /// Replicated command stream of a leader group (delivered by ABCAST
    /// within the leader group only).
    Cmd(LeaderCmd),
}

/// Messages of the multistage ("tree-structured") atomic broadcast — our
/// implementation of the algorithm the paper cites as [Cooper & Birman,
/// "A Large Scale Atomic Broadcast Algorithm", in preparation].
#[derive(Clone, Debug)]
pub enum TreeMsg<Q> {
    /// An origin member submits a broadcast; the message climbs the tree
    /// (member → its leaf representative → parent representatives → root).
    Submit {
        lgid: LargeGroupId,
        id: LbcastId,
        payload: Q,
    },
    /// Down-tree forwarding of a broadcast stamped with its global
    /// sequence number by the root.
    Forward {
        lgid: LargeGroupId,
        epoch: u64,
        lseq: u64,
        id: LbcastId,
        payload: Q,
    },
    /// Intra-leaf distribution: ABCAST within one leaf carrying the
    /// stamped broadcast to every leaf member. In the root leaf, `ack_to`
    /// asks each member for a [`TreeMsg::MemberAck`] so the root can count
    /// the paper's `resiliency` acknowledgements.
    LeafDeliver {
        lgid: LargeGroupId,
        epoch: u64,
        lseq: u64,
        id: LbcastId,
        ack_to: Option<Pid>,
        payload: Q,
    },
    /// A root-leaf member acknowledges delivery of one broadcast.
    MemberAck { lgid: LargeGroupId, lseq: u64 },
    /// A child representative reports its whole subtree delivered.
    SubtreeAck {
        lgid: LargeGroupId,
        epoch: u64,
        lseq: u64,
        /// The acking leaf (parents track pending children by gid).
        leaf: GroupId,
    },
    /// Root → origin: broadcast progress.
    OriginAck {
        lgid: LargeGroupId,
        id: LbcastId,
        status: LbcastStatus,
    },
}

/// Progress of one large-group broadcast, as reported to its origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LbcastStatus {
    /// At least `resiliency` processes acknowledged delivery: the paper's
    /// success condition ("the process initiating a broadcast must receive
    /// acknowledgements from at least resiliency destinations before
    /// reporting success").
    Resilient,
    /// Every leaf's subtree acknowledged: the broadcast is complete.
    Complete,
}

/// Control-plane messages of the hierarchy.
#[derive(Clone, Debug)]
pub enum CtlMsg {
    /// Non-member → leader group: admit me to the large group.
    JoinLargeReq { lgid: LargeGroupId },
    /// Leader → joiner: join this existing leaf via its contacts.
    JoinAssign {
        lgid: LargeGroupId,
        leaf: GroupId,
        contacts: Vec<Pid>,
    },
    /// Leader → joiner: found this brand-new leaf (you are its creator).
    JoinCreateLeaf { lgid: LargeGroupId, leaf: GroupId },
    /// Leader → requester: the large group is not known here.
    JoinLargeDenied { lgid: LargeGroupId },
    /// Leaf representative → leader: my leaf's membership is now this.
    ContactsUpdate {
        lgid: LargeGroupId,
        leaf: GroupId,
        contacts: Vec<Pid>,
        size: usize,
    },
    /// Parent representative → leader: a child leaf has gone silent
    /// (total leaf failure — "only the parent group is informed").
    LeafDeadReport { lgid: LargeGroupId, leaf: GroupId },
    /// Leader → root rep → down the tree: the new structure. Each rep
    /// stores only its own routing slice and, when `propagate` is set,
    /// forwards the view onward; targeted refreshes clear the flag so a
    /// contact change costs only its neighbourhood.
    HierPush { view: HierView, propagate: bool },
    /// Leader → leaf rep: split your leaf; the rep picks the movers (only
    /// it knows the full membership) and they found `new_leaf`.
    SplitLeaf {
        lgid: LargeGroupId,
        leaf: GroupId,
        new_leaf: GroupId,
    },
    /// Intra-leaf (ABCAST): the agreed split decision. Carries current
    /// leader contacts so movers can report their new leaf even if their
    /// original contact has failed.
    DoSplit {
        lgid: LargeGroupId,
        new_leaf: GroupId,
        movers: Vec<Pid>,
        leader_contacts: Vec<Pid>,
    },
    /// Leader → leaf rep: dissolve your undersized leaf into `target`.
    DissolveLeaf {
        lgid: LargeGroupId,
        leaf: GroupId,
        target: GroupId,
        target_contacts: Vec<Pid>,
    },
    /// Intra-leaf (ABCAST): the agreed dissolve decision.
    DoDissolve {
        lgid: LargeGroupId,
        target: GroupId,
        target_contacts: Vec<Pid>,
        leader_contacts: Vec<Pid>,
    },
    /// Rep → parent rep (root rep → leader): periodic liveness beacon used
    /// for total-leaf-failure detection. Carries the leaf's current
    /// contacts so tree neighbours stay routable without touching the
    /// leader — a process failure is handled entirely within its leaf, as
    /// the paper requires.
    LeafBeacon {
        lgid: LargeGroupId,
        leaf: GroupId,
        epoch: u64,
        contacts: Vec<Pid>,
    },
}

/// Replicated commands applied by every leader-group member in ABCAST
/// order; the hierarchy state (the [`HierView`]) is a deterministic state
/// machine over this stream.
#[derive(Clone, Debug)]
pub enum LeaderCmd {
    /// Place `joiner` in a leaf. Placement happens at *apply* time against
    /// the replicated view (with tentative size accounting), so concurrent
    /// joins spread across leaves instead of stampeding the same one.
    Assign { lgid: LargeGroupId, joiner: Pid },
    /// Mint a new leaf slot for `founder` (bootstrap or overflow join).
    MintLeaf { lgid: LargeGroupId, founder: Pid },
    /// A leaf reported fresh contacts.
    Contacts {
        lgid: LargeGroupId,
        leaf: GroupId,
        contacts: Vec<Pid>,
        size: usize,
    },
    /// A leaf suffered total failure (or emptied) and leaves the tree.
    LeafDead { lgid: LargeGroupId, leaf: GroupId },
    /// Record a split in progress; the new leaf's slot is allocated
    /// deterministically at apply time from the replicated counter.
    Split { lgid: LargeGroupId, leaf: GroupId },
    /// Record a dissolve in progress (members of `leaf` migrate to
    /// `target`).
    Dissolve {
        lgid: LargeGroupId,
        leaf: GroupId,
        target: GroupId,
    },
}

impl LeaderCmd {
    /// The large group a command belongs to.
    pub fn lgid(&self) -> LargeGroupId {
        match self {
            LeaderCmd::Assign { lgid, .. }
            | LeaderCmd::MintLeaf { lgid, .. }
            | LeaderCmd::Contacts { lgid, .. }
            | LeaderCmd::LeafDead { lgid, .. }
            | LeaderCmd::Split { lgid, .. }
            | LeaderCmd::Dissolve { lgid, .. } => *lgid,
        }
    }
}

/// State snapshots installed by `isis-core` state transfer when a process
/// joins a leaf (business state) or a leader group (hierarchy replica).
#[derive(Clone, Debug, Default)]
pub enum HierState<S> {
    /// Nothing to transfer.
    #[default]
    None,
    /// Business leaf state.
    Leaf(S),
    /// Leader-group replica: the hierarchy view plus the slot counter.
    Leader {
        view: HierView,
        next_slot: u32,
        resiliency: usize,
        min_leaf: usize,
        max_leaf: usize,
    },
}

/// Correlates a leaf-level ABCAST `MsgId` with the tree broadcast it
/// carries (root-leaf resiliency ack tracking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootAckKey {
    /// The leaf cast carrying the broadcast.
    pub cast: MsgId,
    /// The broadcast's global sequence.
    pub lseq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_cmd_lgid_extraction() {
        let l = LargeGroupId(4);
        let cmds = [
            LeaderCmd::MintLeaf {
                lgid: l,
                founder: Pid(1),
            },
            LeaderCmd::Contacts {
                lgid: l,
                leaf: l.leaf_gid(1),
                contacts: vec![],
                size: 0,
            },
            LeaderCmd::LeafDead {
                lgid: l,
                leaf: l.leaf_gid(1),
            },
            LeaderCmd::Split {
                lgid: l,
                leaf: l.leaf_gid(1),
            },
            LeaderCmd::Dissolve {
                lgid: l,
                leaf: l.leaf_gid(1),
                target: l.leaf_gid(2),
            },
        ];
        for c in cmds {
            assert_eq!(c.lgid(), l);
        }
    }

    #[test]
    fn hier_state_default_is_none() {
        let s: HierState<u32> = HierState::default();
        assert!(matches!(s, HierState::None));
    }

    #[test]
    fn lbcast_status_equality() {
        assert_ne!(LbcastStatus::Resilient, LbcastStatus::Complete);
    }
}
