//! The hierarchical group view and its routing structure.
//!
//! The paper's central storage claim (section 3): "a complete list of the
//! processes in a large group is not explicitly stored anywhere, bounding
//! the storage required within any single process for storing a group
//! view". Concretely:
//!
//! - leaf members store only their own leaf's `isis-core` view;
//! - each leaf *representative* (the leaf's oldest member) additionally
//!   stores a [`RoutingSlice`]: its parent's and children's contact sets in
//!   an implicit `fanout`-ary tree over leaves — `O(fanout × resiliency)`;
//! - only the *leader group* stores the full leaf list ([`HierView`]), with
//!   contact sets truncated to `resiliency` entries.
//!
//! The implicit tree (leaf `i`'s children are `fanout*i + 1 ..= fanout*i +
//! fanout`) plays the role of the paper's branch groups: it bounds every
//! process's direct communication partners by `fanout` without materialising
//! branch memberships anywhere.

use now_sim::Pid;

use isis_core::GroupId;

use crate::ids::LargeGroupId;

/// Descriptor of one leaf subgroup as known to the hierarchy: its group id
/// and a bounded set of contact processes (oldest first, so `contacts[0]`
/// is the leaf representative).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafDesc {
    /// Underlying `isis-core` group id.
    pub gid: GroupId,
    /// Bounded contact list, oldest member first.
    pub contacts: Vec<Pid>,
    /// Total member count of the leaf (may exceed `contacts.len()`).
    pub size: usize,
}

impl LeafDesc {
    /// The leaf representative (oldest member), if the leaf is non-empty.
    pub fn rep(&self) -> Option<Pid> {
        self.contacts.first().copied()
    }

    /// Estimated storage bytes.
    pub fn storage_bytes(&self) -> usize {
        8 + 4 * self.contacts.len() + 8
    }
}

/// The leader group's view of the whole hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierView {
    /// The large group.
    pub lgid: LargeGroupId,
    /// Strictly increasing structure epoch; bumped whenever the leaf list
    /// or the root changes.
    pub epoch: u64,
    /// Broadcast-tree fanout.
    pub fanout: usize,
    /// Acknowledgements required before a broadcast is reported resilient.
    pub resiliency: usize,
    /// Leaves in tree order (index 0 is the root leaf).
    pub leaves: Vec<LeafDesc>,
    /// Contact processes of the leader group itself.
    pub leader_contacts: Vec<Pid>,
}

impl HierView {
    /// An empty hierarchy (no members yet).
    pub fn empty(
        lgid: LargeGroupId,
        fanout: usize,
        resiliency: usize,
        leader_contacts: Vec<Pid>,
    ) -> HierView {
        assert!(fanout >= 1);
        HierView {
            lgid,
            epoch: 1,
            fanout,
            resiliency,
            leaves: Vec::new(),
            leader_contacts,
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Sum of leaf sizes (the large group's `size`).
    pub fn total_members(&self) -> usize {
        self.leaves.iter().map(|l| l.size).sum()
    }

    /// Index of the leaf with group id `gid`.
    pub fn index_of(&self, gid: GroupId) -> Option<usize> {
        self.leaves.iter().position(|l| l.gid == gid)
    }

    /// Child indices of leaf `i` in the implicit fanout-ary tree.
    pub fn children(&self, i: usize) -> Vec<usize> {
        let lo = self.fanout * i + 1;
        (lo..lo + self.fanout)
            .filter(|&c| c < self.leaves.len())
            .collect()
    }

    /// Parent index of leaf `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        if i == 0 {
            None
        } else {
            Some((i - 1) / self.fanout)
        }
    }

    /// The root leaf (sequencing site of the tree broadcast).
    pub fn root(&self) -> Option<&LeafDesc> {
        self.leaves.first()
    }

    /// Depth of the tree (0 for empty, 1 for a single leaf).
    pub fn depth(&self) -> usize {
        let mut d = 0;
        let mut i = self.leaves.len().saturating_sub(1);
        if self.leaves.is_empty() {
            return 0;
        }
        d += 1;
        while let Some(p) = self.parent(i) {
            i = p;
            d += 1;
        }
        d
    }

    /// The routing slice leaf `i`'s representative must store.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slice_for(&self, i: usize) -> RoutingSlice {
        assert!(i < self.leaves.len(), "leaf index out of range");
        RoutingSlice {
            lgid: self.lgid,
            epoch: self.epoch,
            my_index: i,
            num_leaves: self.leaves.len(),
            resiliency: self.resiliency,
            fanout: self.fanout,
            my_gid: self.leaves[i].gid,
            parent: self.parent(i).map(|p| self.leaves[p].clone()),
            children: self
                .children(i)
                .into_iter()
                .map(|c| self.leaves[c].clone())
                .collect(),
            leader_contacts: self.leader_contacts.clone(),
        }
    }

    /// Estimated bytes to store the full view (leader-side cost, E7).
    pub fn storage_bytes(&self) -> usize {
        24 + 4 * self.leader_contacts.len()
            + self.leaves.iter().map(LeafDesc::storage_bytes).sum::<usize>()
    }

    /// Leaves in need of a split (above `max_leaf`).
    pub fn oversized(&self, max_leaf: usize) -> Vec<GroupId> {
        self.leaves
            .iter()
            .filter(|l| l.size > max_leaf)
            .map(|l| l.gid)
            .collect()
    }

    /// Leaves in need of a merge (below `min_leaf`), excluding the case of
    /// a single remaining leaf (nothing to merge into).
    pub fn undersized(&self, min_leaf: usize) -> Vec<GroupId> {
        if self.leaves.len() <= 1 {
            return Vec::new();
        }
        self.leaves
            .iter()
            .filter(|l| l.size < min_leaf)
            .map(|l| l.gid)
            .collect()
    }

    /// The leaf with the most spare capacity, used for join placement and
    /// as a merge target. Excludes `not` (e.g. the leaf being dissolved).
    pub fn least_loaded(&self, not: Option<GroupId>) -> Option<&LeafDesc> {
        self.leaves
            .iter()
            .filter(|l| Some(l.gid) != not)
            .min_by_key(|l| (l.size, l.gid))
    }
}

/// What one leaf representative stores to route tree broadcasts: bounded by
/// `O(fanout × resiliency)` regardless of the large group's size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingSlice {
    /// The large group.
    pub lgid: LargeGroupId,
    /// The epoch this slice was extracted from.
    pub epoch: u64,
    /// This leaf's index in tree order.
    pub my_index: usize,
    /// Total number of leaves (for observability; one integer).
    pub num_leaves: usize,
    /// Resiliency threshold of the large group.
    pub resiliency: usize,
    /// Tree fanout (children of index `i` live at `fanout*i + 1 ..`).
    pub fanout: usize,
    /// This leaf's group id.
    pub my_gid: GroupId,
    /// Parent leaf contacts (`None` at the root).
    pub parent: Option<LeafDesc>,
    /// Child leaf contacts (at most `fanout`).
    pub children: Vec<LeafDesc>,
    /// Leader group contacts (for reports).
    pub leader_contacts: Vec<Pid>,
}

impl RoutingSlice {
    /// Whether this slice belongs to the root leaf.
    pub fn is_root(&self) -> bool {
        self.my_index == 0
    }

    /// Estimated storage bytes (bounded by fanout, the paper's claim).
    pub fn storage_bytes(&self) -> usize {
        32 + self.parent.as_ref().map_or(0, LeafDesc::storage_bytes)
            + self
                .children
                .iter()
                .map(LeafDesc::storage_bytes)
                .sum::<usize>()
            + 4 * self.leader_contacts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(nleaves: usize, fanout: usize) -> HierView {
        let lgid = LargeGroupId(1);
        HierView {
            lgid,
            epoch: 1,
            fanout,
            resiliency: 2,
            leaves: (0..nleaves)
                .map(|i| LeafDesc {
                    gid: lgid.leaf_gid(i as u32 + 1),
                    contacts: vec![Pid(i as u32 * 10), Pid(i as u32 * 10 + 1)],
                    size: 5,
                })
                .collect(),
            leader_contacts: vec![Pid(900), Pid(901)],
        }
    }

    #[test]
    fn tree_parent_child_inverse() {
        let v = view(20, 3);
        for i in 0..20 {
            for c in v.children(i) {
                assert_eq!(v.parent(c), Some(i));
            }
        }
        assert_eq!(v.parent(0), None);
    }

    #[test]
    fn children_bounded_by_fanout() {
        for fanout in 1..6 {
            let v = view(50, fanout);
            for i in 0..50 {
                assert!(v.children(i).len() <= fanout);
            }
        }
    }

    #[test]
    fn every_leaf_reachable_from_root() {
        let v = view(33, 4);
        let mut seen = [false; 33];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            seen[i] = true;
            stack.extend(v.children(i));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn depth_is_logarithmic() {
        let v = view(64, 4);
        // 64 leaves, fanout 4: depth 4 (1 + 4 + 16 + 43).
        assert_eq!(v.depth(), 4);
        assert_eq!(view(1, 4).depth(), 1);
        assert_eq!(view(0, 4).depth(), 0);
    }

    #[test]
    fn slice_contains_only_neighbourhood() {
        let v = view(20, 3);
        let s = v.slice_for(1);
        assert_eq!(s.my_index, 1);
        assert_eq!(s.parent.as_ref().unwrap().gid, v.leaves[0].gid);
        let kids: Vec<GroupId> = s.children.iter().map(|c| c.gid).collect();
        assert_eq!(
            kids,
            v.children(1)
                .into_iter()
                .map(|c| v.leaves[c].gid)
                .collect::<Vec<_>>()
        );
        assert!(!s.is_root());
        assert!(v.slice_for(0).is_root());
    }

    #[test]
    fn slice_storage_bounded_by_fanout_not_size() {
        let small = view(8, 3);
        let large = view(500, 3);
        // Pick an interior leaf with a full child set in both.
        let s_small = small.slice_for(1).storage_bytes();
        let s_large = large.slice_for(1).storage_bytes();
        assert_eq!(s_small, s_large, "slice cost independent of group size");
        // Whereas the leader-side full view grows linearly.
        assert!(large.storage_bytes() > 10 * small.storage_bytes());
    }

    #[test]
    fn split_merge_candidates() {
        let mut v = view(3, 3);
        v.leaves[1].size = 20;
        v.leaves[2].size = 1;
        assert_eq!(v.oversized(7), vec![v.leaves[1].gid]);
        assert_eq!(v.undersized(3), vec![v.leaves[2].gid]);
        // A 1-leaf view never reports undersized leaves.
        let mut single = view(1, 3);
        single.leaves[0].size = 1;
        assert!(single.undersized(3).is_empty());
    }

    #[test]
    fn least_loaded_excludes_and_tiebreaks() {
        let mut v = view(3, 3);
        v.leaves[0].size = 4;
        v.leaves[1].size = 2;
        v.leaves[2].size = 2;
        let pick = v.least_loaded(None).unwrap();
        assert_eq!(pick.gid, v.leaves[1].gid, "ties break by gid");
        let pick2 = v.least_loaded(Some(v.leaves[1].gid)).unwrap();
        assert_eq!(pick2.gid, v.leaves[2].gid);
    }

    #[test]
    fn totals_and_lookup() {
        let v = view(4, 2);
        assert_eq!(v.total_members(), 20);
        assert_eq!(v.num_leaves(), 4);
        assert_eq!(v.index_of(v.leaves[2].gid), Some(2));
        assert_eq!(v.index_of(GroupId(12345)), None);
        assert_eq!(v.root().unwrap().gid, v.leaves[0].gid);
    }
}
