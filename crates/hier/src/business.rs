//! The business-application interface above the hierarchical layer.
//!
//! A [`LargeApp`] is to `isis-hier` what an `isis_core::Application` is to
//! `isis-core`: the domain logic. It sees large-group broadcasts, leaf-
//! level casts, and membership events, and acts through a [`LargeUplink`].

use now_sim::{Pid, SimDuration, SimTime};

use isis_core::{CastKind, GroupId, GroupView, Uplink};

use crate::ids::{LargeGroupId, LbcastId};
use crate::msg::LbcastStatus;

/// Buffered operations a business application can request.
#[derive(Clone, Debug)]
pub enum LargeOp<Q> {
    /// Broadcast to the whole large group through the tree.
    Lbcast { lgid: LargeGroupId, payload: Q },
    /// Broadcast within this member's own leaf subgroup only.
    LeafCast {
        lgid: LargeGroupId,
        kind: CastKind,
        payload: Q,
    },
    /// Point-to-point business message.
    Direct { to: Pid, payload: Q },
    /// Ask the large group's leader to admit this process.
    JoinLarge {
        lgid: LargeGroupId,
        leader_contact: Pid,
    },
    /// Leave the large group (leave our leaf).
    LeaveLarge { lgid: LargeGroupId },
    /// Arm a business timer (fires [`LargeApp::on_timer`]).
    Timer { delay: SimDuration, kind: u32 },
}

/// The handle a business application uses during callbacks. Operations are
/// buffered and executed when the callback returns.
pub struct LargeUplink<'x, 'a, 'b, B: LargeApp> {
    pub(crate) up: &'x mut Uplink<'a, 'b, crate::member::HierApp<B>>,
    pub(crate) ops: &'x mut Vec<LargeOp<B::Payload>>,
    pub(crate) leaf_view: Option<&'x GroupView>,
    pub(crate) slices: &'x std::collections::BTreeMap<LargeGroupId, crate::view::RoutingSlice>,
}

impl<'x, 'a, 'b, B: LargeApp> LargeUplink<'x, 'a, 'b, B> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.up.now()
    }

    /// This process's pid.
    pub fn me(&self) -> Pid {
        self.up.me()
    }

    /// View of the leaf the current callback concerns, when applicable.
    pub fn leaf_view(&self) -> Option<&GroupView> {
        self.leaf_view
    }

    /// The routing slice this process holds as a leaf representative of
    /// `lgid`, if it currently is one (bounded, `O(fanout)` structure).
    pub fn routing_slice(&self, lgid: LargeGroupId) -> Option<&crate::view::RoutingSlice> {
        self.slices.get(&lgid)
    }

    /// Broadcasts to every member of the large group via the tree.
    pub fn lbcast(&mut self, lgid: LargeGroupId, payload: B::Payload) {
        self.ops.push(LargeOp::Lbcast { lgid, payload });
    }

    /// Broadcasts within this member's own leaf subgroup — the pattern the
    /// paper recommends: "requests are broadcast to individual subgroups".
    pub fn leaf_cast(&mut self, lgid: LargeGroupId, kind: CastKind, payload: B::Payload) {
        self.ops.push(LargeOp::LeafCast { lgid, kind, payload });
    }

    /// Sends a point-to-point business message.
    pub fn direct(&mut self, to: Pid, payload: B::Payload) {
        self.ops.push(LargeOp::Direct { to, payload });
    }

    /// Requests admission to a large group.
    pub fn join_large(&mut self, lgid: LargeGroupId, leader_contact: Pid) {
        self.ops.push(LargeOp::JoinLarge {
            lgid,
            leader_contact,
        });
    }

    /// Leaves a large group.
    pub fn leave_large(&mut self, lgid: LargeGroupId) {
        self.ops.push(LargeOp::LeaveLarge { lgid });
    }

    /// Arms a business timer.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u32) {
        self.ops.push(LargeOp::Timer { delay, kind });
    }

    /// Emits a labelled observation.
    pub fn observe(&mut self, label: &'static str, value: f64) {
        self.up.observe(label, value);
    }

    /// Adds one to a named global counter (interned on first use).
    pub fn bump(&mut self, name: &'static str) {
        self.up.bump(name);
    }

    /// Records a sample in a named global series (interned on first use).
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.up.sample(name, v);
    }

    /// Records a duration sample (milliseconds).
    pub fn sample_duration(&mut self, name: &'static str, d: SimDuration) {
        self.up.sample_duration(name, d);
    }

    /// Registers (or looks up) a named counter, returning a dense handle
    /// for allocation-free bumping via [`LargeUplink::bump_id`].
    pub fn counter_id(&mut self, name: &'static str) -> now_sim::CounterId {
        self.up.counter_id(name)
    }

    /// Adds one to an interned counter — a single array index.
    pub fn bump_id(&mut self, id: now_sim::CounterId) {
        self.up.bump_id(id);
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut now_sim::DetRng {
        self.up.rng()
    }

    /// Whether a tracer is attached.
    pub fn tracing(&self) -> bool {
        self.up.tracing()
    }

    /// Records a trace event, lazily built only when tracing is on.
    /// Returns the event's sequence number (0 when tracing is off).
    pub fn trace_with(&mut self, f: impl FnOnce() -> now_sim::trace::EventKind) -> u64 {
        self.up.trace_with(f)
    }
}

/// Domain logic running above the hierarchical group layer.
pub trait LargeApp: Sized + Send + 'static {
    /// Business payload carried by broadcasts and direct messages.
    /// `Send + Sync` (like `Application::Payload`) so in-flight messages
    /// can cross worker shards in a parallel run (`NOW_SIM_JOBS`).
    type Payload: Clone + std::fmt::Debug + Send + Sync + 'static;
    /// Leaf-level replicated state installed into members joining a leaf.
    type LeafState: Clone + std::fmt::Debug + Default + Send + Sync + 'static;

    /// A large-group broadcast was delivered (total order per leaf,
    /// globally sequenced by the root).
    fn on_lbcast(
        &mut self,
        lgid: LargeGroupId,
        origin: Pid,
        payload: &Self::Payload,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    );

    /// An intra-leaf (or plain-group) business cast was delivered. The
    /// large group, if any, is recoverable via
    /// [`LargeGroupId::of_gid`](crate::ids::LargeGroupId::of_gid).
    fn on_leaf_cast(
        &mut self,
        _leaf: GroupId,
        _from: Pid,
        _kind: CastKind,
        _payload: &Self::Payload,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    /// A direct business message arrived.
    fn on_direct(
        &mut self,
        _from: Pid,
        _payload: &Self::Payload,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    /// This process is about to migrate between leaves (split/dissolve):
    /// called before it joins `to_leaf`, while its state still reflects
    /// `from_leaf`. Applications with leaf-scoped data snapshot what they
    /// must carry here.
    fn on_migrating(
        &mut self,
        _lgid: LargeGroupId,
        _from_leaf: Option<GroupId>,
        _to_leaf: GroupId,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    /// This process completed its admission into a large group.
    fn on_joined_large(
        &mut self,
        _lgid: LargeGroupId,
        _leaf: GroupId,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    /// This process left (or was excluded from) its leaf.
    fn on_left_large(&mut self, _lgid: LargeGroupId, _up: &mut LargeUplink<'_, '_, '_, Self>) {}

    /// A new view of this member's leaf was installed.
    fn on_leaf_view(
        &mut self,
        _lgid: LargeGroupId,
        _view: &GroupView,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    /// One of our broadcasts progressed (resilient / complete).
    fn on_lbcast_status(
        &mut self,
        _lgid: LargeGroupId,
        _id: LbcastId,
        _status: LbcastStatus,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    /// A business timer fired.
    fn on_timer(&mut self, _kind: u32, _up: &mut LargeUplink<'_, '_, '_, Self>) {}

    /// The process started.
    fn on_start(&mut self, _up: &mut LargeUplink<'_, '_, '_, Self>) {}

    /// Snapshot of leaf-replicated business state for a joining member.
    fn export_leaf_state(&self, _lgid: LargeGroupId, _leaf: GroupId) -> Self::LeafState {
        Self::LeafState::default()
    }

    /// Install a snapshot received while joining a leaf.
    fn import_leaf_state(
        &mut self,
        _lgid: LargeGroupId,
        _leaf: GroupId,
        _state: Self::LeafState,
    ) {
    }

    /// Estimated wire size of a business payload.
    fn payload_bytes(_p: &Self::Payload) -> usize {
        64
    }
}
