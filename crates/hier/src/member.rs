//! The hierarchical layer's process state: [`HierApp`] runs as the
//! `isis-core` application on every participating process and multiplexes
//! three roles:
//!
//! - *member*: belongs to one leaf subgroup per large group, submits and
//!   receives tree broadcasts;
//! - *representative* (leaf rank 0): routes tree broadcasts and monitors
//!   child leaves — state and logic in [`crate::tree`];
//! - *leader-group member*: replicates the hierarchy view — logic in
//!   [`crate::leader`].
//!
//! A business application ([`LargeApp`]) rides on top.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use now_sim::trace::EventKind as TraceKind;
use now_sim::{Pid, SimTime};

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};

use crate::business::{LargeApp, LargeOp, LargeUplink};
use crate::config::LargeGroupConfig;
use crate::ids::{LargeGroupId, LbcastId};
use crate::leader::LeaderReplica;
use crate::msg::{CtlMsg, HierPayload, HierState, TreeMsg};
use crate::tree::RepState;

/// Hierarchy housekeeping timer kind.
pub(crate) const HIER_TICK: u32 = 0;
/// Business timer kinds are offset by this base.
pub(crate) const BIZ_TIMER_BASE: u32 = 256;
/// Size of the per-member broadcast deduplication window.
const SEEN_CAP: usize = 8_192;

/// One outstanding broadcast at its origin.
#[derive(Clone, Debug)]
pub(crate) struct OutLbcast<Q> {
    pub payload: Q,
    pub resilient: bool,
    pub complete: bool,
    pub last_try: SimTime,
    pub attempts: u32,
}

/// Membership state for one large group.
pub(crate) struct MemberState<Q> {
    /// Current (or assigned) leaf.
    pub leaf: Option<GroupId>,
    /// Completed admission (first leaf view containing us installed).
    pub joined: bool,
    /// Leader contact used for (re-)join requests.
    pub join_contact: Pid,
    /// Last-known leader-group contacts (refreshed from assignment
    /// senders and structure pushes); reports rotate through them so a
    /// crashed leader member does not black-hole self-healing traffic.
    pub leader_contacts: Vec<Pid>,
    /// Rotation counter for leader-bound reports.
    pub report_attempt: u32,
    pub last_join_try: SimTime,
    /// A leaf assignment was received; stop re-sending join requests.
    pub assigned: bool,
    /// Contact for the assigned leaf (`None` when we are its founder).
    pub assign_contact: Option<Pid>,
    /// Failed attempts to enter the assigned leaf; resets the assignment
    /// after too many, falling back to the leader.
    pub assign_attempts: u32,
    /// Failed attempts to enter a migration target.
    pub migrate_attempts: u32,
    /// Cached membership of our leaf (refreshed on every leaf view).
    pub leaf_members: Vec<Pid>,
    /// Origin-side broadcast sequencing and tracking.
    pub next_seq: u64,
    pub out: BTreeMap<LbcastId, OutLbcast<Q>>,
    /// Delivery dedup window.
    seen: VecDeque<LbcastId>,
    seen_set: BTreeSet<LbcastId>,
    /// Highest global sequence number delivered here; seeds a fresh
    /// representative's sequencing state after a rep transition.
    pub max_lseq_seen: u64,
    /// Split/dissolve migration target: `(gid, contact)`; `contact == None`
    /// means this process founds the new leaf.
    pub migrating_to: Option<(GroupId, Option<Pid>)>,
    /// The leaf being vacated during a migration.
    pub old_leaf: Option<GroupId>,
    /// Pacing for migration join retries.
    pub last_migrate_try: SimTime,
}

impl<Q> MemberState<Q> {
    pub(crate) fn new(join_contact: Pid, now: SimTime) -> MemberState<Q> {
        MemberState {
            leaf: None,
            joined: false,
            join_contact,
            leader_contacts: vec![join_contact],
            report_attempt: 0,
            last_join_try: now,
            assigned: false,
            assign_contact: None,
            assign_attempts: 0,
            migrate_attempts: 0,
            leaf_members: Vec::new(),
            next_seq: 0,
            out: BTreeMap::new(),
            seen: VecDeque::new(),
            seen_set: BTreeSet::new(),
            max_lseq_seen: 0,
            migrating_to: None,
            old_leaf: None,
            last_migrate_try: now,
        }
    }

    /// Records a delivered broadcast; returns `false` if it was a
    /// duplicate.
    pub(crate) fn first_sighting(&mut self, id: LbcastId) -> bool {
        if self.seen_set.contains(&id) {
            return false;
        }
        self.seen_set.insert(id);
        self.seen.push_back(id);
        if self.seen.len() > SEEN_CAP {
            if let Some(old) = self.seen.pop_front() {
                self.seen_set.remove(&old);
            }
        }
        true
    }

    /// This member's current leaf representative, if known.
    pub(crate) fn my_rep(&self) -> Option<Pid> {
        self.leaf_members.first().copied()
    }
}

/// The hierarchical application: one per process, hosting the business
/// logic `B`.
pub struct HierApp<B: LargeApp> {
    pub(crate) biz: B,
    pub(crate) timers: LargeGroupConfig,
    pub(crate) members: BTreeMap<LargeGroupId, MemberState<B::Payload>>,
    pub(crate) reps: BTreeMap<LargeGroupId, RepState<B::Payload>>,
    pub(crate) leaders: BTreeMap<LargeGroupId, LeaderReplica>,
    /// Active-leader-only: last beacon seen from each root leaf.
    pub(crate) root_beacons: BTreeMap<LargeGroupId, SimTime>,
    /// Read-only copy of each rep role's routing slice, exposed to the
    /// business application through [`LargeUplink::routing_slice`].
    pub(crate) slices_cache: BTreeMap<LargeGroupId, crate::view::RoutingSlice>,
}

impl<B: LargeApp> HierApp<B> {
    /// Wraps `biz` with default hierarchy timings.
    pub fn new(biz: B) -> HierApp<B> {
        HierApp::with_timers(biz, LargeGroupConfig::default())
    }

    /// Wraps `biz` with explicit hierarchy timings (the structural fields
    /// of the config are ignored here; they live with each large group's
    /// leader replica).
    pub fn with_timers(biz: B, timers: LargeGroupConfig) -> HierApp<B> {
        HierApp {
            biz,
            timers,
            members: BTreeMap::new(),
            reps: BTreeMap::new(),
            leaders: BTreeMap::new(),
            root_beacons: BTreeMap::new(),
            slices_cache: BTreeMap::new(),
        }
    }

    /// The hosted business application.
    pub fn biz(&self) -> &B {
        &self.biz
    }

    /// Mutable access to the business application (harness inspection).
    pub fn biz_mut(&mut self) -> &mut B {
        &mut self.biz
    }

    /// Whether this process has completed admission to `lgid`.
    pub fn is_large_member(&self, lgid: LargeGroupId) -> bool {
        self.members.get(&lgid).is_some_and(|m| m.joined)
    }

    /// The leaf this process belongs to in `lgid`.
    pub fn leaf_of(&self, lgid: LargeGroupId) -> Option<GroupId> {
        self.members.get(&lgid).and_then(|m| m.leaf)
    }

    /// Whether this process is currently a leaf representative for `lgid`.
    pub fn is_rep(&self, lgid: LargeGroupId) -> bool {
        self.reps.contains_key(&lgid)
    }

    /// The leader replica's hierarchy view, when this process is a
    /// leader-group member.
    pub fn leader_view(&self, lgid: LargeGroupId) -> Option<&crate::view::HierView> {
        self.leaders.get(&lgid).map(|r| &r.view)
    }

    /// Estimated hierarchy-related storage at this process, by role
    /// (experiment E7): member leaf cache + rep routing slice + leader
    /// replica.
    pub fn hier_storage_bytes(&self) -> usize {
        let member: usize = self
            .members
            .values()
            .map(|m| 16 + 4 * m.leaf_members.len())
            .sum();
        let rep: usize = self.reps.values().map(RepState::storage_bytes).sum();
        let leader: usize = self.leaders.values().map(|r| r.view.storage_bytes()).sum();
        member + rep + leader
    }

    // ------------------------------------------------------------------
    // Public entry points (call via `IsisProcess::with_app`)
    // ------------------------------------------------------------------

    /// Founds the leader group of a new large group on this process.
    /// Additional leader members join with [`HierApp::join_leader_group`].
    pub fn create_large(
        &mut self,
        lgid: LargeGroupId,
        cfg: LargeGroupConfig,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let replica = LeaderReplica::new(lgid, &cfg, vec![up.me()]);
        self.leaders.insert(lgid, replica);
        up.create_group(lgid.leader_gid());
    }

    /// Joins the leader group of `lgid` through an existing leader member.
    pub fn join_leader_group(
        &mut self,
        lgid: LargeGroupId,
        contact: Pid,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        up.join(lgid.leader_gid(), contact);
    }

    /// Requests admission of this process to `lgid` (becoming a member of
    /// some leaf chosen by the leader).
    pub fn join_large(&mut self, lgid: LargeGroupId, leader_contact: Pid, up: &mut Uplink<'_, '_, Self>) {
        if self.members.contains_key(&lgid) {
            return;
        }
        self.members
            .insert(lgid, MemberState::new(leader_contact, up.now()));
        // A restarted workstation coming back: it re-enters through the
        // ordinary join path (possibly landing in a different leaf) and
        // re-earns any rep/leader role from scratch.
        if up.incarnation() > 0 {
            let (tl, incarnation) = (u64::from(lgid.0), u64::from(up.incarnation()));
            up.trace_with(|| TraceKind::RejoinBegin { lgid: tl, incarnation });
        }
        up.direct(leader_contact, HierPayload::Ctl(CtlMsg::JoinLargeReq { lgid }));
    }

    /// Leaves the large group.
    pub fn leave_large(&mut self, lgid: LargeGroupId, up: &mut Uplink<'_, '_, Self>) {
        let Some(ms) = self.members.get(&lgid) else {
            return;
        };
        if let Some(leaf) = ms.leaf {
            // If we are the last member, tell the leader the leaf is gone
            // (nobody will be left to report it).
            if ms.leaf_members.len() == 1 {
                if let Some(&lc) = self.leader_contact(lgid).as_ref() {
                    up.direct(
                        lc,
                        HierPayload::Ctl(CtlMsg::ContactsUpdate {
                            lgid,
                            leaf,
                            contacts: Vec::new(),
                            size: 0,
                        }),
                    );
                }
            }
            up.leave(leaf);
        }
        self.members.remove(&lgid);
        self.reps.remove(&lgid);
    }

    /// Broadcasts `payload` to the whole large group. Returns the broadcast
    /// id, or `None` if this process is not (yet) a member.
    pub fn lbcast(
        &mut self,
        lgid: LargeGroupId,
        payload: B::Payload,
        up: &mut Uplink<'_, '_, Self>,
    ) -> Option<LbcastId> {
        let ms = self.members.get_mut(&lgid)?;
        if !ms.joined {
            return None;
        }
        ms.next_seq += 1;
        let id = LbcastId {
            origin: up.me(),
            seq: ms.next_seq,
        };
        let (tl, origin, lseq) = (u64::from(lgid.0), id.origin.0, id.seq);
        up.trace_with(|| TraceKind::LbcastSubmit { lgid: tl, origin, lseq });
        ms.out.insert(
            id,
            OutLbcast {
                payload: payload.clone(),
                resilient: false,
                complete: false,
                last_try: up.now(),
                attempts: 1,
            },
        );
        self.route_submit(lgid, id, payload, up);
        Some(id)
    }

    /// Routes a submit towards the root: handled locally when this process
    /// is a rep, otherwise handed to our leaf rep.
    pub(crate) fn route_submit(
        &mut self,
        lgid: LargeGroupId,
        id: LbcastId,
        payload: B::Payload,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        if self.reps.contains_key(&lgid) {
            self.rep_handle_submit(lgid, id, payload, None, up);
            return;
        }
        let Some(ms) = self.members.get(&lgid) else {
            return;
        };
        match ms.my_rep() {
            Some(rep) if rep != up.me() => {
                up.direct(rep, HierPayload::Tree(TreeMsg::Submit { lgid, id, payload }));
            }
            _ => up.bump("hier.submit.no_rep"),
        }
    }

    /// The best-known leader contact for `lgid`.
    pub(crate) fn leader_contact(&self, lgid: LargeGroupId) -> Option<Pid> {
        if let Some(r) = self.reps.get(&lgid) {
            if let Some(s) = &r.slice {
                if let Some(&c) = s.leader_contacts.first() {
                    return Some(c);
                }
            }
        }
        self.members
            .get(&lgid)
            .and_then(|m| m.leader_contacts.first().copied().or(Some(m.join_contact)))
    }

    /// Like [`HierApp::leader_contact`] but rotates through the known
    /// contacts on successive calls, so reports survive the failure of any
    /// single leader member.
    pub(crate) fn leader_contact_rotating(&mut self, lgid: LargeGroupId) -> Option<Pid> {
        let mut pool: Vec<Pid> = self
            .reps
            .get(&lgid)
            .and_then(|r| r.slice.as_ref())
            .map(|s| s.leader_contacts.clone())
            .unwrap_or_default();
        if let Some(ms) = self.members.get(&lgid) {
            for &c in &ms.leader_contacts {
                if !pool.contains(&c) {
                    pool.push(c);
                }
            }
        }
        if pool.is_empty() {
            return self.leader_contact(lgid);
        }
        let attempt = match self.members.get_mut(&lgid) {
            Some(ms) => {
                ms.report_attempt = ms.report_attempt.wrapping_add(1);
                ms.report_attempt as usize
            }
            None => 0,
        };
        Some(pool[attempt % pool.len()])
    }

    // ------------------------------------------------------------------
    // Business bridging
    // ------------------------------------------------------------------

    /// Public harness entry point: runs a business-level callback with a
    /// [`LargeUplink`] and then executes the operations it buffered.
    ///
    /// ```
    /// use isis_hier::harness::large_cluster;
    /// use isis_hier::LargeGroupConfig;
    /// use now_sim::SimDuration;
    ///
    /// let mut c = large_cluster(6, LargeGroupConfig::new(2, 3), 5);
    /// let (lgid, origin) = (c.lgid, c.members[0]);
    /// c.sim.invoke(origin, move |p, ctx| {
    ///     p.with_app(ctx, move |app, up| {
    ///         app.with_business(up, |_biz, lup| lup.lbcast(lgid, "tick".into()));
    ///     });
    /// });
    /// c.run_for(SimDuration::from_secs(20));
    /// for (_, log) in c.lbcast_logs() {
    ///     assert_eq!(log, vec!["tick".to_string()]);
    /// }
    /// ```
    pub fn with_business(
        &mut self,
        up: &mut Uplink<'_, '_, Self>,
        f: impl FnOnce(&mut B, &mut LargeUplink<'_, '_, '_, B>),
    ) {
        self.with_biz(up, None, f);
    }

    /// Runs a business callback and then executes the operations it
    /// buffered.
    pub(crate) fn with_biz(
        &mut self,
        up: &mut Uplink<'_, '_, Self>,
        leaf_view: Option<&GroupView>,
        f: impl FnOnce(&mut B, &mut LargeUplink<'_, '_, '_, B>),
    ) {
        let mut ops = Vec::new();
        {
            let Self {
                biz, slices_cache, ..
            } = self;
            let mut lup = LargeUplink {
                up,
                ops: &mut ops,
                leaf_view,
                slices: slices_cache,
            };
            f(biz, &mut lup);
        }
        self.apply_large_ops(ops, up);
    }

    fn apply_large_ops(&mut self, ops: Vec<LargeOp<B::Payload>>, up: &mut Uplink<'_, '_, Self>) {
        for op in ops {
            match op {
                LargeOp::Lbcast { lgid, payload } => {
                    if self.lbcast(lgid, payload, up).is_none() {
                        up.bump("hier.lbcast.not_member");
                    }
                }
                LargeOp::LeafCast { lgid, kind, payload } => {
                    match self.members.get(&lgid).and_then(|m| m.leaf) {
                        Some(leaf) => up.cast(leaf, kind, HierPayload::Biz(payload)),
                        None => up.bump("hier.leafcast.not_member"),
                    }
                }
                LargeOp::Direct { to, payload } => {
                    up.direct(to, HierPayload::Biz(payload));
                }
                LargeOp::JoinLarge {
                    lgid,
                    leader_contact,
                } => self.join_large(lgid, leader_contact, up),
                LargeOp::LeaveLarge { lgid } => self.leave_large(lgid, up),
                LargeOp::Timer { delay, kind } => {
                    up.set_app_timer(delay, BIZ_TIMER_BASE.saturating_add(kind));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Broadcast delivery at a member
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn member_deliver_lbcast(
        &mut self,
        lgid: LargeGroupId,
        lseq: u64,
        id: LbcastId,
        ack_to: Option<Pid>,
        payload: &B::Payload,
        leaf_view: Option<&GroupView>,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        if let Some(to) = ack_to {
            if to != up.me() {
                up.direct(to, HierPayload::Tree(TreeMsg::MemberAck { lgid, lseq }));
            }
        }
        let Some(ms) = self.members.get_mut(&lgid) else {
            return;
        };
        ms.max_lseq_seen = ms.max_lseq_seen.max(lseq);
        if !ms.first_sighting(id) {
            up.bump("hier.lbcast.dup");
            return;
        }
        up.bump("hier.lbcast.delivered");
        let (tl, torigin, tseq) = (u64::from(lgid.0), id.origin.0, id.seq);
        up.trace_with(|| TraceKind::LbcastDeliver { lgid: tl, origin: torigin, lseq: tseq });
        let origin = id.origin;
        let p = payload.clone();
        self.with_biz(up, leaf_view, |biz, lup| {
            biz.on_lbcast(lgid, origin, &p, lup);
        });
    }

    // ------------------------------------------------------------------
    // Membership plumbing
    // ------------------------------------------------------------------

    /// Handles control messages addressed to this process as a (would-be)
    /// member.
    pub(crate) fn member_handle_ctl(&mut self, from: Pid, msg: CtlMsg, up: &mut Uplink<'_, '_, Self>) {
        match msg {
            CtlMsg::JoinAssign { lgid, leaf, contacts } => {
                let Some(ms) = self.members.get_mut(&lgid) else {
                    return;
                };
                if !ms.leader_contacts.contains(&from) {
                    ms.leader_contacts.insert(0, from);
                    ms.leader_contacts.truncate(4);
                }
                if ms.assigned || ms.joined {
                    return;
                }
                ms.assigned = true;
                ms.leaf = Some(leaf);
                ms.assign_contact = contacts.first().copied();
                ms.assign_attempts = 0;
                if let Some(&c) = contacts.first() {
                    up.join(leaf, c);
                } else {
                    // Defensive: an empty assignment, retry later.
                    ms.assigned = false;
                }
            }
            CtlMsg::JoinCreateLeaf { lgid, leaf } => {
                let Some(ms) = self.members.get_mut(&lgid) else {
                    return;
                };
                if !ms.leader_contacts.contains(&from) {
                    ms.leader_contacts.insert(0, from);
                    ms.leader_contacts.truncate(4);
                }
                if ms.assigned || ms.joined {
                    return;
                }
                ms.assigned = true;
                ms.leaf = Some(leaf);
                ms.assign_contact = None;
                ms.assign_attempts = 0;
                up.create_group(leaf);
            }
            CtlMsg::JoinLargeDenied { lgid } => {
                self.members.remove(&lgid);
                up.bump("hier.join.denied");
            }
            CtlMsg::DoSplit { .. } | CtlMsg::DoDissolve { .. } => {
                // Arrive via leaf broadcast, not direct; ignore here.
                up.bump("hier.ctl.misrouted");
            }
            other => {
                // Rep- or leader-addressed control traffic.
                self.rep_or_leader_ctl(from, other, up);
            }
        }
    }

    /// Merges freshly learned leader contacts into the member state.
    pub(crate) fn refresh_leader_contacts(&mut self, lgid: LargeGroupId, contacts: &[Pid]) {
        if let Some(ms) = self.members.get_mut(&lgid) {
            for &c in contacts {
                if !ms.leader_contacts.contains(&c) {
                    ms.leader_contacts.insert(0, c);
                }
            }
            ms.leader_contacts.truncate(6);
        }
    }

    /// Migration step for split/dissolve decisions delivered by leaf
    /// broadcast.
    pub(crate) fn member_handle_migration(
        &mut self,
        lgid: LargeGroupId,
        target: GroupId,
        contact: Option<Pid>,
        im_mover: bool,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        if !im_mover {
            return;
        }
        let Some(ms) = self.members.get_mut(&lgid) else {
            return;
        };
        ms.migrating_to = Some((target, contact));
        ms.old_leaf = ms.leaf;
        let from = ms.leaf;
        self.with_biz(up, None, |biz, lup| {
            biz.on_migrating(lgid, from, target, lup);
        });
        match contact {
            None => up.create_group(target),
            Some(c) => up.join(target, c),
        }
    }

    /// Leaf view bookkeeping: admission completion, rep transitions,
    /// migration completion, contact reporting.
    pub(crate) fn member_on_leaf_view(
        &mut self,
        lgid: LargeGroupId,
        view: &GroupView,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let me = up.me();
        let Some(ms) = self.members.get_mut(&lgid) else {
            return;
        };

        // Migration completion: we are now in the target leaf.
        if let Some((target, _)) = ms.migrating_to {
            if view.gid == target && view.contains(me) {
                let old = ms.old_leaf.take();
                ms.migrating_to = None;
                ms.leaf = Some(target);
                ms.assigned = true;
                if let Some(old_leaf) = old {
                    if old_leaf != target {
                        up.leave(old_leaf);
                    }
                }
            }
        }

        if ms.leaf != Some(view.gid) {
            // A view for a leaf we no longer occupy (e.g. the old leaf
            // during migration): ignore for bookkeeping.
            return;
        }
        ms.leaf_members = view.members.clone();
        let newly_joined = !ms.joined && view.contains(me);
        if newly_joined {
            ms.joined = true;
            if up.incarnation() > 0 {
                let (tl, leaf) = (u64::from(lgid.0), view.gid.0);
                let incarnation = u64::from(up.incarnation());
                up.trace_with(|| TraceKind::RejoinComplete { lgid: tl, leaf, incarnation });
            }
        }

        // Rep transition.
        let am_rep = view.coordinator() == me;
        let was_rep = self.reps.contains_key(&lgid);
        if am_rep != was_rep {
            let (tl, leaf) = (u64::from(lgid.0), view.gid.0);
            up.trace_with(|| TraceKind::RepChange { lgid: tl, leaf, promoted: am_rep });
        }
        if am_rep && !was_rep {
            let mut rs = RepState::new(view.gid);
            // Continue the sequence from what this member has delivered,
            // so a new (possibly root) rep never reuses old numbers.
            rs.next_expected = ms.max_lseq_seen + 1;
            rs.next_lseq = ms.max_lseq_seen + 1;
            self.reps.insert(lgid, rs);
        } else if !am_rep && was_rep {
            self.reps.remove(&lgid);
            self.slices_cache.remove(&lgid);
        }
        if let Some(rep) = self.reps.get_mut(&lgid) {
            rep.leaf = view.gid;
        }

        // Any leaf view change at the rep: tell the leader (one message;
        // the failure itself was handled entirely inside the leaf).
        if am_rep {
            let contacts = contact_prefix(view, 4);
            let size = view.size();
            if let Some(lc) = self.leader_contact(lgid) {
                up.direct(
                    lc,
                    HierPayload::Ctl(CtlMsg::ContactsUpdate {
                        lgid,
                        leaf: view.gid,
                        contacts,
                        size,
                    }),
                );
            }
        }

        // E7 invariant probe: member-role *routing* storage (leaf cache +
        // rep routing slice; leader replicas are deliberately O(leaves) and
        // excluded, as is load-proportional in-flight tracking — see
        // `RepState::routing_storage_bytes`) must stay bounded by the
        // structural parameters.
        if up.tracing() {
            let bytes = (16
                + 4 * view.members.len()
                + self.reps.get(&lgid).map_or(0, RepState::routing_storage_bytes))
                as u64;
            let bound = (200 + 16 * self.timers.max_leaf + 48 * self.timers.fanout) as u64;
            let tl = u64::from(lgid.0);
            up.trace_with(|| TraceKind::StorageSample { lgid: tl, bytes, bound });
        }

        let v = view.clone();
        if newly_joined {
            self.with_biz(up, Some(&v), |biz, lup| {
                biz.on_joined_large(lgid, v.gid, lup);
            });
        }
        let v2 = view.clone();
        self.with_biz(up, Some(&v2), |biz, lup| {
            biz.on_leaf_view(lgid, &v2, lup);
        });
    }

    /// Periodic member housekeeping: join retries, submit retries,
    /// migration retries.
    pub(crate) fn member_tick(&mut self, up: &mut Uplink<'_, '_, Self>) {
        let now = up.now();
        let retry = self.timers.repair_timeout;
        let join_retry = self.timers.leaf_dead_timeout; // Reuse: generous.
        let lgids: Vec<LargeGroupId> = self.members.keys().copied().collect();
        for lgid in lgids {
            // Join retries: unassigned members re-ask the leader; assigned
            // members retry entering their leaf, falling back to the
            // leader after repeated failures (stale contacts, founder
            // crash).
            enum Retry {
                AskLeader(Pid),
                EnterLeaf(GroupId, Option<Pid>),
            }
            let action = {
                let ms = self.members.get_mut(&lgid).expect("key just listed");
                if ms.joined || now.since(ms.last_join_try) < join_retry {
                    None
                } else if !ms.assigned {
                    ms.last_join_try = now;
                    Some(Retry::AskLeader(ms.join_contact))
                } else {
                    ms.last_join_try = now;
                    ms.assign_attempts += 1;
                    if ms.assign_attempts > 5 {
                        // Give up on this assignment; re-ask the leader.
                        ms.assigned = false;
                        ms.leaf = None;
                        Some(Retry::AskLeader(ms.join_contact))
                    } else {
                        ms.leaf.map(|l| Retry::EnterLeaf(l, ms.assign_contact))
                    }
                }
            };
            match action {
                Some(Retry::AskLeader(contact)) => {
                    up.direct(contact, HierPayload::Ctl(CtlMsg::JoinLargeReq { lgid }));
                }
                Some(Retry::EnterLeaf(leaf, Some(c))) => up.join(leaf, c),
                Some(Retry::EnterLeaf(leaf, None)) => up.create_group(leaf),
                None => {}
            }

            // Migration retries (target join may have been denied while the
            // founder was still creating the group). Paced, since each
            // attempt costs a join round-trip.
            let migrate = {
                let ms = self.members.get_mut(&lgid).expect("key just listed");
                match ms.migrating_to {
                    Some((target, Some(c))) if now.since(ms.last_migrate_try) >= retry => {
                        ms.last_migrate_try = now;
                        ms.migrate_attempts += 1;
                        if ms.migrate_attempts > 10 {
                            // Abandon the migration; we are still a member
                            // of our old leaf, and the leader will retry
                            // the structural change if it still matters.
                            ms.migrating_to = None;
                            ms.old_leaf = None;
                            ms.migrate_attempts = 0;
                            None
                        } else {
                            Some((target, c))
                        }
                    }
                    _ => None,
                }
            };
            if let Some((target, c)) = migrate {
                up.join(target, c);
            }

            // Submit retries for unresilient broadcasts.
            let due: Vec<(LbcastId, B::Payload)> = {
                let ms = self.members.get_mut(&lgid).expect("key just listed");
                ms.out
                    .iter_mut()
                    .filter(|(_, o)| !o.resilient && now.since(o.last_try) >= retry)
                    .map(|(id, o)| {
                        o.last_try = now;
                        o.attempts += 1;
                        (*id, o.payload.clone())
                    })
                    .collect()
            };
            for (id, payload) in due {
                up.bump("hier.submit.retry");
                self.route_submit(lgid, id, payload, up);
            }
        }
    }
}

/// The first `k` members of a view (its contact set).
pub(crate) fn contact_prefix(view: &GroupView, k: usize) -> Vec<Pid> {
    view.members.iter().copied().take(k).collect()
}

// ----------------------------------------------------------------------
// isis-core Application implementation
// ----------------------------------------------------------------------

impl<B: LargeApp> Application for HierApp<B> {
    type Payload = HierPayload<B::Payload>;
    type State = HierState<B::LeafState>;

    fn on_start(&mut self, up: &mut Uplink<'_, '_, Self>) {
        up.set_app_timer(self.timers.tick, HIER_TICK);
        self.with_biz(up, None, |biz, lup| biz.on_start(lup));
    }

    fn on_deliver(
        &mut self,
        gid: GroupId,
        from: Pid,
        kind: CastKind,
        payload: &Self::Payload,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let lgid = LargeGroupId::of_gid(gid);
        match payload {
            HierPayload::Cmd(cmd) => {
                if lgid.is_some_and(|l| l.is_leader_gid(gid)) {
                    self.leader_apply(cmd.clone(), up);
                } else {
                    up.bump("hier.cmd.misrouted");
                }
            }
            HierPayload::Tree(TreeMsg::LeafDeliver {
                lgid,
                lseq,
                id,
                ack_to,
                payload,
                ..
            }) => {
                let (lgid, lseq, id, ack_to) = (*lgid, *lseq, *id, *ack_to);
                let p = payload.clone();
                let view = up.view().cloned();
                self.rep_note_own_leaf_delivery(lgid, lseq, up);
                self.member_deliver_lbcast(lgid, lseq, id, ack_to, &p, view.as_ref(), up);
            }
            HierPayload::Tree(_) => up.bump("hier.tree.misrouted"),
            HierPayload::Ctl(CtlMsg::DoSplit {
                lgid,
                new_leaf,
                movers,
                leader_contacts,
            }) => {
                self.refresh_leader_contacts(*lgid, leader_contacts);
                let im_mover = movers.contains(&up.me());
                let founder = movers.first().copied();
                let contact = if founder == Some(up.me()) {
                    None
                } else {
                    founder
                };
                self.member_handle_migration(*lgid, *new_leaf, contact, im_mover, up);
            }
            HierPayload::Ctl(CtlMsg::DoDissolve {
                lgid,
                target,
                target_contacts,
                leader_contacts,
            }) => {
                self.refresh_leader_contacts(*lgid, leader_contacts);
                let contact = target_contacts.first().copied();
                self.member_handle_migration(*lgid, *target, contact, true, up);
            }
            HierPayload::Ctl(_) => up.bump("hier.ctl.misrouted"),
            HierPayload::Biz(q) => {
                let q = q.clone();
                let view = up.view().cloned();
                self.with_biz(up, view.as_ref(), |biz, lup| {
                    biz.on_leaf_cast(gid, from, kind, &q, lup);
                });
            }
        }
    }

    fn on_direct(&mut self, from: Pid, payload: &Self::Payload, up: &mut Uplink<'_, '_, Self>) {
        match payload {
            HierPayload::Biz(q) => {
                let q = q.clone();
                self.with_biz(up, None, |biz, lup| biz.on_direct(from, &q, lup));
            }
            HierPayload::Tree(tm) => self.rep_handle_tree(from, tm.clone(), up),
            HierPayload::Ctl(cm) => self.member_handle_ctl(from, cm.clone(), up),
            HierPayload::Cmd(_) => up.bump("hier.cmd.misrouted"),
        }
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, up: &mut Uplink<'_, '_, Self>) {
        let gid = view.gid;
        match LargeGroupId::of_gid(gid) {
            Some(lgid) if lgid.is_leader_gid(gid) => self.leader_on_view(lgid, view, up),
            Some(lgid) => self.member_on_leaf_view(lgid, view, up),
            None => {
                // A plain isis group the business uses directly.
                let v = view.clone();
                self.with_biz(up, Some(&v), |biz, lup| {
                    biz.on_leaf_view(LargeGroupId(u32::MAX), &v, lup);
                });
            }
        }
    }

    fn on_left(&mut self, gid: GroupId, up: &mut Uplink<'_, '_, Self>) {
        let Some(lgid) = LargeGroupId::of_gid(gid) else {
            return;
        };
        if lgid.is_leader_gid(gid) {
            self.leaders.remove(&lgid);
            return;
        }
        // Leaving the old leaf of a migration is expected; anything else
        // means we fell out of the large group.
        let expected = self
            .members
            .get(&lgid)
            .is_some_and(|ms| ms.old_leaf == Some(gid) || ms.leaf != Some(gid));
        if !expected {
            self.members.remove(&lgid);
            self.reps.remove(&lgid);
            self.with_biz(up, None, |biz, lup| biz.on_left_large(lgid, lup));
        }
    }

    fn on_join_denied(&mut self, gid: GroupId, up: &mut Uplink<'_, '_, Self>) {
        // A migration target may not exist yet; the member tick retries.
        up.bump("hier.join.leaf_denied");
        let _ = gid;
    }

    fn on_app_timer(&mut self, kind: u32, up: &mut Uplink<'_, '_, Self>) {
        if kind == HIER_TICK {
            up.set_app_timer(self.timers.tick, HIER_TICK);
            self.member_tick(up);
            self.rep_tick(up);
            self.leader_tick(up);
            return;
        }
        let biz_kind = kind - BIZ_TIMER_BASE;
        self.with_biz(up, None, |biz, lup| biz.on_timer(biz_kind, lup));
    }

    fn export_state(&self, gid: GroupId) -> Self::State {
        match LargeGroupId::of_gid(gid) {
            Some(lgid) if lgid.is_leader_gid(gid) => match self.leaders.get(&lgid) {
                Some(r) => r.snapshot(),
                None => HierState::None,
            },
            Some(lgid) => HierState::Leaf(self.biz.export_leaf_state(lgid, gid)),
            None => HierState::None,
        }
    }

    fn import_state(&mut self, gid: GroupId, state: Self::State) {
        match state {
            HierState::None => {}
            HierState::Leaf(s) => {
                if let Some(lgid) = LargeGroupId::of_gid(gid) {
                    self.biz.import_leaf_state(lgid, gid, s);
                }
            }
            HierState::Leader {
                view,
                next_slot,
                resiliency,
                min_leaf,
                max_leaf,
            } => {
                let lgid = view.lgid;
                self.leaders
                    .insert(lgid, LeaderReplica::from_snapshot(view, next_slot, resiliency, min_leaf, max_leaf));
            }
        }
    }

    fn payload_bytes(p: &Self::Payload) -> usize {
        match p {
            HierPayload::Biz(q) => B::payload_bytes(q),
            HierPayload::Tree(TreeMsg::Submit { payload, .. }) => 32 + B::payload_bytes(payload),
            HierPayload::Tree(TreeMsg::Forward { payload, .. })
            | HierPayload::Tree(TreeMsg::LeafDeliver { payload, .. }) => {
                48 + B::payload_bytes(payload)
            }
            HierPayload::Tree(_) => 32,
            HierPayload::Ctl(CtlMsg::HierPush { view: v, .. }) => 16 + v.storage_bytes(),
            HierPayload::Ctl(_) => 48,
            HierPayload::Cmd(_) => 64,
        }
    }

    fn state_bytes(s: &Self::State) -> usize {
        match s {
            HierState::None => 8,
            HierState::Leaf(_) => 256,
            HierState::Leader { view, .. } => 32 + view.storage_bytes(),
        }
    }
}

impl<B: LargeApp> HierApp<B> {
    /// Debug helper: `(epoch, my_index, parent_gid, parent_rep)` of this
    /// process's routing slice, if it is a representative.
    pub fn debug_slice(&self, lgid: LargeGroupId) -> Option<(u64, usize, Option<u64>, Option<Pid>)> {
        let r = self.reps.get(&lgid)?;
        let s = r.slice.as_ref();
        Some((
            s.map_or(0, |s| s.epoch),
            s.map_or(usize::MAX, |s| s.my_index),
            s.and_then(|s| s.parent.as_ref().map(|p| p.gid.0 & 0xffff)),
            r.parent_rep,
        ))
    }
}
