//! Identifier scheme for large groups.
//!
//! Each large group owns a 32-bit namespace of underlying `isis-core` group
//! ids: the leader group at slot 0, leaf groups at slots minted by the
//! leader. Plain (non-hierarchical) groups can keep using small raw ids
//! without collision because large-group ids start at 1.

use std::fmt;

use isis_core::GroupId;

/// Names a large (hierarchical) group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LargeGroupId(pub u32);

impl LargeGroupId {
    /// The underlying group id of this large group's *leader group* — the
    /// resilient small group that manages the hierarchy (section 3 of the
    /// paper: "a new resilient group, called the group leader").
    pub fn leader_gid(self) -> GroupId {
        assert!(self.0 >= 1, "large group ids start at 1");
        GroupId((self.0 as u64) << 32)
    }

    /// The underlying group id of leaf number `slot` (slots start at 1).
    pub fn leaf_gid(self, slot: u32) -> GroupId {
        assert!(self.0 >= 1, "large group ids start at 1");
        assert!(slot >= 1, "leaf slots start at 1");
        GroupId(((self.0 as u64) << 32) | slot as u64)
    }

    /// Recovers the large group a low-level gid belongs to, if any.
    pub fn of_gid(gid: GroupId) -> Option<LargeGroupId> {
        let hi = (gid.0 >> 32) as u32;
        if hi >= 1 {
            Some(LargeGroupId(hi))
        } else {
            None
        }
    }

    /// Whether `gid` is this large group's leader group.
    pub fn is_leader_gid(self, gid: GroupId) -> bool {
        gid == self.leader_gid()
    }

    /// Whether `gid` is a leaf of this large group.
    pub fn is_leaf_gid(self, gid: GroupId) -> bool {
        LargeGroupId::of_gid(gid) == Some(self) && (gid.0 & 0xFFFF_FFFF) >= 1
    }
}

impl fmt::Debug for LargeGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LargeGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies one large-group broadcast: origin plus origin-local sequence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LbcastId {
    /// Originating process.
    pub origin: now_sim::Pid,
    /// Origin-local sequence number (1-based).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_namespace_round_trips() {
        let l = LargeGroupId(3);
        assert_eq!(LargeGroupId::of_gid(l.leader_gid()), Some(l));
        assert_eq!(LargeGroupId::of_gid(l.leaf_gid(7)), Some(l));
        assert!(l.is_leader_gid(l.leader_gid()));
        assert!(!l.is_leaf_gid(l.leader_gid()));
        assert!(l.is_leaf_gid(l.leaf_gid(1)));
        assert!(!l.is_leaf_gid(LargeGroupId(4).leaf_gid(1)));
    }

    #[test]
    fn plain_group_ids_are_outside_the_namespace() {
        assert_eq!(LargeGroupId::of_gid(GroupId(1)), None);
        assert_eq!(LargeGroupId::of_gid(GroupId(0xFFFF_FFFF)), None);
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn lgid_zero_is_reserved() {
        let _ = LargeGroupId(0).leader_gid();
    }

    #[test]
    #[should_panic(expected = "slots start at 1")]
    fn leaf_slot_zero_is_the_leader() {
        let _ = LargeGroupId(1).leaf_gid(0);
    }

    #[test]
    fn distinct_leaves_get_distinct_gids() {
        let l = LargeGroupId(2);
        assert_ne!(l.leaf_gid(1), l.leaf_gid(2));
        assert_ne!(l.leaf_gid(1), LargeGroupId(3).leaf_gid(1));
    }
}
