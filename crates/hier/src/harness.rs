//! Harness utilities: a recording business application and builders that
//! assemble complete large groups inside a simulation. Used by this
//! crate's tests, the toolkit, and the experiment binaries.

use now_sim::{Pid, Sim, SimConfig, SimDuration, SimTime};

use isis_core::{CastKind, GroupId, GroupView, IsisConfig, IsisProcess};

use crate::business::{LargeApp, LargeUplink};
use crate::config::LargeGroupConfig;
use crate::ids::{LargeGroupId, LbcastId};
use crate::member::HierApp;
use crate::msg::LbcastStatus;

/// A business application that records everything, for tests and
/// experiments.
#[derive(Default, Debug)]
pub struct RecorderBiz {
    /// Large-group broadcasts delivered, in delivery order.
    pub lbcasts: Vec<(LargeGroupId, Pid, String)>,
    /// Intra-leaf casts delivered.
    pub leaf_casts: Vec<(GroupId, Pid, String)>,
    /// Direct messages.
    pub directs: Vec<(Pid, String)>,
    /// Large groups joined (with the assigned leaf).
    pub joined: Vec<(LargeGroupId, GroupId)>,
    /// Large groups left.
    pub left: Vec<LargeGroupId>,
    /// Status reports for our own broadcasts.
    pub statuses: Vec<(LbcastId, LbcastStatus)>,
    /// Leaf state installed at join, if any.
    pub imported: Option<Vec<String>>,
}

impl RecorderBiz {
    /// Payloads of delivered large-group broadcasts for `lgid`, in order.
    pub fn lbcast_payloads(&self, lgid: LargeGroupId) -> Vec<String> {
        self.lbcasts
            .iter()
            .filter(|(l, _, _)| *l == lgid)
            .map(|(_, _, p)| p.clone())
            .collect()
    }
}

impl LargeApp for RecorderBiz {
    type Payload = String;
    type LeafState = Vec<String>;

    fn on_lbcast(
        &mut self,
        lgid: LargeGroupId,
        origin: Pid,
        payload: &String,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.lbcasts.push((lgid, origin, payload.clone()));
    }

    fn on_leaf_cast(
        &mut self,
        leaf: GroupId,
        from: Pid,
        _kind: CastKind,
        payload: &String,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.leaf_casts.push((leaf, from, payload.clone()));
    }

    fn on_direct(&mut self, from: Pid, payload: &String, _up: &mut LargeUplink<'_, '_, '_, Self>) {
        self.directs.push((from, payload.clone()));
    }

    fn on_joined_large(
        &mut self,
        lgid: LargeGroupId,
        leaf: GroupId,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.joined.push((lgid, leaf));
    }

    fn on_left_large(&mut self, lgid: LargeGroupId, _up: &mut LargeUplink<'_, '_, '_, Self>) {
        self.left.push(lgid);
    }

    fn on_lbcast_status(
        &mut self,
        _lgid: LargeGroupId,
        id: LbcastId,
        status: LbcastStatus,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.statuses.push((id, status));
    }

    fn export_leaf_state(&self, lgid: LargeGroupId, _leaf: GroupId) -> Vec<String> {
        self.lbcast_payloads(lgid)
    }

    fn import_leaf_state(&mut self, _lgid: LargeGroupId, _leaf: GroupId, state: Vec<String>) {
        self.imported = Some(state);
    }

    fn payload_bytes(p: &String) -> usize {
        p.len()
    }
}

/// The simulated process type of a hierarchical deployment.
pub type HierProc = IsisProcess<HierApp<RecorderBiz>>;

/// Builds a large group of `n` members over an arbitrary business
/// application type, and waits for formation. Returns
/// `(sim, leader pids, member pids)`; the large group id is
/// [`LargeGroupId`]`(1)`.
///
/// The factory is called for every process: first for the
/// `cfg.resiliency` leader-group members (indices `0..r`), then for the
/// `n` members.
pub fn generic_large_cluster<B: LargeApp>(
    n: usize,
    cfg: LargeGroupConfig,
    icfg: IsisConfig,
    scfg: SimConfig,
    mut mk: impl FnMut(usize) -> B,
) -> (Sim<IsisProcess<HierApp<B>>>, Vec<Pid>, Vec<Pid>) {
    let lgid = LargeGroupId(1);
    let mut sim: Sim<IsisProcess<HierApp<B>>> = Sim::new(scfg);
    let nleaders = cfg.resiliency.max(1);
    let leaders: Vec<Pid> = (0..nleaders)
        .map(|i| {
            let nd = sim.add_nodes(1)[0];
            sim.spawn(
                nd,
                IsisProcess::new(HierApp::with_timers(mk(i), cfg.clone()), icfg.clone()),
            )
        })
        .collect();
    let cfg2 = cfg.clone();
    sim.invoke(leaders[0], move |p, ctx| {
        p.with_app(ctx, move |app, up| app.create_large(lgid, cfg2, up));
    });
    for &l in &leaders[1..] {
        let contact = leaders[0];
        sim.invoke(l, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.join_leader_group(lgid, contact, up));
        });
    }
    let deadline = sim.now() + SimDuration::from_secs(60);
    while sim.now() < deadline {
        let formed = leaders.iter().all(|&l| {
            sim.process(l)
                .view_of(lgid.leader_gid())
                .is_some_and(|v| v.size() == nleaders)
        });
        if formed {
            break;
        }
        assert!(sim.step(), "leader group never formed");
    }
    let members: Vec<Pid> = (0..n)
        .map(|i| {
            let nd = sim.add_nodes(1)[0];
            let p = sim.spawn(
                nd,
                IsisProcess::new(
                    HierApp::with_timers(mk(nleaders + i), cfg.clone()),
                    icfg.clone(),
                ),
            );
            let contact = leaders[0];
            sim.invoke(p, move |proc_, ctx| {
                proc_.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
            });
            p
        })
        .collect();
    let deadline = sim.now() + SimDuration::from_secs(1_200);
    loop {
        let joined = members
            .iter()
            .all(|&m| sim.process(m).app().is_large_member(lgid));
        let accounted = sim
            .process(leaders[0])
            .app()
            .leader_view(lgid)
            .is_some_and(|v| v.total_members() == n);
        if joined && accounted {
            return (sim, leaders, members);
        }
        if sim.now() >= deadline {
            panic!(
                "generic large cluster of {n} failed to form (joined={}, accounted={:?})",
                members
                    .iter()
                    .filter(|&&m| sim.process(m).app().is_large_member(lgid))
                    .count(),
                sim.process(leaders[0])
                    .app()
                    .leader_view(lgid)
                    .map(|v| v.total_members()),
            );
        }
        if !sim.step() {
            sim.run_for(SimDuration::from_millis(100));
        }
    }
}

/// A fully formed large group inside a simulation.
pub struct LargeCluster {
    /// The simulator.
    pub sim: Sim<HierProc>,
    /// The large group id.
    pub lgid: LargeGroupId,
    /// Leader-group member pids.
    pub leaders: Vec<Pid>,
    /// Large-group member pids, in join order.
    pub members: Vec<Pid>,
    /// The structural configuration used.
    pub cfg: LargeGroupConfig,
}

/// Builds a large group of `n` members managed by a `cfg.resiliency`-sized
/// leader group, over an ideal network, and waits for formation.
pub fn large_cluster(n: usize, cfg: LargeGroupConfig, seed: u64) -> LargeCluster {
    large_cluster_with(n, cfg, IsisConfig::default(), SimConfig::ideal(seed))
}

/// Like [`large_cluster`] but over a LAN latency model.
pub fn large_cluster_lan(n: usize, cfg: LargeGroupConfig, seed: u64) -> LargeCluster {
    large_cluster_with(n, cfg, IsisConfig::default(), SimConfig::lan(seed))
}

/// Fully parameterised builder.
pub fn large_cluster_with(
    n: usize,
    cfg: LargeGroupConfig,
    icfg: IsisConfig,
    scfg: SimConfig,
) -> LargeCluster {
    let lgid = LargeGroupId(1);
    let mut sim: Sim<HierProc> = Sim::new(scfg);

    // Leader group.
    let nleaders = cfg.resiliency.max(1);
    let leaders: Vec<Pid> = (0..nleaders)
        .map(|_| {
            let nd = sim.add_nodes(1)[0];
            sim.spawn(
                nd,
                IsisProcess::new(
                    HierApp::with_timers(RecorderBiz::default(), cfg.clone()),
                    icfg.clone(),
                ),
            )
        })
        .collect();
    let cfg2 = cfg.clone();
    sim.invoke(leaders[0], move |p, ctx| {
        p.with_app(ctx, move |app, up| app.create_large(lgid, cfg2, up));
    });
    for &l in &leaders[1..] {
        let contact = leaders[0];
        sim.invoke(l, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.join_leader_group(lgid, contact, up));
        });
    }
    // Let the leader group form.
    let deadline = sim.now() + SimDuration::from_secs(60);
    while sim.now() < deadline {
        let formed = leaders.iter().all(|&l| {
            sim.process(l)
                .view_of(lgid.leader_gid())
                .is_some_and(|v| v.size() == nleaders)
        });
        if formed {
            break;
        }
        assert!(sim.step(), "leader group never formed");
    }

    // Members join through the active leader.
    let members: Vec<Pid> = (0..n)
        .map(|_| {
            let nd = sim.add_nodes(1)[0];
            sim.spawn(
                nd,
                IsisProcess::new(
                    HierApp::with_timers(RecorderBiz::default(), cfg.clone()),
                    icfg.clone(),
                ),
            )
        })
        .collect();
    for &m in &members {
        let contact = leaders[0];
        sim.invoke(m, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
        });
    }

    // A restarted workstation comes back as a brand-new process: same pid,
    // fresh incarnation, empty protocol and business state. Everything it
    // knew must be re-learned through rejoin + state transfer.
    let (rcfg, ricfg) = (cfg.clone(), icfg.clone());
    sim.set_respawn(move |_pid| {
        IsisProcess::new(
            HierApp::with_timers(RecorderBiz::default(), rcfg.clone()),
            ricfg.clone(),
        )
    });

    let mut c = LargeCluster {
        sim,
        lgid,
        leaders,
        members,
        cfg,
    };
    c.await_formation(SimDuration::from_secs(600));
    c
}

impl LargeCluster {
    /// Runs until every member completed admission and the leader's view
    /// accounts for all of them.
    pub fn await_formation(&mut self, limit: SimDuration) {
        let lgid = self.lgid;
        let want = self.members.iter().filter(|&&m| self.sim.is_alive(m)).count();
        let deadline = self.sim.now() + limit;
        loop {
            let joined = self
                .members
                .iter()
                .filter(|&&m| self.sim.is_alive(m))
                .all(|&m| self.sim.process(m).app().is_large_member(lgid));
            let accounted = self
                .leader_hier_view()
                .is_some_and(|v| v.total_members() == want);
            if joined && accounted {
                return;
            }
            if self.sim.now() >= deadline {
                panic!(
                    "large group did not form by {}: joined={} accounted={:?}",
                    self.sim.now(),
                    self.members
                        .iter()
                        .filter(|&&m| {
                            self.sim.is_alive(m)
                                && self.sim.process(m).app().is_large_member(lgid)
                        })
                        .count(),
                    self.leader_hier_view().map(|v| (v.num_leaves(), v.total_members())),
                );
            }
            if !self.sim.step() {
                self.sim.run_for(SimDuration::from_millis(200));
            }
        }
    }

    /// The hierarchy view held by the first live leader member.
    pub fn leader_hier_view(&self) -> Option<&crate::view::HierView> {
        self.leaders
            .iter()
            .find(|&&l| self.sim.is_alive(l))
            .and_then(|&l| self.sim.process(l).app().leader_view(self.lgid))
    }

    /// Broadcasts from `origin` to the whole large group.
    pub fn lbcast(&mut self, origin: Pid, payload: &str) -> Option<LbcastId> {
        let lgid = self.lgid;
        let pl = payload.to_owned();
        self.sim
            .invoke(origin, move |p, ctx| {
                p.with_app(ctx, move |app, up| app.lbcast(lgid, pl, up))
            })
            .flatten()
    }

    /// Runs the simulation for `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Live member pids.
    pub fn live_members(&self) -> Vec<Pid> {
        self.members
            .iter()
            .copied()
            .filter(|&m| self.sim.is_alive(m))
            .collect()
    }

    /// Broadcast payload logs of all live members.
    pub fn lbcast_logs(&self) -> Vec<(Pid, Vec<String>)> {
        self.live_members()
            .iter()
            .map(|&m| {
                (
                    m,
                    self.sim.process(m).app().biz().lbcast_payloads(self.lgid),
                )
            })
            .collect()
    }

    /// Asserts every live member delivered the same broadcast payloads in
    /// the same order.
    pub fn assert_uniform_lbcast_logs(&self) {
        let logs = self.lbcast_logs();
        let Some((p0, first)) = logs.first() else {
            return;
        };
        for (p, log) in &logs[1..] {
            assert_eq!(log, first, "lbcast logs diverge between {p0} and {p}");
        }
    }

    /// Restarts a crashed process under a fresh incarnation and immediately
    /// starts its rejoin through the first live leader. Returns the new
    /// incarnation number, or `None` (a no-op) if the pid is still alive.
    /// A former leader-group member comes back as a plain leaf member —
    /// roles are re-earned, never resumed.
    ///
    /// The recovered workstation re-enters as a leaf of whatever leaf group
    /// the leader assigns — possibly a different one than before its crash —
    /// and re-earns any rep role through ordinary view coordination.
    pub fn restart_member(&mut self, m: Pid) -> Option<u32> {
        let inc = self.sim.restart(m)?;
        let lgid = self.lgid;
        if let Some(contact) = self.leaders.iter().copied().find(|&l| self.sim.is_alive(l)) {
            self.sim.invoke(m, move |p, ctx| {
                p.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
            });
        }
        Some(inc)
    }

    /// The member currently acting as root representative, if any.
    pub fn root_rep(&self) -> Option<Pid> {
        let v = self.leader_hier_view()?;
        v.root().and_then(|l| l.rep())
    }

    /// The leaf (isis) view a member currently belongs to.
    pub fn leaf_view_of(&self, m: Pid) -> Option<GroupView> {
        let leaf = self.sim.process(m).app().leaf_of(self.lgid)?;
        self.sim.process(m).view_of(leaf).cloned()
    }
}
