//! The group name service (section 5 of the paper: "we are also
//! addressing the issues of group name-to-address mapping in the large
//! scale setting").
//!
//! A small resilient ISIS group of name servers replicates the mapping
//! *symbolic name → (large group id, leader contacts)* via ABCAST, so
//! every server answers identically and the service survives
//! `resiliency - 1` server failures. Clients resolve with a direct
//! request/reply against any server and cache the result; leader-contact
//! churn is handled by re-resolution (contacts are only entry points —
//! the admission protocol tolerates stale ones by retrying).

use std::collections::{BTreeMap};

use now_sim::Pid;

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};

use crate::ids::LargeGroupId;

/// Wire payload of the name service.
#[derive(Clone, Debug)]
pub enum NameMsg {
    /// Replicated registration (ABCAST within the server group).
    Bind {
        name: String,
        lgid: LargeGroupId,
        leader_contacts: Vec<Pid>,
    },
    /// Replicated removal.
    Unbind { name: String },
    /// Client → any server (direct).
    Resolve { name: String, ticket: u64 },
    /// Server → client (direct).
    Resolved {
        ticket: u64,
        entry: Option<(LargeGroupId, Vec<Pid>)>,
    },
}

/// A name-server member or a resolving client (one application serves
/// both roles, like the other tools).
#[derive(Default)]
pub struct NameService {
    /// The server group (None until the first view).
    group: Option<GroupId>,
    /// The replicated bindings.
    table: BTreeMap<String, (LargeGroupId, Vec<Pid>)>,
    // Client side.
    next_ticket: u64,
    /// Answers received: ticket → entry.
    pub answers: BTreeMap<u64, Option<(LargeGroupId, Vec<Pid>)>>,
}

impl NameService {
    /// Creates an empty instance.
    pub fn new() -> NameService {
        NameService::default()
    }

    /// Server: registers (or overwrites) a binding, replicated to every
    /// server in total order.
    pub fn bind(
        &mut self,
        name: &str,
        lgid: LargeGroupId,
        leader_contacts: Vec<Pid>,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let Some(gid) = self.group else { return };
        up.cast(
            gid,
            CastKind::Total,
            NameMsg::Bind {
                name: name.to_owned(),
                lgid,
                leader_contacts,
            },
        );
    }

    /// Server: removes a binding.
    pub fn unbind(&mut self, name: &str, up: &mut Uplink<'_, '_, Self>) {
        let Some(gid) = self.group else { return };
        up.cast(
            gid,
            CastKind::Total,
            NameMsg::Unbind {
                name: name.to_owned(),
            },
        );
    }

    /// Client: asks `server` to resolve `name`; the reply lands in
    /// [`NameService::answers`] under the returned ticket.
    pub fn resolve(&mut self, server: Pid, name: &str, up: &mut Uplink<'_, '_, Self>) -> u64 {
        self.next_ticket += 1;
        let ticket = self.next_ticket;
        up.direct(
            server,
            NameMsg::Resolve {
                name: name.to_owned(),
                ticket,
            },
        );
        ticket
    }

    /// The replicated table (server side), for inspection.
    pub fn table(&self) -> &BTreeMap<String, (LargeGroupId, Vec<Pid>)> {
        &self.table
    }
}

impl Application for NameService {
    type Payload = NameMsg;
    type State = Vec<(String, LargeGroupId, Vec<Pid>)>;

    fn on_deliver(
        &mut self,
        _gid: GroupId,
        _from: Pid,
        _kind: CastKind,
        payload: &NameMsg,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        match payload {
            NameMsg::Bind {
                name,
                lgid,
                leader_contacts,
            } => {
                self.table
                    .insert(name.clone(), (*lgid, leader_contacts.clone()));
            }
            NameMsg::Unbind { name } => {
                self.table.remove(name);
            }
            // Request/reply traffic travels point-to-point, never through
            // the replicated cast stream; count rather than drop silently.
            NameMsg::Resolve { .. } | NameMsg::Resolved { .. } => {
                up.bump("name.misrouted_cast");
            }
        }
    }

    fn on_direct(&mut self, from: Pid, payload: &NameMsg, up: &mut Uplink<'_, '_, Self>) {
        match payload {
            NameMsg::Resolve { name, ticket } => {
                up.direct(
                    from,
                    NameMsg::Resolved {
                        ticket: *ticket,
                        entry: self.table.get(name).cloned(),
                    },
                );
            }
            NameMsg::Resolved { ticket, entry } => {
                self.answers.insert(*ticket, entry.clone());
            }
            // Replicated table updates only arrive via the ABCAST stream;
            // a direct Bind/Unbind is a protocol error worth counting.
            NameMsg::Bind { .. } | NameMsg::Unbind { .. } => {
                up.bump("name.misrouted_direct");
            }
        }
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, _up: &mut Uplink<'_, '_, Self>) {
        self.group = Some(view.gid);
    }

    fn export_state(&self, _gid: GroupId) -> Self::State {
        self.table
            .iter()
            .map(|(n, (l, c))| (n.clone(), *l, c.clone()))
            .collect()
    }

    fn import_state(&mut self, _gid: GroupId, state: Self::State) {
        self.table = state
            .into_iter()
            .map(|(n, l, c)| (n, (l, c)))
            .collect();
    }

    fn payload_bytes(p: &NameMsg) -> usize {
        16 + match p {
            NameMsg::Bind {
                name,
                leader_contacts,
                ..
            } => name.len() + 4 * leader_contacts.len(),
            NameMsg::Unbind { name } | NameMsg::Resolve { name, .. } => name.len(),
            NameMsg::Resolved { entry, .. } => {
                entry.as_ref().map_or(1, |(_, c)| 12 + 4 * c.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::testutil::generic_cluster;
    use isis_core::{IsisConfig, IsisProcess};
    use now_sim::{Sim, SimConfig, SimDuration};

    const NS_GID: GroupId = GroupId(100);

    fn servers(n: usize, seed: u64) -> (Sim<IsisProcess<NameService>>, Vec<Pid>) {
        generic_cluster(n, NS_GID, IsisConfig::default(), SimConfig::ideal(seed), |_| {
            NameService::new()
        })
    }

    #[test]
    fn bind_replicates_and_resolves_from_any_server() {
        let (mut sim, srv) = servers(3, 1);
        let lgid = LargeGroupId(7);
        sim.invoke(srv[0], move |p, ctx| {
            p.with_app(ctx, |app, up| {
                app.bind("trading-floor", lgid, vec![Pid(40), Pid(41)], up)
            });
        });
        sim.run_for(SimDuration::from_secs(2));
        for &s in &srv {
            assert_eq!(
                sim.process(s).app().table().get("trading-floor"),
                Some(&(lgid, vec![Pid(40), Pid(41)]))
            );
        }
        // A client resolves against the *last* server.
        let nd = sim.add_nodes(1)[0];
        let client = sim.spawn(nd, IsisProcess::with_defaults(NameService::new()));
        let target = srv[2];
        let ticket = sim
            .invoke(client, move |p, ctx| {
                p.with_app(ctx, |app, up| app.resolve(target, "trading-floor", up))
            })
            .unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.process(client).app().answers.get(&ticket),
            Some(&Some((lgid, vec![Pid(40), Pid(41)])))
        );
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        let (mut sim, srv) = servers(2, 3);
        let nd = sim.add_nodes(1)[0];
        let client = sim.spawn(nd, IsisProcess::with_defaults(NameService::new()));
        let target = srv[0];
        let ticket = sim
            .invoke(client, move |p, ctx| {
                p.with_app(ctx, |app, up| app.resolve(target, "nope", up))
            })
            .unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.process(client).app().answers.get(&ticket), Some(&None));
    }

    #[test]
    fn unbind_removes_everywhere_and_survives_server_failure() {
        let (mut sim, srv) = servers(3, 5);
        let lgid = LargeGroupId(9);
        sim.invoke(srv[0], move |p, ctx| {
            p.with_app(ctx, |app, up| app.bind("factory", lgid, vec![Pid(1)], up));
        });
        sim.run_for(SimDuration::from_secs(1));
        sim.crash(srv[0]);
        sim.run_for(SimDuration::from_secs(10));
        // Survivors still serve the binding, then agree on its removal.
        sim.invoke(srv[1], move |p, ctx| {
            p.with_app(ctx, |app, up| app.unbind("factory", up));
        });
        sim.run_for(SimDuration::from_secs(2));
        for &s in &srv[1..] {
            assert!(sim.process(s).app().table().is_empty());
        }
    }

    #[test]
    fn misrouted_traffic_is_counted_not_dropped_silently() {
        let (mut sim, srv) = servers(2, 11);
        // Request/reply payloads pushed through the replicated cast
        // stream land in the misrouted_cast counter...
        sim.invoke(srv[0], move |p, ctx| {
            p.with_app(ctx, |app, up| {
                let gid = app.group.expect("view installed");
                up.cast(gid, CastKind::Total, NameMsg::Resolve { name: "x".into(), ticket: 1 });
            });
        });
        // ...and replicated table updates sent point-to-point land in
        // misrouted_direct, without touching the table.
        let target = srv[1];
        sim.invoke(srv[0], move |p, ctx| {
            p.with_app(ctx, |_app, up| {
                up.direct(target, NameMsg::Unbind { name: "x".into() });
            });
        });
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.stats().counter("name.misrouted_cast"), 2); // both servers deliver the cast
        assert_eq!(sim.stats().counter("name.misrouted_direct"), 1);
        assert!(sim.process(srv[1]).app().table().is_empty());
    }

    #[test]
    fn joining_server_inherits_the_table() {
        let (mut sim, srv) = servers(2, 7);
        let lgid = LargeGroupId(4);
        sim.invoke(srv[0], move |p, ctx| {
            p.with_app(ctx, |app, up| app.bind("a", lgid, vec![Pid(9)], up));
        });
        sim.run_for(SimDuration::from_secs(1));
        let nd = sim.add_nodes(1)[0];
        let newbie = sim.spawn(nd, IsisProcess::with_defaults(NameService::new()));
        let contact = srv[0];
        sim.invoke(newbie, move |p, ctx| p.join(NS_GID, contact, ctx).unwrap());
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(
            sim.process(newbie).app().table().get("a"),
            Some(&(lgid, vec![Pid(9)]))
        );
    }
}
