//! The leader group: a small resilient ISIS group whose members replicate
//! the hierarchy view and manage it — admitting members, splitting
//! oversized leaves, merging undersized ones, and repairing total leaf
//! failures (section 3 of the paper: "a new resilient group, called the
//! group leader, is constructed, whose function is to manage the group
//! view ... It is the leader which is informed of the total failure of one
//! of the child subgroups, and which is responsible for splitting subgroups
//! which have grown too large, and merging subgroups which are too
//! small.").
//!
//! Replication pattern: every state change is an ABCAST of a
//! [`LeaderCmd`] within the leader group; members apply commands in the
//! agreed total order, so their replicas never diverge. The *active*
//! leader (the group's oldest member) additionally performs the external
//! side effects; on failover the next member re-drives pending operations
//! — the coordinator-cohort pattern from the ISIS toolkit, applied to the
//! hierarchy manager itself.

use std::collections::BTreeMap;

use now_sim::trace::EventKind as TraceKind;
use now_sim::Pid;

use isis_core::{CastKind, GroupId, GroupView, Uplink};

use crate::business::LargeApp;
use crate::ids::LargeGroupId;
use crate::member::{contact_prefix, HierApp};
use crate::msg::{CtlMsg, HierPayload, HierState, LeaderCmd};
use crate::view::{HierView, LeafDesc};

/// An operation in flight on one leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PendingOp {
    /// Splitting: waiting for the first contacts report of `new_leaf`.
    Split { new_leaf: GroupId },
    /// Dissolving into `target`: waiting for the leaf to empty.
    Dissolve { target: GroupId },
}

/// One leader-group member's replica of the hierarchy state.
pub(crate) struct LeaderReplica {
    pub view: HierView,
    pub next_slot: u32,
    pub resiliency: usize,
    pub min_leaf: usize,
    pub max_leaf: usize,
    pub pending: BTreeMap<GroupId, PendingOp>,
    /// Consecutive undersize reports per leaf; a dissolve fires only after
    /// [`UNDERSIZE_STRIKES`] of them, so young leaves that are still
    /// filling up are not merged away.
    pub strikes: BTreeMap<GroupId, u32>,
    /// Current leader-group membership (oldest first).
    pub leader_members: Vec<Pid>,
}

/// Consecutive undersize contact reports before a leaf is dissolved.
pub(crate) const UNDERSIZE_STRIKES: u32 = 3;

impl LeaderReplica {
    pub(crate) fn new(
        lgid: LargeGroupId,
        cfg: &crate::config::LargeGroupConfig,
        leader_members: Vec<Pid>,
    ) -> LeaderReplica {
        LeaderReplica {
            view: HierView::empty(lgid, cfg.fanout, cfg.resiliency, leader_members.clone()),
            next_slot: 1,
            resiliency: cfg.resiliency,
            min_leaf: cfg.min_leaf,
            max_leaf: cfg.max_leaf,
            pending: BTreeMap::new(),
            strikes: BTreeMap::new(),
            leader_members,
        }
    }

    pub(crate) fn from_snapshot(
        view: HierView,
        next_slot: u32,
        resiliency: usize,
        min_leaf: usize,
        max_leaf: usize,
    ) -> LeaderReplica {
        LeaderReplica {
            leader_members: view.leader_contacts.clone(),
            view,
            next_slot,
            resiliency,
            min_leaf,
            max_leaf,
            pending: BTreeMap::new(),
            strikes: BTreeMap::new(),
        }
    }

    pub(crate) fn snapshot<S>(&self) -> HierState<S> {
        HierState::Leader {
            view: self.view.clone(),
            next_slot: self.next_slot,
            resiliency: self.resiliency,
            min_leaf: self.min_leaf,
            max_leaf: self.max_leaf,
        }
    }

    fn leaf_mut(&mut self, gid: GroupId) -> Option<&mut LeafDesc> {
        self.view.leaves.iter_mut().find(|l| l.gid == gid)
    }
}

impl<B: LargeApp> HierApp<B> {
    fn i_am_active(&self, lgid: LargeGroupId, me: Pid) -> bool {
        self.leaders
            .get(&lgid)
            .is_some_and(|r| r.leader_members.first() == Some(&me))
    }

    /// Sends the current structure to the root rep for down-tree
    /// distribution. Active leader only.
    fn push_structure(&mut self, lgid: LargeGroupId, up: &mut Uplink<'_, '_, Self>) {
        let Some(r) = self.leaders.get(&lgid) else {
            return;
        };
        let Some(root) = r.view.root() else { return };
        let Some(rep) = root.rep() else { return };
        let view = r.view.clone();
        up.bump("hier.push_structure");
        if rep == up.me() {
            // The leader member is itself the root rep (tiny deployments).
            self.rep_or_leader_ctl(up.me(), CtlMsg::HierPush { view, propagate: true }, up);
        } else {
            up.direct(rep, HierPayload::Ctl(CtlMsg::HierPush { view, propagate: true }));
        }
    }

    /// Sends the current structure directly to the reps of `leaf`, its
    /// parent, and its children — the only processes whose routing slices
    /// mention it. Active leader only; cost is O(fanout).
    fn push_neighbourhood(
        &mut self,
        lgid: LargeGroupId,
        leaf: GroupId,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let Some(r) = self.leaders.get(&lgid) else {
            return;
        };
        let Some(idx) = r.view.index_of(leaf) else {
            return;
        };
        let mut targets: Vec<Pid> = Vec::new();
        let mut add = |i: usize, r: &LeaderReplica| {
            if let Some(rep) = r.view.leaves.get(i).and_then(LeafDesc::rep) {
                if !targets.contains(&rep) {
                    targets.push(rep);
                }
            }
        };
        add(idx, r);
        if let Some(p) = r.view.parent(idx) {
            add(p, r);
        }
        for c in r.view.children(idx) {
            add(c, r);
        }
        let view = r.view.clone();
        let me = up.me();
        up.bump("hier.push_neighbourhood");
        for t in targets {
            if t != me {
                up.direct(t, HierPayload::Ctl(CtlMsg::HierPush { view: view.clone(), propagate: false }));
            }
        }
    }

    /// Control traffic addressed to the leader group.
    pub(crate) fn leader_handle_ctl(
        &mut self,
        from: Pid,
        msg: CtlMsg,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        match msg {
            CtlMsg::JoinLargeReq { lgid } => {
                if !self.leaders.contains_key(&lgid) {
                    up.direct(from, HierPayload::Ctl(CtlMsg::JoinLargeDenied { lgid }));
                    return;
                }
                // Placement is decided at command-apply time against the
                // replicated view (with tentative size accounting), so any
                // leader member can sponsor the request directly and
                // concurrent joins spread across leaves.
                up.cast(
                    lgid.leader_gid(),
                    CastKind::Total,
                    HierPayload::Cmd(LeaderCmd::Assign { lgid, joiner: from }),
                );
            }
            CtlMsg::ContactsUpdate {
                lgid,
                leaf,
                contacts,
                size,
            } => {
                if self.leaders.contains_key(&lgid) {
                    up.cast(
                        lgid.leader_gid(),
                        CastKind::Total,
                        HierPayload::Cmd(LeaderCmd::Contacts {
                            lgid,
                            leaf,
                            contacts,
                            size,
                        }),
                    );
                }
            }
            CtlMsg::LeafDeadReport { lgid, leaf } => {
                let known = self
                    .leaders
                    .get(&lgid)
                    .is_some_and(|r| r.view.index_of(leaf).is_some());
                if known {
                    up.bump("hier.leaf_dead_accepted");
                    up.cast(
                        lgid.leader_gid(),
                        CastKind::Total,
                        HierPayload::Cmd(LeaderCmd::LeafDead { lgid, leaf }),
                    );
                }
            }
            // Leader-emitted and leaf-internal control traffic is never
            // addressed to the leader role; enumerate it (rather than `_`)
            // so a new CtlMsg variant forces a routing decision here, and
            // count the drops so misrouting is observable.
            CtlMsg::JoinAssign { .. }
            | CtlMsg::JoinCreateLeaf { .. }
            | CtlMsg::JoinLargeDenied { .. }
            | CtlMsg::HierPush { .. }
            | CtlMsg::SplitLeaf { .. }
            | CtlMsg::DoSplit { .. }
            | CtlMsg::DissolveLeaf { .. }
            | CtlMsg::DoDissolve { .. }
            | CtlMsg::LeafBeacon { .. } => up.bump("hier.ctl.unhandled_leader"),
        }
    }

    /// Applies one replicated command (delivered by leader-group ABCAST at
    /// every member in the same order) and, if this member is the active
    /// leader, performs the external side effects.
    pub(crate) fn leader_apply(&mut self, cmd: LeaderCmd, up: &mut Uplink<'_, '_, Self>) {
        let lgid = cmd.lgid();
        let me = up.me();
        let active = self.i_am_active(lgid, me);
        let Some(r) = self.leaders.get_mut(&lgid) else {
            return;
        };
        match cmd {
            LeaderCmd::Assign { joiner, .. } => {
                // Place against the replicated view with tentative size
                // accounting: concurrent joins spread across leaves even
                // before their contact reports arrive.
                match r.view.least_loaded(None) {
                    Some(leaf) if leaf.size < r.max_leaf => {
                        let (gid, contacts) = (leaf.gid, leaf.contacts.clone());
                        if let Some(d) = r.leaf_mut(gid) {
                            d.size += 1;
                        }
                        if active {
                            up.direct(
                                joiner,
                                HierPayload::Ctl(CtlMsg::JoinAssign {
                                    lgid,
                                    leaf: gid,
                                    contacts,
                                }),
                            );
                        }
                    }
                    _ => self.leader_apply(LeaderCmd::MintLeaf { lgid, founder: joiner }, up),
                }
            }
            LeaderCmd::MintLeaf { founder, .. } => {
                let slot = r.next_slot;
                r.next_slot += 1;
                let gid = lgid.leaf_gid(slot);
                r.view.leaves.push(LeafDesc {
                    gid,
                    contacts: vec![founder],
                    size: 1,
                });
                r.view.epoch += 1;
                if active {
                    up.direct(
                        founder,
                        HierPayload::Ctl(CtlMsg::JoinCreateLeaf { lgid, leaf: gid }),
                    );
                    self.root_beacons.entry(lgid).or_insert_with(|| up.now());
                    self.push_structure(lgid, up);
                }
            }
            LeaderCmd::Contacts {
                leaf,
                contacts,
                size,
                ..
            } => {
                if size == 0 {
                    self.leader_apply(LeaderCmd::LeafDead { lgid, leaf }, up);
                    return;
                }
                let mut push_epoch = false;
                let mut rep_changed = false;
                if let Some(d) = r.leaf_mut(leaf) {
                    // A representative change is re-announced only to the
                    // leaf's tree *neighbourhood* (parent + children + the
                    // leaf itself): nobody else references its contacts,
                    // so the cost stays O(fanout) however large the group.
                    if d.contacts.first() != contacts.first() {
                        rep_changed = true;
                    }
                    d.contacts = contacts.clone();
                    d.size = size;
                } else {
                    // An unknown but live leaf reported in: graft it. This
                    // covers both the first report of a split's new leaf
                    // and the self-healing of a leaf that was wrongly
                    // declared dead.
                    up.bump("hier.leaf_grafted");
                    r.view.leaves.push(LeafDesc {
                        gid: leaf,
                        contacts: contacts.clone(),
                        size,
                    });
                    r.view.epoch += 1;
                    push_epoch = true;
                }
                // Clear a completed dissolve source / resolved pending op.
                if let Some(op) = r.pending.get(&leaf).copied() {
                    let resolved = match op {
                        PendingOp::Split { .. } => size <= r.max_leaf,
                        PendingOp::Dissolve { .. } => false,
                    };
                    if resolved {
                        r.pending.remove(&leaf);
                    }
                }
                // Structural health checks → new commands (active only;
                // commands re-converge at every member via ABCAST).
                // Undersize is debounced with strikes so that leaves still
                // filling up during admission are left alone.
                let oversize = size > r.max_leaf && !r.pending.contains_key(&leaf);
                let undersize = if size < r.min_leaf && r.view.leaves.len() > 1 {
                    let s = r.strikes.entry(leaf).or_insert(0);
                    *s += 1;
                    *s >= UNDERSIZE_STRIKES && !r.pending.contains_key(&leaf)
                } else {
                    r.strikes.remove(&leaf);
                    false
                };
                if active {
                    if oversize {
                        up.cast(
                            lgid.leader_gid(),
                            CastKind::Total,
                            HierPayload::Cmd(LeaderCmd::Split { lgid, leaf }),
                        );
                    } else if undersize {
                        if let Some(t) = r.view.least_loaded(Some(leaf)) {
                            let target = t.gid;
                            up.cast(
                                lgid.leader_gid(),
                                CastKind::Total,
                                HierPayload::Cmd(LeaderCmd::Dissolve { lgid, leaf, target }),
                            );
                        }
                    }
                    // Routing freshness is handled by epoch pushes and
                    // the rep-change neighbourhood push below; answering
                    // every periodic contacts refresh with a push would
                    // give the leader O(#leaves) fanout for no benefit.
                    if push_epoch {
                        self.push_structure(lgid, up);
                    } else if rep_changed {
                        self.push_neighbourhood(lgid, leaf, up);
                    }
                }
            }
            LeaderCmd::LeafDead { leaf, .. } => {
                let Some(idx) = r.view.index_of(leaf) else {
                    return;
                };
                r.view.leaves.remove(idx);
                r.view.epoch += 1;
                r.pending.remove(&leaf);
                r.strikes.remove(&leaf);
                r.pending.retain(
                    |_, op| !matches!(op, PendingOp::Split { new_leaf } if *new_leaf == leaf),
                );
                up.bump("hier.leaf_removed");
                if active {
                    self.push_structure(lgid, up);
                }
            }
            LeaderCmd::Split { leaf, .. } => {
                if r.pending.contains_key(&leaf) || r.view.index_of(leaf).is_none() {
                    return;
                }
                let slot = r.next_slot;
                r.next_slot += 1;
                let new_leaf = lgid.leaf_gid(slot);
                r.pending.insert(leaf, PendingOp::Split { new_leaf });
                let rep = r.leaf_mut(leaf).and_then(|d| d.rep());
                if active {
                    up.bump("hier.splits");
                    if let Some(rp) = rep {
                        up.direct(
                            rp,
                            HierPayload::Ctl(CtlMsg::SplitLeaf {
                                lgid,
                                leaf,
                                new_leaf,
                            }),
                        );
                    }
                }
            }
            LeaderCmd::Dissolve { leaf, target, .. } => {
                if r.pending.contains_key(&leaf)
                    || r.view.index_of(leaf).is_none()
                    || r.view.index_of(target).is_none()
                {
                    return;
                }
                r.pending.insert(leaf, PendingOp::Dissolve { target });
                let rep = r.leaf_mut(leaf).and_then(|d| d.rep());
                let target_contacts = r
                    .leaf_mut(target)
                    .map(|d| d.contacts.clone())
                    .unwrap_or_default();
                if active {
                    up.bump("hier.dissolves");
                    if let Some(rp) = rep {
                        up.direct(
                            rp,
                            HierPayload::Ctl(CtlMsg::DissolveLeaf {
                                lgid,
                                leaf,
                                target,
                                target_contacts,
                            }),
                        );
                    }
                }
            }
        }
    }

    /// Leader-group view bookkeeping: contact refresh and active-leader
    /// takeover.
    pub(crate) fn leader_on_view(
        &mut self,
        lgid: LargeGroupId,
        view: &GroupView,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let me = up.me();
        let Some(r) = self.leaders.get_mut(&lgid) else {
            return;
        };
        let was_active = r.leader_members.first() == Some(&me);
        r.leader_members = view.members.clone();
        r.view.leader_contacts = contact_prefix(view, 4);
        let now_active = view.coordinator() == me;
        if now_active && !was_active {
            // Takeover: re-push the structure and re-drive pending ops.
            self.root_beacons.insert(lgid, up.now());
            up.bump("hier.leader_takeover");
            let tl = u64::from(lgid.0);
            up.trace_with(|| TraceKind::LeaderTakeover { lgid: tl });
            self.push_structure(lgid, up);
            let pending: Vec<(GroupId, PendingOp)> = self.leaders[&lgid]
                .pending
                .iter()
                .map(|(&g, &op)| (g, op))
                .collect();
            for (leaf, op) in pending {
                let r = &self.leaders[&lgid];
                let rep = r
                    .view
                    .leaves
                    .iter()
                    .find(|l| l.gid == leaf)
                    .and_then(LeafDesc::rep);
                let Some(rp) = rep else { continue };
                match op {
                    PendingOp::Split { new_leaf } => up.direct(
                        rp,
                        HierPayload::Ctl(CtlMsg::SplitLeaf {
                            lgid,
                            leaf,
                            new_leaf,
                        }),
                    ),
                    PendingOp::Dissolve { target } => {
                        let target_contacts = r
                            .view
                            .leaves
                            .iter()
                            .find(|l| l.gid == target)
                            .map(|l| l.contacts.clone())
                            .unwrap_or_default();
                        up.direct(
                            rp,
                            HierPayload::Ctl(CtlMsg::DissolveLeaf {
                                lgid,
                                leaf,
                                target,
                                target_contacts,
                            }),
                        );
                    }
                }
            }
        }
    }

    /// Periodic leader housekeeping: root-leaf liveness (the leader is the
    /// root's "parent" in the monitoring tree).
    pub(crate) fn leader_tick(&mut self, up: &mut Uplink<'_, '_, Self>) {
        let me = up.me();
        let now = up.now();
        let dead_after = self.timers.leaf_dead_timeout;
        let lgids: Vec<LargeGroupId> = self.leaders.keys().copied().collect();
        for lgid in lgids {
            if !self.i_am_active(lgid, me) {
                continue;
            }
            let root = self
                .leaders
                .get(&lgid)
                .and_then(|r| r.view.root().map(|l| l.gid));
            let Some(root_gid) = root else { continue };
            let last = *self.root_beacons.entry(lgid).or_insert(now);
            if now.since(last) > dead_after {
                self.root_beacons.insert(lgid, now);
                up.bump("hier.root_dead_detected");
                up.cast(
                    lgid.leader_gid(),
                    CastKind::Total,
                    HierPayload::Cmd(LeaderCmd::LeafDead {
                        lgid,
                        leaf: root_gid,
                    }),
                );
            }
        }
    }
}
