//! `isis-hier` — hierarchical process groups: the contribution of
//! Cooper & Birman, "Supporting Large Scale Applications on Networks of
//! Workstations" (1989).
//!
//! A *large group* (`size > fanout ≥ resiliency`) is organised as many
//! small, resilient *leaf subgroups* (plain `isis-core` groups) plus a
//! resilient *leader group* that manages the structure. The design goals,
//! all taken from section 3 of the paper and verified by this crate's
//! tests and the workspace's experiments:
//!
//! - **Bounded failure scope** — "any single process failure results in a
//!   broadcast to a bounded number of other processes": a member crash
//!   triggers a view change only within its leaf; total leaf failure
//!   informs only the parent (and through it the leader).
//! - **Bounded views** — "a complete list of the processes in a large
//!   group is not explicitly stored anywhere": members store a leaf view,
//!   representatives an `O(fanout)` routing slice, only the leader group
//!   the leaf list.
//! - **Bounded fanout** — the multistage tree broadcast contacts at most
//!   `fanout` child leaves per representative, with `resiliency` acks
//!   before success is reported to the initiator.
//! - **Self-management** — the leader splits oversized leaves, merges
//!   undersized ones, and repairs total leaf failures.
//!
//! # Examples
//!
//! ```
//! use isis_hier::config::LargeGroupConfig;
//! use isis_hier::harness::large_cluster;
//! use now_sim::SimDuration;
//!
//! let mut c = large_cluster(20, LargeGroupConfig::new(2, 3), 7);
//! let origin = c.members[0];
//! c.lbcast(origin, "hello-everyone");
//! c.run_for(SimDuration::from_secs(20));
//! for (_, log) in c.lbcast_logs() {
//!     assert_eq!(log, vec!["hello-everyone".to_string()]);
//! }
//! ```

pub mod business;
pub mod config;
pub mod harness;
pub mod ids;
pub mod leader;
pub mod member;
pub mod msg;
pub mod name;
pub mod tree;
pub mod view;

pub use business::{LargeApp, LargeOp, LargeUplink};
pub use config::LargeGroupConfig;
pub use ids::{LargeGroupId, LbcastId};
pub use member::HierApp;
pub use name::{NameMsg, NameService};
pub use msg::{CtlMsg, HierPayload, HierState, LbcastStatus, LeaderCmd, TreeMsg};
pub use view::{HierView, LeafDesc, RoutingSlice};
