//! Leaf-representative logic: the tree-structured atomic broadcast and
//! child-leaf monitoring.
//!
//! The broadcast maps onto the hierarchy exactly as the paper's section 5
//! describes: a message climbs from its origin to the root leaf, the root
//! stamps it with a global sequence number, and it flows down the implicit
//! fanout-ary tree — each representative contacting at most `fanout` child
//! leaves plus its own leaf (via an intra-leaf ABCAST). Acknowledgements
//! aggregate up the same tree; the origin learns `Resilient` after the
//! paper's `resiliency` acks and `Complete` when every subtree has
//! acknowledged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use now_sim::{Pid, SimTime};

use isis_core::{CastKind, GroupId, Uplink};

use crate::business::LargeApp;
use crate::ids::{LargeGroupId, LbcastId};
use crate::member::HierApp;
use crate::msg::{CtlMsg, HierPayload, LbcastStatus, TreeMsg};
use crate::view::{LeafDesc, RoutingSlice};

/// Tracking for one in-flight broadcast at a representative.
#[derive(Debug)]
pub(crate) struct Track<Q> {
    pub id: LbcastId,
    pub epoch: u64,
    pub payload: Q,
    /// Our own leaf has delivered (our copy of the LeafDeliver arrived).
    pub own_done: bool,
    /// Child leaves that have not yet acked, with their last-known
    /// contacts.
    pub pending_children: BTreeMap<GroupId, Vec<Pid>>,
    pub last_send: SimTime,
    pub send_attempts: u32,
    /// Root only: member acks received (own delivery counts as one).
    pub member_acks: usize,
    pub resilient_sent: bool,
}

/// Per-large-group representative state: bounded by `O(fanout)` structure
/// plus in-flight broadcast tracking.
pub(crate) struct RepState<Q> {
    /// The leaf this process represents.
    pub leaf: GroupId,
    /// Routing slice pushed down from the leader (None until first push).
    pub slice: Option<RoutingSlice>,
    /// Last-known parent representative (updated from message senders).
    pub parent_rep: Option<Pid>,
    /// Next lseq expected from upstream (contiguity for global order).
    pub next_expected: u64,
    /// Out-of-order forwards buffered for contiguity.
    pub ooo: BTreeMap<u64, (u64, LbcastId, Q)>,
    pub ooo_since: Option<SimTime>,
    /// In-flight broadcasts awaiting subtree acks.
    pub unacked: BTreeMap<u64, Track<Q>>,
    /// Root only: global sequencing state.
    pub next_lseq: u64,
    pub assigned: BTreeMap<LbcastId, u64>,
    pub assigned_order: VecDeque<LbcastId>,
    /// Origin of each stamped lseq (root only, for origin acks).
    pub origin_of: BTreeMap<u64, Pid>,
    /// Child-leaf liveness (total-failure detection).
    pub child_last: BTreeMap<GroupId, SimTime>,
    /// Dead children already reported (avoid report storms).
    pub reported_dead: BTreeSet<GroupId>,
    /// Last periodic contacts refresh sent to the leader.
    pub last_report: SimTime,
    /// Last liveness beacon sent up the tree.
    pub last_beacon: SimTime,
    /// Recently distributed broadcasts, re-forwarded to children that
    /// appear after a structure change (heals re-rooting races).
    pub recent: VecDeque<(u64, LbcastId, Q)>,
}

/// Entries kept in each rep's recent-broadcast cache.
const RECENT_CAP: usize = 128;

impl<Q> RepState<Q> {
    pub(crate) fn new(leaf: GroupId) -> RepState<Q> {
        RepState {
            leaf,
            slice: None,
            parent_rep: None,
            next_expected: 1,
            ooo: BTreeMap::new(),
            ooo_since: None,
            unacked: BTreeMap::new(),
            next_lseq: 1,
            assigned: BTreeMap::new(),
            assigned_order: VecDeque::new(),
            origin_of: BTreeMap::new(),
            child_last: BTreeMap::new(),
            reported_dead: BTreeSet::new(),
            last_report: SimTime::ZERO,
            last_beacon: SimTime::ZERO,
            recent: VecDeque::new(),
        }
    }

    pub(crate) fn is_root(&self) -> bool {
        self.slice.as_ref().is_some_and(RoutingSlice::is_root)
    }

    /// Estimated total storage (E7 stats): slice, in-flight tracking, and
    /// caches. Load-proportional — grows with concurrent broadcasts.
    pub(crate) fn storage_bytes(&self) -> usize {
        self.routing_storage_bytes() + self.unacked.len() * 64 + self.assigned.len() * 24
    }

    /// Estimated *routing* storage: the part the paper bounds by structural
    /// parameters (slice size ∝ fanout, child liveness ∝ children). The
    /// VS-STORE invariant probe samples this, deliberately excluding
    /// transient in-flight tracking (`unacked`) and the root's assignment
    /// cache (`assigned`), which scale with offered load, are capped by
    /// their own mechanisms (ack draining, `repair_cache` eviction), and
    /// say nothing about how storage scales with group *size*. The
    /// now-chaos sweep caught the earlier conflation: a broadcast storm
    /// into a freshly dead leaf queues retransmissions and tripped a
    /// ceiling derived only from `max_leaf` and `fanout`.
    pub(crate) fn routing_storage_bytes(&self) -> usize {
        self.slice.as_ref().map_or(0, RoutingSlice::storage_bytes) + self.child_last.len() * 12
    }

    fn remember_assignment(&mut self, id: LbcastId, lseq: u64, cap: usize) {
        self.assigned.insert(id, lseq);
        self.assigned_order.push_back(id);
        while self.assigned_order.len() > cap {
            if let Some(old) = self.assigned_order.pop_front() {
                self.assigned.remove(&old);
            }
        }
    }
}

impl<B: LargeApp> HierApp<B> {
    // ------------------------------------------------------------------
    // Submit path (climbing the tree)
    // ------------------------------------------------------------------

    /// A representative received (or originated) a submit: stamp it at the
    /// root, or climb one level. `from` is the pid that handed us the
    /// submit over the network (None when it originated locally).
    pub(crate) fn rep_handle_submit(
        &mut self,
        lgid: LargeGroupId,
        id: LbcastId,
        payload: B::Payload,
        from: Option<Pid>,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let Some(rep) = self.reps.get_mut(&lgid) else {
            up.bump("hier.submit.not_rep");
            return;
        };
        match &rep.slice {
            None => up.bump("hier.submit.no_slice"),
            Some(s) if s.is_root() => {
                // Stamp (deduplicating resubmits) and drive distribution.
                let lseq = match rep.assigned.get(&id) {
                    Some(&l) => l,
                    None => {
                        let l = rep.next_lseq;
                        rep.next_lseq += 1;
                        let cap = self.timers.repair_cache;
                        rep.remember_assignment(id, l, cap);
                        l
                    }
                };
                rep.origin_of.insert(lseq, id.origin);
                self.rep_distribute(lgid, lseq, id, payload, up);
            }
            Some(s) => {
                // Climb: parent rep from the slice (refreshed by senders).
                // Never climb back to whoever just handed us the submit —
                // a stale parent pointer (e.g. at a pid whose previous
                // incarnation was a rep) would otherwise ping-pong it
                // between two processes at network latency until a slice
                // push repairs the pointer; dropping is safe because the
                // origin re-routes from `out` on its retry timer.
                let target = rep
                    .parent_rep
                    .or_else(|| s.parent.as_ref().and_then(LeafDesc::rep));
                match target {
                    Some(t) if t != up.me() && Some(t) != from => {
                        up.direct(t, HierPayload::Tree(TreeMsg::Submit { lgid, id, payload }));
                    }
                    _ => up.bump("hier.submit.no_parent"),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Down-tree distribution
    // ------------------------------------------------------------------

    /// Processes one stamped broadcast at this representative: ABCAST into
    /// our leaf, forward to children, and set up ack tracking.
    fn rep_distribute(
        &mut self,
        lgid: LargeGroupId,
        lseq: u64,
        id: LbcastId,
        payload: B::Payload,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let me = up.me();
        let now = up.now();
        let Some(rep) = self.reps.get_mut(&lgid) else {
            return;
        };
        if rep.unacked.contains_key(&lseq) {
            // Duplicate forward while still in flight: sender needs no
            // action, our retransmissions continue.
            return;
        }
        if rep.recent.iter().any(|(l, _, _)| *l == lseq) {
            // Genuinely processed before (it is in our distribution
            // record): re-ack upstream (their ack got lost), and re-answer
            // the origin if we are the root. An lseq merely *skipped* by
            // gap fast-forwarding does not take this path — it is
            // backfilled by normal distribution below.
            let leaf = rep.leaf;
            let parent = rep.parent_rep;
            let is_root = rep.is_root();
            if is_root {
                up.direct(
                    id.origin,
                    HierPayload::Tree(TreeMsg::OriginAck {
                        lgid,
                        id,
                        status: LbcastStatus::Complete,
                    }),
                );
            } else if let Some(p) = parent {
                up.direct(
                    p,
                    HierPayload::Tree(TreeMsg::SubtreeAck {
                        lgid,
                        epoch: 0,
                        lseq,
                        leaf,
                    }),
                );
            }
            return;
        }

        let (epoch, children, is_root) = match &rep.slice {
            Some(s) => (
                s.epoch,
                s.children
                    .iter()
                    .map(|c| (c.gid, c.contacts.clone()))
                    .collect::<Vec<_>>(),
                s.is_root(),
            ),
            None => (0, Vec::new(), false),
        };

        // Intra-leaf distribution (total order within the leaf).
        let ack_to = if is_root { Some(me) } else { None };
        up.cast(
            rep.leaf,
            CastKind::Total,
            HierPayload::Tree(TreeMsg::LeafDeliver {
                lgid,
                epoch,
                lseq,
                id,
                ack_to,
                payload: payload.clone(),
            }),
        );

        // Down-tree forwarding, at most `fanout` destinations.
        let mut pending = BTreeMap::new();
        for (gid, contacts) in children {
            if rep.reported_dead.contains(&gid) {
                continue;
            }
            if let Some(&c) = contacts.first() {
                up.direct(
                    c,
                    HierPayload::Tree(TreeMsg::Forward {
                        lgid,
                        epoch,
                        lseq,
                        id,
                        payload: payload.clone(),
                    }),
                );
            }
            pending.insert(gid, contacts);
        }
        rep.recent.push_back((lseq, id, payload.clone()));
        while rep.recent.len() > RECENT_CAP {
            rep.recent.pop_front();
        }
        rep.unacked.insert(
            lseq,
            Track {
                id,
                epoch,
                payload,
                own_done: false,
                pending_children: pending,
                last_send: now,
                send_attempts: 1,
                member_acks: 1, // Our own delivery will arrive via ABCAST;
                // count the origin-side copy conservatively at ack time
                // instead. Start at 1 for the rep itself.
                resilient_sent: false,
            },
        );
        if lseq >= rep.next_expected {
            rep.next_expected = lseq + 1;
        }
        self.rep_check_done(lgid, lseq, up);
    }

    /// Tree protocol messages arriving point-to-point at this process.
    pub(crate) fn rep_handle_tree(
        &mut self,
        from: Pid,
        msg: TreeMsg<B::Payload>,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        match msg {
            TreeMsg::Submit { lgid, id, payload } => {
                if self.reps.contains_key(&lgid) {
                    self.rep_handle_submit(lgid, id, payload, Some(from), up);
                } else if from == id.origin {
                    // We stopped being rep; bounce once toward the current
                    // one. Only a submit arriving straight from its origin
                    // may be re-routed — two members with stale views of
                    // each other would otherwise ping-pong a forwarded
                    // submit forever at network latency.
                    self.route_submit(lgid, id, payload, up);
                } else {
                    // A forwarded submit found no rep here: drop it. The
                    // origin holds it in `out` and re-routes on its retry
                    // timer once membership has settled.
                    up.bump("hier.submit.misrouted");
                }
            }
            TreeMsg::Forward {
                lgid,
                epoch,
                lseq,
                id,
                payload,
            } => {
                let Some(rep) = self.reps.get_mut(&lgid) else {
                    up.bump("hier.forward.not_rep");
                    return;
                };
                rep.parent_rep = Some(from);
                if lseq == rep.next_expected || rep.unacked.contains_key(&lseq) || lseq < rep.next_expected
                {
                    self.rep_distribute(lgid, lseq, id, payload, up);
                    // Contiguous continuation from the buffer.
                    while let Some(r) = self.reps.get_mut(&lgid) {
                        let next = r.next_expected;
                        let Some((_, bid, bpayload)) = r.ooo.remove(&next) else {
                            if r.ooo.is_empty() {
                                r.ooo_since = None;
                            }
                            break;
                        };
                        self.rep_distribute(lgid, next, bid, bpayload, up);
                    }
                } else {
                    // Gap: buffer until contiguous or the repair timeout
                    // forces progress.
                    if rep.ooo_since.is_none() {
                        rep.ooo_since = Some(up.now());
                    }
                    rep.ooo.insert(lseq, (epoch, id, payload));
                    up.bump("hier.forward.ooo");
                }
            }
            TreeMsg::SubtreeAck { lgid, lseq, leaf, .. } => {
                if let Some(rep) = self.reps.get_mut(&lgid) {
                    rep.child_last.insert(leaf, up.now());
                    if let Some(t) = rep.unacked.get_mut(&lseq) {
                        // Refresh the child's contact from the sender.
                        if let Some(contacts) = t.pending_children.get_mut(&leaf) {
                            if contacts.first() != Some(&from) {
                                contacts.insert(0, from);
                            }
                        }
                        t.pending_children.remove(&leaf);
                    }
                    self.rep_check_done(lgid, lseq, up);
                }
            }
            TreeMsg::MemberAck { lgid, lseq } => {
                let resiliency = self
                    .reps
                    .get(&lgid)
                    .and_then(|r| r.slice.as_ref())
                    .map_or(usize::MAX, |s| s.resiliency);
                if let Some(rep) = self.reps.get_mut(&lgid) {
                    if let Some(t) = rep.unacked.get_mut(&lseq) {
                        t.member_acks += 1;
                        if !t.resilient_sent && t.member_acks >= resiliency {
                            t.resilient_sent = true;
                            let (id, origin) = (t.id, t.id.origin);
                            if origin == up.me() {
                                self.origin_note_status(lgid, id, LbcastStatus::Resilient, up);
                            } else {
                                up.direct(
                                    origin,
                                    HierPayload::Tree(TreeMsg::OriginAck {
                                        lgid,
                                        id,
                                        status: LbcastStatus::Resilient,
                                    }),
                                );
                            }
                        }
                    }
                }
            }
            TreeMsg::OriginAck { lgid, id, status } => {
                self.origin_note_status(lgid, id, status, up);
            }
            TreeMsg::LeafDeliver { .. } => up.bump("hier.tree.misrouted"),
        }
    }

    /// Our own leaf delivered a LeafDeliver we are tracking.
    pub(crate) fn rep_note_own_leaf_delivery(
        &mut self,
        lgid: LargeGroupId,
        lseq: u64,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let Some(rep) = self.reps.get_mut(&lgid) else {
            return;
        };
        if let Some(t) = rep.unacked.get_mut(&lseq) {
            t.own_done = true;
        }
        self.rep_check_done(lgid, lseq, up);
    }

    /// Completes a broadcast at this rep if its leaf and all children are
    /// done: acks upstream or (at the root) notifies the origin.
    fn rep_check_done(&mut self, lgid: LargeGroupId, lseq: u64, up: &mut Uplink<'_, '_, Self>) {
        let me = up.me();
        let Some(rep) = self.reps.get_mut(&lgid) else {
            return;
        };
        let done = rep
            .unacked
            .get(&lseq)
            .is_some_and(|t| t.own_done && t.pending_children.is_empty());
        if !done {
            return;
        }
        let t = rep.unacked.remove(&lseq).expect("checked above");
        let leaf = rep.leaf;
        let parent = rep.parent_rep.or_else(|| {
            rep.slice
                .as_ref()
                .and_then(|s| s.parent.as_ref().and_then(LeafDesc::rep))
        });
        if rep.is_root() {
            rep.origin_of.remove(&lseq);
            if t.id.origin == me {
                self.origin_note_status(lgid, t.id, LbcastStatus::Complete, up);
            } else {
                up.direct(
                    t.id.origin,
                    HierPayload::Tree(TreeMsg::OriginAck {
                        lgid,
                        id: t.id,
                        status: LbcastStatus::Complete,
                    }),
                );
            }
        } else if let Some(p) = parent {
            up.direct(
                p,
                HierPayload::Tree(TreeMsg::SubtreeAck {
                    lgid,
                    epoch: t.epoch,
                    lseq,
                    leaf,
                }),
            );
        }
    }

    /// Origin-side bookkeeping of broadcast progress.
    pub(crate) fn origin_note_status(
        &mut self,
        lgid: LargeGroupId,
        id: LbcastId,
        status: LbcastStatus,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        let Some(ms) = self.members.get_mut(&lgid) else {
            return;
        };
        let Some(o) = ms.out.get_mut(&id) else {
            return;
        };
        // Complete subsumes Resilient (every subtree delivered certainly
        // includes `resiliency` processes); report the milestones in order.
        let mut reports: Vec<LbcastStatus> = Vec::new();
        match status {
            LbcastStatus::Resilient => {
                if !o.resilient {
                    o.resilient = true;
                    reports.push(LbcastStatus::Resilient);
                }
            }
            LbcastStatus::Complete => {
                if !o.resilient {
                    o.resilient = true;
                    reports.push(LbcastStatus::Resilient);
                }
                if !o.complete {
                    o.complete = true;
                    reports.push(LbcastStatus::Complete);
                }
                ms.out.remove(&id);
            }
        }
        for st in reports {
            self.with_biz(up, None, |biz, lup| {
                biz.on_lbcast_status(lgid, id, st, lup);
            });
        }
    }

    // ------------------------------------------------------------------
    // Control traffic addressed to reps (and leaders; see leader.rs)
    // ------------------------------------------------------------------

    pub(crate) fn rep_or_leader_ctl(
        &mut self,
        from: Pid,
        msg: CtlMsg,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        match msg {
            CtlMsg::HierPush { view, propagate } => {
                let lgid = view.lgid;
                // Leaders ignore pushes; reps store their slice and pass
                // the view to child reps.
                let Some(rep) = self.reps.get_mut(&lgid) else {
                    return;
                };
                let Some(idx) = view.index_of(rep.leaf) else {
                    // We are no longer in the structure (dead-leaf repair
                    // raced a revival); wait for membership to catch up.
                    up.bump("hier.push.orphan");
                    return;
                };
                let slice = view.slice_for(idx);
                let became_root = slice.is_root() && !rep.is_root();
                if became_root {
                    // Continue the global sequence from what we have seen.
                    rep.next_lseq = rep.next_lseq.max(rep.next_expected);
                }
                let old_children: Vec<GroupId> = rep
                    .slice
                    .as_ref()
                    .map(|s| s.children.iter().map(|c| c.gid).collect())
                    .unwrap_or_default();
                let mut catch_up: Vec<(Pid, GroupId)> = Vec::new();
                for child in &slice.children {
                    rep.child_last.entry(child.gid).or_insert_with(|| up.now());
                    if let Some(&c) = child.contacts.first() {
                        if propagate {
                            up.direct(
                                c,
                                HierPayload::Ctl(CtlMsg::HierPush {
                                    view: view.clone(),
                                    propagate: true,
                                }),
                            );
                        }
                        if !old_children.contains(&child.gid) {
                            catch_up.push((c, child.gid));
                        }
                    }
                }
                rep.reported_dead.retain(|g| view.index_of(*g).is_some());
                rep.child_last.retain(|g, _| slice.children.iter().any(|c| c.gid == *g));
                let epoch = slice.epoch;
                let lc = slice.leader_contacts.clone();
                let slice_copy = slice.clone();
                // Tree-propagated pushes come from our actual parent rep;
                // targeted refreshes come from the leader and must not
                // hijack the parent pointer. Either way, a parent pointer
                // that the fresh slice no longer corroborates is dropped.
                if slice.is_root() {
                    rep.parent_rep = None;
                } else if propagate {
                    rep.parent_rep = Some(from);
                } else if let Some(pr) = rep.parent_rep {
                    let still_valid = slice
                        .parent
                        .as_ref()
                        .is_some_and(|p| p.contacts.contains(&pr));
                    if !still_valid {
                        rep.parent_rep = slice.parent.as_ref().and_then(LeafDesc::rep);
                    }
                }
                rep.slice = Some(slice);
                if let Some(ms) = self.members.get_mut(&lgid) {
                    for c in lc {
                        if !ms.leader_contacts.contains(&c) {
                            ms.leader_contacts.push(c);
                        }
                    }
                    ms.leader_contacts.truncate(6);
                }
                self.slices_cache.insert(lgid, slice_copy);
                let rep = self.reps.get_mut(&lgid).expect("rep checked above");
                // Children that just appeared under us may have missed
                // broadcasts distributed during the structure change:
                // re-forward the recent cache (receivers deduplicate).
                let recent: Vec<(u64, LbcastId, B::Payload)> = rep.recent.iter().cloned().collect();
                for (c, child_gid) in catch_up {
                    // Re-arm ack tracking so retransmission covers them.
                    for (lseq, id, payload) in &recent {
                        up.bump("hier.forward.catchup");
                        up.direct(
                            c,
                            HierPayload::Tree(TreeMsg::Forward {
                                lgid,
                                epoch,
                                lseq: *lseq,
                                id: *id,
                                payload: payload.clone(),
                            }),
                        );
                    }
                    let _ = child_gid;
                }
            }
            CtlMsg::SplitLeaf {
                lgid,
                leaf,
                new_leaf,
                ..
            } => {
                // Choose movers deterministically: the newer half of the
                // leaf, so the rep (oldest) stays.
                let Some(ms) = self.members.get(&lgid) else {
                    return;
                };
                if ms.leaf != Some(leaf) || !self.reps.contains_key(&lgid) {
                    return;
                }
                let members = &ms.leaf_members;
                let movers: Vec<Pid> = members[members.len() / 2..].to_vec();
                if movers.is_empty() || movers.len() == members.len() {
                    return;
                }
                let mut leader_contacts = ms.leader_contacts.clone();
                if !leader_contacts.contains(&from) {
                    leader_contacts.insert(0, from);
                }
                up.cast(
                    leaf,
                    CastKind::Total,
                    HierPayload::Ctl(CtlMsg::DoSplit {
                        lgid,
                        new_leaf,
                        movers,
                        leader_contacts,
                    }),
                );
            }
            CtlMsg::DissolveLeaf {
                lgid,
                leaf,
                target,
                target_contacts,
            } => {
                let Some(ms) = self.members.get(&lgid) else {
                    return;
                };
                if ms.leaf != Some(leaf) || !self.reps.contains_key(&lgid) {
                    return;
                }
                let mut leader_contacts = ms.leader_contacts.clone();
                if !leader_contacts.contains(&from) {
                    leader_contacts.insert(0, from);
                }
                up.cast(
                    leaf,
                    CastKind::Total,
                    HierPayload::Ctl(CtlMsg::DoDissolve {
                        lgid,
                        target,
                        target_contacts,
                        leader_contacts,
                    }),
                );
            }
            CtlMsg::LeafBeacon {
                lgid,
                leaf,
                contacts,
                ..
            } => {
                // From a child rep (or, at the leader, from the root rep).
                if let Some(rep) = self.reps.get_mut(&lgid) {
                    rep.child_last.insert(leaf, up.now());
                    rep.reported_dead.remove(&leaf);
                    if let Some(s) = &mut rep.slice {
                        for c in &mut s.children {
                            if c.gid == leaf {
                                c.contacts = contacts.clone();
                            }
                        }
                    }
                }
                if self.leaders.contains_key(&lgid) {
                    self.root_beacons.insert(lgid, up.now());
                }
            }
            CtlMsg::JoinLargeReq { .. }
            | CtlMsg::ContactsUpdate { .. }
            | CtlMsg::LeafDeadReport { .. } => self.leader_handle_ctl(from, msg, up),
            other => {
                let _ = other;
                up.bump("hier.ctl.unhandled");
            }
        }
    }

    // ------------------------------------------------------------------
    // Periodic rep housekeeping
    // ------------------------------------------------------------------

    pub(crate) fn rep_tick(&mut self, up: &mut Uplink<'_, '_, Self>) {
        let now = up.now();
        let retry = self.timers.repair_timeout;
        let dead_after = self.timers.leaf_dead_timeout;
        let lgids: Vec<LargeGroupId> = self.reps.keys().copied().collect();
        for lgid in lgids {
            // Beacon to our parent (or the leader if we are the root),
            // paced at a quarter of the dead-leaf timeout.
            let due = {
                let rep = self.reps.get_mut(&lgid).expect("key just listed");
                if now.since(rep.last_beacon) >= dead_after / 8 {
                    rep.last_beacon = now;
                    true
                } else {
                    false
                }
            };
            let beacon = if !due {
                None
            } else {
                let leader_fallback = self.leader_contact(lgid);
                let ms = self.members.get(&lgid);
                let rep = self.reps.get(&lgid).expect("key just listed");
                let contacts: Vec<Pid> = ms
                    .map(|m| m.leaf_members.iter().copied().take(4).collect())
                    .unwrap_or_default();
                let epoch = rep.slice.as_ref().map_or(0, |s| s.epoch);
                let target = if rep.is_root() || rep.slice.is_none() {
                    rep.slice
                        .as_ref()
                        .and_then(|s| s.leader_contacts.first().copied())
                        .or(leader_fallback)
                } else {
                    rep.parent_rep.or_else(|| {
                        rep.slice
                            .as_ref()
                            .and_then(|s| s.parent.as_ref().and_then(LeafDesc::rep))
                    })
                };
                target.map(|t| (t, rep.leaf, epoch, contacts))
            };
            if let Some((t, leaf, epoch, contacts)) = beacon {
                if t != up.me() {
                    up.direct(
                        t,
                        HierPayload::Ctl(CtlMsg::LeafBeacon {
                            lgid,
                            leaf,
                            epoch,
                            contacts,
                        }),
                    );
                }
            }

            // Periodic contacts refresh to the leader: keeps the leader's
            // view fresh and drives debounced undersize detection.
            let refresh = {
                let rep = self.reps.get_mut(&lgid).expect("key just listed");
                if now.since(rep.last_report) >= dead_after / 2 {
                    rep.last_report = now;
                    let leaf = rep.leaf;
                    self.members.get(&lgid).map(|m| {
                        (
                            leaf,
                            m.leaf_members.iter().copied().take(4).collect::<Vec<Pid>>(),
                            m.leaf_members.len(),
                        )
                    })
                } else {
                    None
                }
            };
            if let Some((leaf, contacts, size)) = refresh {
                if size > 0 {
                    if let Some(lc) = self.leader_contact_rotating(lgid) {
                        up.direct(
                            lc,
                            HierPayload::Ctl(CtlMsg::ContactsUpdate {
                                lgid,
                                leaf,
                                contacts,
                                size,
                            }),
                        );
                    }
                }
            }

            // Child-leaf total-failure detection.
            let dead: Vec<GroupId> = {
                let rep = self.reps.get(&lgid).expect("key just listed");
                rep.child_last
                    .iter()
                    .filter(|(g, &t)| {
                        now.since(t) > dead_after && !rep.reported_dead.contains(*g)
                    })
                    .map(|(&g, _)| g)
                    .collect()
            };
            for g in dead {
                if let Some(rep) = self.reps.get_mut(&lgid) {
                    rep.reported_dead.insert(g);
                }
                if let Some(lc) = self.leader_contact_rotating(lgid) {
                    up.bump("hier.leaf_dead_reports");
                    up.direct(
                        lc,
                        HierPayload::Ctl(CtlMsg::LeafDeadReport { lgid, leaf: g }),
                    );
                }
            }

            // Retransmit unacked forwards.
            type Resend<P> = Vec<(u64, LbcastId, P, Vec<(GroupId, Vec<Pid>)>, u64)>;
            let resend: Resend<B::Payload> = {
                let rep = self.reps.get_mut(&lgid).expect("key just listed");
                // Retarget from the *current* slice: beacons and pushes
                // keep its child contacts fresh, whereas the contacts
                // captured when the broadcast was first forwarded may all
                // be dead by now.
                let fresh: Vec<(GroupId, Vec<Pid>)> = rep
                    .slice
                    .as_ref()
                    .map(|s| {
                        s.children
                            .iter()
                            .map(|c| (c.gid, c.contacts.clone()))
                            .collect()
                    })
                    .unwrap_or_default();
                rep.unacked
                    .iter_mut()
                    .filter(|(_, t)| now.since(t.last_send) >= retry)
                    .map(|(&lseq, t)| {
                        t.last_send = now;
                        t.send_attempts += 1;
                        let targets: Vec<(GroupId, Vec<Pid>)> = t
                            .pending_children
                            .iter()
                            .map(|(g, captured)| {
                                let mut c: Vec<Pid> = fresh
                                    .iter()
                                    .find(|(fg, _)| fg == g)
                                    .map(|(_, fc)| fc.clone())
                                    .unwrap_or_default();
                                for &p in captured {
                                    if !c.contains(&p) {
                                        c.push(p);
                                    }
                                }
                                (*g, c)
                            })
                            .collect();
                        (lseq, t.id, t.payload.clone(), targets, t.send_attempts as u64)
                    })
                    .collect()
            };
            for (lseq, id, payload, targets, attempt) in resend {
                let epoch = self
                    .reps
                    .get(&lgid)
                    .and_then(|r| r.slice.as_ref())
                    .map_or(0, |s| s.epoch);
                for (gid, contacts) in targets {
                    if contacts.is_empty() {
                        continue;
                    }
                    // Rotate through contacts on consecutive attempts.
                    let c = contacts[(attempt as usize) % contacts.len()];
                    up.bump("hier.forward.retry");
                    up.direct(
                        c,
                        HierPayload::Tree(TreeMsg::Forward {
                            lgid,
                            epoch,
                            lseq,
                            id,
                            payload: payload.clone(),
                        }),
                    );
                    let _ = gid;
                }
            }

            // Force progress past a persistent sequence gap.
            let force: Vec<(u64, LbcastId, B::Payload)> = {
                let rep = self.reps.get_mut(&lgid).expect("key just listed");
                match rep.ooo_since {
                    Some(t0) if now.since(t0) >= retry && !rep.ooo.is_empty() => {
                        let drained: Vec<(u64, LbcastId, B::Payload)> = rep
                            .ooo
                            .iter()
                            .map(|(&l, (_, id, p))| (l, *id, p.clone()))
                            .collect();
                        rep.ooo.clear();
                        rep.ooo_since = None;
                        up.bump("hier.forward.gap_skipped");
                        drained
                    }
                    _ => Vec::new(),
                }
            };
            for (lseq, id, payload) in force {
                if let Some(rep) = self.reps.get_mut(&lgid) {
                    if lseq >= rep.next_expected {
                        rep.next_expected = lseq;
                    }
                }
                self.rep_distribute(lgid, lseq, id, payload, up);
            }
        }
    }
}

fn _unused() {}
