//! Configuration of a large group: the paper's three structural quantities
//! (`size`, `resiliency`, `fanout`) plus operational thresholds.

use now_sim::SimDuration;

/// Structural and timing parameters of a large group.
///
/// The paper (section 3) defines:
/// - *resiliency*: communication survives `resiliency - 1` member failures;
///   an initiator reports success only after `resiliency` acknowledgements,
///   and critical state is replicated at `resiliency` processes;
/// - *fanout*: no process communicates directly with more than `fanout`
///   group members; when `fanout < size` a multistage broadcast is used;
/// - leaf subgroups have at least `max(resiliency, fanout)` members — here
///   relaxed to a configurable `min_leaf` with that default.
#[derive(Clone, Debug)]
pub struct LargeGroupConfig {
    /// Acks required before a broadcast is reported resilient, and the size
    /// of the leader group.
    pub resiliency: usize,
    /// Maximum direct destinations per process in the multistage broadcast.
    pub fanout: usize,
    /// Minimum leaf size; leaves below it are merged away.
    pub min_leaf: usize,
    /// Maximum leaf size; leaves above it are split.
    pub max_leaf: usize,
    /// Period of hierarchical housekeeping (child-leaf monitoring, gap
    /// repair, forwarding retries).
    pub tick: SimDuration,
    /// Silence threshold after which a parent declares a child leaf dead
    /// (total leaf failure, reported to the leader).
    pub leaf_dead_timeout: SimDuration,
    /// How long a member waits on a sequence gap before requesting repair.
    pub repair_timeout: SimDuration,
    /// Entries kept in each representative's re-forwarding cache.
    pub repair_cache: usize,
}

impl LargeGroupConfig {
    /// A configuration with the paper's defaults for the given structural
    /// parameters: `min_leaf = max(resiliency, 2)`, `max_leaf = 2 *
    /// min_leaf + 1`.
    pub fn new(resiliency: usize, fanout: usize) -> LargeGroupConfig {
        assert!(resiliency >= 1, "resiliency must be at least 1");
        assert!(fanout >= 1, "fanout must be at least 1");
        let min_leaf = resiliency.max(2);
        LargeGroupConfig {
            resiliency,
            fanout,
            min_leaf,
            max_leaf: 2 * min_leaf + 1,
            tick: SimDuration::from_millis(100),
            leaf_dead_timeout: SimDuration::from_millis(2_000),
            repair_timeout: SimDuration::from_millis(500),
            repair_cache: 1_024,
        }
    }

    /// Explicit leaf size band.
    pub fn with_leaf_band(mut self, min_leaf: usize, max_leaf: usize) -> LargeGroupConfig {
        assert!(min_leaf >= 1 && max_leaf >= min_leaf);
        self.min_leaf = min_leaf;
        self.max_leaf = max_leaf;
        self
    }

    /// The paper's small-group degenerate case: `size = fanout =
    /// resiliency` (every current ISIS group is a small group).
    pub fn small_group(size: usize) -> LargeGroupConfig {
        LargeGroupConfig::new(size, size).with_leaf_band(size, size)
    }

    /// Stretches all periodic maintenance (beacons, contact refreshes,
    /// retransmission retries) far beyond the experiment horizon, so that
    /// message-counting experiments see only event-driven traffic. Pair
    /// with `IsisConfig::quiet()`.
    pub fn counting(mut self) -> LargeGroupConfig {
        self.leaf_dead_timeout = SimDuration::from_secs(3_600);
        self.repair_timeout = SimDuration::from_secs(1_800);
        self
    }
}

impl Default for LargeGroupConfig {
    fn default() -> LargeGroupConfig {
        LargeGroupConfig::new(3, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = LargeGroupConfig::new(3, 8);
        assert_eq!(c.min_leaf, 3);
        assert_eq!(c.max_leaf, 7);
        assert_eq!(c.resiliency, 3);
        assert_eq!(c.fanout, 8);
    }

    #[test]
    fn min_leaf_never_below_two() {
        let c = LargeGroupConfig::new(1, 4);
        assert_eq!(c.min_leaf, 2);
    }

    #[test]
    fn small_group_degenerate_case() {
        let c = LargeGroupConfig::small_group(5);
        assert_eq!((c.resiliency, c.fanout), (5, 5));
        assert_eq!((c.min_leaf, c.max_leaf), (5, 5));
    }

    #[test]
    #[should_panic(expected = "resiliency")]
    fn zero_resiliency_rejected() {
        let _ = LargeGroupConfig::new(0, 4);
    }

    #[test]
    fn leaf_band_override() {
        let c = LargeGroupConfig::new(2, 4).with_leaf_band(4, 9);
        assert_eq!((c.min_leaf, c.max_leaf), (4, 9));
    }
}
