//! Scale tests: the hierarchy at a couple of hundred members — formation,
//! the paper's storage and fanout bounds, broadcast fan-in from many
//! origins, and heavy incremental growth.

use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::{large_cluster, RecorderBiz};
use isis_hier::HierApp;
use isis_core::{IsisConfig, IsisProcess};
use now_sim::SimDuration;

#[test]
fn two_hundred_members_form_and_broadcast() {
    let cfg = LargeGroupConfig::new(3, 4);
    let mut c = large_cluster(200, cfg.clone(), 1);
    let v = c.leader_hier_view().unwrap().clone();
    assert_eq!(v.total_members(), 200);
    assert!(v.num_leaves() >= 200 / cfg.max_leaf);
    for leaf in &v.leaves {
        assert!(leaf.size <= cfg.max_leaf);
    }

    // One broadcast reaches all 200 exactly once.
    c.sim.stats_mut().enable_fanout_tracking();
    c.sim.stats_mut().reset_window();
    c.lbcast(c.members[123], "fan-out");
    c.run_for(SimDuration::from_secs(30));
    for (m, log) in c.lbcast_logs() {
        assert_eq!(log, vec!["fan-out".to_string()], "at {m}");
    }
    // The fanout bound holds at scale (window includes heartbeats, which
    // stay within the same leaf/leader neighbourhood).
    let bound = cfg.fanout + cfg.max_leaf + 4;
    assert!(
        c.sim.stats().max_distinct_destinations() <= bound,
        "max fanout {} exceeds {bound}",
        c.sim.stats().max_distinct_destinations()
    );
}

#[test]
fn many_concurrent_origins_agree() {
    let mut c = large_cluster(80, LargeGroupConfig::new(2, 4), 3);
    for i in 0..20 {
        let origin = c.members[(i * 13) % 80];
        c.lbcast(origin, &format!("b{i}"));
    }
    c.run_for(SimDuration::from_secs(60));
    c.assert_uniform_lbcast_logs();
    let (_, log) = &c.lbcast_logs()[0];
    assert_eq!(log.len(), 20);
}

#[test]
fn per_member_storage_stays_flat_from_50_to_200() {
    let small = large_cluster(50, LargeGroupConfig::new(3, 4), 5);
    let big = large_cluster(200, LargeGroupConfig::new(3, 4), 5);
    let max_plain = |c: &isis_hier::harness::LargeCluster| {
        c.members
            .iter()
            .filter(|&&m| !c.sim.process(m).app().is_rep(c.lgid))
            .map(|&m| {
                c.sim.process(m).total_membership_storage_bytes()
                    + c.sim.process(m).app().hier_storage_bytes()
            })
            .max()
            .unwrap()
    };
    let (s, b) = (max_plain(&small), max_plain(&big));
    assert!(
        b <= s + s / 2,
        "plain-member storage grew with group size: {s} -> {b}"
    );
}

#[test]
fn growth_after_formation_keeps_invariants() {
    // 40 members, then 40 more join one at a time under light broadcast
    // traffic; the structure stays within its band and nothing is lost.
    let cfg = LargeGroupConfig::new(2, 4);
    let mut c = large_cluster(40, cfg.clone(), 7);
    let lgid = c.lgid;
    let contact = c.leaders[0];
    let mut joined = Vec::new();
    for i in 0..40 {
        let nd = c.sim.add_nodes(1)[0];
        let p = c.sim.spawn(
            nd,
            IsisProcess::new(
                HierApp::with_timers(RecorderBiz::default(), cfg.clone()),
                IsisConfig::default(),
            ),
        );
        c.sim.invoke(p, move |proc_, ctx| {
            proc_.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
        });
        joined.push(p);
        if i % 8 == 0 {
            let origin = c.members[i % 40];
            c.lbcast(origin, &format!("during-{i}"));
        }
        c.run_for(SimDuration::from_millis(300));
    }
    c.members.extend(joined);
    c.await_formation(SimDuration::from_secs(300));
    let v = c.leader_hier_view().unwrap();
    assert_eq!(v.total_members(), 80);
    for leaf in &v.leaves {
        assert!(leaf.size <= cfg.max_leaf, "oversize after growth");
    }
    // A final broadcast reaches all 80.
    c.lbcast(c.members[79], "final");
    c.run_for(SimDuration::from_secs(30));
    for (m, log) in c.lbcast_logs() {
        assert!(log.contains(&"final".to_string()), "member {m} missed it");
    }
}
