//! Property-based tests: the hierarchy's structural invariants and the
//! tree broadcast's agreement property must hold under random schedules of
//! broadcasts, crashes, and pauses.

use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::large_cluster_lan;
use now_sim::SimDuration;
use now_sim::detprop::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Lbcast { who: usize },
    Crash { who: usize },
    Wait { ms: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0usize..64).prop_map(|who| Op::Lbcast { who }),
        1 => (0usize..64).prop_map(|who| Op::Crash { who }),
        3 => (1u64..500).prop_map(|ms| Op::Wait { ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn hierarchy_invariants_under_churn(
        ops in prop::collection::vec(op_strategy(), 1..25),
        seed in 0u64..10_000,
    ) {
        const N: usize = 20;
        const MAX_CRASHES: usize = 3;
        let mut c = large_cluster_lan(N, LargeGroupConfig::new(2, 3), seed);
        let mut crashes = 0;
        let mut expected: Vec<String> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Lbcast { who } => {
                    let alive = c.live_members();
                    let origin = alive[who % alive.len()];
                    let payload = format!("b{i}");
                    if c.lbcast(origin, &payload).is_some() {
                        expected.push(payload);
                    }
                }
                Op::Crash { who } => {
                    if crashes < MAX_CRASHES {
                        let alive = c.live_members();
                        let victim = alive[who % alive.len()];
                        c.sim.crash(victim);
                        crashes += 1;
                    }
                }
                Op::Wait { ms } => c.run_for(SimDuration::from_millis(*ms)),
            }
        }
        c.run_for(SimDuration::from_secs(120));

        // Invariant 1: every broadcast from a *surviving* origin reaches
        // every surviving member exactly once.
        let logs = c.lbcast_logs();
        let survivors: Vec<now_sim::Pid> = c.live_members();
        for payload in &expected {
            // Identify the origin from the records of any holder.
            let origin = logs
                .iter()
                .flat_map(|(m, _)| {
                    c.sim.process(*m).app().biz().lbcasts.iter().filter_map(|(_, o, p)| {
                        if p == payload { Some(*o) } else { None }
                    })
                })
                .next();
            let origin_alive = origin.is_some_and(|o| survivors.contains(&o));
            if origin_alive {
                for (m, log) in &logs {
                    prop_assert!(
                        log.contains(payload),
                        "member {} missed {} (origin alive)", m, payload
                    );
                }
            }
        }
        for (m, log) in &logs {
            let mut sorted = log.clone();
            sorted.sort();
            let n0 = sorted.len();
            sorted.dedup();
            prop_assert_eq!(n0, sorted.len(), "duplicate delivery at {}", m);
        }

        // Invariant 2: the leader's structural bounds hold after settling.
        let v = c.leader_hier_view().expect("leader view").clone();
        for leaf in &v.leaves {
            prop_assert!(leaf.size <= c.cfg.max_leaf, "oversize leaf survived churn");
        }

        // Invariant 3: surviving members all belong to leaves the leader
        // knows about.
        for &m in &survivors {
            if let Some(leaf) = c.sim.process(m).app().leaf_of(c.lgid) {
                prop_assert!(
                    v.index_of(leaf).is_some(),
                    "member {} stranded in unknown leaf {:?}", m, leaf
                );
            }
        }
    }
}
