//! Crash-recovery end-to-end: a workstation dies, respawns under a fresh
//! incarnation, and rejoins the large group through the ordinary join /
//! state-transfer surface — with the virtual-synchrony monitors (including
//! VS-REJOIN) armed as oracles throughout.

use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::{large_cluster, LargeCluster};
use now_sim::{Pid, SimDuration};
use now_sim::trace::{EventKind, TraceEvent, Tracer, ViolationMode};

fn settle(c: &mut LargeCluster, secs: u64) {
    c.run_for(SimDuration::from_secs(secs));
}

fn arm(c: &mut LargeCluster) {
    c.sim.set_tracer(
        Tracer::new()
            .with_monitors(ViolationMode::Record)
            .retain_all(),
    );
}

fn assert_clean(c: &mut LargeCluster) -> Vec<TraceEvent> {
    let tr = c.sim.take_tracer().expect("tracer armed");
    assert!(
        tr.violations().is_empty(),
        "monitor violations: {:?}",
        tr.violations()
    );
    tr.events()
}

/// A non-rep member that is safe to kill without tripping repair paths
/// unrelated to this test.
fn plain_member(c: &LargeCluster) -> Pid {
    *c.members
        .iter()
        .find(|&&m| !c.sim.process(m).app().is_rep(c.lgid))
        .expect("a non-rep member exists")
}

#[test]
fn crashed_member_rejoins_under_a_fresh_incarnation() {
    let mut c = large_cluster(12, LargeGroupConfig::new(2, 3), 21);
    arm(&mut c);
    let victim = plain_member(&c);

    c.sim.crash(victim);
    settle(&mut c, 20); // the leaf absorbs the failure
    assert!(!c.live_members().contains(&victim));

    assert_eq!(c.restart_member(victim), Some(1));
    assert_eq!(c.sim.incarnation(victim), 1);
    settle(&mut c, 30);

    // The recovered workstation is a leaf member again (possibly of a
    // different leaf), and post-rejoin traffic reaches it.
    assert!(c.live_members().contains(&victim));
    let leaf = c
        .sim
        .process(victim)
        .app()
        .leaf_of(c.lgid)
        .expect("rejoined a leaf");
    let lv = c.leaf_view_of(victim).expect("has a leaf view");
    assert_eq!(lv.gid, leaf);
    assert!(lv.contains(victim));

    let origin = c
        .live_members()
        .into_iter()
        .find(|&m| m != victim)
        .expect("another member");
    c.lbcast(origin, "after-rejoin");
    settle(&mut c, 30);
    let got = c
        .sim
        .process(victim)
        .app()
        .biz()
        .lbcast_payloads(c.lgid);
    assert_eq!(got, vec!["after-rejoin".to_string()]);

    // The rejoin is visible in the trace and the oracles stayed silent.
    let events = assert_clean(&mut c);
    assert!(events.iter().any(|e| {
        e.pid == victim.0 && matches!(e.kind, EventKind::Restart { incarnation: 1 })
    }));
    assert!(events.iter().any(|e| {
        e.pid == victim.0 && matches!(e.kind, EventKind::RejoinBegin { incarnation: 1, .. })
    }));
    assert!(events.iter().any(|e| {
        e.pid == victim.0
            && matches!(e.kind, EventKind::RejoinComplete { incarnation: 1, .. })
    }));
}

#[test]
fn restart_of_a_live_member_is_a_noop() {
    let mut c = large_cluster(9, LargeGroupConfig::new(2, 3), 23);
    let m = plain_member(&c);
    assert_eq!(c.restart_member(m), None);
    assert_eq!(c.sim.incarnation(m), 0);
}

#[test]
fn rep_crash_and_return_reenters_as_plain_member() {
    let mut c = large_cluster(12, LargeGroupConfig::new(2, 3), 25);
    arm(&mut c);
    let rep = *c
        .members
        .iter()
        .find(|&&m| c.sim.process(m).app().is_rep(c.lgid))
        .expect("a member rep exists");

    c.sim.crash(rep);
    settle(&mut c, 25); // another member takes over the rep role

    assert!(c.restart_member(rep).is_some());
    settle(&mut c, 30);

    // Back in a leaf; the rep role was re-earned by someone, not resumed
    // by fiat — and VS-PRIM held across the crash+return.
    assert!(c.live_members().contains(&rep));
    assert!(c.sim.process(rep).app().leaf_of(c.lgid).is_some());
    c.lbcast(rep, "from-recovered");
    settle(&mut c, 30);
    for (m, log) in c.lbcast_logs() {
        if m == rep {
            continue; // the recovered pid's log restarted with its new life
        }
        assert!(
            log.contains(&"from-recovered".to_string()),
            "member {m} missed the recovered rep's broadcast"
        );
    }
    assert_clean(&mut c);
}

#[test]
fn double_restart_chains_incarnations() {
    let mut c = large_cluster(10, LargeGroupConfig::new(2, 3), 27);
    arm(&mut c);
    let victim = plain_member(&c);

    c.sim.crash(victim);
    settle(&mut c, 20);
    assert_eq!(c.restart_member(victim), Some(1));
    settle(&mut c, 25);
    assert!(c.live_members().contains(&victim));

    // The recovered life dies too; the third life still rejoins cleanly.
    c.sim.crash(victim);
    settle(&mut c, 20);
    assert_eq!(c.restart_member(victim), Some(2));
    settle(&mut c, 30);
    assert!(c.live_members().contains(&victim));
    assert_eq!(c.sim.incarnation(victim), 2);

    let events = assert_clean(&mut c);
    let completes = events
        .iter()
        .filter(|e| {
            e.pid == victim.0 && matches!(e.kind, EventKind::RejoinComplete { .. })
        })
        .count();
    assert_eq!(completes, 2, "each life completed its own rejoin");
}
