//! End-to-end tests of hierarchical large groups: formation, tree
//! broadcast semantics, failure scoping, split/merge, leader failover, and
//! the paper's structural bounds.

use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::{large_cluster, large_cluster_lan, LargeCluster};
use isis_hier::msg::LbcastStatus;
use now_sim::{Pid, SimDuration};

fn settle(c: &mut LargeCluster, secs: u64) {
    c.run_for(SimDuration::from_secs(secs));
}

// ---------------------------------------------------------------------
// Formation and structure
// ---------------------------------------------------------------------

#[test]
fn formation_builds_bounded_leaves() {
    let cfg = LargeGroupConfig::new(2, 3); // min_leaf 2, max_leaf 5.
    let c = large_cluster(24, cfg.clone(), 1);
    let v = c.leader_hier_view().expect("leader view");
    assert_eq!(v.total_members(), 24);
    assert!(v.num_leaves() >= 24 / cfg.max_leaf);
    for leaf in &v.leaves {
        assert!(
            leaf.size <= cfg.max_leaf,
            "leaf {:?} oversize: {}",
            leaf.gid,
            leaf.size
        );
        assert!(leaf.size >= cfg.min_leaf, "leaf {:?} undersize", leaf.gid);
    }
}

#[test]
fn every_member_belongs_to_exactly_one_leaf() {
    let c = large_cluster(18, LargeGroupConfig::new(2, 3), 3);
    let v = c.leader_hier_view().unwrap().clone();
    let mut assigned: Vec<Pid> = Vec::new();
    for &m in &c.members {
        let leaf = c.sim.process(m).app().leaf_of(c.lgid).expect("has leaf");
        assert!(v.index_of(leaf).is_some(), "member leaf unknown to leader");
        assigned.push(m);
        // The member's isis view matches its assignment.
        let lv = c.leaf_view_of(m).expect("leaf view");
        assert!(lv.contains(m));
        assert_eq!(lv.gid, leaf);
    }
    assigned.sort();
    assigned.dedup();
    assert_eq!(assigned.len(), 18);
}

#[test]
fn member_storage_is_bounded_while_flat_grows() {
    // The paper's E7 claim at test scale: a hierarchical member's
    // membership storage is independent of total group size.
    let small = large_cluster(12, LargeGroupConfig::new(2, 3), 5);
    let large = large_cluster(60, LargeGroupConfig::new(2, 3), 5);
    let max_member_bytes = |c: &LargeCluster| {
        c.members
            .iter()
            .filter(|&&m| !c.sim.process(m).app().is_rep(c.lgid))
            .map(|&m| {
                c.sim.process(m).app().hier_storage_bytes()
                    + c.sim
                        .process(m)
                        .total_membership_storage_bytes()
            })
            .max()
            .unwrap()
    };
    let s = max_member_bytes(&small);
    let l = max_member_bytes(&large);
    assert!(
        l <= s * 2,
        "plain member storage must not scale with group size: {s} -> {l}"
    );
}

// ---------------------------------------------------------------------
// Tree broadcast
// ---------------------------------------------------------------------

#[test]
fn lbcast_reaches_every_member_exactly_once() {
    let mut c = large_cluster(30, LargeGroupConfig::new(2, 3), 7);
    let origin = c.members[17];
    c.lbcast(origin, "payload-1");
    settle(&mut c, 30);
    for (m, log) in c.lbcast_logs() {
        assert_eq!(log, vec!["payload-1".to_string()], "at member {m}");
    }
}

#[test]
fn lbcast_total_order_across_all_members() {
    let mut c = large_cluster_lan(30, LargeGroupConfig::new(2, 4), 11);
    // Concurrent broadcasts from members in different leaves.
    for i in 0..10 {
        let origin = c.members[i * 3];
        c.lbcast(origin, &format!("m{i}"));
    }
    settle(&mut c, 60);
    c.assert_uniform_lbcast_logs();
    let (_, log) = &c.lbcast_logs()[0];
    assert_eq!(log.len(), 10, "all broadcasts delivered");
}

#[test]
fn origin_learns_resilient_and_complete() {
    let mut c = large_cluster(20, LargeGroupConfig::new(3, 3), 13);
    let origin = c.members[5];
    let id = c.lbcast(origin, "tracked").expect("submitted");
    settle(&mut c, 30);
    let statuses = &c.sim.process(origin).app().biz().statuses;
    assert!(
        statuses.contains(&(id, LbcastStatus::Resilient)),
        "origin never learned resilience: {statuses:?}"
    );
    assert!(
        statuses.contains(&(id, LbcastStatus::Complete)),
        "origin never learned completion: {statuses:?}"
    );
}

#[test]
fn lbcast_survives_single_member_crashes() {
    let mut c = large_cluster_lan(24, LargeGroupConfig::new(3, 3), 17);
    // Crash one non-rep member mid-traffic.
    let victim = *c
        .members
        .iter()
        .find(|&&m| !c.sim.process(m).app().is_rep(c.lgid))
        .unwrap();
    let mut sent = 0;
    for i in 0..5 {
        let origin = c.members[(i * 7) % 24];
        if origin != victim {
            c.lbcast(origin, &format!("pre{i}"));
            sent += 1;
        }
    }
    c.sim.crash(victim);
    for i in 0..5 {
        let origin = c.members[(i * 5 + 1) % 24];
        if origin != victim {
            c.lbcast(origin, &format!("post{i}"));
            sent += 1;
        }
    }
    settle(&mut c, 90);
    c.assert_uniform_lbcast_logs();
    let (_, log) = &c.lbcast_logs()[0];
    assert_eq!(log.len(), sent);
}

#[test]
fn lbcast_survives_rep_crash() {
    let mut c = large_cluster_lan(24, LargeGroupConfig::new(3, 3), 19);
    // Crash a non-root representative: its leaf elects a new rep, the
    // parent retransmits, nothing is lost.
    let root = c.root_rep().unwrap();
    let victim = *c
        .members
        .iter()
        .find(|&&m| m != root && c.sim.process(m).app().is_rep(c.lgid))
        .expect("a non-root rep exists");
    c.lbcast(c.members[0], "before-crash");
    c.sim.crash(victim);
    c.run_for(SimDuration::from_millis(200));
    c.lbcast(c.members[1], "after-crash");
    settle(&mut c, 120);
    // Both broadcasts must reach every member exactly once. Their relative
    // order may differ across the repair window (a broadcast backfilled
    // after a representative crash): the tree broadcast guarantees total
    // order in steady state and agreement (all-or-nothing, no duplicates)
    // across failures — see the crate docs.
    for (m, log) in c.lbcast_logs() {
        let mut sorted = log.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec!["after-crash".to_string(), "before-crash".to_string()],
            "member {m} did not deliver both broadcasts exactly once: {log:?}"
        );
    }
}

#[test]
fn lbcast_survives_root_rep_crash() {
    let mut c = large_cluster_lan(24, LargeGroupConfig::new(3, 3), 23);
    c.lbcast(c.members[0], "pre-root-crash");
    settle(&mut c, 10);
    let root = c.root_rep().unwrap();
    c.sim.crash(root);
    c.run_for(SimDuration::from_secs(5));
    let origin = *c.members.iter().find(|&&m| m != root).unwrap();
    c.lbcast(origin, "post-root-crash");
    settle(&mut c, 120);
    let logs = c.lbcast_logs();
    for (m, log) in &logs {
        assert!(
            log.contains(&"post-root-crash".to_string()),
            "member {m} missed the post-crash broadcast: {log:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Failure scoping (the paper's headline claims)
// ---------------------------------------------------------------------

#[test]
fn single_failure_disturbs_only_one_leaf() {
    let mut c = large_cluster(40, LargeGroupConfig::new(3, 3), 29);
    settle(&mut c, 5);
    let victim = *c
        .members
        .iter()
        .find(|&&m| !c.sim.process(m).app().is_rep(c.lgid))
        .unwrap();
    let victim_leaf = c.sim.process(victim).app().leaf_of(c.lgid).unwrap();

    // Record view ids of every member before the crash.
    let before: Vec<(Pid, u64)> = c
        .live_members()
        .iter()
        .map(|&m| (m, c.leaf_view_of(m).map_or(0, |v| v.view_id)))
        .collect();
    c.sim.crash(victim);
    settle(&mut c, 30);

    for (m, vid_before) in before {
        if m == victim {
            continue;
        }
        let leaf = c.sim.process(m).app().leaf_of(c.lgid).unwrap();
        let vid_after = c.leaf_view_of(m).map_or(0, |v| v.view_id);
        if leaf == victim_leaf {
            assert!(vid_after > vid_before, "co-leaf member {m} saw the change");
        } else {
            assert_eq!(
                vid_after, vid_before,
                "member {m} in another leaf was disturbed by the failure"
            );
        }
    }
}

#[test]
fn total_leaf_failure_repairs_the_tree() {
    let mut c = large_cluster(24, LargeGroupConfig::new(2, 3), 31);
    settle(&mut c, 5);
    let v = c.leader_hier_view().unwrap().clone();
    assert!(v.num_leaves() >= 3);
    // Kill every member of a non-root leaf.
    let doomed_leaf = v.leaves[1].gid;
    let doomed: Vec<Pid> = c
        .members
        .iter()
        .copied()
        .filter(|&m| c.sim.process(m).app().leaf_of(c.lgid) == Some(doomed_leaf))
        .collect();
    assert!(!doomed.is_empty());
    for p in &doomed {
        c.sim.crash(*p);
    }
    settle(&mut c, 60);
    let v2 = c.leader_hier_view().unwrap();
    assert!(
        v2.index_of(doomed_leaf).is_none(),
        "dead leaf still in the tree"
    );
    assert_eq!(v2.total_members(), 24 - doomed.len());
    // Broadcasts still reach all survivors.
    let origin = c.live_members()[0];
    c.lbcast(origin, "after-leaf-death");
    settle(&mut c, 60);
    for (m, log) in c.lbcast_logs() {
        assert!(
            log.contains(&"after-leaf-death".to_string()),
            "survivor {m} missed the broadcast"
        );
    }
}

#[test]
fn leader_member_failure_is_transparent() {
    let mut c = large_cluster(16, LargeGroupConfig::new(3, 3), 37);
    // Kill the active leader; the next leader-group member takes over.
    let active = c.leaders[0];
    c.sim.crash(active);
    settle(&mut c, 30);
    // New joins still work.
    let nd = c.sim.add_nodes(1)[0];
    let newcomer = c.sim.spawn(
        nd,
        isis_core::IsisProcess::new(
            isis_hier::HierApp::with_timers(
                isis_hier::harness::RecorderBiz::default(),
                c.cfg.clone(),
            ),
            isis_core::IsisConfig::default(),
        ),
    );
    let lgid = c.lgid;
    let contact = c.leaders[1];
    c.sim.invoke(newcomer, move |p, ctx| {
        p.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
    });
    c.members.push(newcomer);
    settle(&mut c, 60);
    assert!(
        c.sim.process(newcomer).app().is_large_member(lgid),
        "join after leader failover must succeed"
    );
    // And broadcasts still flow.
    c.lbcast(newcomer, "under-new-management");
    settle(&mut c, 60);
    for (m, log) in c.lbcast_logs() {
        assert!(
            log.contains(&"under-new-management".to_string()),
            "member {m} missed broadcast after leader failover"
        );
    }
}

// ---------------------------------------------------------------------
// Split and merge
// ---------------------------------------------------------------------

#[test]
fn undersized_leaf_is_merged_away() {
    let cfg = LargeGroupConfig::new(3, 3); // min_leaf 3, max_leaf 7.
    let mut c = large_cluster(14, cfg, 41);
    settle(&mut c, 5);
    let v = c.leader_hier_view().unwrap().clone();
    assert!(v.num_leaves() >= 2);
    // Crash members of one leaf until it falls below min_leaf (but not to
    // zero), then expect a dissolve.
    let target_leaf = v.leaves[1].gid;
    let in_leaf: Vec<Pid> = c
        .members
        .iter()
        .copied()
        .filter(|&m| c.sim.process(m).app().leaf_of(c.lgid) == Some(target_leaf))
        .collect();
    for &p in &in_leaf[..in_leaf.len() - 2] {
        c.sim.crash(p);
    }
    settle(&mut c, 90);
    let v2 = c.leader_hier_view().unwrap();
    for leaf in &v2.leaves {
        assert!(
            leaf.size >= 2,
            "leaf {:?} left undersized: {}",
            leaf.gid,
            leaf.size
        );
    }
    // The survivors migrated somewhere and still receive broadcasts.
    let survivors: Vec<Pid> = in_leaf
        .iter()
        .copied()
        .filter(|&p| c.sim.is_alive(p))
        .collect();
    assert_eq!(survivors.len(), 2);
    c.lbcast(c.members[0], "post-merge");
    settle(&mut c, 60);
    for &s in &survivors {
        assert!(
            c.sim
                .process(s)
                .app()
                .biz()
                .lbcast_payloads(c.lgid)
                .contains(&"post-merge".to_string()),
            "migrated member {s} missed the broadcast"
        );
    }
}

#[test]
fn growth_keeps_leaves_within_band_via_minting() {
    // Incremental growth: joiners are placed in existing leaves until full,
    // then a fresh leaf is minted — no leaf ever exceeds max_leaf.
    let cfg = LargeGroupConfig::new(2, 4); // max_leaf 5.
    let c = large_cluster(37, cfg.clone(), 43);
    let v = c.leader_hier_view().unwrap();
    for leaf in &v.leaves {
        assert!(leaf.size <= cfg.max_leaf);
    }
    assert!(v.num_leaves() >= 37usize.div_ceil(cfg.max_leaf));
}

// ---------------------------------------------------------------------
// Dynamics
// ---------------------------------------------------------------------

#[test]
fn member_leave_shrinks_leaf_and_leader_view() {
    let mut c = large_cluster(12, LargeGroupConfig::new(2, 3), 47);
    let leaver = c.members[4];
    let lgid = c.lgid;
    c.sim.invoke(leaver, move |p, ctx| {
        p.with_app(ctx, move |app, up| app.leave_large(lgid, up));
    });
    settle(&mut c, 60);
    assert!(!c.sim.process(leaver).app().is_large_member(lgid));
    let v = c.leader_hier_view().unwrap();
    assert_eq!(v.total_members(), 11);
}

#[test]
fn deterministic_formation_same_seed() {
    let shape = |seed: u64| {
        let c = large_cluster(20, LargeGroupConfig::new(2, 3), seed);
        let v = c.leader_hier_view().unwrap();
        (
            v.num_leaves(),
            v.leaves.iter().map(|l| l.size).collect::<Vec<_>>(),
            c.sim.stats().messages_sent,
        )
    };
    assert_eq!(shape(99), shape(99));
}

#[test]
fn small_group_degenerate_case_still_works() {
    // size == fanout == resiliency: one leaf, exactly the "small group" of
    // the existing ISIS.
    let mut c = large_cluster(4, LargeGroupConfig::small_group(4), 53);
    let v = c.leader_hier_view().unwrap();
    assert_eq!(v.num_leaves(), 1);
    c.lbcast(c.members[2], "tiny");
    settle(&mut c, 30);
    for (_, log) in c.lbcast_logs() {
        assert_eq!(log, vec!["tiny".to_string()]);
    }
}
