//! Property tests of the hierarchy's pure structure: the implicit tree is
//! a well-formed spanning tree for any (leaves, fanout), slices are
//! bounded, and slice extraction is consistent with the tree relations.

use isis_hier::{HierView, LargeGroupId, LeafDesc};
use now_sim::Pid;
use now_sim::detprop::prelude::*;

fn view(nleaves: usize, fanout: usize, resiliency: usize) -> HierView {
    let lgid = LargeGroupId(1);
    HierView {
        lgid,
        epoch: 1,
        fanout,
        resiliency,
        leaves: (0..nleaves)
            .map(|i| LeafDesc {
                gid: lgid.leaf_gid(i as u32 + 1),
                contacts: (0..resiliency.min(4) as u32)
                    .map(|k| Pid(i as u32 * 100 + k))
                    .collect(),
                size: 5,
            })
            .collect(),
        leader_contacts: vec![Pid(9_000), Pid(9_001)],
    }
}

proptest! {
    #[test]
    fn tree_is_a_spanning_tree(nleaves in 1usize..300, fanout in 1usize..12) {
        let v = view(nleaves, fanout, 3);
        // Every non-root has exactly one parent, and parent/children are
        // mutually consistent.
        let mut reached = vec![false; nleaves];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            prop_assert!(!reached[i], "cycle at {}", i);
            reached[i] = true;
            for c in v.children(i) {
                prop_assert_eq!(v.parent(c), Some(i));
                prop_assert!(c < nleaves);
                stack.push(c);
            }
        }
        prop_assert!(reached.iter().all(|&r| r), "unreachable leaves");
    }

    #[test]
    fn children_counts_respect_fanout(nleaves in 1usize..300, fanout in 1usize..12) {
        let v = view(nleaves, fanout, 2);
        for i in 0..nleaves {
            prop_assert!(v.children(i).len() <= fanout);
        }
    }

    #[test]
    fn depth_is_logarithmic(nleaves in 1usize..1_000, fanout in 2usize..12) {
        let v = view(nleaves, fanout, 2);
        let d = v.depth();
        // depth ≤ log_fanout(nleaves) + 2 for an array-embedded tree.
        let bound = ((nleaves as f64).ln() / (fanout as f64).ln()).ceil() as usize + 2;
        prop_assert!(d <= bound, "depth {} exceeds {} for {} leaves fanout {}", d, bound, nleaves, fanout);
    }

    #[test]
    fn slices_are_bounded_and_consistent(
        nleaves in 1usize..200,
        fanout in 1usize..10,
        idx_seed in any::<usize>(),
    ) {
        let v = view(nleaves, fanout, 3);
        let i = idx_seed % nleaves;
        let s = v.slice_for(i);
        prop_assert_eq!(s.my_index, i);
        prop_assert_eq!(s.my_gid, v.leaves[i].gid);
        prop_assert_eq!(s.children.len(), v.children(i).len());
        prop_assert!(s.children.len() <= fanout);
        prop_assert_eq!(s.parent.is_none(), i == 0);
        if let Some(p) = &s.parent {
            prop_assert_eq!(p.gid, v.leaves[v.parent(i).unwrap()].gid);
        }
        // Slice storage is bounded by fanout, never by nleaves.
        let per_child = 8 + 4 * 4 + 8 + 32; // generous per-LeafDesc bound
        prop_assert!(s.storage_bytes() <= 64 + (fanout + 1) * per_child + 4 * 8);
    }
}
