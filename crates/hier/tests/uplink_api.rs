//! Exercises the hierarchical layer's harness-facing accessors:
//! `biz_mut` priming and the deterministic `LargeUplink::rng` stream. Also
//! the reachability witness for detlint rule R4 on these entry points.

use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::large_cluster_lan;
use now_sim::det_rand::Rng;

fn draws(seed: u64) -> Vec<u64> {
    let mut c = large_cluster_lan(6, LargeGroupConfig::new(2, 3), seed);
    let p = c.live_members()[0];
    let mut out = Vec::new();
    c.sim.invoke(p, |proc_, ctx| {
        proc_.with_app(ctx, |app, up| {
            app.with_business(up, |_biz, lup| {
                for _ in 0..8 {
                    out.push(lup.rng().gen_range(0u64..1_000_000));
                }
            });
        });
    });
    out
}

#[test]
fn large_uplink_rng_is_deterministic_per_seed() {
    assert_eq!(draws(21), draws(21));
    assert_ne!(draws(21), draws(22));
}

#[test]
fn biz_mut_primes_business_state() {
    let mut c = large_cluster_lan(6, LargeGroupConfig::new(2, 3), 9);
    let p = c.live_members()[0];
    let lgid = c.lgid;
    c.sim
        .process_mut(p)
        .app_mut()
        .biz_mut()
        .lbcasts
        .push((lgid, p, "primed".into()));
    assert_eq!(
        c.sim.process(p).app().biz().lbcasts,
        vec![(lgid, p, "primed".to_string())]
    );
}
