//! Monitor-catalog tests: each invariant monitor must accept a clean
//! synthetic run (no false positives) and catch its matching seeded fault
//! with the offending pids named (no false negatives).

use now_trace::query::{chain, parse_dump, Filter};
use now_trace::{chrome, EventKind, MsgKey, Tracer, ViolationMode};

fn armed() -> Tracer {
    Tracer::new().with_monitors(ViolationMode::Record).retain_all()
}

fn install(tr: &mut Tracer, at: u64, pid: u32, gid: u64, view: u64, members: &[u32]) -> u64 {
    tr.record(
        at,
        pid,
        None,
        EventKind::ViewInstall { gid, view, members: members.to_vec(), joined: false },
    )
}

#[allow(clippy::too_many_arguments)]
fn deliver(
    tr: &mut Tracer,
    at: u64,
    pid: u32,
    gid: u64,
    view: u64,
    msg: MsgKey,
    gseq: u64,
    vt: Vec<(u32, u64)>,
) -> u64 {
    tr.record(
        at,
        pid,
        None,
        EventKind::CastDeliver { gid, view, msg, gseq, relay: false, vt },
    )
}

// ----- VS-VIEW: same-view agreement ------------------------------------

#[test]
fn vs_view_accepts_agreement_and_catches_divergence() {
    let mut tr = armed();
    install(&mut tr, 10, 1, 7, 3, &[1, 2, 3]);
    install(&mut tr, 11, 2, 7, 3, &[1, 2, 3]);
    assert!(tr.violations().is_empty());

    install(&mut tr, 12, 3, 7, 3, &[1, 3]);
    assert_eq!(tr.violations().len(), 1);
    let v = &tr.violations()[0];
    assert_eq!(v.monitor, "VS-VIEW");
    assert_eq!(v.pids, vec![3, 1], "offender first, then the first installer");
}

// ----- VS-PRIM: primary-partition uniqueness ---------------------------

#[test]
fn vs_prim_accepts_overlapping_views_and_catches_split_brain() {
    let mut tr = armed();
    install(&mut tr, 10, 1, 7, 3, &[1, 2, 3, 4]);
    install(&mut tr, 20, 2, 7, 4, &[2, 3, 4]);
    assert!(tr.violations().is_empty(), "shrinking majority view overlaps the old one");

    // p1 installs a view disjoint from p2's — two primaries.
    install(&mut tr, 30, 1, 7, 4, &[1, 5]);
    let v = tr
        .violations()
        .iter()
        .find(|v| v.monitor == "VS-PRIM")
        .expect("split brain caught");
    assert!(v.pids.contains(&1) && v.pids.contains(&2));
}

#[test]
fn vs_prim_ignores_stalled_and_crashed_members() {
    let mut tr = armed();
    install(&mut tr, 10, 1, 7, 3, &[1, 2]);
    install(&mut tr, 10, 2, 7, 3, &[1, 2]);
    // p2 stalls out (minority side), then p1 moves on without it: no
    // split brain — the stalled side is not a live primary.
    tr.record(20, 2, None, EventKind::GroupStall { gid: 7 });
    install(&mut tr, 30, 1, 7, 4, &[1, 9]);
    assert!(tr.violations().is_empty());

    // Same for a crash.
    tr.record(40, 1, None, EventKind::Crash);
    install(&mut tr, 50, 9, 7, 5, &[9]);
    assert!(tr.violations().is_empty());
}

// ----- VS-DIV: delivery-in-view ----------------------------------------

#[test]
fn vs_div_catches_cross_view_delivery_but_exempts_relays() {
    let msg = MsgKey { sender: 1, view: 3, stream: 1, seq: 1 };
    let mut tr = armed();
    deliver(&mut tr, 10, 2, 7, 3, msg.clone(), 0, vec![]);
    assert!(tr.violations().is_empty());

    // Relayed copy in view 4: sanctioned flush catch-up.
    tr.record(
        20,
        3,
        None,
        EventKind::CastDeliver { gid: 7, view: 4, msg: msg.clone(), gseq: 0, relay: true, vt: vec![] },
    );
    assert!(tr.violations().is_empty());

    // Non-relay delivery in the wrong view: violation.
    deliver(&mut tr, 30, 4, 7, 4, msg, 0, vec![]);
    assert_eq!(tr.violations().len(), 1);
    assert_eq!(tr.violations()[0].monitor, "VS-DIV");
}

// ----- VS-CO: causal order ---------------------------------------------

#[test]
fn vs_co_accepts_causal_run_and_catches_gap_and_reorder() {
    let m = |sender: u32, seq: u64| MsgKey { sender, view: 3, stream: 0, seq };
    let mut tr = armed();
    install(&mut tr, 1, 9, 7, 3, &[1, 2, 9]);
    // p1 sends c1; p9 delivers it; p2's c1 depends on p1's c1. In order: ok.
    deliver(&mut tr, 10, 9, 7, 3, m(1, 1), 0, vec![(1, 1)]);
    deliver(&mut tr, 20, 9, 7, 3, m(2, 1), 0, vec![(1, 1), (2, 1)]);
    assert!(tr.violations().is_empty());

    // Fresh receiver delivering the dependent message *first*: caught.
    install(&mut tr, 30, 8, 7, 3, &[1, 2, 9]);
    deliver(&mut tr, 40, 8, 7, 3, m(2, 1), 0, vec![(1, 1), (2, 1)]);
    let v = &tr.violations()[0];
    assert_eq!(v.monitor, "VS-CO");
    assert_eq!(v.pids, vec![8, 2]);

    // Sender-seq gap (skipped c1, delivered c2): caught.
    let mut tr2 = armed();
    install(&mut tr2, 1, 9, 7, 3, &[1, 9]);
    deliver(&mut tr2, 10, 9, 7, 3, m(1, 2), 0, vec![(1, 2)]);
    assert_eq!(tr2.violations()[0].monitor, "VS-CO");
}

#[test]
fn vs_co_state_resets_at_view_boundaries() {
    let mut tr = armed();
    install(&mut tr, 1, 9, 7, 3, &[1, 9]);
    deliver(
        &mut tr,
        10,
        9,
        7,
        3,
        MsgKey { sender: 1, view: 3, stream: 0, seq: 1 },
        0,
        vec![(1, 1)],
    );
    // New view: sender seqs restart at 1.
    install(&mut tr, 20, 9, 7, 4, &[1, 9]);
    deliver(
        &mut tr,
        30,
        9,
        7,
        4,
        MsgKey { sender: 1, view: 4, stream: 0, seq: 1 },
        0,
        vec![(1, 1)],
    );
    assert!(tr.violations().is_empty());
}

// ----- VS-TO: total order ----------------------------------------------

#[test]
fn vs_to_catches_slot_disagreement_and_gseq_regression() {
    let m = |sender: u32, seq: u64| MsgKey { sender, view: 3, stream: 2, seq };
    let mut tr = armed();
    deliver(&mut tr, 10, 1, 7, 3, m(1, 1), 1, vec![]);
    deliver(&mut tr, 11, 2, 7, 3, m(1, 1), 1, vec![]);
    deliver(&mut tr, 12, 1, 7, 3, m(2, 1), 2, vec![]);
    assert!(tr.violations().is_empty());

    // p2 delivers a *different* message at slot 2: disagreement.
    deliver(&mut tr, 13, 2, 7, 3, m(1, 2), 2, vec![]);
    assert_eq!(tr.violations().len(), 1);
    let v = &tr.violations()[0];
    assert_eq!(v.monitor, "VS-TO");
    assert_eq!(v.pids, vec![2, 1]);

    // Regressing gseq at one receiver: also caught.
    let mut tr2 = armed();
    deliver(&mut tr2, 10, 1, 7, 3, m(1, 1), 5, vec![]);
    deliver(&mut tr2, 11, 1, 7, 3, m(2, 1), 4, vec![]);
    assert!(tr2.violations().iter().any(|v| v.monitor == "VS-TO"));
}

// ----- VS-STORE: bounded view storage ----------------------------------

#[test]
fn vs_store_checks_only_bounded_samples() {
    let mut tr = armed();
    tr.record(1, 3, None, EventKind::StorageSample { lgid: 1, bytes: 100, bound: 200 });
    tr.record(2, 3, None, EventKind::StorageSample { lgid: 1, bytes: 100, bound: 0 });
    assert!(tr.violations().is_empty());
    tr.record(3, 3, None, EventKind::StorageSample { lgid: 1, bytes: 300, bound: 200 });
    assert_eq!(tr.violations().len(), 1);
    assert_eq!(tr.violations()[0].monitor, "VS-STORE");
}

// ----- excerpts, query, export -----------------------------------------

#[test]
fn violation_excerpt_walks_the_causal_chain() {
    let mut tr = armed();
    let s = tr.record(1, 1, None, EventKind::NetSend { to: 2, bytes: 10 });
    let d = tr.record(5, 2, Some(s), EventKind::NetDeliver { from: 1, send: s });
    // Fault injected *with* a cause: the excerpt must reach back to the send.
    tr.inject(6, 2, Some(d), EventKind::StorageSample { lgid: 1, bytes: 9, bound: 1 });
    let v = &tr.violations()[0];
    let seqs: Vec<u64> = v.excerpt.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![s, d, v.seq], "excerpt is the chain, oldest first");
}

#[test]
fn dump_filter_chain_and_chrome_round_trip() {
    let mut tr = Tracer::new().retain_all();
    let s = tr.record(1, 1, None, EventKind::NetSend { to: 2, bytes: 10 });
    tr.record(5, 2, Some(s), EventKind::NetDeliver { from: 1, send: s });
    tr.record(
        6,
        2,
        Some(s + 1),
        EventKind::ViewInstall { gid: 4, view: 1, members: vec![1, 2], joined: true },
    );

    let (events, bad) = parse_dump(&tr.to_tsv());
    assert!(bad.is_empty());
    assert_eq!(events.len(), 3);

    let only_p2 = Filter { pid: Some(2), ..Filter::default() };
    assert_eq!(only_p2.apply(&events).len(), 2);
    let only_g4 = Filter { gid: Some(4), ..Filter::default() };
    assert_eq!(only_g4.apply(&events).len(), 1);

    let c = chain(&events, 3);
    assert_eq!(c.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3]);

    let json = chrome::to_chrome(&events);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\": \"s\""), "flow start for the send");
    assert!(json.contains("\"ph\": \"f\""), "flow finish for the delivery");
}
