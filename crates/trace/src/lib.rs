//! `now-trace` — deterministic causal tracing and online virtual-synchrony
//! invariant monitoring for the simulated ISIS stack.
//!
//! The crate sits *below* `now-sim` in the dependency graph: the engine owns
//! an optional [`Tracer`] and records engine-level events (sends, deliveries,
//! drops, timers, crashes); the protocol layers emit semantic events through
//! `Ctx::trace_with`. Everything is keyed by simulated time and a per-run
//! sequence number — no wall clock, no ambient RNG, BTree-ordered state —
//! so a trace is as replayable as the run that produced it, and recording
//! never perturbs the run (tracing touches neither the RNG nor the stats).
//!
//! Three layers:
//! - [`event`] — the structured event model + TSV (de)serialisation,
//! - [`monitor`] — online invariant monitors ([`monitor::Monitors`]) that
//!   fail fast with a minimal causal excerpt,
//! - [`query`] / [`chrome`] — offline filtering, causal-chain reconstruction
//!   and Chrome `trace_event` export behind the `tracectl` binary.

pub mod chrome;
pub mod event;
pub mod monitor;
pub mod query;

use std::collections::VecDeque;

pub use event::{EventKind, MsgKey, TraceEvent};
pub use monitor::{Monitors, Violation};

/// Default size of the rolling window of retained events. Large enough to
/// reconstruct the causal neighbourhood of a violation, small enough that
/// armed monitors cost O(1) memory on long runs.
pub const RING_CAP: usize = 4096;

/// How a tracer reacts when a monitor flags a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationMode {
    /// Collect violations; the harness inspects [`Tracer::violations`].
    Record,
    /// Panic with the formatted violation + causal excerpt (CI mode: any
    /// armed experiment aborts the run on first violation).
    Panic,
}

/// The per-simulation event collector.
///
/// Disabled tracing is represented by the *absence* of a `Tracer` (the
/// engine holds `Option<Tracer>`), so the disabled path is a single
/// `is_some()` check and runs are byte-identical with tracing off.
#[derive(Debug)]
pub struct Tracer {
    next_seq: u64,
    ring: VecDeque<TraceEvent>,
    cap: usize,
    retain_all: bool,
    all: Vec<TraceEvent>,
    monitors: Option<Monitors>,
    mode: ViolationMode,
    violations: Vec<Violation>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Record-only tracer with the default rolling window.
    pub fn new() -> Self {
        Tracer {
            next_seq: 0,
            ring: VecDeque::new(),
            cap: RING_CAP,
            retain_all: false,
            all: Vec::new(),
            monitors: None,
            mode: ViolationMode::Record,
            violations: Vec::new(),
        }
    }

    /// Arms the online invariant monitors.
    #[must_use]
    pub fn with_monitors(mut self, mode: ViolationMode) -> Self {
        self.monitors = Some(Monitors::new());
        self.mode = mode;
        self
    }

    /// Keeps *every* event (unbounded), for export and offline queries.
    #[must_use]
    pub fn retain_all(mut self) -> Self {
        self.retain_all = true;
        self
    }

    /// Environment-driven construction, consulted once per simulation:
    /// `NOW_MONITORS=1` arms the monitors in panic mode (the CI sweep),
    /// `NOW_TRACE=1` records without monitors. Unset/`0` → no tracer, and
    /// the run is bit-for-bit what it would be without this crate.
    pub fn from_env() -> Option<Tracer> {
        let set = |k: &str| std::env::var(k).is_ok_and(|v| !v.is_empty() && v != "0");
        if set("NOW_MONITORS") {
            Some(Tracer::new().with_monitors(ViolationMode::Panic))
        } else if set("NOW_TRACE") {
            Some(Tracer::new())
        } else {
            None
        }
    }

    /// Records one event and returns its seq (the caller threads it as the
    /// `cause` of downstream events; a `NetSend`'s seq is the wire id).
    ///
    /// # Panics
    /// In [`ViolationMode::Panic`], panics on the first monitor violation,
    /// printing the violation and its causal excerpt.
    pub fn record(&mut self, at: u64, pid: u32, cause: Option<u64>, kind: EventKind) -> u64 {
        self.next_seq += 1;
        let ev = TraceEvent { seq: self.next_seq, at, pid, cause, kind };
        let mut found = match self.monitors.as_mut() {
            Some(m) => m.observe(&ev),
            None => Vec::new(),
        };
        if self.retain_all {
            self.all.push(ev.clone());
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        for viol in &mut found {
            viol.excerpt = self.excerpt(viol.seq);
        }
        if self.mode == ViolationMode::Panic {
            if let Some(viol) = found.first() {
                panic!("{viol}");
            }
        }
        self.violations.extend(found);
        self.next_seq
    }

    /// Test-only fault injection: feeds a fabricated event through the same
    /// path as [`Tracer::record`], so monitor catches can be exercised
    /// end-to-end (a seeded fault must produce a named, excerpted catch).
    pub fn inject(&mut self, at: u64, pid: u32, cause: Option<u64>, kind: EventKind) -> u64 {
        self.record(at, pid, cause, kind)
    }

    /// Seq of the most recently recorded event (0 before the first).
    pub fn last_seq(&self) -> u64 {
        self.next_seq
    }

    /// Violations collected so far (always empty in panic mode — the first
    /// one aborts the run).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of events the monitors have consumed (0 when unarmed).
    pub fn monitored_events(&self) -> u64 {
        self.monitors.as_ref().map_or(0, Monitors::observed)
    }

    /// Takes the retained events accumulated since the last drain, oldest
    /// first, leaving the tracer recording (seqs keep counting up; the
    /// rolling window is cleared too so a drained event is never returned
    /// twice). This is the shard-buffer surface of the parallel engine: a
    /// worker records into a private `retain_all` tracer, and the
    /// coordinator drains it at each window barrier and re-records the
    /// events into the main tracer in deterministic merged order.
    pub fn drain_events(&mut self) -> Vec<TraceEvent> {
        self.ring.clear();
        std::mem::take(&mut self.all)
    }

    /// The retained events, oldest first: the full log under
    /// [`Tracer::retain_all`], otherwise the rolling window.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.retain_all {
            self.all.clone()
        } else {
            self.ring.iter().cloned().collect()
        }
    }

    /// Looks up a retained event by seq.
    pub fn find(&self, seq: u64) -> Option<&TraceEvent> {
        if self.retain_all {
            let i = self.all.binary_search_by_key(&seq, |e| e.seq).ok()?;
            return self.all.get(i);
        }
        let (a, b) = self.ring.as_slices();
        for side in [a, b] {
            if let Ok(i) = side.binary_search_by_key(&seq, |e| e.seq) {
                return side.get(i);
            }
        }
        None
    }

    /// Walks `cause` links backwards from `seq` through the retained window
    /// and returns the chain oldest-first (capped at 12 hops): the minimal
    /// causal excerpt attached to violations.
    pub fn excerpt(&self, seq: u64) -> Vec<TraceEvent> {
        let mut chain = Vec::new();
        let mut cur = Some(seq);
        while let Some(s) = cur {
            let Some(ev) = self.find(s) else { break };
            chain.push(ev.clone());
            if chain.len() >= 12 {
                break;
            }
            cur = ev.cause;
        }
        chain.reverse();
        chain
    }

    /// Serialises the retained events as TSV, one event per line.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_tsv());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(tr: &mut Tracer, at: u64, pid: u32, to: u32) -> u64 {
        tr.record(at, pid, None, EventKind::NetSend { to, bytes: 64 })
    }

    #[test]
    fn seqs_are_dense_and_causes_chain() {
        let mut tr = Tracer::new().retain_all();
        let s = send(&mut tr, 10, 1, 2);
        let d = tr.record(25, 2, Some(s), EventKind::NetDeliver { from: 1, send: s });
        let t = tr.record(25, 2, Some(d), EventKind::Halt);
        assert_eq!((s, d, t), (1, 2, 3));
        let chain = tr.excerpt(t);
        assert_eq!(chain.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![s, d, t]);
    }

    #[test]
    fn ring_evicts_but_keeps_recent_lookup() {
        let mut tr = Tracer::new();
        tr.cap = 4;
        for i in 0..10 {
            send(&mut tr, i, 1, 2);
        }
        assert!(tr.find(1).is_none(), "oldest must be evicted");
        assert!(tr.find(10).is_some());
        assert_eq!(tr.events().len(), 4);
    }

    #[test]
    fn tsv_round_trips() {
        let mut tr = Tracer::new().retain_all();
        let s = send(&mut tr, 5, 3, 4);
        tr.record(
            9,
            4,
            Some(s),
            EventKind::CastDeliver {
                gid: 7,
                view: 2,
                msg: MsgKey { sender: 3, view: 2, stream: 0, seq: 1 },
                gseq: 0,
                relay: false,
                vt: vec![(3, 1)],
            },
        );
        for line in tr.to_tsv().lines() {
            let ev = TraceEvent::parse_tsv(line).expect("line parses");
            assert_eq!(ev.to_tsv(), line);
        }
    }

    #[test]
    fn drain_events_hands_over_and_keeps_counting() {
        let mut tr = Tracer::new().retain_all();
        send(&mut tr, 1, 1, 2);
        send(&mut tr, 2, 1, 2);
        let first = tr.drain_events();
        assert_eq!(first.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert!(tr.events().is_empty(), "drained events are gone");
        let s = send(&mut tr, 3, 1, 2);
        assert_eq!(s, 3, "seqs keep counting across drains");
        assert_eq!(tr.drain_events().len(), 1);
    }

    #[test]
    fn merged_re_recording_is_order_and_cause_faithful() {
        // The parallel engine's trace path: N shard tracers record
        // independently; the coordinator merges their drained events by a
        // deterministic key and *re-records* them into one main tracer,
        // rewriting shard-local seq references as it assigns global ones.
        // The result must be exactly what a sequential run would have
        // recorded: dense seqs in merge order, cause links intact.
        let mut shard_a = Tracer::new().retain_all();
        let mut shard_b = Tracer::new().retain_all();
        // Shard A: a send at t=10 whose delivery lands on shard B.
        let sa = send(&mut shard_a, 10, 1, 2);
        // Shard B: an earlier, unrelated send at t=5, then the delivery of
        // A's message at t=20, then a reply caused by that delivery.
        let sb = send(&mut shard_b, 5, 2, 9);
        let da = shard_b.record(20, 2, None, EventKind::NetDeliver { from: 1, send: 0 });
        shard_b.record(20, 2, Some(da), EventKind::NetSend { to: 1, bytes: 64 });
        let _ = (sa, sb);

        // Merge by (at, shard-local seq) — the stand-in for the engine's
        // (time, class, seq, pid) key — rewriting local refs to global.
        let mut merged: Vec<(u64, usize, TraceEvent)> = shard_a
            .drain_events()
            .into_iter()
            .map(|e| (e.at, 0usize, e))
            .chain(shard_b.drain_events().into_iter().map(|e| (e.at, 1usize, e)))
            .collect();
        merged.sort_by_key(|(at, shard, e)| (*at, *shard, e.seq));

        let mut main = Tracer::new().retain_all();
        // local (shard, seq) -> global seq, filled as we re-record.
        let mut remap: std::collections::BTreeMap<(usize, u64), u64> =
            std::collections::BTreeMap::new();
        let mut wire_of_a_send = 0;
        for (at, shard, e) in merged {
            let cause = e.cause.map(|c| remap[&(shard, c)]);
            let kind = match e.kind {
                EventKind::NetDeliver { from, .. } => {
                    EventKind::NetDeliver { from, send: wire_of_a_send }
                }
                k => k,
            };
            let g = main.record(at, e.pid, cause, kind);
            remap.insert((shard, e.seq), g);
            if at == 10 {
                wire_of_a_send = g; // A's send, once merged, is the wire id.
            }
        }

        let evs = main.events();
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4], "dense seqs in merged order");
        let ats: Vec<u64> = evs.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![5, 10, 20, 20], "time-ordered emission");
        // The delivery's wire ref points at the merged seq of A's send, and
        // the reply's cause points at the merged seq of the delivery.
        assert!(matches!(evs[2].kind, EventKind::NetDeliver { send: 2, .. }));
        assert_eq!(evs[3].cause, Some(3));
        // Re-recording is what a monitor-armed tracer would have seen, so
        // the excerpt machinery works on merged output unchanged.
        assert_eq!(main.excerpt(4).len(), 2);
    }

    #[test]
    fn record_mode_collects_panic_mode_panics() {
        let bad = EventKind::StorageSample { lgid: 1, bytes: 999, bound: 10 };
        let mut tr = Tracer::new().with_monitors(ViolationMode::Record);
        tr.record(1, 5, None, bad.clone());
        assert_eq!(tr.violations().len(), 1);
        assert_eq!(tr.violations()[0].monitor, "VS-STORE");
        assert_eq!(tr.violations()[0].pids, vec![5]);
        assert!(!tr.violations()[0].excerpt.is_empty());

        let r = std::panic::catch_unwind(|| {
            let mut tr = Tracer::new().with_monitors(ViolationMode::Panic);
            tr.record(1, 5, None, bad);
        });
        let msg = r.expect_err("must panic");
        let text = msg
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.contains("VS-STORE"), "panic names the monitor: {text}");
    }
}
