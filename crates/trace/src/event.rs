//! The structured causal event model.
//!
//! Every record is keyed by `(at, seq, pid)` — simulated microseconds, a
//! strictly increasing per-run sequence number, and the raw pid — plus an
//! optional `cause` pointing at the seq of the event that triggered it
//! (a network send for its delivery, a delivery for the protocol events and
//! sends it provoked, a timer for its handler's output). Walking `cause`
//! links therefore reconstructs the causal chain of any message.
//!
//! The crate is at the bottom of the dependency graph, so identifiers are
//! plain integers (`u32` pids/nodes, `u64` group/view ids and microseconds)
//! rather than the newtypes the upper layers use.

use std::collections::BTreeMap;

/// Identity of a group broadcast: the upper layers' `MsgId`, flattened.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Sender pid.
    pub sender: u32,
    /// View id the message was *sent* in.
    pub view: u64,
    /// Ordering stream: 0 = causal, 1 = fifo, 2 = total.
    pub stream: u8,
    /// Per-(sender, view, stream) sequence number.
    pub seq: u64,
}

/// What happened. Engine-level events come from `now_sim::engine`; the rest
/// are emitted by the protocol layers through `Ctx::trace_with`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A process came to life on `node`.
    Spawn { node: u32 },
    /// The process was crashed by the failure injector.
    Crash,
    /// The process halted itself.
    Halt,
    /// A message left this pid for `to` (`pid` is the sender). The seq of
    /// this event is the message's *wire id*: the matching `NetDeliver` /
    /// `NetDrop` carries it in `send`.
    NetSend { to: u32, bytes: u64 },
    /// A message from `from` (wire id `send`) reached this pid.
    NetDeliver { from: u32, send: u64 },
    /// A message (wire id `send`) bound for `to` was dropped — loss,
    /// partition, or dead/unknown recipient.
    NetDrop { to: u32, send: u64 },
    /// A timer of the given kind fired at this pid.
    TimerFire { kind: u64 },
    /// The process was respawned by the recovery injector under a fresh
    /// incarnation number (1 = first restart).
    Restart { incarnation: u64 },
    /// A message (wire id `send`) addressed to a previous incarnation of
    /// `to` was dropped at delivery time instead of resurrecting old state.
    StaleDrop { to: u32, incarnation: u64, send: u64 },

    /// A group broadcast was submitted (`msg.view` is the sender's view).
    CastSend { gid: u64, msg: MsgKey, vt: Vec<(u32, u64)> },
    /// A group broadcast was delivered to the application at this pid.
    /// `view` is the *receiver's* current view; `gseq` is the total-order
    /// position (0 = not totally ordered); `relay` marks deliveries made
    /// while completing a flush (virtual-synchrony catch-up), which are
    /// exempt from the per-view ordering checks.
    CastDeliver {
        gid: u64,
        view: u64,
        msg: MsgKey,
        gseq: u64,
        relay: bool,
        vt: Vec<(u32, u64)>,
    },
    /// A new view of `gid` became live at this pid.
    ViewInstall {
        gid: u64,
        view: u64,
        members: Vec<u32>,
        joined: bool,
    },
    /// This pid started coordinating a flush toward `proposal`.
    FlushBegin { gid: u64, attempt: u64, proposal: u64 },
    /// This pid was excluded from `gid` and dropped its state.
    GroupLeft { gid: u64 },
    /// This pid lost quorum in `gid` and wedged (primary-partition stall).
    GroupStall { gid: u64 },

    /// This pid was promoted to (or demoted from) representative of `leaf`
    /// inside large group `lgid`.
    RepChange { lgid: u64, leaf: u64, promoted: bool },
    /// This pid became the active leader of large group `lgid`.
    LeaderTakeover { lgid: u64 },
    /// A large-group broadcast was submitted by `origin`.
    LbcastSubmit { lgid: u64, origin: u32, lseq: u64 },
    /// A large-group broadcast reached the application at this pid.
    LbcastDeliver { lgid: u64, origin: u32, lseq: u64 },
    /// Per-member routing-storage sample; `bound` is the configured ceiling
    /// (0 = unbounded role, not checked).
    StorageSample { lgid: u64, bytes: u64, bound: u64 },
    /// A restarted process (incarnation > 0) started rejoining `lgid`.
    RejoinBegin { lgid: u64, incarnation: u64 },
    /// A restarted process finished rejoining `lgid`: it is a leaf member
    /// again (of `leaf`), with every role re-earned rather than resumed.
    RejoinComplete { lgid: u64, leaf: u64, incarnation: u64 },

    /// A toolkit client sent request (`client`, `rseq`) to a service group.
    ReqSend { client: u32, rseq: u64 },
    /// A service member executed request (`client`, `rseq`).
    ReqExec { client: u32, rseq: u64 },
    /// The client received the reply for (`client`, `rseq`).
    ReqReply { client: u32, rseq: u64 },
}

/// One record in the causal event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Strictly increasing per-run sequence number (assigned by the tracer).
    pub seq: u64,
    /// Simulated time in microseconds.
    pub at: u64,
    /// The pid the event happened at.
    pub pid: u32,
    /// Seq of the event that caused this one, if known.
    pub cause: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl EventKind {
    /// Stable name used in the TSV format and the Chrome export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Spawn { .. } => "SPAWN",
            EventKind::Crash => "CRASH",
            EventKind::Halt => "HALT",
            EventKind::NetSend { .. } => "NET_SEND",
            EventKind::NetDeliver { .. } => "NET_DELIVER",
            EventKind::NetDrop { .. } => "NET_DROP",
            EventKind::TimerFire { .. } => "TIMER",
            EventKind::Restart { .. } => "RESTART",
            EventKind::StaleDrop { .. } => "STALE_DROP",
            EventKind::CastSend { .. } => "CAST_SEND",
            EventKind::CastDeliver { .. } => "CAST_DELIVER",
            EventKind::ViewInstall { .. } => "VIEW_INSTALL",
            EventKind::FlushBegin { .. } => "FLUSH_BEGIN",
            EventKind::GroupLeft { .. } => "GROUP_LEFT",
            EventKind::GroupStall { .. } => "GROUP_STALL",
            EventKind::RepChange { .. } => "REP_CHANGE",
            EventKind::LeaderTakeover { .. } => "LEADER_TAKEOVER",
            EventKind::LbcastSubmit { .. } => "LBCAST_SUBMIT",
            EventKind::LbcastDeliver { .. } => "LBCAST_DELIVER",
            EventKind::StorageSample { .. } => "STORAGE_SAMPLE",
            EventKind::RejoinBegin { .. } => "REJOIN_BEGIN",
            EventKind::RejoinComplete { .. } => "REJOIN_COMPLETE",
            EventKind::ReqSend { .. } => "REQ_SEND",
            EventKind::ReqExec { .. } => "REQ_EXEC",
            EventKind::ReqReply { .. } => "REQ_REPLY",
        }
    }

    /// The (large-)group id this event concerns, for `--group` filtering.
    pub fn gid(&self) -> Option<u64> {
        match self {
            EventKind::CastSend { gid, .. }
            | EventKind::CastDeliver { gid, .. }
            | EventKind::ViewInstall { gid, .. }
            | EventKind::FlushBegin { gid, .. }
            | EventKind::GroupLeft { gid }
            | EventKind::GroupStall { gid } => Some(*gid),
            EventKind::RepChange { lgid, .. }
            | EventKind::LeaderTakeover { lgid }
            | EventKind::LbcastSubmit { lgid, .. }
            | EventKind::LbcastDeliver { lgid, .. }
            | EventKind::StorageSample { lgid, .. }
            | EventKind::RejoinBegin { lgid, .. }
            | EventKind::RejoinComplete { lgid, .. } => Some(*lgid),
            _ => None,
        }
    }

    /// Field list as `key=value` pairs, in a stable order.
    fn fields(&self) -> Vec<(&'static str, String)> {
        fn vt_str(vt: &[(u32, u64)]) -> String {
            if vt.is_empty() {
                "-".to_string()
            } else {
                vt.iter()
                    .map(|(p, s)| format!("{p}:{s}"))
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
        fn list_str(xs: &[u32]) -> String {
            if xs.is_empty() {
                "-".to_string()
            } else {
                xs.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
            }
        }
        match self {
            EventKind::Spawn { node } => vec![("node", node.to_string())],
            EventKind::Crash | EventKind::Halt => vec![],
            EventKind::NetSend { to, bytes } => {
                vec![("to", to.to_string()), ("bytes", bytes.to_string())]
            }
            EventKind::NetDeliver { from, send } => {
                vec![("from", from.to_string()), ("send", send.to_string())]
            }
            EventKind::NetDrop { to, send } => {
                vec![("to", to.to_string()), ("send", send.to_string())]
            }
            EventKind::TimerFire { kind } => vec![("kind", kind.to_string())],
            EventKind::Restart { incarnation } => {
                vec![("incarnation", incarnation.to_string())]
            }
            EventKind::StaleDrop { to, incarnation, send } => vec![
                ("to", to.to_string()),
                ("incarnation", incarnation.to_string()),
                ("send", send.to_string()),
            ],
            EventKind::CastSend { gid, msg, vt } => vec![
                ("gid", gid.to_string()),
                ("sender", msg.sender.to_string()),
                ("mview", msg.view.to_string()),
                ("stream", msg.stream.to_string()),
                ("mseq", msg.seq.to_string()),
                ("vt", vt_str(vt)),
            ],
            EventKind::CastDeliver { gid, view, msg, gseq, relay, vt } => vec![
                ("gid", gid.to_string()),
                ("view", view.to_string()),
                ("sender", msg.sender.to_string()),
                ("mview", msg.view.to_string()),
                ("stream", msg.stream.to_string()),
                ("mseq", msg.seq.to_string()),
                ("gseq", gseq.to_string()),
                ("relay", u8::from(*relay).to_string()),
                ("vt", vt_str(vt)),
            ],
            EventKind::ViewInstall { gid, view, members, joined } => vec![
                ("gid", gid.to_string()),
                ("view", view.to_string()),
                ("members", list_str(members)),
                ("joined", u8::from(*joined).to_string()),
            ],
            EventKind::FlushBegin { gid, attempt, proposal } => vec![
                ("gid", gid.to_string()),
                ("attempt", attempt.to_string()),
                ("proposal", proposal.to_string()),
            ],
            EventKind::GroupLeft { gid } | EventKind::GroupStall { gid } => {
                vec![("gid", gid.to_string())]
            }
            EventKind::RepChange { lgid, leaf, promoted } => vec![
                ("lgid", lgid.to_string()),
                ("leaf", leaf.to_string()),
                ("promoted", u8::from(*promoted).to_string()),
            ],
            EventKind::LeaderTakeover { lgid } => vec![("lgid", lgid.to_string())],
            EventKind::LbcastSubmit { lgid, origin, lseq }
            | EventKind::LbcastDeliver { lgid, origin, lseq } => vec![
                ("lgid", lgid.to_string()),
                ("origin", origin.to_string()),
                ("lseq", lseq.to_string()),
            ],
            EventKind::StorageSample { lgid, bytes, bound } => vec![
                ("lgid", lgid.to_string()),
                ("bytes", bytes.to_string()),
                ("bound", bound.to_string()),
            ],
            EventKind::RejoinBegin { lgid, incarnation } => vec![
                ("lgid", lgid.to_string()),
                ("incarnation", incarnation.to_string()),
            ],
            EventKind::RejoinComplete { lgid, leaf, incarnation } => vec![
                ("lgid", lgid.to_string()),
                ("leaf", leaf.to_string()),
                ("incarnation", incarnation.to_string()),
            ],
            EventKind::ReqSend { client, rseq }
            | EventKind::ReqExec { client, rseq }
            | EventKind::ReqReply { client, rseq } => vec![
                ("client", client.to_string()),
                ("rseq", rseq.to_string()),
            ],
        }
    }
}

impl TraceEvent {
    /// Serialises to one tab-separated line:
    /// `seq  at  pid  cause  NAME  k=v  k=v …` (`-` for no cause).
    pub fn to_tsv(&self) -> String {
        let cause = self.cause.map_or_else(|| "-".to_string(), |c| c.to_string());
        let mut line = format!("{}\t{}\t{}\t{}\t{}", self.seq, self.at, self.pid, cause, self.kind.name());
        for (k, v) in self.kind.fields() {
            line.push('\t');
            line.push_str(k);
            line.push('=');
            line.push_str(&v);
        }
        line
    }

    /// Parses a line produced by [`TraceEvent::to_tsv`]. Returns `None` on
    /// any malformation (the CLI reports the line number).
    pub fn parse_tsv(line: &str) -> Option<TraceEvent> {
        let mut it = line.split('\t');
        let seq: u64 = it.next()?.parse().ok()?;
        let at: u64 = it.next()?.parse().ok()?;
        let pid: u32 = it.next()?.parse().ok()?;
        let cause = match it.next()? {
            "-" => None,
            c => Some(c.parse().ok()?),
        };
        let name = it.next()?;
        let mut f: BTreeMap<&str, &str> = BTreeMap::new();
        for kv in it {
            let (k, v) = kv.split_once('=')?;
            f.insert(k, v);
        }
        let kind = parse_kind(name, &f)?;
        Some(TraceEvent { seq, at, pid, cause, kind })
    }
}

fn num<T: std::str::FromStr>(f: &BTreeMap<&str, &str>, k: &str) -> Option<T> {
    f.get(k)?.parse().ok()
}

fn vt_parse(f: &BTreeMap<&str, &str>, k: &str) -> Option<Vec<(u32, u64)>> {
    let raw = f.get(k)?;
    if *raw == "-" {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for part in raw.split(',') {
        let (p, s) = part.split_once(':')?;
        out.push((p.parse().ok()?, s.parse().ok()?));
    }
    Some(out)
}

fn list_parse(f: &BTreeMap<&str, &str>, k: &str) -> Option<Vec<u32>> {
    let raw = f.get(k)?;
    if *raw == "-" {
        return Some(Vec::new());
    }
    raw.split(',').map(|p| p.parse().ok()).collect()
}

fn msg_parse(f: &BTreeMap<&str, &str>) -> Option<MsgKey> {
    Some(MsgKey {
        sender: num(f, "sender")?,
        view: num(f, "mview")?,
        stream: num(f, "stream")?,
        seq: num(f, "mseq")?,
    })
}

fn parse_kind(name: &str, f: &BTreeMap<&str, &str>) -> Option<EventKind> {
    Some(match name {
        "SPAWN" => EventKind::Spawn { node: num(f, "node")? },
        "CRASH" => EventKind::Crash,
        "HALT" => EventKind::Halt,
        "NET_SEND" => EventKind::NetSend { to: num(f, "to")?, bytes: num(f, "bytes")? },
        "NET_DELIVER" => EventKind::NetDeliver { from: num(f, "from")?, send: num(f, "send")? },
        "NET_DROP" => EventKind::NetDrop { to: num(f, "to")?, send: num(f, "send")? },
        "TIMER" => EventKind::TimerFire { kind: num(f, "kind")? },
        "RESTART" => EventKind::Restart { incarnation: num(f, "incarnation")? },
        "STALE_DROP" => EventKind::StaleDrop {
            to: num(f, "to")?,
            incarnation: num(f, "incarnation")?,
            send: num(f, "send")?,
        },
        "CAST_SEND" => EventKind::CastSend {
            gid: num(f, "gid")?,
            msg: msg_parse(f)?,
            vt: vt_parse(f, "vt")?,
        },
        "CAST_DELIVER" => EventKind::CastDeliver {
            gid: num(f, "gid")?,
            view: num(f, "view")?,
            msg: msg_parse(f)?,
            gseq: num(f, "gseq")?,
            relay: num::<u8>(f, "relay")? != 0,
            vt: vt_parse(f, "vt")?,
        },
        "VIEW_INSTALL" => EventKind::ViewInstall {
            gid: num(f, "gid")?,
            view: num(f, "view")?,
            members: list_parse(f, "members")?,
            joined: num::<u8>(f, "joined")? != 0,
        },
        "FLUSH_BEGIN" => EventKind::FlushBegin {
            gid: num(f, "gid")?,
            attempt: num(f, "attempt")?,
            proposal: num(f, "proposal")?,
        },
        "GROUP_LEFT" => EventKind::GroupLeft { gid: num(f, "gid")? },
        "GROUP_STALL" => EventKind::GroupStall { gid: num(f, "gid")? },
        "REP_CHANGE" => EventKind::RepChange {
            lgid: num(f, "lgid")?,
            leaf: num(f, "leaf")?,
            promoted: num::<u8>(f, "promoted")? != 0,
        },
        "LEADER_TAKEOVER" => EventKind::LeaderTakeover { lgid: num(f, "lgid")? },
        "LBCAST_SUBMIT" => EventKind::LbcastSubmit {
            lgid: num(f, "lgid")?,
            origin: num(f, "origin")?,
            lseq: num(f, "lseq")?,
        },
        "LBCAST_DELIVER" => EventKind::LbcastDeliver {
            lgid: num(f, "lgid")?,
            origin: num(f, "origin")?,
            lseq: num(f, "lseq")?,
        },
        "STORAGE_SAMPLE" => EventKind::StorageSample {
            lgid: num(f, "lgid")?,
            bytes: num(f, "bytes")?,
            bound: num(f, "bound")?,
        },
        "REJOIN_BEGIN" => EventKind::RejoinBegin {
            lgid: num(f, "lgid")?,
            incarnation: num(f, "incarnation")?,
        },
        "REJOIN_COMPLETE" => EventKind::RejoinComplete {
            lgid: num(f, "lgid")?,
            leaf: num(f, "leaf")?,
            incarnation: num(f, "incarnation")?,
        },
        "REQ_SEND" => EventKind::ReqSend { client: num(f, "client")?, rseq: num(f, "rseq")? },
        "REQ_EXEC" => EventKind::ReqExec { client: num(f, "client")?, rseq: num(f, "rseq")? },
        "REQ_REPLY" => EventKind::ReqReply { client: num(f, "client")?, rseq: num(f, "rseq")? },
        _ => return None,
    })
}
