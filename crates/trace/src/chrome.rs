//! Chrome `trace_event` export: renders an event log as the JSON array
//! format that `chrome://tracing` / Perfetto load directly. Each trace
//! event becomes an instant event on track (`pid` row = process id), and
//! every `NetSend`/`NetDeliver` pair additionally becomes a flow arrow
//! keyed by the wire id, so message causality is visible as arcs.

use crate::event::{EventKind, TraceEvent};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_obj(out: &mut String, first: &mut bool, body: String) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  {");
    out.push_str(&body);
    out.push('}');
}

/// Renders `events` as a Chrome `trace_event` JSON document.
pub fn to_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    for ev in events {
        // Args: the event's own fields, via the TSV field encoding.
        let line = ev.to_tsv();
        let mut args = String::new();
        for kv in line.split('\t').skip(5) {
            if let Some((k, v)) = kv.split_once('=') {
                if !args.is_empty() {
                    args.push_str(", ");
                }
                // Values are numbers or comma lists; emit as strings for safety.
                args.push_str(&format!("\"{}\": \"{}\"", esc(k), esc(v)));
            }
        }
        if !args.is_empty() {
            args.push_str(", ");
        }
        args.push_str(&format!("\"seq\": \"{}\"", ev.seq));
        if let Some(c) = ev.cause {
            args.push_str(&format!(", \"cause\": \"{c}\""));
        }
        push_obj(
            &mut out,
            &mut first,
            format!(
                "\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": {}, \
                 \"tid\": 0, \"args\": {{{args}}}",
                esc(ev.kind.name()),
                ev.at,
                ev.pid
            ),
        );
        // Flow arrows: send -> deliver, keyed by wire id.
        match &ev.kind {
            EventKind::NetSend { .. } => push_obj(
                &mut out,
                &mut first,
                format!(
                    "\"name\": \"msg\", \"cat\": \"net\", \"ph\": \"s\", \"id\": {}, \
                     \"ts\": {}, \"pid\": {}, \"tid\": 0",
                    ev.seq, ev.at, ev.pid
                ),
            ),
            EventKind::NetDeliver { send, .. } if *send > 0 => push_obj(
                &mut out,
                &mut first,
                format!(
                    "\"name\": \"msg\", \"cat\": \"net\", \"ph\": \"f\", \"bp\": \"e\", \
                     \"id\": {send}, \"ts\": {}, \"pid\": {}, \"tid\": 0",
                    ev.at, ev.pid
                ),
            ),
            _ => {}
        }
    }
    if !first {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}
