//! Online virtual-synchrony invariant monitors.
//!
//! The monitors consume the event stream *as it is recorded* and flag the
//! first violation of the guarantees the protocol stack claims (DESIGN.md,
//! "Virtual synchrony"). Catalog:
//!
//! | id        | guards                                                      |
//! |-----------|-------------------------------------------------------------|
//! | VS-VIEW   | same-view agreement: every installer of view v of a group   |
//! |           | sees the identical membership list                          |
//! | VS-PRIM   | primary-partition uniqueness: no two live members of one    |
//! |           | group hold disjoint (split-brain) views concurrently        |
//! | VS-DIV    | delivery-in-view: a broadcast is delivered in the view it   |
//! |           | was sent in (flush relays are the sanctioned exception)     |
//! | VS-CO     | CBCAST causal order: a causal delivery's vector time is     |
//! |           | deliverable w.r.t. what the receiver already delivered      |
//! | VS-TO     | ABCAST total order: one message per (view, gseq) slot, and  |
//! |           | per-receiver gseq strictly increases within a view          |
//! | VS-STORE  | bounded view storage: per-member routing state stays under  |
//! |           | the configured ceiling (E7)                                 |
//! | VS-REJOIN | incarnation safety: a restarted pid delivers nothing in a   |
//! |           | group before installing a post-restart view there, never    |
//! |           | from a view preceding its rejoin view, and never a message  |
//! |           | its previous life already delivered                         |
//!
//! State is per-(group, pid) and resets on view installs / leaves / crashes,
//! so memory stays proportional to live membership, not run length.
//! VS-REJOIN keeps "ghost" delivery floors of each dead pid's last life
//! (bounded by the pid count) so a forged resurrection is caught even if it
//! replays traffic byte-for-byte.

use std::collections::BTreeMap;

use crate::event::{EventKind, MsgKey, TraceEvent};

/// One detected invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Monitor id from the catalog (`VS-…`).
    pub monitor: &'static str,
    /// Simulated time of the offending event.
    pub at: u64,
    /// Seq of the offending event.
    pub seq: u64,
    /// The pids implicated (offender first).
    pub pids: Vec<u32>,
    /// Human-readable description of what was violated and how.
    pub detail: String,
    /// Minimal causal excerpt ending at the offending event (filled in by
    /// the tracer, which owns the retained event window).
    pub excerpt: Vec<TraceEvent>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invariant violation [{}] at t={}us seq={} pids={:?}: {}",
            self.monitor, self.at, self.seq, self.pids, self.detail
        )?;
        if !self.excerpt.is_empty() {
            writeln!(f, "causal excerpt (oldest first):")?;
            for ev in &self.excerpt {
                writeln!(f, "  {}", ev.to_tsv())?;
            }
        }
        Ok(())
    }
}

/// The full monitor set, fed one event at a time via [`Monitors::observe`].
#[derive(Debug, Default)]
pub struct Monitors {
    /// VS-VIEW: (gid, view) -> (members, first installer pid, first seq).
    views: BTreeMap<(u64, u64), (Vec<u32>, u32, u64)>,
    /// VS-PRIM: gid -> pid -> members of that pid's current live view.
    live: BTreeMap<u64, BTreeMap<u32, Vec<u32>>>,
    /// VS-CO: (gid, pid) -> (view, delivered seq per sender).
    causal: BTreeMap<(u64, u32), (u64, BTreeMap<u32, u64>)>,
    /// VS-TO: (gid, view, gseq) -> (msg, first deliverer pid).
    slots: BTreeMap<(u64, u64, u64), (MsgKey, u32)>,
    /// VS-TO: (gid, pid) -> (view, last delivered gseq).
    last_gseq: BTreeMap<(u64, u32), (u64, u64)>,
    /// VS-REJOIN: delivery floors of a dead pid's last life, stashed at
    /// crash/halt: (gid, pid) -> (view, delivered seq per sender).
    ghosts: BTreeMap<(u64, u32), (u64, BTreeMap<u32, u64>)>,
    /// VS-REJOIN: total-order floor of a dead pid's last life:
    /// (gid, pid) -> (view, last delivered gseq).
    ghost_gseq: BTreeMap<(u64, u32), (u64, u64)>,
    /// VS-REJOIN: restarted pids -> gid -> first view installed since the
    /// latest restart (the rejoin view). A pid key appears on `Restart` and
    /// its gid map restarts empty, so "delivered before rejoining" is a
    /// lookup miss.
    rejoined: BTreeMap<u32, BTreeMap<u64, u64>>,
    /// Count of events observed (exposed so runs can assert coverage).
    observed: u64,
}

impl Monitors {
    /// Fresh monitor set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Feeds one event; returns any violations it triggers (excerpts empty —
    /// the tracer fills them from its retained window).
    pub fn observe(&mut self, ev: &TraceEvent) -> Vec<Violation> {
        self.observed += 1;
        let mut out = Vec::new();
        let v = |monitor: &'static str, pids: Vec<u32>, detail: String| Violation {
            monitor,
            at: ev.at,
            seq: ev.seq,
            pids,
            detail,
            excerpt: Vec::new(),
        };
        match &ev.kind {
            EventKind::ViewInstall { gid, view, members, .. } => {
                // VS-VIEW: all installers of (gid, view) agree on membership.
                match self.views.get(&(*gid, *view)) {
                    None => {
                        self.views.insert((*gid, *view), (members.clone(), ev.pid, ev.seq));
                    }
                    Some((first, by, at_seq)) if first != members => out.push(v(
                        "VS-VIEW",
                        vec![ev.pid, *by],
                        format!(
                            "view {view} of group {gid} installed with members {members:?} at p{}, \
                             but p{} installed it with {first:?} (seq {at_seq})",
                            ev.pid, by
                        ),
                    )),
                    Some(_) => {}
                }
                // VS-PRIM: no two live members hold disjoint views.
                let gl = self.live.entry(*gid).or_default();
                gl.insert(ev.pid, members.clone());
                for (q, qm) in gl.iter() {
                    if *q != ev.pid && members.iter().all(|m| !qm.contains(m)) {
                        out.push(v(
                            "VS-PRIM",
                            vec![ev.pid, *q],
                            format!(
                                "split brain in group {gid}: p{} installed view {view} with \
                                 members {members:?}, disjoint from p{q}'s live view {qm:?}",
                                ev.pid
                            ),
                        ));
                    }
                }
                // Per-view receiver state starts over.
                self.causal.insert((*gid, ev.pid), (*view, BTreeMap::new()));
                self.last_gseq.insert((*gid, ev.pid), (*view, 0));
                // A view-1 install means `gid` now names a brand-new group
                // instance (gids are slot-based and reused after a dissolve,
                // and view numbering restarts at 1): floors stashed from the
                // previous instance no longer describe this group.
                if *view == 1 {
                    self.ghosts.retain(|(g, _), _| g != gid);
                    self.ghost_gseq.retain(|(g, _), _| g != gid);
                }
                // VS-REJOIN: a restarted pid's first install in a group is
                // its rejoin view there.
                if let Some(r) = self.rejoined.get_mut(&ev.pid) {
                    r.entry(*gid).or_insert(*view);
                }
            }
            EventKind::CastDeliver { gid, view, msg, gseq, relay, vt } => {
                // VS-REJOIN: nothing may be delivered at a restarted pid in
                // a group it has not rejoined, nor from a view preceding the
                // rejoin view — a late message for the previous life must be
                // dropped by the engine, so seeing one delivered means a
                // zombie resurrected.
                if let Some(r) = self.rejoined.get(&ev.pid) {
                    match r.get(gid) {
                        None => out.push(v(
                            "VS-REJOIN",
                            vec![ev.pid, msg.sender],
                            format!(
                                "group {gid}: restarted p{} delivered p{}@v{}c{} before \
                                 installing any post-restart view of the group",
                                ev.pid, msg.sender, msg.view, msg.seq
                            ),
                        )),
                        Some(rv) if *view < *rv => out.push(v(
                            "VS-REJOIN",
                            vec![ev.pid, msg.sender],
                            format!(
                                "group {gid}: restarted p{} delivered p{}@v{}c{} in view \
                                 {view}, preceding its rejoin view {rv}",
                                ev.pid, msg.sender, msg.view, msg.seq
                            ),
                        )),
                        Some(_) => {}
                    }
                }
                // VS-REJOIN: no double-delivery across incarnations — the
                // previous life's floors are final.
                if let Some((gv, del)) = self.ghosts.get(&(*gid, ev.pid)) {
                    if msg.view == *gv
                        && msg.seq > 0
                        && msg.seq <= del.get(&msg.sender).copied().unwrap_or(0)
                    {
                        out.push(v(
                            "VS-REJOIN",
                            vec![ev.pid, msg.sender],
                            format!(
                                "group {gid}: p{} re-delivered p{}@v{}c{}, already delivered \
                                 by its previous incarnation",
                                ev.pid, msg.sender, msg.view, msg.seq
                            ),
                        ));
                    }
                }
                if let Some((gv, lg)) = self.ghost_gseq.get(&(*gid, ev.pid)) {
                    if *view == *gv && *gseq > 0 && *gseq <= *lg {
                        out.push(v(
                            "VS-REJOIN",
                            vec![ev.pid],
                            format!(
                                "group {gid} view {view}: p{} re-delivered gseq {gseq}, \
                                 already past {lg} in its previous incarnation",
                                ev.pid
                            ),
                        ));
                    }
                }
                if *relay {
                    // Flush catch-up: fold into receiver state, no checks —
                    // relays legitimately cross the view boundary.
                    let (cv, del) = self
                        .causal
                        .entry((*gid, ev.pid))
                        .or_insert_with(|| (*view, BTreeMap::new()));
                    if *cv != *view {
                        (*cv, *del) = (*view, BTreeMap::new());
                    }
                    for (q, s) in vt {
                        let e = del.entry(*q).or_insert(0);
                        *e = (*e).max(*s);
                    }
                    let e = del.entry(msg.sender).or_insert(0);
                    *e = (*e).max(msg.seq);
                    if *gseq > 0 {
                        let (lv, lg) = self.last_gseq.entry((*gid, ev.pid)).or_insert((*view, 0));
                        if *lv != *view {
                            (*lv, *lg) = (*view, 0);
                        }
                        *lg = (*lg).max(*gseq);
                    }
                } else {
                    // VS-DIV: delivery happens in the view the msg was sent in.
                    if msg.view != *view {
                        out.push(v(
                            "VS-DIV",
                            vec![ev.pid, msg.sender],
                            format!(
                                "group {gid}: message p{}@v{}c{} delivered at p{} in view {view}, \
                                 not the view it was sent in",
                                msg.sender, msg.view, msg.seq, ev.pid
                            ),
                        ));
                    }
                    // VS-CO: causal stream obeys the vector-clock gate.
                    if msg.stream == 0 {
                        let (cv, del) = self
                            .causal
                            .entry((*gid, ev.pid))
                            .or_insert_with(|| (*view, BTreeMap::new()));
                        if *cv != *view {
                            (*cv, *del) = (*view, BTreeMap::new());
                        }
                        let mut why = None;
                        for (q, s) in vt {
                            let have = del.get(q).copied().unwrap_or(0);
                            if *q == msg.sender {
                                if *s != have + 1 {
                                    why = Some(format!(
                                        "sender slot {s} != delivered {have} + 1"
                                    ));
                                }
                            } else if *s > have {
                                why = Some(format!(
                                    "depends on p{q}:{s} but receiver only delivered {have}"
                                ));
                            }
                        }
                        if let Some(why) = why {
                            out.push(v(
                                "VS-CO",
                                vec![ev.pid, msg.sender],
                                format!(
                                    "causal order broken in group {gid} view {view}: delivery of \
                                     p{}@v{}c{} at p{} with vt {vt:?} — {why}",
                                    msg.sender, msg.view, msg.seq, ev.pid
                                ),
                            ));
                        }
                        let e = del.entry(msg.sender).or_insert(0);
                        *e = (*e).max(msg.seq);
                    }
                    // VS-TO: one message per slot, strictly increasing gseq.
                    if msg.stream == 2 && *gseq > 0 {
                        match self.slots.get(&(*gid, *view, *gseq)) {
                            None => {
                                self.slots.insert((*gid, *view, *gseq), (msg.clone(), ev.pid));
                            }
                            Some((m0, p0)) if m0 != msg => out.push(v(
                                "VS-TO",
                                vec![ev.pid, *p0],
                                format!(
                                    "total order broken in group {gid} view {view}: slot {gseq} \
                                     is p{}@v{}c{} at p{} but was p{}@v{}c{} at p{p0}",
                                    msg.sender, msg.view, msg.seq, ev.pid, m0.sender, m0.view, m0.seq
                                ),
                            )),
                            Some(_) => {}
                        }
                        let (lv, lg) = self.last_gseq.entry((*gid, ev.pid)).or_insert((*view, 0));
                        if *lv != *view {
                            (*lv, *lg) = (*view, 0);
                        }
                        if *gseq <= *lg {
                            out.push(v(
                                "VS-TO",
                                vec![ev.pid],
                                format!(
                                    "total order broken in group {gid} view {view}: p{} delivered \
                                     gseq {gseq} after already delivering {lg}",
                                    ev.pid
                                ),
                            ));
                        }
                        *lg = (*lg).max(*gseq);
                    }
                }
            }
            EventKind::GroupLeft { gid } | EventKind::GroupStall { gid } => {
                self.drop_member(*gid, ev.pid);
            }
            EventKind::Crash | EventKind::Halt => {
                // Stash this life's delivery floors before dropping live
                // state: a later incarnation is checked against them.
                let keys: Vec<(u64, u32)> = self
                    .causal
                    .keys()
                    .filter(|(_, p)| *p == ev.pid)
                    .copied()
                    .collect();
                for k in keys {
                    if let Some(st) = self.causal.get(&k) {
                        self.ghosts.insert(k, st.clone());
                    }
                }
                let gkeys: Vec<(u64, u32)> = self
                    .last_gseq
                    .keys()
                    .filter(|(_, p)| *p == ev.pid)
                    .copied()
                    .collect();
                for k in gkeys {
                    if let Some(st) = self.last_gseq.get(&k) {
                        self.ghost_gseq.insert(k, *st);
                    }
                }
                let gids: Vec<u64> = self.live.keys().copied().collect();
                for gid in gids {
                    self.drop_member(gid, ev.pid);
                }
            }
            EventKind::Restart { .. } => {
                // A fresh life: no group rejoined yet. Roles and views must
                // be re-earned, never resumed.
                self.rejoined.insert(ev.pid, BTreeMap::new());
            }
            EventKind::StorageSample { lgid, bytes, bound } if *bound > 0 && *bytes > *bound => {
                out.push(v(
                    "VS-STORE",
                    vec![ev.pid],
                    format!(
                        "bounded view storage exceeded in large group {lgid}: p{} holds \
                         {bytes} bytes of routing state, ceiling is {bound}",
                        ev.pid
                    ),
                ));
            }
            _ => {}
        }
        out
    }

    /// Forgets per-member state when a pid leaves/stalls/crashes out of a
    /// group, so a stalled minority is not counted as a live primary.
    fn drop_member(&mut self, gid: u64, pid: u32) {
        if let Some(gl) = self.live.get_mut(&gid) {
            gl.remove(&pid);
        }
        self.causal.remove(&(gid, pid));
        self.last_gseq.remove(&(gid, pid));
    }
}
