//! `tracectl` — query and export a `now-trace` TSV dump.
//!
//! ```text
//! tracectl <trace.tsv> [--pid N] [--group G] [--from US] [--to US]
//!                      [--chain SEQ] [--chrome OUT.json] [--stats]
//! ```
//!
//! With only filters, prints the matching events as TSV. `--chain SEQ`
//! reconstructs and prints the causal chain ending at that event.
//! `--chrome OUT.json` writes the (filtered) events as Chrome
//! `trace_event` JSON for chrome://tracing / Perfetto. `--stats` prints a
//! per-kind event census instead of the events themselves.

use std::collections::BTreeMap;
use std::process::ExitCode;

use now_trace::query::{chain, parse_dump, Filter};
use now_trace::{chrome, TraceEvent};

struct Args {
    file: String,
    filter: Filter,
    chain: Option<u64>,
    chrome: Option<String>,
    stats: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracectl <trace.tsv> [--pid N] [--group G] [--from US] [--to US] \
         [--chain SEQ] [--chrome OUT.json] [--stats]"
    );
    ExitCode::from(2)
}

fn parse_args(argv: &[String]) -> Option<Args> {
    let mut it = argv.iter();
    let file = it.next()?.clone();
    if file.starts_with("--") {
        return None;
    }
    let mut a = Args {
        file,
        filter: Filter::default(),
        chain: None,
        chrome: None,
        stats: false,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stats" => a.stats = true,
            "--pid" => a.filter.pid = Some(it.next()?.parse().ok()?),
            "--group" => a.filter.gid = Some(it.next()?.parse().ok()?),
            "--from" => a.filter.from = Some(it.next()?.parse().ok()?),
            "--to" => a.filter.to = Some(it.next()?.parse().ok()?),
            "--chain" => a.chain = Some(it.next()?.parse().ok()?),
            "--chrome" => a.chrome = Some(it.next()?.clone()),
            _ => return None,
        }
    }
    Some(a)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(args) = parse_args(&argv) else {
        return usage();
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracectl: cannot read {}: {e}", args.file);
            return ExitCode::from(1);
        }
    };
    let (events, bad) = parse_dump(&text);
    if !bad.is_empty() {
        eprintln!("tracectl: {} unparseable line(s), first at line {}", bad.len(), bad[0]);
    }

    if let Some(seq) = args.chain {
        let c = chain(&events, seq);
        if c.is_empty() {
            eprintln!("tracectl: no event with seq {seq} in {}", args.file);
            return ExitCode::from(1);
        }
        println!("# causal chain ending at seq {seq} ({} events, oldest first)", c.len());
        for ev in &c {
            println!("{}", ev.to_tsv());
        }
        return ExitCode::SUCCESS;
    }

    let picked: Vec<TraceEvent> = args
        .filter
        .apply(&events)
        .into_iter()
        .cloned()
        .collect();

    if let Some(out) = &args.chrome {
        let json = chrome::to_chrome(&picked);
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("tracectl: cannot write {out}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {} events to {out}", picked.len());
        return ExitCode::SUCCESS;
    }

    if args.stats {
        let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &picked {
            *census.entry(ev.kind.name()).or_insert(0) += 1;
        }
        println!("# {} events ({} total in file)", picked.len(), events.len());
        for (name, n) in census {
            println!("{name}\t{n}");
        }
        return ExitCode::SUCCESS;
    }

    for ev in &picked {
        println!("{}", ev.to_tsv());
    }
    ExitCode::SUCCESS
}
