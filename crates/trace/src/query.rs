//! Offline trace queries: filtering and causal-chain reconstruction over a
//! parsed event log (what `tracectl` runs against a TSV dump).

use crate::event::TraceEvent;

/// Conjunctive event filter; `None` fields match everything.
#[derive(Clone, Debug, Default)]
pub struct Filter {
    /// Only events at this pid.
    pub pid: Option<u32>,
    /// Only events concerning this (large-)group id.
    pub gid: Option<u64>,
    /// Only events at `t >= from` (simulated microseconds).
    pub from: Option<u64>,
    /// Only events at `t <= to`.
    pub to: Option<u64>,
}

impl Filter {
    /// Whether `ev` passes every set criterion.
    pub fn matches(&self, ev: &TraceEvent) -> bool {
        self.pid.is_none_or(|p| ev.pid == p)
            && self.gid.is_none_or(|g| ev.kind.gid() == Some(g))
            && self.from.is_none_or(|t| ev.at >= t)
            && self.to.is_none_or(|t| ev.at <= t)
    }

    /// Applies the filter, preserving order.
    pub fn apply<'a>(&self, events: &'a [TraceEvent]) -> Vec<&'a TraceEvent> {
        events.iter().filter(|e| self.matches(e)).collect()
    }
}

/// Parses a TSV dump; returns the events plus the 1-based line numbers that
/// failed to parse (blank lines are skipped silently).
pub fn parse_dump(text: &str) -> (Vec<TraceEvent>, Vec<usize>) {
    let mut events = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::parse_tsv(line) {
            Some(ev) => events.push(ev),
            None => bad.push(i + 1),
        }
    }
    (events, bad)
}

/// Reconstructs the causal chain ending at `seq`: the event plus all its
/// `cause` ancestors present in `events`, oldest first. `events` must be
/// sorted by seq (the natural dump order).
pub fn chain(events: &[TraceEvent], seq: u64) -> Vec<TraceEvent> {
    let find = |s: u64| {
        events
            .binary_search_by_key(&s, |e| e.seq)
            .ok()
            .and_then(|i| events.get(i))
    };
    let mut out = Vec::new();
    let mut cur = Some(seq);
    while let Some(s) = cur {
        let Some(ev) = find(s) else { break };
        out.push(ev.clone());
        cur = ev.cause;
    }
    out.reverse();
    out
}
