//! The trading-room workload (section 1 of the paper):
//!
//! > "A typical installation will comprise perhaps 100 to 500 trading
//! > analyst workstations which filter, process and analyze large volumes
//! > of information continuously supplied from numerous outside data
//! > feeds. Users of these systems demand surprisingly high performance,
//! > often requiring sub-second response to events detected over the data
//! > feeds."
//!
//! The paper's installation data is proprietary; this synthetic generator
//! preserves the workload's *shape*: a few feed workstations inject quote
//! events at a steady aggregate rate, every analyst subscribes to a subset
//! of symbols, and the metric is end-to-end event latency at the analysts.
//! Dissemination runs either over a hierarchical large group (tree
//! broadcast) or over one flat ISIS group (the baseline the paper argues
//! cannot scale).

use std::collections::HashSet;

use now_sim::{Pid, SimDuration, SimTime};

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};
use isis_hier::{LargeApp, LargeGroupId, LargeUplink};

/// One market-data event.
#[derive(Clone, Debug)]
pub struct Quote {
    /// Instrument id.
    pub symbol: u32,
    /// Feed-local sequence number.
    pub seq: u64,
    /// Simulated send time in microseconds (for latency measurement).
    pub sent_us: u64,
    /// Price in cents.
    pub price: u32,
}

/// Estimated wire size of a quote.
pub const QUOTE_BYTES: usize = 24;

/// An analyst (or feed) workstation in the *hierarchical* deployment.
pub struct HierAnalyst {
    /// The trading-floor large group.
    pub lgid: LargeGroupId,
    /// Symbols this analyst watches.
    pub subscriptions: HashSet<u32>,
    /// Quotes matching the subscription, in delivery order.
    pub matched: Vec<Quote>,
    /// Total quotes delivered (matched or not).
    pub delivered: u64,
}

impl HierAnalyst {
    /// Creates an analyst watching `subs`.
    pub fn new(lgid: LargeGroupId, subs: impl IntoIterator<Item = u32>) -> HierAnalyst {
        HierAnalyst {
            lgid,
            subscriptions: subs.into_iter().collect(),
            matched: Vec::new(),
            delivered: 0,
        }
    }
}

impl LargeApp for HierAnalyst {
    type Payload = Quote;
    type LeafState = ();

    fn on_lbcast(
        &mut self,
        _lgid: LargeGroupId,
        _origin: Pid,
        q: &Quote,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.delivered += 1;
        let latency = up.now().since(SimTime(q.sent_us));
        up.sample_duration("trading.latency_ms", latency);
        if self.subscriptions.contains(&q.symbol) {
            self.matched.push(q.clone());
            up.bump("trading.matched");
        }
    }

    fn payload_bytes(_q: &Quote) -> usize {
        QUOTE_BYTES
    }
}

/// An analyst workstation in the *flat* baseline: one ISIS group holds
/// every analyst; feeds are members that CBCAST each quote to all.
pub struct FlatAnalyst {
    /// The (single) group.
    pub gid: GroupId,
    /// Symbols this analyst watches.
    pub subscriptions: HashSet<u32>,
    /// Quotes matching the subscription.
    pub matched: Vec<Quote>,
    /// Total quotes delivered.
    pub delivered: u64,
    view: Option<GroupView>,
}

impl FlatAnalyst {
    /// Creates an analyst watching `subs`.
    pub fn new(gid: GroupId, subs: impl IntoIterator<Item = u32>) -> FlatAnalyst {
        FlatAnalyst {
            gid,
            subscriptions: subs.into_iter().collect(),
            matched: Vec::new(),
            delivered: 0,
            view: None,
        }
    }

    /// Feed-side: broadcast a quote to the whole floor.
    pub fn publish(&mut self, q: Quote, up: &mut Uplink<'_, '_, Self>) {
        up.cast(self.gid, CastKind::Fifo, q);
    }
}

impl Application for FlatAnalyst {
    type Payload = Quote;
    type State = ();

    fn on_deliver(
        &mut self,
        _gid: GroupId,
        _from: Pid,
        _kind: CastKind,
        q: &Quote,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        self.delivered += 1;
        let latency = up.now().since(SimTime(q.sent_us));
        up.sample_duration("trading.latency_ms", latency);
        if self.subscriptions.contains(&q.symbol) {
            self.matched.push(q.clone());
            up.bump("trading.matched");
        }
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, _up: &mut Uplink<'_, '_, Self>) {
        self.view = Some(view.clone());
    }

    fn payload_bytes(_q: &Quote) -> usize {
        QUOTE_BYTES
    }
}

/// Deterministic quote stream shared by both deployments.
pub struct QuoteStream {
    symbols: u32,
    seq: u64,
}

impl QuoteStream {
    /// A stream over `symbols` instruments.
    pub fn new(symbols: u32) -> QuoteStream {
        QuoteStream { symbols, seq: 0 }
    }

    /// The next quote, stamped at `now`.
    pub fn next_quote(&mut self, now: SimTime) -> Quote {
        self.seq += 1;
        Quote {
            symbol: (self.seq.wrapping_mul(2_654_435_761) % self.symbols as u64) as u32,
            seq: self.seq,
            sent_us: now.as_micros(),
            price: 10_000 + (self.seq % 997) as u32,
        }
    }

    /// Quotes issued so far.
    pub fn issued(&self) -> u64 {
        self.seq
    }
}

/// Per-run results of a trading-room experiment.
#[derive(Clone, Debug)]
pub struct TradingReport {
    /// Analyst count.
    pub analysts: usize,
    /// Quotes published during the measurement window.
    pub quotes: u64,
    /// Quote deliveries observed.
    pub deliveries: u64,
    /// End-to-end latency percentiles in milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Messages sent during the window.
    pub messages: u64,
    /// Largest number of distinct destinations any process contacted.
    pub max_fanout: usize,
    /// Fraction of expected deliveries that arrived (quotes × analysts).
    pub delivery_ratio: f64,
}

/// Interval helper: quotes-per-second to inter-quote gap.
pub fn rate_to_gap(quotes_per_sec: u64) -> SimDuration {
    SimDuration::from_micros(1_000_000 / quotes_per_sec.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_stream_is_deterministic() {
        let mut a = QuoteStream::new(16);
        let mut b = QuoteStream::new(16);
        for _ in 0..100 {
            let (qa, qb) = (a.next_quote(SimTime(5)), b.next_quote(SimTime(5)));
            assert_eq!(qa.symbol, qb.symbol);
            assert_eq!(qa.seq, qb.seq);
        }
    }

    #[test]
    fn quote_symbols_cover_the_universe() {
        let mut s = QuoteStream::new(8);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(s.next_quote(SimTime(0)).symbol);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn rate_conversion() {
        assert_eq!(rate_to_gap(1_000), SimDuration::from_micros(1_000));
        assert_eq!(rate_to_gap(0), SimDuration::from_micros(1_000_000));
    }
}
