//! Scenario drivers: complete, parameterised runs of the trading-room and
//! factory workloads, shared by the test suite, the examples, and the
//! experiment binaries (E9/E10).

use now_sim::{Pid, Sim, SimConfig, SimDuration, SimTime};

use isis_core::testutil::generic_cluster;
use isis_core::{GroupId, IsisConfig, IsisProcess};
use isis_hier::harness::generic_large_cluster;
use isis_hier::{HierApp, LargeGroupConfig, LargeGroupId};
use isis_toolkit::hier::{Directory, LeafServiceApp};

use crate::factory::{
    audit_keys, conservation_holds, pick_parts, FactoryReport, Recipe,
};
use crate::trading::{FlatAnalyst, HierAnalyst, QuoteStream, TradingReport};

/// Symbols per analyst subscription in the synthetic floor.
const SUBS_PER_ANALYST: u32 = 4;
/// Symbol universe size.
const SYMBOLS: u32 = 64;

fn subscription(i: usize) -> Vec<u32> {
    (0..SUBS_PER_ANALYST)
        .map(|k| (i as u32 * 7 + k * 13) % SYMBOLS)
        .collect()
}

/// Runs the hierarchical trading floor: `analysts` workstations in a large
/// group, one feed member, `quotes` events at `quotes_per_sec`.
pub fn run_trading_hier(
    analysts: usize,
    quotes: u64,
    quotes_per_sec: u64,
    cfg: LargeGroupConfig,
    seed: u64,
) -> TradingReport {
    run_trading_hier_with(analysts, quotes, quotes_per_sec, cfg, IsisConfig::default(), seed)
}

/// [`run_trading_hier`] with an explicit ISIS configuration. Experiments
/// that compare message counts against a quiet flat baseline pass
/// `IsisConfig::quiet()` plus a `counting()` group config so both sides
/// carry only quote traffic.
pub fn run_trading_hier_with(
    analysts: usize,
    quotes: u64,
    quotes_per_sec: u64,
    cfg: LargeGroupConfig,
    icfg: IsisConfig,
    seed: u64,
) -> TradingReport {
    let lgid = LargeGroupId(1);
    let (mut sim, _leaders, members) = generic_large_cluster(
        analysts,
        cfg,
        icfg,
        SimConfig::lan(seed),
        |i| HierAnalyst::new(lgid, subscription(i)),
    );
    // Steady state, then a measured window.
    sim.run_for(SimDuration::from_secs(2));
    sim.stats_mut().enable_fanout_tracking();
    sim.stats_mut().reset_window();

    let feed = members[0];
    let mut stream = QuoteStream::new(SYMBOLS);
    let gap = crate::trading::rate_to_gap(quotes_per_sec);
    for _ in 0..quotes {
        let q = stream.next_quote(sim.now());
        sim.invoke(feed, move |p, ctx| {
            p.with_app(ctx, move |app, up| {
                app.with_business(up, |_biz, lup| lup.lbcast(lgid, q.clone()));
            });
        });
        sim.run_for(gap);
    }
    sim.run_for(SimDuration::from_secs(10));

    let lat = sim.stats().series("trading.latency_ms");
    let deliveries: u64 = members
        .iter()
        .map(|&m| sim.process(m).app().biz().delivered)
        .sum();
    TradingReport {
        analysts,
        quotes,
        deliveries,
        p50_ms: lat.p50(),
        p99_ms: lat.p99(),
        max_ms: lat.max(),
        messages: sim.stats().messages_sent,
        max_fanout: sim.stats().max_distinct_destinations(),
        delivery_ratio: deliveries as f64 / (quotes * analysts as u64) as f64,
    }
}

/// Runs the flat baseline: every analyst in one ISIS group; the feed
/// member FBCASTs each quote to all of them directly.
///
/// Heartbeats are disabled during the measured window (an all-to-all
/// heartbeat mesh at hundreds of members swamps both the simulated network
/// and the experiment; E5 quantifies that cost separately).
pub fn run_trading_flat(
    analysts: usize,
    quotes: u64,
    quotes_per_sec: u64,
    seed: u64,
) -> TradingReport {
    let gid = GroupId(1);
    let (mut sim, members) = generic_cluster(
        analysts,
        gid,
        IsisConfig::quiet(),
        SimConfig::lan(seed),
        |i| FlatAnalyst::new(gid, subscription(i)),
    );
    sim.run_for(SimDuration::from_secs(2));
    sim.stats_mut().enable_fanout_tracking();
    sim.stats_mut().reset_window();

    let feed = members[0];
    let mut stream = QuoteStream::new(SYMBOLS);
    let gap = crate::trading::rate_to_gap(quotes_per_sec);
    for _ in 0..quotes {
        let q = stream.next_quote(sim.now());
        sim.invoke(feed, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.publish(q.clone(), up));
        });
        sim.run_for(gap);
    }
    sim.run_for(SimDuration::from_secs(10));

    let lat = sim.stats().series("trading.latency_ms");
    let deliveries: u64 = members
        .iter()
        .map(|&m| sim.process(m).app().delivered)
        .sum();
    TradingReport {
        analysts,
        quotes,
        deliveries,
        p50_ms: lat.p50(),
        p99_ms: lat.p99(),
        max_ms: lat.max(),
        messages: sim.stats().messages_sent,
        max_fanout: sim.stats().max_distinct_destinations(),
        delivery_ratio: deliveries as f64 / (quotes * analysts as u64) as f64,
    }
}

/// The simulated process type of the factory deployment.
pub type FactoryProc = IsisProcess<HierApp<LeafServiceApp>>;

/// Reads the leader's directory snapshot.
pub fn directory_of(sim: &Sim<FactoryProc>, leader: Pid, lgid: LargeGroupId) -> Directory {
    sim.process(leader)
        .app()
        .leader_view(lgid)
        .expect("leader view")
        .leaves
        .iter()
        .map(|l| (l.gid, l.contacts.clone()))
        .collect()
}

/// Runs the factory: `cells` work cells issue `builds_per_cell`
/// transactions each over a partitioned inventory, while `crash_cells`
/// randomly chosen cells crash mid-run. Returns the audited report.
pub fn run_factory(
    cells: usize,
    part_types: usize,
    builds_per_cell: u64,
    crash_cells: usize,
    seed: u64,
) -> FactoryReport {
    let lgid = LargeGroupId(1);
    let cfg = LargeGroupConfig::new(3, 4);
    let (mut sim, leaders, members) = generic_large_cluster(
        cells,
        cfg,
        IsisConfig::default(),
        SimConfig::lan(seed),
        |_| LeafServiceApp::new(lgid),
    );
    let recipe = Recipe {
        part_types,
        initial_stock: 1_000_000,
    };

    // Wait for the structure to settle: a formation tail-leaf below
    // min_leaf will be merged away within seconds, and the routing
    // directory must be snapshotted *after* that (key routing is static
    // for the run — the versioned name service is future work in the
    // paper).
    let settle_deadline = sim.now() + SimDuration::from_secs(120);
    loop {
        let dir = directory_of(&sim, leaders[0], lgid);
        let stable = !dir.is_empty()
            && sim
                .process(leaders[0])
                .app()
                .leader_view(lgid)
                .is_some_and(|v| v.leaves.iter().all(|l| l.size >= 3) && !v.leaves.is_empty());
        if stable || sim.now() >= settle_deadline {
            break;
        }
        sim.run_for(SimDuration::from_secs(1));
    }

    // Seed the inventory through a single transaction from cell 0.
    let dir = directory_of(&sim, leaders[0], lgid);
    let seeder = members[0];
    let seed_writes = recipe.seed_writes();
    let d2 = dir.clone();
    sim.invoke(seeder, move |p, ctx| {
        p.with_app(ctx, |app, up| {
            app.with_business(up, |biz, lup| {
                biz.begin_txn(&d2, &seed_writes, lup);
            });
        });
    });
    sim.run_for(SimDuration::from_secs(10));
    sim.stats_mut().reset_window();

    // Crash schedule: evenly spread over the first half of the run.
    let mut crash_plan: Vec<(SimTime, Pid)> = Vec::new();
    for k in 0..crash_cells.min(cells / 4) {
        // Victims from the tail so the seeder survives.
        let victim = members[cells - 1 - k];
        let at = sim.now() + SimDuration::from_secs(2 + 3 * k as u64);
        sim.schedule_crash(victim, at);
        crash_plan.push((at, victim));
    }

    // Production: every live cell fires transactions round-robin. Key
    // routing uses the *seed-time leaf order* so shard assignment stays
    // stable; only the contact lists are refreshed each round. (The paper
    // leaves the large-scale name service to future work; a real one
    // would version the key space the same way.)
    let seed_dir = dir.clone();
    let mut attempts: u64 = 0;
    for k in 0..builds_per_cell {
        let fresh = directory_of(&sim, leaders[0], lgid);
        let dir: Directory = seed_dir
            .iter()
            .map(|(gid, old_contacts)| {
                let contacts = fresh
                    .iter()
                    .find(|(g, _)| g == gid)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_else(|| old_contacts.clone());
                (*gid, contacts)
            })
            .collect();
        for (c, &cell) in members.iter().enumerate() {
            if !sim.is_alive(cell) {
                continue;
            }
            let (a, b) = pick_parts(c, k, part_types);
            let writes = recipe.build_writes(c, a, b);
            let d = dir.clone();
            sim.invoke(cell, move |p, ctx| {
                p.with_app(ctx, |app, up| {
                    app.with_business(up, |biz, lup| {
                        biz.begin_txn(&d, &writes, lup);
                    });
                });
            });
            attempts += 1;
            sim.run_for(SimDuration::from_millis(30));
        }
        sim.run_for(SimDuration::from_millis(200));
    }
    // Drain.
    sim.run_for(SimDuration::from_secs(60));

    // Audit: fold outcomes and read the final inventory from live members.
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for &m in &members {
        if !sim.is_alive(m) {
            continue;
        }
        for ok in sim.process(m).app().biz().txn_results.values() {
            if *ok {
                committed += 1;
            } else {
                aborted += 1;
            }
        }
    }
    // Exclude the seed transaction from the tallies.
    committed = committed.saturating_sub(1);

    let (part_keys, product_keys) = audit_keys(&recipe, cells);
    let read = |key: &str| -> i64 {
        members
            .iter()
            .filter(|&&m| sim.is_alive(m))
            .find_map(|&m| {
                sim.process(m)
                    .app()
                    .biz()
                    .state
                    .get(key)
                    .and_then(|v| v.parse::<i64>().ok())
            })
            .unwrap_or(recipe.initial_stock)
    };
    let remaining: Vec<i64> = part_keys.iter().map(|k| read(k)).collect();
    let products: i64 = product_keys
        .iter()
        .map(|k| {
            members
                .iter()
                .filter(|&&m| sim.is_alive(m))
                .find_map(|&m| {
                    sim.process(m)
                        .app()
                        .biz()
                        .state
                        .get(k)
                        .and_then(|v| v.parse::<i64>().ok())
                })
                .unwrap_or(0)
        })
        .sum();

    let resolved = committed + aborted;
    let parts_consumed =
        recipe.initial_stock * part_types as i64 - remaining.iter().sum::<i64>();
    FactoryReport {
        cells,
        attempts,
        committed,
        aborted,
        unresolved: attempts.saturating_sub(resolved),
        conserved: conservation_holds(&recipe, &remaining, products),
        parts_consumed,
        products_built: products,
        availability: if resolved > 0 {
            committed as f64 / resolved as f64
        } else {
            0.0
        },
        messages: sim.stats().messages_sent,
    }
}
