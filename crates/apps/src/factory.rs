//! The manufacturing-control workload (section 1 of the paper):
//!
//! > "Hundreds of work cells distributed throughout a factory communicate
//! > with production monitoring and inventory control stations.
//! > Consistency and reliability are important here."
//!
//! Work cells consume parts and produce assemblies; every production step
//! is a distributed transaction over the partitioned inventory (parts live
//! in different leaf subgroups). The invariant checked by experiment E10
//! is *conservation*: for every committed build of one unit,
//! `part_a -= 1`, `part_b -= 1`, `product += 1`, so
//! `initial_parts - remaining_parts == products × parts_per_product`
//! must hold exactly, whatever crashes occur.

use isis_toolkit::hier::Directory;

/// Inventory schema of the synthetic factory.
#[derive(Clone, Debug)]
pub struct Recipe {
    /// Number of distinct part types.
    pub part_types: usize,
    /// Initial stock per part type.
    pub initial_stock: i64,
}

impl Recipe {
    /// Key of part type `i`.
    pub fn part_key(&self, i: usize) -> String {
        format!("part{}", i % self.part_types)
    }

    /// Key of the finished-product counter for work cell `c`'s line.
    pub fn product_key(line: usize) -> String {
        format!("product{line}")
    }

    /// The transactional writes for "cell on `line` builds one unit out of
    /// parts `a` and `b`" — numeric deltas, applied under 2PC locks.
    pub fn build_writes(&self, line: usize, a: usize, b: usize) -> Vec<(String, String)> {
        vec![
            (self.part_key(a), "-1".into()),
            (self.part_key(b), "-1".into()),
            (Recipe::product_key(line), "+1".into()),
        ]
    }

    /// Seed writes establishing the initial stock.
    pub fn seed_writes(&self) -> Vec<(String, String)> {
        (0..self.part_types)
            .map(|i| (self.part_key(i), self.initial_stock.to_string()))
            .collect()
    }
}

/// Results of a factory run.
#[derive(Clone, Debug)]
pub struct FactoryReport {
    /// Work cells participating.
    pub cells: usize,
    /// Transactions attempted / committed / aborted.
    pub attempts: u64,
    pub committed: u64,
    pub aborted: u64,
    /// Unresolved at the end of the run (in-flight when it stopped).
    pub unresolved: u64,
    /// Whether the conservation invariant held exactly.
    pub conserved: bool,
    /// Parts consumed according to the inventory vs products built.
    pub parts_consumed: i64,
    pub products_built: i64,
    /// Commit availability: committed / resolved.
    pub availability: f64,
    /// Messages sent during the measurement window.
    pub messages: u64,
}

/// Checks conservation given the final inventory readings.
///
/// `remaining[i]` is the final stock of part type `i`; `products` the sum
/// of all product counters. Each product consumes exactly two parts.
pub fn conservation_holds(recipe: &Recipe, remaining: &[i64], products: i64) -> bool {
    let initial: i64 = recipe.initial_stock * recipe.part_types as i64;
    let left: i64 = remaining.iter().sum();
    initial - left == 2 * products
}

/// Deterministic work-cell schedule: which parts cell `c` uses for its
/// `k`-th build. Spread so that concurrent cells often conflict on shared
/// part types (exercising the 2PC abort path).
pub fn pick_parts(cell: usize, k: u64, part_types: usize) -> (usize, usize) {
    let a = (cell as u64 + k).wrapping_mul(2_654_435_761) as usize % part_types;
    let b = (a + 1 + (k as usize % (part_types - 1).max(1))) % part_types;
    (a, b)
}

/// Convenience: keys read back to audit the final inventory.
pub fn audit_keys(recipe: &Recipe, lines: usize) -> (Vec<String>, Vec<String>) {
    (
        (0..recipe.part_types).map(|i| recipe.part_key(i)).collect(),
        (0..lines).map(Recipe::product_key).collect(),
    )
}

/// Routes every part key in a directory (sanity helper for tests).
pub fn parts_span_leaves(recipe: &Recipe, dir: &Directory) -> usize {
    let mut leaves: Vec<usize> = (0..recipe.part_types)
        .map(|i| isis_toolkit::shard_of(&recipe.part_key(i), dir.len()))
        .collect();
    leaves.sort_unstable();
    leaves.dedup();
    leaves.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recipe() -> Recipe {
        Recipe {
            part_types: 8,
            initial_stock: 1_000,
        }
    }

    #[test]
    fn build_writes_are_conserving_deltas() {
        let r = recipe();
        let w = r.build_writes(3, 1, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], ("part1".to_string(), "-1".to_string()));
        assert_eq!(w[2], ("product3".to_string(), "+1".to_string()));
    }

    #[test]
    fn conservation_check() {
        let r = recipe();
        // 10 products consumed 20 parts.
        let mut remaining = vec![1_000i64; 8];
        remaining[0] -= 12;
        remaining[1] -= 8;
        assert!(conservation_holds(&r, &remaining, 10));
        assert!(!conservation_holds(&r, &remaining, 11));
    }

    #[test]
    fn part_picks_are_distinct_and_in_range() {
        for c in 0..20 {
            for k in 0..50 {
                let (a, b) = pick_parts(c, k, 8);
                assert!(a < 8 && b < 8);
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn seed_covers_every_part() {
        let r = recipe();
        assert_eq!(r.seed_writes().len(), 8);
    }
}
