//! `isis-apps` — the paper's two motivating applications as synthetic
//! workloads: the trading room (section 1: "100 to 500 trading analyst
//! workstations ... sub-second response") and the manufacturing control
//! system ("hundreds of work cells ... consistency and reliability are
//! important"). Both run over the hierarchical group stack and, for the
//! baseline comparisons, over flat ISIS groups.

pub mod drivers;
pub mod factory;
pub mod trading;

pub use drivers::{run_factory, run_trading_flat, run_trading_hier};
pub use factory::{FactoryReport, Recipe};
pub use trading::{Quote, QuoteStream, TradingReport};
