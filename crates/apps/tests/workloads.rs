//! End-to-end workload tests: small instances of the paper's two
//! motivating applications, checking correctness (delivery, conservation)
//! rather than scale — the bench harness covers the scale sweeps (E9/E10).

use isis_apps::{run_factory, run_trading_flat, run_trading_hier};
use isis_hier::LargeGroupConfig;

#[test]
fn trading_hier_delivers_every_quote_to_every_analyst() {
    let r = run_trading_hier(18, 30, 200, LargeGroupConfig::new(2, 3), 7);
    assert_eq!(r.quotes, 30);
    assert!(
        (r.delivery_ratio - 1.0).abs() < 1e-9,
        "lossy dissemination: {}",
        r.delivery_ratio
    );
    assert!(r.p99_ms > 0.0 && r.p99_ms < 1_000.0, "p99={}ms", r.p99_ms);
}

#[test]
fn trading_flat_delivers_but_with_unbounded_fanout() {
    let r = run_trading_flat(18, 30, 200, 7);
    assert!((r.delivery_ratio - 1.0).abs() < 1e-9);
    // The feed contacts every other member directly: fanout n-1.
    assert!(
        r.max_fanout >= 17,
        "flat feed fanout should be n-1, got {}",
        r.max_fanout
    );
}

#[test]
fn trading_hier_bounds_per_process_fanout() {
    let cfg = LargeGroupConfig::new(2, 3);
    let r = run_trading_hier(24, 20, 200, cfg.clone(), 11);
    assert!((r.delivery_ratio - 1.0).abs() < 1e-9);
    // No process contacts more than fanout children + its leaf + slack
    // (leader/beacon traffic), and far fewer than n.
    let bound = cfg.fanout + cfg.max_leaf + 6;
    assert!(
        r.max_fanout <= bound,
        "hier fanout {} exceeds bound {bound}",
        r.max_fanout
    );
}

#[test]
fn factory_conserves_inventory_without_failures() {
    let r = run_factory(12, 8, 3, 0, 3);
    assert!(r.attempts >= 30);
    assert!(r.committed > 0, "no production happened: {r:?}");
    assert!(r.conserved, "conservation violated: {r:?}");
    assert_eq!(r.parts_consumed, 2 * r.products_built, "{r:?}");
}

#[test]
fn factory_conserves_inventory_under_cell_crashes() {
    let r = run_factory(12, 8, 3, 2, 5);
    assert!(r.committed > 0, "production stalled entirely: {r:?}");
    assert!(
        r.conserved,
        "conservation must survive cell crashes: {r:?}"
    );
    assert_eq!(r.parts_consumed, 2 * r.products_built, "{r:?}");
}
