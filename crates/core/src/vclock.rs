//! Vector timestamps for causal broadcast.
//!
//! CBCAST stamps each message with the sender's vector of *delivered*
//! causal-broadcast counts. A receiver delays a message until it has
//! delivered everything the sender had delivered when it sent — the
//! classical causal delivery condition of ISIS.

use now_sim::Pid;

/// A vector timestamp: per-process count of causal broadcasts.
///
/// Keyed by `Pid` (not by view rank) so timestamps remain meaningful while
/// a view change is being agreed. Missing entries are zero.
///
/// Backed by a pid-sorted `Vec` rather than a tree: group views are small
/// (a leaf, in the hierarchical design), clocks travel inside every cast
/// and stability snapshot, and the dominant operations on the message path
/// are clone / merge / compare — one memcpy and linear walks on a flat
/// array, instead of per-node allocation and pointer chasing.
/// Zero entries are never stored, so derived equality is structural.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VClock {
    /// `(pid, count)` pairs, strictly sorted by pid, counts all non-zero.
    entries: Vec<(Pid, u64)>,
}

/// The result of comparing two vector timestamps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VOrd {
    /// Identical vectors.
    Equal,
    /// `self` happened strictly before `other`.
    Before,
    /// `self` happened strictly after `other`.
    After,
    /// Neither dominates: the events are concurrent.
    Concurrent,
}

impl VClock {
    /// The all-zero clock.
    pub fn new() -> VClock {
        VClock::default()
    }

    /// The count for process `p` (zero when absent).
    pub fn get(&self, p: Pid) -> u64 {
        match self.entries.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Sets the count for `p`. Zero entries are not stored.
    pub fn set(&mut self, p: Pid, v: u64) {
        match self.entries.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => {
                if v == 0 {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = v;
                }
            }
            Err(i) => {
                if v != 0 {
                    self.entries.insert(i, (p, v));
                }
            }
        }
    }

    /// Increments the count for `p` and returns the new value.
    pub fn bump(&mut self, p: Pid) -> u64 {
        match self.entries.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => {
                self.entries[i].1 += 1;
                self.entries[i].1
            }
            Err(i) => {
                self.entries.insert(i, (p, 1));
                1
            }
        }
    }

    /// Pointwise maximum with `other`.
    pub fn merge(&mut self, other: &VClock) {
        // Fast path: every key of `other` already present — max in place.
        // (The common case on the stability path, where key sets stabilise
        // after the first exchange in a view.)
        let mut i = 0;
        let mut extra = false;
        for &(p, v) in &other.entries {
            while i < self.entries.len() && self.entries[i].0 < p {
                i += 1;
            }
            if i < self.entries.len() && self.entries[i].0 == p {
                self.entries[i].1 = self.entries[i].1.max(v);
            } else {
                extra = true;
            }
        }
        if !extra {
            return;
        }
        // Slow path: `other` has keys we lack — rebuild by two-pointer merge.
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1.max(b[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.entries = out;
    }

    /// Compares two clocks under the pointwise partial order.
    pub fn compare(&self, other: &VClock) -> VOrd {
        let mut less = false;
        let mut greater = false;
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            // A key present on one side only compares against zero.
            let pa = a.get(i).map(|&(p, _)| p);
            let pb = b.get(j).map(|&(p, _)| p);
            let (va, vb) = match (pa, pb) {
                (Some(p), Some(q)) if p == q => {
                    let r = (a[i].1, b[j].1);
                    i += 1;
                    j += 1;
                    r
                }
                (Some(p), Some(q)) if p < q => {
                    i += 1;
                    (a[i - 1].1, 0)
                }
                (Some(_), Some(_)) => {
                    j += 1;
                    (0, b[j - 1].1)
                }
                (Some(_), None) => {
                    i += 1;
                    (a[i - 1].1, 0)
                }
                (None, Some(_)) => {
                    j += 1;
                    (0, b[j - 1].1)
                }
                (None, None) => unreachable!("loop condition"),
            };
            if va < vb {
                less = true;
            }
            if va > vb {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => VOrd::Equal,
            (true, false) => VOrd::Before,
            (false, true) => VOrd::After,
            (true, true) => VOrd::Concurrent,
        }
    }

    /// Sum of all entries. Strictly increases along any causal chain, so
    /// sorting by `(sum, tiebreak)` is a valid linear extension of
    /// causality — used to order relayed messages during view changes.
    pub fn sum(&self) -> u64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// The causal delivery test: can a message stamped `msg_vt` from
    /// `sender` be delivered at a process whose delivered-vector is `self`?
    ///
    /// Deliverable iff `msg_vt[sender] == self[sender] + 1` (it is the very
    /// next message from that sender) and `msg_vt[q] <= self[q]` for all
    /// other `q` (we have delivered everything the sender had).
    pub fn deliverable(&self, sender: Pid, msg_vt: &VClock) -> bool {
        if msg_vt.get(sender) != self.get(sender) + 1 {
            return false;
        }
        msg_vt
            .entries
            .iter()
            .all(|&(q, v)| q == sender || v <= self.get(q))
    }

    /// Number of non-zero entries (for storage accounting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether every entry is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(pid, count)` pairs in pid order.
    pub fn iter(&self) -> impl Iterator<Item = (Pid, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Estimated storage bytes (for experiment E7).
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * 12
    }
}

impl FromIterator<(Pid, u64)> for VClock {
    fn from_iter<T: IntoIterator<Item = (Pid, u64)>>(iter: T) -> VClock {
        let mut c = VClock::new();
        for (p, v) in iter {
            c.set(p, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(pairs: &[(u32, u64)]) -> VClock {
        pairs.iter().map(|&(p, v)| (Pid(p), v)).collect()
    }

    #[test]
    fn zero_entries_are_not_stored() {
        let mut c = VClock::new();
        c.set(Pid(1), 5);
        c.set(Pid(1), 0);
        assert!(c.is_empty());
        assert_eq!(c.get(Pid(1)), 0);
    }

    #[test]
    fn bump_increments() {
        let mut c = VClock::new();
        assert_eq!(c.bump(Pid(3)), 1);
        assert_eq!(c.bump(Pid(3)), 2);
        assert_eq!(c.get(Pid(3)), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = vc(&[(1, 5), (2, 1)]);
        a.merge(&vc(&[(1, 3), (2, 4), (3, 1)]));
        assert_eq!(a, vc(&[(1, 5), (2, 4), (3, 1)]));
    }

    #[test]
    fn compare_covers_all_cases() {
        assert_eq!(vc(&[]).compare(&vc(&[])), VOrd::Equal);
        assert_eq!(vc(&[(1, 1)]).compare(&vc(&[(1, 2)])), VOrd::Before);
        assert_eq!(vc(&[(1, 3)]).compare(&vc(&[(1, 2)])), VOrd::After);
        assert_eq!(
            vc(&[(1, 1)]).compare(&vc(&[(2, 1)])),
            VOrd::Concurrent
        );
    }

    #[test]
    fn sum_increases_along_causal_chains() {
        let a = vc(&[(1, 1)]);
        let mut b = a.clone();
        b.bump(Pid(2));
        assert!(b.sum() > a.sum());
    }

    #[test]
    fn delivery_condition_next_from_sender() {
        // Receiver has delivered 2 messages from p1, 1 from p2.
        let delivered = vc(&[(1, 2), (2, 1)]);
        // Next message from p1 carries vt[p1]=3 (counting itself).
        assert!(delivered.deliverable(Pid(1), &vc(&[(1, 3), (2, 1)])));
        // A message from the future (vt[p1]=4) must wait.
        assert!(!delivered.deliverable(Pid(1), &vc(&[(1, 4)])));
        // A message depending on an undelivered message from p3 must wait.
        assert!(!delivered.deliverable(Pid(1), &vc(&[(1, 3), (3, 1)])));
        // A duplicate (vt[p1]=2) is not deliverable.
        assert!(!delivered.deliverable(Pid(1), &vc(&[(1, 2)])));
    }

    #[test]
    fn delivery_condition_first_message() {
        let empty = VClock::new();
        assert!(empty.deliverable(Pid(9), &vc(&[(9, 1)])));
        assert!(!empty.deliverable(Pid(9), &vc(&[(9, 1), (4, 2)])));
    }

    #[test]
    fn from_iterator_and_iter_round_trip() {
        let c = vc(&[(1, 1), (5, 9)]);
        let pairs: Vec<(Pid, u64)> = c.iter().collect();
        assert_eq!(pairs, vec![(Pid(1), 1), (Pid(5), 9)]);
    }

    #[test]
    fn storage_bytes_tracks_entries() {
        assert_eq!(vc(&[]).storage_bytes(), 0);
        assert_eq!(vc(&[(1, 1), (2, 2)]).storage_bytes(), 24);
    }
}
