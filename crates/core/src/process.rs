//! The ISIS process: one simulated workstation process running the full
//! group communication stack plus an [`Application`] on top.

use std::collections::BTreeMap;

use now_sim::trace::EventKind as TraceKind;
use now_sim::{Ctx, Pid, Process, SimTime, TimerId};

use crate::app::{Application, MsgOf, Uplink, UpOp};
use crate::config::IsisConfig;
use crate::group::{Effect, Env, GroupRuntime, Status};
use crate::msg::{DeliveryFloor, IsisMsg, RelaySet};
use crate::types::{CastKind, GroupId, GroupView, IsisError, MsgId};

/// Timer kind for the internal housekeeping tick.
const TICK_KIND: u32 = 1;
/// Application timer kinds are offset by this base.
pub const APP_TIMER_BASE: u32 = 1 << 16;
/// Bound on buffered messages for groups we are still joining.
const ORPHAN_CAP: usize = 4_096;

struct JoinState {
    contact: Pid,
    last_attempt: SimTime,
}

/// A workstation process running the ISIS stack and an application.
///
/// Drive protocol entry points from a harness with
/// [`now_sim::Sim::invoke`]:
///
/// ```
/// use isis_core::testutil::RecorderApp;
/// use isis_core::{GroupId, IsisProcess};
/// use now_sim::{Sim, SimConfig, SimDuration};
///
/// let mut sim: Sim<IsisProcess<RecorderApp>> = Sim::new(SimConfig::ideal(7));
/// let node = sim.add_nodes(1)[0];
/// let pid = sim.spawn(node, IsisProcess::with_defaults(RecorderApp::default()));
/// sim.invoke(pid, |p, ctx| p.create_group(GroupId(1), ctx).expect("fresh gid"));
/// sim.run_for(SimDuration::from_secs(1));
/// assert!(sim.process(pid).view_of(GroupId(1)).is_some());
/// ```
pub struct IsisProcess<A: Application> {
    app: A,
    cfg: IsisConfig,
    groups: BTreeMap<GroupId, GroupRuntime<A>>,
    views_cache: BTreeMap<GroupId, GroupView>,
    joining: BTreeMap<GroupId, JoinState>,
    orphans: Vec<(Pid, MsgOf<A>)>,
    /// Interned per-category send-counter handles, registered on the first
    /// protocol send (see [`crate::group::SentCounters`]).
    sent_ids: Option<crate::group::SentCounters>,
    /// Reusable group-id snapshot for the housekeeping tick (the tick runs
    /// forever on every process, so it must not allocate per firing).
    tick_gids: Vec<GroupId>,
}

impl<A: Application> IsisProcess<A> {
    /// Creates a process hosting `app` with the given configuration.
    pub fn new(app: A, cfg: IsisConfig) -> IsisProcess<A> {
        IsisProcess {
            app,
            cfg,
            groups: BTreeMap::new(),
            views_cache: BTreeMap::new(),
            joining: BTreeMap::new(),
            orphans: Vec::new(),
            sent_ids: None,
            tick_gids: Vec::new(),
        }
    }

    /// Creates a process with the default configuration.
    pub fn with_defaults(app: A) -> IsisProcess<A> {
        IsisProcess::new(app, IsisConfig::default())
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the hosted application (harness-side state
    /// inspection and priming; protocol actions should go through
    /// [`Uplink`] operations instead).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// The runtime configuration.
    pub fn config(&self) -> &IsisConfig {
        &self.cfg
    }

    /// Current view of `gid`, if this process is a member.
    pub fn view_of(&self, gid: GroupId) -> Option<&GroupView> {
        self.groups.get(&gid).map(|g| &g.view)
    }

    /// Whether this process is currently a member of `gid`.
    pub fn is_member(&self, gid: GroupId) -> bool {
        self.groups.contains_key(&gid)
    }

    /// Whether this process has a join in flight for `gid`.
    pub fn is_joining(&self, gid: GroupId) -> bool {
        self.joining.contains_key(&gid)
    }

    /// Joiners this member has accepted into `gid` but not yet installed —
    /// non-empty only while a join is in flight, so tests can assert a
    /// contact ends up clean after a joiner crashes mid-join.
    pub fn pending_joiners(&self, gid: GroupId) -> usize {
        self.groups.get(&gid).map_or(0, |g| g.pending_joiners.len())
    }

    /// Operational status of this member of `gid`.
    pub fn status_of(&self, gid: GroupId) -> Option<Status> {
        self.groups.get(&gid).map(|g| g.status)
    }

    /// All groups this process belongs to, in id order.
    pub fn group_ids(&self) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self.groups.keys().copied().collect();
        v.sort();
        v
    }

    /// Estimated membership-related storage for `gid` (experiment E7).
    pub fn membership_storage_bytes(&self, gid: GroupId) -> usize {
        self.groups
            .get(&gid)
            .map_or(0, GroupRuntime::membership_storage_bytes)
    }

    /// Total membership-related storage across all groups.
    pub fn total_membership_storage_bytes(&self) -> usize {
        self.groups
            .values()
            .map(GroupRuntime::membership_storage_bytes)
            .sum()
    }

    /// Messages buffered for potential view-change relay in `gid`.
    pub fn relay_buffer_len(&self, gid: GroupId) -> usize {
        self.groups.get(&gid).map_or(0, GroupRuntime::relay_buffer_len)
    }

    // ------------------------------------------------------------------
    // Public protocol entry points (invoke from the harness)
    // ------------------------------------------------------------------

    /// Creates a new group with this process as the only member.
    pub fn create_group(
        &mut self,
        gid: GroupId,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) -> Result<(), IsisError> {
        if self.groups.contains_key(&gid) {
            return Err(IsisError::AlreadyMember(gid));
        }
        let rt = GroupRuntime::new_created(gid, ctx.me(), ctx.now());
        let view = rt.view.clone();
        self.groups.insert(gid, rt);
        let effects = vec![Effect::View { view, joined: true }];
        self.pump(ctx, effects, Vec::new());
        Ok(())
    }

    /// Requests admission to `gid` through `contact` (a current member).
    pub fn join(
        &mut self,
        gid: GroupId,
        contact: Pid,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) -> Result<(), IsisError> {
        if self.groups.contains_key(&gid) {
            return Err(IsisError::AlreadyMember(gid));
        }
        self.joining.insert(
            gid,
            JoinState {
                contact,
                last_attempt: ctx.now(),
            },
        );
        ctx.bump("isis.sent.join_req");
        ctx.send(contact, IsisMsg::JoinReq { gid });
        Ok(())
    }

    /// Leaves `gid` gracefully.
    pub fn leave(&mut self, gid: GroupId, ctx: &mut Ctx<'_, MsgOf<A>>) -> Result<(), IsisError> {
        if !self.groups.contains_key(&gid) {
            return Err(IsisError::NotMember(gid));
        }
        self.with_group(gid, ctx, |rt, env| rt.request_leave(env));
        Ok(())
    }

    /// Broadcasts `payload` to `gid`. Returns the message id when sent
    /// immediately, `None` when buffered behind a view change.
    pub fn cast(
        &mut self,
        gid: GroupId,
        kind: CastKind,
        payload: A::Payload,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) -> Result<Option<MsgId>, IsisError> {
        self.cast_inner(gid, kind, payload, false, ctx)
    }

    /// Like [`IsisProcess::cast`] but requests per-delivery acks, reported
    /// through [`Application::on_cast_ack`].
    pub fn cast_acked(
        &mut self,
        gid: GroupId,
        kind: CastKind,
        payload: A::Payload,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) -> Result<Option<MsgId>, IsisError> {
        self.cast_inner(gid, kind, payload, true, ctx)
    }

    fn cast_inner(
        &mut self,
        gid: GroupId,
        kind: CastKind,
        payload: A::Payload,
        want_ack: bool,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) -> Result<Option<MsgId>, IsisError> {
        match self.with_group(gid, ctx, |rt, env| rt.cast(kind, payload, want_ack, env)) {
            None => Err(IsisError::NotMember(gid)),
            Some(r) => r,
        }
    }

    /// Sends a point-to-point application message.
    pub fn send_direct(&mut self, to: Pid, payload: A::Payload, ctx: &mut Ctx<'_, MsgOf<A>>) {
        ctx.bump("isis.sent.direct");
        ctx.send(to, IsisMsg::Direct(payload));
    }

    /// Runs `f` against the application with a live [`Uplink`], then
    /// executes the operations it issued. This is the harness entry point
    /// for application-level actions:
    ///
    /// ```
    /// use isis_core::testutil::cluster;
    /// use isis_core::{CastKind, IsisConfig};
    /// use now_sim::SimDuration;
    ///
    /// let mut c = cluster(3, IsisConfig::default(), 11);
    /// let gid = c.gid;
    /// c.sim.invoke(c.pids[0], move |p, ctx| {
    ///     p.with_app(ctx, move |_app, up| up.cast(gid, CastKind::Causal, "hi".into()));
    /// });
    /// c.sim.run_for(SimDuration::from_secs(5));
    /// assert_eq!(c.sim.process(c.pids[2]).app().payloads(gid), vec!["hi".to_string()]);
    /// ```
    pub fn with_app<R>(
        &mut self,
        ctx: &mut Ctx<'_, MsgOf<A>>,
        f: impl FnOnce(&mut A, &mut Uplink<'_, '_, A>) -> R,
    ) -> R {
        let mut ops = Vec::new();
        let r = {
            let mut up = Uplink {
                ctx,
                ops: &mut ops,
                view: None,
            };
            f(&mut self.app, &mut up)
        };
        self.pump(ctx, Vec::new(), ops);
        r
    }

    /// Harness-driven failure report, for configurations with heartbeats
    /// disabled (deterministic membership experiments).
    pub fn report_suspect(
        &mut self,
        gid: GroupId,
        suspect: Pid,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) -> Result<(), IsisError> {
        self.with_group(gid, ctx, |rt, env| rt.note_suspect(suspect, env))
            .ok_or(IsisError::NotMember(gid))
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Runs `f` against one group runtime, then applies resulting effects.
    fn with_group<R>(
        &mut self,
        gid: GroupId,
        ctx: &mut Ctx<'_, MsgOf<A>>,
        f: impl FnOnce(&mut GroupRuntime<A>, &mut Env<'_, '_, A>) -> R,
    ) -> Option<R> {
        let mut effects = Vec::new();
        let r = {
            let Self { groups, cfg, sent_ids, .. } = self;
            groups.get_mut(&gid).map(|rt| {
                let mut env = Env {
                    ctx,
                    cfg,
                    effects: &mut effects,
                    sent: sent_ids,
                };
                f(rt, &mut env)
            })
        };
        self.pump(ctx, effects, Vec::new());
        r
    }

    /// Applies protocol effects and application operations to quiescence.
    fn pump(
        &mut self,
        ctx: &mut Ctx<'_, MsgOf<A>>,
        mut effects: Vec<Effect<A::Payload>>,
        mut ops: Vec<UpOp<A::Payload>>,
    ) {
        loop {
            while !effects.is_empty() {
                let batch = std::mem::take(&mut effects);
                for eff in batch {
                    self.apply_effect(eff, ctx, &mut ops, &mut effects);
                }
            }
            if ops.is_empty() {
                break;
            }
            let batch = std::mem::take(&mut ops);
            for op in batch {
                self.apply_op(op, ctx, &mut effects, &mut ops);
            }
        }
    }

    fn apply_effect(
        &mut self,
        eff: Effect<A::Payload>,
        ctx: &mut Ctx<'_, MsgOf<A>>,
        ops: &mut Vec<UpOp<A::Payload>>,
        effects: &mut Vec<Effect<A::Payload>>,
    ) {
        match eff {
            Effect::Deliver {
                gid,
                from,
                kind,
                payload,
            } => {
                let Self {
                    app, views_cache, ..
                } = self;
                let mut up = Uplink {
                    ctx,
                    ops,
                    view: views_cache.get(&gid),
                };
                app.on_deliver(gid, from, kind, &payload, &mut up);
            }
            Effect::View { view, joined } => {
                self.views_cache.insert(view.gid, view.clone());
                ctx.trace_with(|| TraceKind::ViewInstall {
                    gid: view.gid.0,
                    view: view.view_id,
                    members: view.members.iter().map(|p| p.0).collect(),
                    joined,
                });
                let Self { app, .. } = self;
                let mut up = Uplink {
                    ctx,
                    ops,
                    view: Some(&view),
                };
                app.on_view(&view, joined, &mut up);
            }
            Effect::Left { gid } => {
                self.views_cache.remove(&gid);
                ctx.trace_with(|| TraceKind::GroupLeft { gid: gid.0 });
                let mut up = Uplink {
                    ctx,
                    ops,
                    view: None,
                };
                self.app.on_left(gid, &mut up);
            }
            Effect::Stall { gid } => {
                ctx.trace_with(|| TraceKind::GroupStall { gid: gid.0 });
                let mut up = Uplink {
                    ctx,
                    ops,
                    view: None,
                };
                self.app.on_stall(gid, &mut up);
            }
            Effect::CastAcked { gid, id, count } => {
                let Self {
                    app, views_cache, ..
                } = self;
                let mut up = Uplink {
                    ctx,
                    ops,
                    view: views_cache.get(&gid),
                };
                app.on_cast_ack(gid, id, count, &mut up);
            }
            Effect::SendJoinerInstalls {
                gid,
                attempt,
                view,
                joiners,
            } => {
                let state = self.app.export_state(gid);
                // The floor must be read at the same instant as the
                // export: together they are the snapshot cut the joiner's
                // runtime starts at.
                let floor = self.groups.get(&gid).map(GroupRuntime::delivery_floor);
                for j in joiners {
                    ctx.bump("isis.sent.install");
                    ctx.send(
                        j,
                        IsisMsg::InstallView {
                            gid,
                            attempt,
                            view: view.clone(),
                            relay: RelaySet::default(),
                            state: Some(state.clone()),
                            floor: floor.clone(),
                        },
                    );
                }
            }
            Effect::DropGroup { gid } => {
                self.groups.remove(&gid);
                self.views_cache.remove(&gid);
                let _ = effects; // Dropping a group produces no follow-ups.
            }
        }
    }

    fn apply_op(
        &mut self,
        op: UpOp<A::Payload>,
        ctx: &mut Ctx<'_, MsgOf<A>>,
        effects: &mut Vec<Effect<A::Payload>>,
        _ops: &mut Vec<UpOp<A::Payload>>,
    ) {
        match op {
            UpOp::Cast {
                gid,
                kind,
                payload,
                want_ack,
            } => {
                let Self { groups, cfg, sent_ids, .. } = self;
                match groups.get_mut(&gid) {
                    Some(rt) => {
                        let mut env = Env {
                            ctx,
                            cfg,
                            effects,
                            sent: sent_ids,
                        };
                        if rt.cast(kind, payload, want_ack, &mut env).is_err() {
                            ctx.bump("isis.cast.refused");
                        }
                    }
                    None => ctx.bump("isis.cast.no_group"),
                }
            }
            UpOp::Direct { to, payload } => {
                let Self { cfg, sent_ids, .. } = self;
                let mut env: Env<'_, '_, A> = Env {
                    ctx,
                    cfg,
                    effects,
                    sent: sent_ids,
                };
                env.send(to, IsisMsg::Direct(payload));
            }
            UpOp::CreateGroup { gid } => {
                if let std::collections::btree_map::Entry::Vacant(e) = self.groups.entry(gid) {
                    let rt = GroupRuntime::new_created(gid, ctx.me(), ctx.now());
                    let view = rt.view.clone();
                    e.insert(rt);
                    effects.push(Effect::View { view, joined: true });
                }
            }
            UpOp::Join { gid, contact } => {
                if !self.groups.contains_key(&gid) {
                    self.joining.insert(
                        gid,
                        JoinState {
                            contact,
                            last_attempt: ctx.now(),
                        },
                    );
                    ctx.bump("isis.sent.join_req");
                    ctx.send(contact, IsisMsg::JoinReq { gid });
                }
            }
            UpOp::Leave { gid } => {
                let Self { groups, cfg, sent_ids, .. } = self;
                if let Some(rt) = groups.get_mut(&gid) {
                    let mut env = Env {
                        ctx,
                        cfg,
                        effects,
                        sent: sent_ids,
                    };
                    rt.request_leave(&mut env);
                }
            }
            UpOp::AppTimer { delay, kind } => {
                ctx.set_timer(delay, APP_TIMER_BASE.saturating_add(kind));
            }
        }
    }

    /// Handles an install addressed to a joiner (no runtime yet).
    fn handle_joiner_install(
        &mut self,
        gid: GroupId,
        view: GroupView,
        state: Option<A::State>,
        floor: Option<DeliveryFloor>,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) {
        if !view.contains(ctx.me()) {
            return;
        }
        self.joining.remove(&gid);
        let mut rt = GroupRuntime::new_joined(view.clone(), ctx.me(), ctx.now());
        if let Some(f) = floor {
            rt.set_delivery_floor(f);
        }
        self.groups.insert(gid, rt);
        if let Some(s) = state {
            self.app.import_state(gid, s);
        }
        let effects = vec![Effect::View { view, joined: true }];
        self.pump(ctx, effects, Vec::new());
        // Replay messages that arrived while the install was in flight.
        let mine: Vec<(Pid, MsgOf<A>)> = {
            let (mine, rest): (Vec<_>, Vec<_>) = self
                .orphans
                .drain(..)
                .partition(|(_, m)| m.group() == Some(gid));
            self.orphans = rest;
            mine
        };
        for (from, msg) in mine {
            self.dispatch_group_msg(gid, from, msg, ctx);
        }
    }

    fn dispatch_group_msg(
        &mut self,
        gid: GroupId,
        from: Pid,
        msg: MsgOf<A>,
        ctx: &mut Ctx<'_, MsgOf<A>>,
    ) {
        self.with_group(gid, ctx, |rt, env| rt.dispatch(from, msg, env));
    }
}

impl<A: Application> Process for IsisProcess<A> {
    type Msg = MsgOf<A>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.set_timer(self.cfg.tick, TICK_KIND);
        let mut ops = Vec::new();
        {
            let mut up = Uplink {
                ctx,
                ops: &mut ops,
                view: None,
            };
            self.app.on_start(&mut up);
        }
        self.pump(ctx, Vec::new(), ops);
    }

    fn on_message(&mut self, from: Pid, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        match msg {
            IsisMsg::Direct(payload) => {
                let mut ops = Vec::new();
                {
                    let mut up = Uplink {
                        ctx,
                        ops: &mut ops,
                        view: None,
                    };
                    self.app.on_direct(from, &payload, &mut up);
                }
                self.pump(ctx, Vec::new(), ops);
            }
            IsisMsg::JoinDenied { gid } => {
                self.joining.remove(&gid);
                let mut ops = Vec::new();
                {
                    let mut up = Uplink {
                        ctx,
                        ops: &mut ops,
                        view: None,
                    };
                    self.app.on_join_denied(gid, &mut up);
                }
                self.pump(ctx, Vec::new(), ops);
            }
            IsisMsg::JoinReq { gid } => {
                if self.groups.contains_key(&gid) {
                    self.dispatch_group_msg(gid, from, IsisMsg::JoinReq { gid }, ctx);
                } else {
                    ctx.bump("isis.sent.join_denied");
                    ctx.send(from, IsisMsg::JoinDenied { gid });
                }
            }
            IsisMsg::InstallView {
                gid,
                attempt,
                view,
                relay,
                state,
                floor,
            } if !self.groups.contains_key(&gid) => {
                if self.joining.contains_key(&gid) || view.contains(ctx.me()) {
                    self.handle_joiner_install(gid, view, state, floor, ctx);
                } else {
                    ctx.bump("isis.recv.unknown_group");
                    let _ = (attempt, relay);
                }
            }
            other => {
                let Some(gid) = other.group() else {
                    return;
                };
                if self.groups.contains_key(&gid) {
                    self.dispatch_group_msg(gid, from, other, ctx);
                } else if self.joining.contains_key(&gid) {
                    if self.orphans.len() < ORPHAN_CAP {
                        self.orphans.push((from, other));
                    }
                } else {
                    ctx.bump("isis.recv.unknown_group");
                }
            }
        }
    }

    fn on_timer(&mut self, _id: TimerId, kind: u32, ctx: &mut Ctx<'_, Self::Msg>) {
        if kind >= APP_TIMER_BASE {
            let mut ops = Vec::new();
            {
                let mut up = Uplink {
                    ctx,
                    ops: &mut ops,
                    view: None,
                };
                self.app.on_app_timer(kind - APP_TIMER_BASE, &mut up);
            }
            self.pump(ctx, Vec::new(), ops);
            return;
        }
        debug_assert_eq!(kind, TICK_KIND);
        ctx.set_timer(self.cfg.tick, TICK_KIND);
        // Snapshot group ids into the reusable buffer (BTreeMap keys are
        // already sorted); groups created mid-tick wait for the next one.
        let mut gids = std::mem::take(&mut self.tick_gids);
        gids.clear();
        gids.extend(self.groups.keys().copied());
        for &gid in &gids {
            self.with_group(gid, ctx, |rt, env| {
                rt.maybe_heartbeat(env);
                rt.tick_membership(env);
            });
        }
        self.tick_gids = gids;
        // Join retries.
        if !self.joining.is_empty() {
            let now = ctx.now();
            let retry = self.cfg.join_retry;
            let due: Vec<(GroupId, Pid)> = self
                .joining
                .iter_mut()
                .filter(|(_, js)| now.since(js.last_attempt) >= retry)
                .map(|(gid, js)| {
                    js.last_attempt = now;
                    (*gid, js.contact)
                })
                .collect();
            for (gid, contact) in due {
                ctx.bump("isis.sent.join_req");
                ctx.send(contact, IsisMsg::JoinReq { gid });
            }
        }
    }

    fn wire_size(msg: &Self::Msg) -> usize {
        msg.wire_bytes(A::payload_bytes, 256)
    }
}
