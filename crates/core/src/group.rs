//! Per-group protocol state: casting, ordered delivery, and stability.
//!
//! One `GroupRuntime` exists at each member for each group it belongs to.
//! It implements the data-plane protocols (FBCAST/CBCAST/ABCAST), tracks
//! message stability for garbage collection, and cooperates with the
//! membership machinery in [`crate::membership`] (implemented as further
//! methods on the same type) to realise virtually synchronous view changes.

use std::collections::{BTreeMap, BTreeSet};

use now_sim::trace::{EventKind as TraceKind, MsgKey};
use now_sim::{Ctx, Pid, SimTime};

use crate::app::{Application, MsgOf};
use crate::config::IsisConfig;
use crate::msg::{CastData, DeliveryFloor, IsisMsg, StabilityVector};
use crate::types::{CastKind, GroupId, GroupView, IsisError, MsgId, ViewId};
use crate::vclock::VClock;

/// Externally visible consequences of protocol handling, applied by
/// [`crate::process::IsisProcess`] after the runtime returns (application
/// callbacks must not run while the runtime is mutably borrowed).
#[derive(Debug)]
pub(crate) enum Effect<P> {
    /// Deliver a cast to the application.
    Deliver {
        gid: GroupId,
        from: Pid,
        kind: CastKind,
        payload: P,
    },
    /// A new view was installed.
    View { view: GroupView, joined: bool },
    /// This process is no longer a member of the group.
    Left { gid: GroupId },
    /// The group stalled in a minority partition.
    Stall { gid: GroupId },
    /// One of our acked casts accumulated another delivery ack.
    CastAcked {
        gid: GroupId,
        id: MsgId,
        count: usize,
    },
    /// After installing a view as leader: send state-bearing installs to
    /// these joiners (the process layer consults the application for the
    /// snapshot).
    SendJoinerInstalls {
        gid: GroupId,
        attempt: u64,
        view: GroupView,
        joiners: Vec<Pid>,
    },
    /// Remove the runtime for this group entirely.
    DropGroup { gid: GroupId },
}

/// Interned per-category send counters, indexed by
/// [`IsisMsg::category_index`](crate::msg::IsisMsg::category_index).
/// Registered once per simulation on the first protocol send, so the
/// per-message cost is a single array index — no string comparison, no
/// tree walk, no allocation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SentCounters {
    ids: [now_sim::CounterId; SENT_COUNTER_NAMES.len()],
}

/// Counter names in [`IsisMsg::category_index`] order.
const SENT_COUNTER_NAMES: [&str; 15] = [
    "isis.sent.join_req",
    "isis.sent.join_fwd",
    "isis.sent.join_denied",
    "isis.sent.leave_req",
    "isis.sent.suspect",
    "isis.sent.flush",
    "isis.sent.flush_ack",
    "isis.sent.install",
    "isis.sent.cast_fifo",
    "isis.sent.cast_causal",
    "isis.sent.cast_total",
    "isis.sent.abcast_order",
    "isis.sent.cast_ack",
    "isis.sent.heartbeat",
    "isis.sent.direct",
];

impl SentCounters {
    pub(crate) fn register<M>(ctx: &mut Ctx<'_, M>) -> SentCounters {
        SentCounters {
            ids: SENT_COUNTER_NAMES.map(|name| ctx.counter_id(name)),
        }
    }
}

/// Borrowed context handed to every runtime method: the simulator effect
/// context, configuration, and the pending effect queue.
pub(crate) struct Env<'a, 'b, A: Application> {
    pub ctx: &'a mut Ctx<'b, MsgOf<A>>,
    pub cfg: &'a IsisConfig,
    pub effects: &'a mut Vec<Effect<A::Payload>>,
    /// Process-cached send-counter handles (filled on first send).
    pub sent: &'a mut Option<SentCounters>,
}

impl<'a, 'b, A: Application> Env<'a, 'b, A> {
    /// Sends a protocol message, bumping its per-category counter.
    pub fn send(&mut self, to: Pid, msg: MsgOf<A>) {
        let ctx = &mut *self.ctx;
        let sent = self.sent.get_or_insert_with(|| SentCounters::register(ctx));
        ctx.bump_id(sent.ids[msg.category_index()]);
        ctx.send(to, msg);
    }

    /// Sends one protocol message to every pid in `dsts` through the
    /// engine's shared-payload multicast: the message is built once and
    /// shared by `Rc` instead of deep-cloned per destination. Counts one
    /// message per destination, exactly like a loop of [`Env::send`].
    pub fn multicast(&mut self, dsts: Vec<Pid>, msg: MsgOf<A>) {
        if dsts.is_empty() {
            return;
        }
        let ctx = &mut *self.ctx;
        let sent = self.sent.get_or_insert_with(|| SentCounters::register(ctx));
        ctx.bump_id_by(sent.ids[msg.category_index()], dsts.len() as u64);
        ctx.multicast(dsts, msg);
    }

    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }
}

/// Flattens a protocol [`MsgId`] into the tracer's plain-integer key.
pub(crate) fn trace_key(id: &MsgId) -> MsgKey {
    MsgKey {
        sender: id.sender.0,
        view: id.view,
        stream: id.stream,
        seq: id.seq,
    }
}

/// Flattens a [`VClock`] into the tracer's `(pid, count)` pairs.
pub(crate) fn trace_vt(vt: &VClock) -> Vec<(u32, u64)> {
    vt.iter().map(|(p, v)| (p.0, v)).collect()
}

/// Operational status of a group member.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Normal operation.
    Normal,
    /// A view change is in progress: casting is buffered, incoming data for
    /// the current view is ignored (the flush relay decides the cut).
    Wedged,
    /// Stalled in a minority partition; no primary view can form.
    Stalled,
}

/// A received-but-undelivered cast awaiting its ordering condition.
#[derive(Clone, Debug)]
pub(crate) struct PendingCast<P> {
    pub id: MsgId,
    pub vt: VClock,
    pub payload: P,
    pub want_ack: bool,
}

/// Leader-side state of an in-progress view change (see
/// [`crate::membership`]).
#[derive(Debug)]
pub(crate) struct ViewChangeLead<P> {
    pub attempt: u64,
    pub retry_round: u64,
    pub proposal: GroupView,
    /// Old-view members expected to ack (includes the leader itself).
    pub participants: Vec<Pid>,
    pub acks: BTreeMap<Pid, crate::msg::RelaySet<P>>,
    /// Highest current-view id reported by any participant, used to pick a
    /// fresh target view id after a botched install.
    pub max_member_view: ViewId,
    /// Highest delivered-ABCAST sequence reported by any participant;
    /// orphaned ABCASTs are re-sequenced above this floor.
    pub max_ack_floor: u64,
    pub started: SimTime,
}

/// Per-group member state.
pub(crate) struct GroupRuntime<A: Application> {
    pub gid: GroupId,
    pub me: Pid,
    pub view: GroupView,
    pub status: Status,

    // --- sender state (reset each view) ---
    seqs: [u64; 3],
    pub(crate) wedged_outbox: Vec<(CastKind, A::Payload, bool)>,

    // --- delivery state (reset each view) ---
    /// Delivered causal casts per sender (includes own).
    cvt: VClock,
    /// Delivered FIFO casts per sender.
    fdel: VClock,
    /// Highest contiguously delivered ABCAST global sequence.
    adel: u64,
    pending_causal: Vec<PendingCast<A::Payload>>,
    pending_fifo: BTreeMap<(Pid, u64), PendingCast<A::Payload>>,
    /// Received, undelivered ABCAST data by id.
    adata: BTreeMap<MsgId, PendingCast<A::Payload>>,
    /// Known but not yet delivered orders: gseq -> id.
    aorder: BTreeMap<u64, MsgId>,
    /// Sequencer-side: ids already assigned an order.
    aseq_assigned: BTreeMap<MsgId, u64>,
    /// Sequencer-side: next global sequence number to hand out.
    next_gseq: u64,

    // --- relay buffers (survive until stability or completed change) ---
    retained_causal: BTreeMap<MsgId, (VClock, A::Payload)>,
    retained_fifo: BTreeMap<MsgId, A::Payload>,
    retained_total: BTreeMap<u64, (MsgId, A::Payload)>,
    delivered_ids: BTreeSet<MsgId>,

    // --- stability ---
    stab_seen: BTreeMap<Pid, StabilityVector>,

    // --- liveness ---
    pub(crate) last_heard: BTreeMap<Pid, SimTime>,
    pub(crate) suspects: BTreeSet<Pid>,
    last_hb_sent: SimTime,

    // --- membership ---
    pub(crate) flush_acked: (ViewId, u64),
    pub(crate) vc: Option<ViewChangeLead<A::Payload>>,
    pub(crate) pending_joiners: Vec<Pid>,
    pub(crate) pending_leavers: Vec<Pid>,
    pub(crate) leaving: bool,

    // --- ack tracking for my want_ack casts ---
    ack_counts: BTreeMap<MsgId, usize>,

    // --- reordering across views ---
    pub(crate) future_inbox: Vec<(Pid, MsgOf<A>)>,

    /// True while [`GroupRuntime::apply_relay`] is delivering flush catch-up
    /// messages; marks those trace deliveries as relays (exempt from the
    /// per-view ordering monitors, which is correct: relays *are* the
    /// virtual-synchrony cut).
    in_relay: bool,

    /// True when a stability input (a delivery, a peer snapshot, the view)
    /// changed since the last completed [`GroupRuntime::gc_stability`] pass.
    /// While clear, a GC pass would recompute the same floors and prune
    /// nothing, so it is skipped outright.
    stab_dirty: bool,
}

impl<A: Application> GroupRuntime<A> {
    /// Creates the runtime for a founding member (singleton view 1).
    pub fn new_created(gid: GroupId, me: Pid, now: SimTime) -> GroupRuntime<A> {
        GroupRuntime::with_view(GroupView::initial(gid, me), me, now)
    }

    /// Creates the runtime for a joiner installing its first view.
    pub fn new_joined(view: GroupView, me: Pid, now: SimTime) -> GroupRuntime<A> {
        GroupRuntime::with_view(view, me, now)
    }

    fn with_view(view: GroupView, me: Pid, now: SimTime) -> GroupRuntime<A> {
        let mut rt = GroupRuntime {
            gid: view.gid,
            me,
            view,
            status: Status::Normal,
            seqs: [0; 3],
            wedged_outbox: Vec::new(),
            cvt: VClock::new(),
            fdel: VClock::new(),
            adel: 0,
            pending_causal: Vec::new(),
            pending_fifo: BTreeMap::new(),
            adata: BTreeMap::new(),
            aorder: BTreeMap::new(),
            aseq_assigned: BTreeMap::new(),
            next_gseq: 1,
            retained_causal: BTreeMap::new(),
            retained_fifo: BTreeMap::new(),
            retained_total: BTreeMap::new(),
            delivered_ids: BTreeSet::new(),
            stab_seen: BTreeMap::new(),
            last_heard: BTreeMap::new(),
            suspects: BTreeSet::new(),
            last_hb_sent: now,
            flush_acked: (0, 0),
            vc: None,
            pending_joiners: Vec::new(),
            pending_leavers: Vec::new(),
            leaving: false,
            ack_counts: BTreeMap::new(),
            future_inbox: Vec::new(),
            in_relay: false,
            stab_dirty: true,
        };
        rt.reset_liveness(now);
        rt
    }

    /// The current delivery cut, captured at the same instant as an
    /// exported state snapshot so a joiner install carries a consistent
    /// `(state, floor)` pair.
    pub(crate) fn delivery_floor(&self) -> DeliveryFloor {
        DeliveryFloor {
            cvt: self.cvt.clone(),
            fdel: self.fdel.clone(),
            adel: self.adel,
            delivered: self.delivered_ids.iter().copied().collect(),
        }
    }

    /// Starts a joiner's delivery state at the donor's snapshot cut.
    /// Without this, a joiner admitted mid-view (e.g. a restart the group
    /// never noticed) would re-deliver flush relays whose effects its
    /// imported state already contains.
    pub(crate) fn set_delivery_floor(&mut self, f: DeliveryFloor) {
        self.cvt = f.cvt;
        self.fdel = f.fdel;
        self.adel = f.adel;
        self.next_gseq = self.adel + 1;
        self.delivered_ids = f.delivered.into_iter().collect();
    }

    pub(crate) fn reset_liveness(&mut self, now: SimTime) {
        self.last_heard = self
            .view
            .members
            .iter()
            .filter(|&&m| m != self.me)
            .map(|&m| (m, now))
            .collect();
    }

    /// Records liveness evidence from `from`.
    pub(crate) fn heard_from(&mut self, from: Pid, now: SimTime) {
        if let Some(t) = self.last_heard.get_mut(&from) {
            *t = (*t).max(now);
        }
    }

    /// The sequencer of the current view (assigns ABCAST order).
    pub fn sequencer(&self) -> Pid {
        self.view.coordinator()
    }

    /// Whether this member currently acts as the ABCAST sequencer.
    pub fn i_am_sequencer(&self) -> bool {
        self.sequencer() == self.me
    }

    /// Everyone in the view but me.
    pub(crate) fn peers(&self) -> Vec<Pid> {
        self.view
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect()
    }

    /// View members not currently suspected, oldest first.
    pub(crate) fn survivors(&self) -> Vec<Pid> {
        self.view
            .members
            .iter()
            .copied()
            .filter(|m| !self.suspects.contains(m))
            .collect()
    }

    // ------------------------------------------------------------------
    // Casting
    // ------------------------------------------------------------------

    /// Initiates a broadcast. While wedged the cast is buffered and sent in
    /// the next view (returning `Ok(None)`); while stalled it is refused.
    pub fn cast(
        &mut self,
        kind: CastKind,
        payload: A::Payload,
        want_ack: bool,
        env: &mut Env<'_, '_, A>,
    ) -> Result<Option<MsgId>, IsisError> {
        match self.status {
            Status::Stalled => return Err(IsisError::Stalled(self.gid)),
            Status::Wedged => {
                self.wedged_outbox.push((kind, payload, want_ack));
                return Ok(None);
            }
            Status::Normal => {}
        }
        let stream = kind.stream() as usize;
        self.seqs[stream] += 1;
        let id = MsgId {
            sender: self.me,
            view: self.view.view_id,
            stream: kind.stream(),
            seq: self.seqs[stream],
        };
        if want_ack {
            self.ack_counts.insert(id, 0);
        }
        let tgid = self.gid.0;
        match kind {
            CastKind::Causal => {
                // Stamp with the post-send vector: own entry counts this
                // message itself (standard CBCAST self-delivery).
                self.cvt.set(self.me, id.seq);
                let vt = self.cvt.clone();
                env.ctx.trace_with(|| TraceKind::CastSend {
                    gid: tgid,
                    msg: trace_key(&id),
                    vt: trace_vt(&vt),
                });
                self.deliver_causal_local(id, vt.clone(), payload.clone(), env);
                let data = self.make_cast(CastKind::Causal, id, vt, want_ack, payload);
                env.multicast(self.peers(), IsisMsg::Cast(data));
            }
            CastKind::Fifo => {
                self.fdel.set(self.me, id.seq);
                env.ctx.trace_with(|| TraceKind::CastSend {
                    gid: tgid,
                    msg: trace_key(&id),
                    vt: Vec::new(),
                });
                self.deliver_fifo_local(id, payload.clone(), env);
                let data = self.make_cast(CastKind::Fifo, id, VClock::new(), want_ack, payload);
                env.multicast(self.peers(), IsisMsg::Cast(data));
            }
            CastKind::Total => {
                env.ctx.trace_with(|| TraceKind::CastSend {
                    gid: tgid,
                    msg: trace_key(&id),
                    vt: Vec::new(),
                });
                let data = self.make_cast(
                    CastKind::Total,
                    id,
                    VClock::new(),
                    want_ack,
                    payload.clone(),
                );
                env.multicast(self.peers(), IsisMsg::Cast(data));
                // Even the sender must wait for the global order.
                self.adata.insert(
                    id,
                    PendingCast {
                        id,
                        vt: VClock::new(),
                        payload,
                        want_ack,
                    },
                );
                if self.i_am_sequencer() {
                    self.assign_order(id, env);
                }
                self.try_deliver_total(env);
            }
        }
        Ok(Some(id))
    }

    fn make_cast(
        &self,
        kind: CastKind,
        id: MsgId,
        vt: VClock,
        want_ack: bool,
        payload: A::Payload,
    ) -> CastData<A::Payload> {
        CastData {
            gid: self.gid,
            view: self.view.view_id,
            kind,
            id,
            vt,
            stab: self.my_stab(),
            want_ack,
            payload,
        }
    }

    /// This member's own stability vector.
    pub(crate) fn my_stab(&self) -> StabilityVector {
        StabilityVector {
            view: self.view.view_id,
            cvt: self.cvt.clone(),
            fvt: self.fdel.clone(),
            adel: self.adel,
        }
    }

    // ------------------------------------------------------------------
    // Incoming data
    // ------------------------------------------------------------------

    /// Handles an incoming [`CastData`]. Returns `true` if consumed,
    /// `false` if it belongs to a future view (caller buffers it).
    pub fn handle_cast(
        &mut self,
        from: Pid,
        data: CastData<A::Payload>,
        env: &mut Env<'_, '_, A>,
    ) -> bool {
        self.heard_from(from, env.now());
        if data.view > self.view.view_id {
            return false;
        }
        if data.view < self.view.view_id {
            // Stale: the view change that superseded it already decided its
            // fate via the relay.
            env.ctx.bump("isis.recv.stale_cast");
            return true;
        }
        if self.status == Status::Wedged {
            // The flush cut is being computed; late arrivals are dropped —
            // if anyone delivered this message pre-ack it is in the relay.
            env.ctx.bump("isis.recv.wedged_drop");
            return true;
        }
        self.note_stab(from, &data.stab);
        if self.delivered_ids.contains(&data.id) {
            env.ctx.bump("isis.recv.dup");
            return true;
        }
        match data.kind {
            CastKind::Causal => {
                let id = data.id;
                self.pending_causal.push(PendingCast {
                    id,
                    vt: data.vt,
                    payload: data.payload,
                    want_ack: data.want_ack,
                });
                self.try_deliver_causal(env);
                if self.pending_causal.iter().any(|pc| pc.id == id) {
                    // Arrived ahead of a causal predecessor: held back.
                    env.ctx.bump("isis.causal_delayed");
                }
            }
            CastKind::Fifo => {
                self.pending_fifo.insert(
                    (data.id.sender, data.id.seq),
                    PendingCast {
                        id: data.id,
                        vt: VClock::new(),
                        payload: data.payload,
                        want_ack: data.want_ack,
                    },
                );
                self.try_deliver_fifo(env);
            }
            CastKind::Total => {
                let id = data.id;
                self.adata.insert(
                    id,
                    PendingCast {
                        id,
                        vt: VClock::new(),
                        payload: data.payload,
                        want_ack: data.want_ack,
                    },
                );
                if self.i_am_sequencer() {
                    self.assign_order(id, env);
                }
                self.try_deliver_total(env);
            }
        }
        self.gc_stability();
        true
    }

    /// Handles an ABCAST order announcement. Returns `false` for a future
    /// view (caller buffers).
    pub fn handle_order(
        &mut self,
        from: Pid,
        view: ViewId,
        gseq: u64,
        id: MsgId,
        env: &mut Env<'_, '_, A>,
    ) -> bool {
        self.heard_from(from, env.now());
        if view > self.view.view_id {
            return false;
        }
        if view < self.view.view_id || self.status == Status::Wedged {
            return true;
        }
        self.aorder.insert(gseq, id);
        self.try_deliver_total(env);
        true
    }

    /// Handles a delivery ack for one of our `want_ack` casts.
    pub fn handle_cast_ack(&mut self, from: Pid, id: MsgId, env: &mut Env<'_, '_, A>) {
        self.heard_from(from, env.now());
        if let Some(c) = self.ack_counts.get_mut(&id) {
            *c += 1;
            let count = *c;
            env.effects.push(Effect::CastAcked {
                gid: self.gid,
                id,
                count,
            });
        }
    }

    /// Handles a liveness/stability heartbeat.
    pub fn handle_heartbeat(&mut self, from: Pid, stab: StabilityVector, env: &mut Env<'_, '_, A>) {
        self.heard_from(from, env.now());
        self.note_stab(from, &stab);
        self.gc_stability();
    }

    fn note_stab(&mut self, from: Pid, stab: &StabilityVector) {
        let e = self.stab_seen.entry(from).or_default();
        if stab.view > e.view {
            *e = stab.clone();
            self.stab_dirty = true;
        } else if stab.view == e.view
            && (stab.adel > e.adel || stab.cvt != e.cvt || stab.fvt != e.fvt)
        {
            // Pointwise max, merged in place (max is commutative, so
            // merging the snapshot into the record equals rebuilding the
            // record from the snapshot).
            e.cvt.merge(&stab.cvt);
            e.fvt.merge(&stab.fvt);
            e.adel = e.adel.max(stab.adel);
            self.stab_dirty = true;
        }
    }

    // ------------------------------------------------------------------
    // Delivery machinery
    // ------------------------------------------------------------------

    fn deliver_causal_local(
        &mut self,
        id: MsgId,
        vt: VClock,
        payload: A::Payload,
        env: &mut Env<'_, '_, A>,
    ) {
        let (gid, view, relay) = (self.gid.0, self.view.view_id, self.in_relay);
        env.ctx.trace_with(|| TraceKind::CastDeliver {
            gid,
            view,
            msg: trace_key(&id),
            gseq: 0,
            relay,
            vt: trace_vt(&vt),
        });
        self.delivered_ids.insert(id);
        self.retained_causal.insert(id, (vt, payload.clone()));
        self.stab_dirty = true;
        env.effects.push(Effect::Deliver {
            gid: self.gid,
            from: id.sender,
            kind: CastKind::Causal,
            payload,
        });
    }

    fn deliver_fifo_local(&mut self, id: MsgId, payload: A::Payload, env: &mut Env<'_, '_, A>) {
        let (gid, view, relay) = (self.gid.0, self.view.view_id, self.in_relay);
        env.ctx.trace_with(|| TraceKind::CastDeliver {
            gid,
            view,
            msg: trace_key(&id),
            gseq: 0,
            relay,
            vt: Vec::new(),
        });
        self.delivered_ids.insert(id);
        self.retained_fifo.insert(id, payload.clone());
        self.stab_dirty = true;
        env.effects.push(Effect::Deliver {
            gid: self.gid,
            from: id.sender,
            kind: CastKind::Fifo,
            payload,
        });
    }

    fn deliver_total_local(
        &mut self,
        gseq: u64,
        id: MsgId,
        payload: A::Payload,
        env: &mut Env<'_, '_, A>,
    ) {
        let (gid, view, relay) = (self.gid.0, self.view.view_id, self.in_relay);
        env.ctx.trace_with(|| TraceKind::CastDeliver {
            gid,
            view,
            msg: trace_key(&id),
            gseq,
            relay,
            vt: Vec::new(),
        });
        self.delivered_ids.insert(id);
        self.retained_total.insert(gseq, (id, payload.clone()));
        self.stab_dirty = true;
        env.effects.push(Effect::Deliver {
            gid: self.gid,
            from: id.sender,
            kind: CastKind::Total,
            payload,
        });
    }

    fn ack_if_wanted(&mut self, id: MsgId, want_ack: bool, env: &mut Env<'_, '_, A>) {
        if want_ack && id.sender != self.me {
            env.send(
                id.sender,
                IsisMsg::CastAck {
                    gid: self.gid,
                    id,
                },
            );
        }
    }

    fn try_deliver_causal(&mut self, env: &mut Env<'_, '_, A>) {
        loop {
            let idx = self
                .pending_causal
                .iter()
                .position(|pc| self.cvt.deliverable(pc.id.sender, &pc.vt));
            let Some(idx) = idx else { break };
            let pc = self.pending_causal.swap_remove(idx);
            self.cvt.set(pc.id.sender, pc.id.seq);
            self.deliver_causal_local(pc.id, pc.vt.clone(), pc.payload.clone(), env);
            self.ack_if_wanted(pc.id, pc.want_ack, env);
        }
    }

    fn try_deliver_fifo(&mut self, env: &mut Env<'_, '_, A>) {
        loop {
            let next = self.pending_fifo.iter().find_map(|((s, q), _)| {
                if self.fdel.get(*s) + 1 == *q {
                    Some((*s, *q))
                } else {
                    None
                }
            });
            let Some(key) = next else { break };
            let pc = self.pending_fifo.remove(&key).expect("key just found");
            self.fdel.set(pc.id.sender, pc.id.seq);
            self.deliver_fifo_local(pc.id, pc.payload.clone(), env);
            self.ack_if_wanted(pc.id, pc.want_ack, env);
        }
    }

    fn try_deliver_total(&mut self, env: &mut Env<'_, '_, A>) {
        loop {
            let next = self.adel + 1;
            let Some(&id) = self.aorder.get(&next) else {
                break;
            };
            let Some(pc) = self.adata.remove(&id) else {
                break; // Data still in flight.
            };
            self.aorder.remove(&next);
            self.adel = next;
            self.deliver_total_local(next, id, pc.payload.clone(), env);
            self.ack_if_wanted(pc.id, pc.want_ack, env);
        }
    }

    /// Sequencer: assigns the next global sequence to `id` and announces
    /// the decision.
    fn assign_order(&mut self, id: MsgId, env: &mut Env<'_, '_, A>) {
        if self.aseq_assigned.contains_key(&id) || self.delivered_ids.contains(&id) {
            return;
        }
        let gseq = self.next_gseq;
        self.next_gseq += 1;
        self.aseq_assigned.insert(id, gseq);
        self.aorder.insert(gseq, id);
        let msg = IsisMsg::AbcastOrder {
            gid: self.gid,
            view: self.view.view_id,
            gseq,
            id,
        };
        env.multicast(self.peers(), msg);
    }

    // ------------------------------------------------------------------
    // Stability and garbage collection
    // ------------------------------------------------------------------

    /// Prunes buffers of messages everyone has delivered.
    ///
    /// Runs on the data path (after every cast and heartbeat), so it is
    /// gated by `stab_dirty` — if no delivery, peer snapshot, or view has
    /// changed since the last completed pass, the floors below would come
    /// out identical and nothing new could be pruned — and the floors are
    /// computed into one flat per-member table instead of keyed maps.
    fn gc_stability(&mut self) {
        if !self.stab_dirty {
            return;
        }
        let vid = self.view.view_id;
        let members = &self.view.members;
        // Per-sender stable floors: the minimum of my own delivery vectors
        // and every peer's snapshot (valid only if it refers to the current
        // view — otherwise stability cannot be concluded yet and the pass
        // is abandoned, leaving the dirty flag set for the next attempt).
        let mut stable_c: Vec<u64> = members.iter().map(|&s| self.cvt.get(s)).collect();
        let mut stable_f: Vec<u64> = members.iter().map(|&s| self.fdel.get(s)).collect();
        let mut stable_a = self.adel;
        for &p in members.iter().filter(|&&p| p != self.me) {
            let sv = match self.stab_seen.get(&p) {
                Some(sv) if sv.view == vid => sv,
                _ => return,
            };
            for (k, &s) in members.iter().enumerate() {
                stable_c[k] = stable_c[k].min(sv.cvt.get(s));
                stable_f[k] = stable_f[k].min(sv.fvt.get(s));
            }
            stable_a = stable_a.min(sv.adel);
        }
        let floor = |table: &[u64], sender: Pid| -> u64 {
            members
                .iter()
                .position(|&m| m == sender)
                .map_or(0, |k| table[k])
        };

        self.retained_causal
            .retain(|id, _| id.view != vid || id.seq > floor(&stable_c, id.sender));
        self.retained_fifo
            .retain(|id, _| id.view != vid || id.seq > floor(&stable_f, id.sender));
        self.retained_total.retain(|gseq, _| *gseq > stable_a);
        self.aseq_assigned.retain(|_, gseq| *gseq > stable_a);
        self.delivered_ids.retain(|id| {
            if id.view != vid {
                return true; // Cross-view ids pruned below.
            }
            match id.stream {
                0 => id.seq > floor(&stable_c, id.sender),
                1 => id.seq > floor(&stable_f, id.sender),
                _ => true, // Total: keyed by gseq via retained_total; prune below.
            }
        });
        // Total-stream delivered ids: stable once their gseq is stable; we
        // no longer know the gseq after pruning retained_total, so prune by
        // the conservative rule "not in any live buffer and view is old".
        // (Every peer snapshot was checked against `vid` above.)
        self.retained_causal.retain(|id, _| id.view >= vid);
        self.retained_fifo.retain(|id, _| id.view >= vid);
        self.delivered_ids
            .retain(|id| id.view + 1 >= vid || id.stream == 2);
        self.ack_counts.retain(|id, _| id.view + 1 >= vid);
        self.stab_dirty = false;
    }

    /// Collects everything unstable for a flush ack (see
    /// [`crate::membership`]).
    pub(crate) fn collect_unstable(&self) -> crate::msg::RelaySet<A::Payload> {
        let mut r = crate::msg::RelaySet::default();
        for (id, (vt, p)) in &self.retained_causal {
            r.causal.push((*id, vt.clone(), p.clone()));
        }
        for pc in &self.pending_causal {
            r.causal.push((pc.id, pc.vt.clone(), pc.payload.clone()));
        }
        for (id, p) in &self.retained_fifo {
            r.fifo.push((*id, p.clone()));
        }
        for pc in self.pending_fifo.values() {
            r.fifo.push((pc.id, pc.payload.clone()));
        }
        for (gseq, (id, p)) in &self.retained_total {
            r.total_ordered.push((*gseq, *id, p.clone()));
        }
        // Undelivered abcast data: ordered if we know the order.
        let order_of: BTreeMap<MsgId, u64> =
            self.aorder.iter().map(|(g, id)| (*id, *g)).collect();
        for (id, pc) in &self.adata {
            if let Some(g) = order_of.get(id) {
                r.total_ordered.push((*g, *id, pc.payload.clone()));
            } else {
                r.total_unordered.push((*id, pc.payload.clone()));
            }
        }
        r
    }

    /// Applies a relay set (during a view change), delivering every message
    /// this member has not yet delivered, in a deterministic order that
    /// extends causality.
    pub(crate) fn apply_relay(
        &mut self,
        relay: &crate::msg::RelaySet<A::Payload>,
        env: &mut Env<'_, '_, A>,
    ) {
        self.in_relay = true;
        self.stab_dirty = true;
        // Causal: sort by (vt sum, sender, seq) — a linear extension of the
        // causal order (vt sums strictly increase along causal chains).
        let mut causal: Vec<&(MsgId, VClock, A::Payload)> = relay.causal.iter().collect();
        causal.sort_by_key(|(id, vt, _)| (vt.sum(), id.sender, id.seq));
        for (id, vt, p) in causal {
            if self.delivered_ids.contains(id) {
                continue;
            }
            if id.view == self.view.view_id {
                if id.seq <= self.cvt.get(id.sender) {
                    continue;
                }
                self.cvt.set(id.sender, id.seq);
                self.deliver_causal_local(*id, vt.clone(), p.clone(), env);
            } else {
                // Cross-view relay (leader crashed mid-install): deliver to
                // the application without touching current-view counters.
                env.ctx.bump("isis.relay.crossview");
                let (gid, view) = (self.gid.0, self.view.view_id);
                env.ctx.trace_with(|| TraceKind::CastDeliver {
                    gid,
                    view,
                    msg: trace_key(id),
                    gseq: 0,
                    relay: true,
                    vt: trace_vt(vt),
                });
                self.delivered_ids.insert(*id);
                env.effects.push(Effect::Deliver {
                    gid: self.gid,
                    from: id.sender,
                    kind: CastKind::Causal,
                    payload: p.clone(),
                });
            }
        }
        let mut fifo: Vec<&(MsgId, A::Payload)> = relay.fifo.iter().collect();
        fifo.sort_by_key(|(id, _)| (id.sender, id.seq));
        for (id, p) in fifo {
            if self.delivered_ids.contains(id) {
                continue;
            }
            if id.view == self.view.view_id {
                if id.seq <= self.fdel.get(id.sender) {
                    continue;
                }
                self.fdel.set(id.sender, id.seq);
                self.deliver_fifo_local(*id, p.clone(), env);
            } else {
                env.ctx.bump("isis.relay.crossview");
                let (gid, view) = (self.gid.0, self.view.view_id);
                env.ctx.trace_with(|| TraceKind::CastDeliver {
                    gid,
                    view,
                    msg: trace_key(id),
                    gseq: 0,
                    relay: true,
                    vt: Vec::new(),
                });
                self.delivered_ids.insert(*id);
                env.effects.push(Effect::Deliver {
                    gid: self.gid,
                    from: id.sender,
                    kind: CastKind::Fifo,
                    payload: p.clone(),
                });
            }
        }
        let mut total: Vec<&(u64, MsgId, A::Payload)> = relay.total_ordered.iter().collect();
        total.sort_by_key(|(g, _, _)| *g);
        for (gseq, id, p) in total {
            if self.delivered_ids.contains(id) {
                continue;
            }
            if id.view == self.view.view_id {
                if *gseq <= self.adel {
                    continue;
                }
                self.adel = *gseq;
                self.adata.remove(id);
                self.aorder.remove(gseq);
                self.deliver_total_local(*gseq, *id, p.clone(), env);
            } else {
                env.ctx.bump("isis.relay.crossview");
                let (gid, view) = (self.gid.0, self.view.view_id);
                env.ctx.trace_with(|| TraceKind::CastDeliver {
                    gid,
                    view,
                    msg: trace_key(id),
                    gseq: *gseq,
                    relay: true,
                    vt: Vec::new(),
                });
                self.delivered_ids.insert(*id);
                env.effects.push(Effect::Deliver {
                    gid: self.gid,
                    from: id.sender,
                    kind: CastKind::Total,
                    payload: p.clone(),
                });
            }
        }
        debug_assert!(
            relay.total_unordered.is_empty(),
            "install relays carry only ordered totals"
        );
        self.in_relay = false;
    }

    /// Resets per-view protocol state after installing `view`.
    pub(crate) fn install(&mut self, view: GroupView, now: SimTime) {
        debug_assert!(view.view_id > self.view.view_id);
        self.view = view;
        self.stab_dirty = true;
        self.status = Status::Normal;
        self.seqs = [0; 3];
        self.cvt = VClock::new();
        self.fdel = VClock::new();
        self.adel = 0;
        self.pending_causal.clear();
        self.pending_fifo.clear();
        self.adata.clear();
        self.aorder.clear();
        self.aseq_assigned.clear();
        self.next_gseq = 1;
        // Retained buffers and delivered ids survive one view change, in
        // case the flush leader died mid-install; gc_stability prunes them
        // once everyone confirms the new view.
        self.stab_seen.clear();
        self.suspects.clear();
        self.vc = None;
        self.flush_acked = (0, 0);
        self.pending_joiners.clear();
        self.pending_leavers.clear();
        self.reset_liveness(now);
    }

    /// Estimated bytes of membership-related state held by this member —
    /// the quantity the paper's hierarchy bounds (experiment E7).
    pub fn membership_storage_bytes(&self) -> usize {
        self.view.storage_bytes()
            + self
                .stab_seen
                .values()
                .map(StabilityVector::wire_bytes)
                .sum::<usize>()
            + self.last_heard.len() * 12
            + self.suspects.len() * 4
            + self.cvt.storage_bytes()
            + self.fdel.storage_bytes()
    }

    /// Number of messages currently buffered for potential relay.
    pub fn relay_buffer_len(&self) -> usize {
        self.retained_causal.len()
            + self.retained_fifo.len()
            + self.retained_total.len()
            + self.pending_causal.len()
            + self.pending_fifo.len()
            + self.adata.len()
    }

    /// Exposes the heartbeat deadline logic to the process tick.
    pub(crate) fn maybe_heartbeat(&mut self, env: &mut Env<'_, '_, A>) {
        if !env.cfg.heartbeats_enabled || self.status == Status::Stalled {
            return;
        }
        let now = env.now();
        if now.since(self.last_hb_sent) < env.cfg.heartbeat {
            return;
        }
        self.last_hb_sent = now;
        let stab = self.my_stab();
        env.multicast(
            self.peers(),
            IsisMsg::Heartbeat {
                gid: self.gid,
                stab,
            },
        );
    }
}
