//! View changes: GBCAST realised as a flush protocol.
//!
//! Membership changes (joins, leaves, failures) are ordered with respect to
//! every broadcast by *wedging* the group, collecting each survivor's
//! unstable messages, re-delivering the union everywhere, and only then
//! installing the new view. The result is the virtual synchrony property:
//! all members that survive a view change have delivered exactly the same
//! set of messages in the old view.
//!
//! The leader of a view change is the oldest non-suspected member. Leader
//! failure during the protocol is tolerated: the next-oldest survivor
//! restarts with a higher attempt number, and members always ack the
//! highest attempt they have seen for the highest target view.

use now_sim::trace::EventKind as TraceKind;
use now_sim::Pid;

use crate::app::Application;
use crate::group::{Effect, Env, GroupRuntime, Status, ViewChangeLead};
use crate::msg::{IsisMsg, RelaySet, StabilityVector};
use crate::types::{GroupView, MsgId, ViewId};
use crate::vclock::VClock;

impl<A: Application> GroupRuntime<A> {
    /// Central dispatch for all group-addressed protocol messages.
    pub(crate) fn dispatch(&mut self, from: Pid, msg: crate::app::MsgOf<A>, env: &mut Env<'_, '_, A>) {
        match msg {
            IsisMsg::Cast(data) => {
                if !self.handle_cast(from, data.clone(), env) {
                    self.future_inbox.push((from, IsisMsg::Cast(data)));
                }
            }
            IsisMsg::AbcastOrder {
                gid,
                view,
                gseq,
                id,
            } => {
                if !self.handle_order(from, view, gseq, id, env) {
                    self.future_inbox
                        .push((from, IsisMsg::AbcastOrder { gid, view, gseq, id }));
                }
            }
            IsisMsg::CastAck { id, .. } => self.handle_cast_ack(from, id, env),
            IsisMsg::Heartbeat { stab, .. } => self.handle_heartbeat(from, stab, env),
            IsisMsg::Flush {
                attempt, proposal, ..
            } => self.handle_flush(from, attempt, proposal, env),
            IsisMsg::FlushAck {
                attempt,
                member_view,
                stab,
                buffers,
                ..
            } => self.handle_flush_ack(from, attempt, member_view, stab, buffers, env),
            IsisMsg::InstallView {
                attempt,
                view,
                relay,
                ..
            } => self.handle_install(from, attempt, view, relay, env),
            IsisMsg::SuspectReport { suspect, .. } => {
                self.heard_from(from, env.now());
                self.note_suspect(suspect, env);
            }
            IsisMsg::JoinReq { .. } => self.handle_join_req(from, env),
            IsisMsg::JoinForward { joiner, .. } => {
                self.heard_from(from, env.now());
                self.handle_join_forward(joiner, env);
            }
            IsisMsg::LeaveReq { .. } => {
                self.heard_from(from, env.now());
                self.handle_leave_req(from, env);
            }
            IsisMsg::JoinDenied { .. } | IsisMsg::Direct(_) => {
                unreachable!("handled by the process layer")
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure suspicion
    // ------------------------------------------------------------------

    /// Registers a failure suspicion and reacts: lead a view change if this
    /// member is the oldest survivor, otherwise report to whoever is.
    pub(crate) fn note_suspect(&mut self, suspect: Pid, env: &mut Env<'_, '_, A>) {
        if suspect == self.me || !self.view.contains(suspect) {
            return;
        }
        let newly = self.suspects.insert(suspect);
        if !newly {
            return;
        }
        env.ctx.bump("isis.suspicions");
        self.act_on_pending_changes(env);
    }

    /// Drives the failure detector from the housekeeping tick.
    pub(crate) fn check_fd(&mut self, env: &mut Env<'_, '_, A>) {
        if !env.cfg.heartbeats_enabled || self.status == Status::Stalled {
            return;
        }
        let now = env.now();
        let timeout = env.cfg.fd_timeout;
        let overdue: Vec<Pid> = self
            .last_heard
            .iter()
            .filter(|(p, &t)| now.since(t) > timeout && !self.suspects.contains(p))
            .map(|(&p, _)| p)
            .collect();
        for p in overdue {
            self.note_suspect(p, env);
        }
    }

    // ------------------------------------------------------------------
    // Joins and leaves
    // ------------------------------------------------------------------

    /// A non-member asked this member to be admitted.
    pub(crate) fn handle_join_req(&mut self, joiner: Pid, env: &mut Env<'_, '_, A>) {
        if self.leader() == self.me {
            self.handle_join_forward(joiner, env);
        } else {
            let leader = self.leader();
            env.send(
                leader,
                IsisMsg::JoinForward {
                    gid: self.gid,
                    joiner,
                },
            );
        }
    }

    /// The leader queues an admission.
    pub(crate) fn handle_join_forward(&mut self, joiner: Pid, env: &mut Env<'_, '_, A>) {
        if self.view.contains(joiner) {
            // The joiner may have missed its install; re-send it with fresh
            // state so joins are idempotent.
            env.effects.push(Effect::SendJoinerInstalls {
                gid: self.gid,
                attempt: self.flush_acked.1,
                view: self.view.clone(),
                joiners: vec![joiner],
            });
            return;
        }
        if self.leader() != self.me {
            let leader = self.leader();
            env.send(
                leader,
                IsisMsg::JoinForward {
                    gid: self.gid,
                    joiner,
                },
            );
            return;
        }
        if !self.pending_joiners.contains(&joiner) {
            self.pending_joiners.push(joiner);
        }
        self.act_on_pending_changes(env);
    }

    /// This member wants out.
    pub(crate) fn request_leave(&mut self, env: &mut Env<'_, '_, A>) {
        if self.view.size() == 1 {
            env.effects.push(Effect::Left { gid: self.gid });
            env.effects.push(Effect::DropGroup { gid: self.gid });
            return;
        }
        self.leaving = true;
        if self.leader() == self.me {
            if !self.pending_leavers.contains(&self.me) {
                self.pending_leavers.push(self.me);
            }
            self.act_on_pending_changes(env);
        } else {
            let leader = self.leader();
            env.send(leader, IsisMsg::LeaveReq { gid: self.gid });
        }
    }

    /// The leader queues a departure.
    pub(crate) fn handle_leave_req(&mut self, leaver: Pid, env: &mut Env<'_, '_, A>) {
        if !self.view.contains(leaver) {
            return;
        }
        if !self.pending_leavers.contains(&leaver) {
            self.pending_leavers.push(leaver);
        }
        self.act_on_pending_changes(env);
    }

    /// The oldest non-suspected member.
    pub(crate) fn leader(&self) -> Pid {
        self.survivors().first().copied().unwrap_or(self.me)
    }

    // ------------------------------------------------------------------
    // The flush protocol
    // ------------------------------------------------------------------

    /// Starts or restarts a view change if there are pending membership
    /// changes and this member should lead; reports to the leader
    /// otherwise.
    pub(crate) fn act_on_pending_changes(&mut self, env: &mut Env<'_, '_, A>) {
        if self.status == Status::Stalled {
            return;
        }
        let has_changes = !self.suspects.is_empty()
            || !self.pending_joiners.is_empty()
            || !self.pending_leavers.is_empty();
        if !has_changes {
            return;
        }
        if self.leader() != self.me {
            // Forward suspicions so the leader learns what we know.
            let leader = self.leader();
            for s in self.suspects.clone() {
                env.send(
                    leader,
                    IsisMsg::SuspectReport {
                        gid: self.gid,
                        suspect: s,
                    },
                );
            }
            return;
        }
        match &self.vc {
            None => self.start_flush(1, env),
            Some(vc) => {
                // Restart only if the world changed under the running
                // attempt (new suspects among its participants, or new
                // joiners/leavers not reflected in its proposal).
                let stale = vc
                    .participants
                    .iter()
                    .any(|p| self.suspects.contains(p))
                    || self
                        .pending_joiners
                        .iter()
                        .any(|j| !vc.proposal.contains(*j))
                    || self
                        .pending_leavers
                        .iter()
                        .any(|l| vc.proposal.contains(*l));
                if stale {
                    let round = vc.retry_round + 1;
                    self.start_flush(round, env);
                }
            }
        }
    }

    fn start_flush(&mut self, retry_round: u64, env: &mut Env<'_, '_, A>) {
        let mut leaving: Vec<Pid> = self.suspects.iter().copied().collect();
        for &l in &self.pending_leavers {
            if !leaving.contains(&l) {
                leaving.push(l);
            }
        }
        let joining: Vec<Pid> = self
            .pending_joiners
            .iter()
            .copied()
            .filter(|j| !self.view.contains(*j))
            .collect();
        let base_view = self
            .vc
            .as_ref()
            .map(|vc| vc.max_member_view)
            .unwrap_or(self.view.view_id)
            .max(self.view.view_id);
        let mut proposal = self.view.successor(&leaving, &joining);
        proposal.view_id = base_view + 1;

        if env.cfg.partition_safety && !proposal.is_majority_of(&self.view) {
            self.status = Status::Stalled;
            self.vc = None;
            env.ctx.bump("isis.stalls");
            env.effects.push(Effect::Stall { gid: self.gid });
            return;
        }

        let participants = self.survivors();
        let my_rank = self.view.rank_of(self.me).unwrap_or(0) as u64;
        let attempt = (retry_round << 8) | my_rank;
        self.status = Status::Wedged;
        self.flush_acked = (proposal.view_id, attempt);
        let mut vc = ViewChangeLead {
            attempt,
            retry_round,
            proposal: proposal.clone(),
            participants: participants.clone(),
            acks: Default::default(),
            max_member_view: self.view.view_id,
            max_ack_floor: self.my_stab().adel,
            started: env.now(),
        };
        vc.acks.insert(self.me, self.collect_unstable());
        self.vc = Some(vc);
        env.ctx.bump("isis.flushes_started");
        let (tgid, tview) = (self.gid.0, proposal.view_id);
        env.ctx
            .trace_with(|| TraceKind::FlushBegin { gid: tgid, attempt, proposal: tview });
        for p in participants.iter().filter(|&&p| p != self.me) {
            env.send(
                *p,
                IsisMsg::Flush {
                    gid: self.gid,
                    attempt,
                    proposal: proposal.clone(),
                },
            );
        }
        self.maybe_complete_flush(env);
    }

    /// A member receives a flush request: wedge and report buffers.
    pub(crate) fn handle_flush(
        &mut self,
        from: Pid,
        attempt: u64,
        proposal: GroupView,
        env: &mut Env<'_, '_, A>,
    ) {
        self.heard_from(from, env.now());
        if proposal.view_id <= self.view.view_id {
            // Stale: the proposer is behind. If it is no longer a member,
            // tell it so it can clean up (courtesy install).
            if !self.view.contains(from) {
                env.send(
                    from,
                    IsisMsg::InstallView {
                        gid: self.gid,
                        attempt: self.flush_acked.1,
                        view: self.view.clone(),
                        relay: RelaySet::default(),
                        state: None,
                        floor: None,
                    },
                );
            }
            return;
        }
        let (acked_view, acked_attempt) = self.flush_acked;
        let accept = proposal.view_id > acked_view
            || (proposal.view_id == acked_view && attempt >= acked_attempt);
        if !accept {
            return;
        }
        // Yield our own leadership bid to a higher attempt.
        if let Some(vc) = &self.vc {
            if attempt > vc.attempt {
                self.vc = None;
            } else {
                return; // Our bid outranks theirs; they will yield to us.
            }
        }
        self.status = Status::Wedged;
        self.flush_acked = (proposal.view_id, attempt);
        env.send(
            from,
            IsisMsg::FlushAck {
                gid: self.gid,
                attempt,
                member_view: self.view.view_id,
                stab: self.my_stab(),
                buffers: self.collect_unstable(),
            },
        );
    }

    /// The leader collects a flush ack.
    pub(crate) fn handle_flush_ack(
        &mut self,
        from: Pid,
        attempt: u64,
        member_view: ViewId,
        stab: StabilityVector,
        buffers: RelaySet<A::Payload>,
        env: &mut Env<'_, '_, A>,
    ) {
        self.heard_from(from, env.now());
        let Some(vc) = &mut self.vc else { return };
        if attempt != vc.attempt {
            return;
        }
        vc.max_member_view = vc.max_member_view.max(member_view);
        vc.max_ack_floor = vc.max_ack_floor.max(stab.adel);
        vc.acks.insert(from, buffers);
        let round = vc.retry_round + 1;
        if member_view >= vc.proposal.view_id {
            // Someone is already past our target view; pick a fresh one.
            self.start_flush(round, env);
            return;
        }
        self.maybe_complete_flush(env);
    }

    fn maybe_complete_flush(&mut self, env: &mut Env<'_, '_, A>) {
        let Some(vc) = &self.vc else { return };
        let all_acked = vc
            .participants
            .iter()
            .all(|p| vc.acks.contains_key(p) || self.suspects.contains(p));
        if !all_acked {
            return;
        }
        self.complete_flush(env);
    }

    /// All survivors acked: merge buffers, deliver the union locally, send
    /// installs, and install.
    fn complete_flush(&mut self, env: &mut Env<'_, '_, A>) {
        let vc = self.vc.take().expect("complete_flush without a lead");
        let mut causal: std::collections::BTreeMap<MsgId, (VClock, A::Payload)> =
            Default::default();
        let mut fifo: std::collections::BTreeMap<MsgId, A::Payload> = Default::default();
        let mut ordered: std::collections::BTreeMap<u64, (MsgId, A::Payload)> = Default::default();
        let mut unordered: std::collections::BTreeMap<MsgId, A::Payload> = Default::default();
        for (_, buf) in vc.acks.iter() {
            for (id, vt, p) in &buf.causal {
                causal.entry(*id).or_insert_with(|| (vt.clone(), p.clone()));
            }
            for (id, p) in &buf.fifo {
                fifo.entry(*id).or_insert_with(|| p.clone());
            }
            for (g, id, p) in &buf.total_ordered {
                ordered.entry(*g).or_insert_with(|| (*id, p.clone()));
            }
            for (id, p) in &buf.total_unordered {
                unordered.entry(*id).or_insert_with(|| p.clone());
            }
        }
        // Drop unordered entries that did get an order somewhere.
        let ordered_ids: std::collections::BTreeSet<MsgId> =
            ordered.values().map(|(id, _)| *id).collect();
        // Assign final positions to orphaned ABCASTs, above every floor.
        let mut next = ordered
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
            .max(vc.max_ack_floor)
            + 1;
        for (id, p) in unordered {
            if ordered_ids.contains(&id) {
                continue;
            }
            ordered.insert(next, (id, p));
            next += 1;
        }
        let relay = RelaySet {
            causal: causal
                .into_iter()
                .map(|(id, (vt, p))| (id, vt, p))
                .collect(),
            fifo: fifo.into_iter().collect(),
            total_ordered: ordered
                .into_iter()
                .map(|(g, (id, p))| (g, id, p))
                .collect(),
            total_unordered: Vec::new(),
        };

        env.ctx.bump("isis.flushes_completed");

        // Deliver the union locally before installing.
        self.apply_relay(&relay, env);

        // Send installs to every old-view participant (including excluded
        // leavers, so they learn their exclusion).
        for p in vc.participants.iter().filter(|&&p| p != self.me) {
            env.send(
                *p,
                IsisMsg::InstallView {
                    gid: self.gid,
                    attempt: vc.attempt,
                    view: vc.proposal.clone(),
                    relay: relay.clone(),
                    state: None,
                    floor: None,
                },
            );
        }
        // Joiners get state-bearing installs once the application has been
        // brought up to date (process layer consults the app).
        let joiners: Vec<Pid> = vc
            .proposal
            .members
            .iter()
            .copied()
            .filter(|m| !self.view.contains(*m))
            .collect();

        let i_stay = vc.proposal.contains(self.me);
        if i_stay {
            self.finish_install(vc.proposal.clone(), env);
        }
        if !joiners.is_empty() {
            env.effects.push(Effect::SendJoinerInstalls {
                gid: self.gid,
                attempt: vc.attempt,
                view: vc.proposal.clone(),
                joiners,
            });
        }
        if !i_stay {
            env.effects.push(Effect::Left { gid: self.gid });
            env.effects.push(Effect::DropGroup { gid: self.gid });
        }
    }

    /// A member receives an install: deliver the relay, then switch views.
    pub(crate) fn handle_install(
        &mut self,
        from: Pid,
        _attempt: u64,
        view: GroupView,
        relay: RelaySet<A::Payload>,
        env: &mut Env<'_, '_, A>,
    ) {
        self.heard_from(from, env.now());
        if view.view_id <= self.view.view_id {
            return;
        }
        self.apply_relay(&relay, env);
        if !view.contains(self.me) {
            env.effects.push(Effect::Left { gid: self.gid });
            env.effects.push(Effect::DropGroup { gid: self.gid });
            return;
        }
        self.finish_install(view, env);
    }

    /// Installs `view` locally, emits the view event, and flushes buffered
    /// work into the new view.
    fn finish_install(&mut self, view: GroupView, env: &mut Env<'_, '_, A>) {
        self.install(view.clone(), env.now());
        env.ctx.bump("isis.views_installed");
        env.effects.push(Effect::View {
            view,
            joined: false,
        });
        // Casts buffered while wedged go out in the new view.
        let outbox = std::mem::take(&mut self.wedged_outbox);
        for (kind, payload, want_ack) in outbox {
            // Cannot fail: status is Normal after install.
            let _ = self.cast(kind, payload, want_ack, env);
        }
        // Messages that raced ahead of the install can now be processed.
        let future = std::mem::take(&mut self.future_inbox);
        for (f, m) in future {
            self.dispatch(f, m, env);
        }
    }

    /// Housekeeping driven by the process tick: flush retries and stalled
    /// leadership handover.
    pub(crate) fn tick_membership(&mut self, env: &mut Env<'_, '_, A>) {
        self.check_fd(env);
        let now = env.now();
        let retry = if let Some(vc) = &self.vc {
            now.since(vc.started) > env.cfg.flush_retry
        } else {
            false
        };
        if retry {
            let round = self.vc.as_ref().expect("checked above").retry_round + 1;
            env.ctx.bump("isis.flush_retries");
            self.start_flush(round, env);
        } else {
            self.act_on_pending_changes(env);
        }
    }

}
