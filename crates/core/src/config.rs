//! Tunables of the ISIS runtime.

use now_sim::SimDuration;

/// Configuration of one ISIS process.
///
/// Defaults model the paper's environment: a LAN where heartbeats every
/// 200 ms and a 1 s failure-detection timeout give sub-second membership
/// reaction without drowning the network.
#[derive(Clone, Debug)]
pub struct IsisConfig {
    /// Internal housekeeping tick driving heartbeats, failure detection,
    /// flush retries, and join retries.
    pub tick: SimDuration,
    /// Interval between liveness/stability heartbeats to group peers.
    pub heartbeat: SimDuration,
    /// Silence threshold after which a peer is suspected to have failed.
    pub fd_timeout: SimDuration,
    /// How long a view-change leader waits for flush acks before retrying.
    pub flush_retry: SimDuration,
    /// How long a joiner waits for a view before re-sending its join
    /// request.
    pub join_retry: SimDuration,
    /// When `true`, a new view must contain a strict majority of the
    /// previous view (primary-partition rule); minority survivors stall
    /// instead of splitting the group. When `false`, the failure detector
    /// is trusted (crash-only environments).
    pub partition_safety: bool,
    /// Master switch for heartbeats; experiments that count protocol
    /// messages under a microscope can turn them off and drive membership
    /// changes explicitly.
    pub heartbeats_enabled: bool,
}

impl Default for IsisConfig {
    fn default() -> IsisConfig {
        IsisConfig {
            tick: SimDuration::from_millis(50),
            heartbeat: SimDuration::from_millis(200),
            fd_timeout: SimDuration::from_millis(1_000),
            flush_retry: SimDuration::from_millis(500),
            join_retry: SimDuration::from_millis(1_000),
            partition_safety: false,
            heartbeats_enabled: true,
        }
    }
}

impl IsisConfig {
    /// A configuration with no background traffic: heartbeats off, so the
    /// only messages on the wire are the ones the experiment sends.
    /// Failures must then be reported explicitly by the harness.
    pub fn quiet() -> IsisConfig {
        IsisConfig {
            heartbeats_enabled: false,
            ..IsisConfig::default()
        }
    }

    /// A configuration with the primary-partition rule enabled.
    pub fn partition_safe() -> IsisConfig {
        IsisConfig {
            partition_safety: true,
            ..IsisConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = IsisConfig::default();
        assert!(c.fd_timeout > c.heartbeat * 3, "FD must outlast several heartbeats");
        assert!(c.tick < c.heartbeat);
        assert!(c.heartbeats_enabled);
        assert!(!c.partition_safety);
    }

    #[test]
    fn quiet_disables_heartbeats_only() {
        let c = IsisConfig::quiet();
        assert!(!c.heartbeats_enabled);
        assert_eq!(c.fd_timeout, IsisConfig::default().fd_timeout);
    }

    #[test]
    fn partition_safe_sets_flag() {
        assert!(IsisConfig::partition_safe().partition_safety);
    }
}
