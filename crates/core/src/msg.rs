//! The wire messages of the ISIS protocol stack.
//!
//! One enum covers membership (join/leave/flush/install), data casts,
//! liveness, and application-direct traffic, so a single simulated process
//! type can run the whole stack. Every send is classified by
//! [`IsisMsg::category`] into a named counter, letting experiments report
//! protocol overhead per message class.

use now_sim::Pid;

use crate::types::{CastKind, GroupId, GroupView, MsgId, ViewId};
use crate::vclock::VClock;

/// Per-stream delivery progress, piggybacked on casts and heartbeats.
///
/// Stability ("everyone has delivered it") is computed as the pointwise
/// minimum of these vectors over the current view; stable messages are
/// garbage-collected from retransmission buffers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StabilityVector {
    /// View these counters refer to (they reset at each view change).
    pub view: ViewId,
    /// Delivered causal casts per sender.
    pub cvt: VClock,
    /// Delivered FIFO casts per sender.
    pub fvt: VClock,
    /// Highest contiguously delivered ABCAST global sequence number.
    pub adel: u64,
}

impl StabilityVector {
    /// Estimated wire bytes.
    pub fn wire_bytes(&self) -> usize {
        16 + self.cvt.storage_bytes() + self.fvt.storage_bytes()
    }
}

/// A data broadcast within a group.
#[derive(Clone, Debug)]
pub struct CastData<P> {
    /// Destination group.
    pub gid: GroupId,
    /// View in which the sender initiated the cast.
    pub view: ViewId,
    /// Ordering discipline.
    pub kind: CastKind,
    /// Unique id; `id.seq` is the per-stream sender sequence number.
    pub id: MsgId,
    /// Causal timestamp (meaningful for [`CastKind::Causal`]; zero
    /// otherwise).
    pub vt: VClock,
    /// Sender's delivery progress, for stability tracking.
    pub stab: StabilityVector,
    /// Whether receivers should send a [`IsisMsg::CastAck`] on delivery.
    pub want_ack: bool,
    /// Application payload.
    pub payload: P,
}

/// Messages carried forward across a view change so that every survivor
/// delivers the same set ("virtual synchrony").
#[derive(Clone, Debug)]
pub struct RelaySet<P> {
    /// Causal casts: `(id, vt, payload)`.
    pub causal: Vec<(MsgId, VClock, P)>,
    /// FIFO casts: `(id, payload)`.
    pub fifo: Vec<(MsgId, P)>,
    /// Total-order casts whose global sequence is known:
    /// `(gseq, id, payload)`.
    pub total_ordered: Vec<(u64, MsgId, P)>,
    /// Total-order casts received but never sequenced (their sequencer
    /// failed); the view-change leader assigns them final positions.
    pub total_unordered: Vec<(MsgId, P)>,
}

impl<P> Default for RelaySet<P> {
    fn default() -> RelaySet<P> {
        RelaySet {
            causal: Vec::new(),
            fifo: Vec::new(),
            total_ordered: Vec::new(),
            total_unordered: Vec::new(),
        }
    }
}

impl<P> RelaySet<P> {
    /// Total number of messages carried.
    pub fn len(&self) -> usize {
        self.causal.len() + self.fifo.len() + self.total_ordered.len() + self.total_unordered.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The donor's delivery progress at the instant a joiner's state snapshot
/// was exported.
///
/// A joiner admitted mid-view (a restart the group never noticed, or a
/// first join whose install was lost and re-sent) receives application
/// state that already reflects every message the donor delivered. Its
/// runtime must therefore start at the same cut: with these floors
/// installed, flush relays and retransmissions of snapshot-covered
/// messages are recognized as delivered instead of being applied a second
/// time on top of their own effects.
#[derive(Clone, Debug, Default)]
pub struct DeliveryFloor {
    /// Delivered causal casts per sender.
    pub cvt: VClock,
    /// Delivered FIFO casts per sender.
    pub fdel: VClock,
    /// Highest contiguously delivered ABCAST global sequence.
    pub adel: u64,
    /// Delivered-but-not-yet-stable ids (dedups cross-view relays, which
    /// bypass the per-view floors above). Sorted; bounded by the donor's
    /// retransmission buffers.
    pub delivered: Vec<MsgId>,
}

impl DeliveryFloor {
    /// Estimated wire bytes.
    pub fn wire_bytes(&self) -> usize {
        16 + self.cvt.storage_bytes() + self.fdel.storage_bytes() + self.delivered.len() * 16
    }
}

/// Every message exchanged by [`crate::process::IsisProcess`] instances.
///
/// `P` is the application payload type, `S` the application state-transfer
/// type.
#[derive(Clone, Debug)]
pub enum IsisMsg<P, S> {
    // ------------------------------------------------------ membership --
    /// A non-member asks `contact` to be admitted to `gid`.
    JoinReq { gid: GroupId },
    /// A member forwards a join request to the group coordinator.
    JoinForward { gid: GroupId, joiner: Pid },
    /// The contacted process does not know the group.
    JoinDenied { gid: GroupId },
    /// A member announces it wants to leave.
    LeaveReq { gid: GroupId },
    /// A member tells the (would-be) view-change leader about a suspected
    /// failure.
    SuspectReport { gid: GroupId, suspect: Pid },
    /// Phase 1 of GBCAST: the leader proposes a view and asks members to
    /// wedge and report unstable messages.
    Flush {
        gid: GroupId,
        attempt: u64,
        proposal: GroupView,
    },
    /// Phase 1 reply: the member's unstable buffers and current view id.
    FlushAck {
        gid: GroupId,
        attempt: u64,
        member_view: ViewId,
        /// The member's delivery progress (the leader needs `adel` floors
        /// when assigning final order to orphaned ABCASTs).
        stab: StabilityVector,
        buffers: RelaySet<P>,
    },
    /// Phase 2 of GBCAST: deliver the relay, then install the view.
    InstallView {
        gid: GroupId,
        attempt: u64,
        view: GroupView,
        relay: RelaySet<P>,
        /// Application state for joining members (None for old members).
        state: Option<S>,
        /// The delivery cut `state` was exported at (None for old
        /// members, who track their own floors).
        floor: Option<DeliveryFloor>,
    },

    // ------------------------------------------------------------ data --
    /// A broadcast data message.
    Cast(CastData<P>),
    /// The ABCAST sequencer's ordering decision for one message.
    AbcastOrder {
        gid: GroupId,
        view: ViewId,
        gseq: u64,
        id: MsgId,
    },
    /// Optional per-cast delivery acknowledgement (used by resiliency-
    /// bounded operations, cf. the paper's `resiliency` definition).
    CastAck { gid: GroupId, id: MsgId },

    // -------------------------------------------------------- liveness --
    /// Periodic liveness + stability beacon.
    Heartbeat { gid: GroupId, stab: StabilityVector },

    // ------------------------------------------------------------- app --
    /// Point-to-point application message (client/server traffic).
    Direct(P),
}

impl<P, S> IsisMsg<P, S> {
    /// Classifies the message for per-category send counters.
    pub fn category(&self) -> &'static str {
        match self {
            IsisMsg::JoinReq { .. } => "join_req",
            IsisMsg::JoinForward { .. } => "join_fwd",
            IsisMsg::JoinDenied { .. } => "join_denied",
            IsisMsg::LeaveReq { .. } => "leave_req",
            IsisMsg::SuspectReport { .. } => "suspect",
            IsisMsg::Flush { .. } => "flush",
            IsisMsg::FlushAck { .. } => "flush_ack",
            IsisMsg::InstallView { .. } => "install",
            IsisMsg::Cast(c) => match c.kind {
                CastKind::Fifo => "cast_fifo",
                CastKind::Causal => "cast_causal",
                CastKind::Total => "cast_total",
            },
            IsisMsg::AbcastOrder { .. } => "abcast_order",
            IsisMsg::CastAck { .. } => "cast_ack",
            IsisMsg::Heartbeat { .. } => "heartbeat",
            IsisMsg::Direct(_) => "direct",
        }
    }

    /// Dense category index (same order as [`IsisMsg::category`] names),
    /// used to pick the interned per-category send counter without string
    /// comparisons on the hot path.
    pub fn category_index(&self) -> usize {
        match self {
            IsisMsg::JoinReq { .. } => 0,
            IsisMsg::JoinForward { .. } => 1,
            IsisMsg::JoinDenied { .. } => 2,
            IsisMsg::LeaveReq { .. } => 3,
            IsisMsg::SuspectReport { .. } => 4,
            IsisMsg::Flush { .. } => 5,
            IsisMsg::FlushAck { .. } => 6,
            IsisMsg::InstallView { .. } => 7,
            IsisMsg::Cast(c) => match c.kind {
                CastKind::Fifo => 8,
                CastKind::Causal => 9,
                CastKind::Total => 10,
            },
            IsisMsg::AbcastOrder { .. } => 11,
            IsisMsg::CastAck { .. } => 12,
            IsisMsg::Heartbeat { .. } => 13,
            IsisMsg::Direct(_) => 14,
        }
    }

    /// The group this message concerns, if any.
    pub fn group(&self) -> Option<GroupId> {
        match self {
            IsisMsg::JoinReq { gid }
            | IsisMsg::JoinForward { gid, .. }
            | IsisMsg::JoinDenied { gid }
            | IsisMsg::LeaveReq { gid }
            | IsisMsg::SuspectReport { gid, .. }
            | IsisMsg::Flush { gid, .. }
            | IsisMsg::FlushAck { gid, .. }
            | IsisMsg::InstallView { gid, .. }
            | IsisMsg::AbcastOrder { gid, .. }
            | IsisMsg::CastAck { gid, .. }
            | IsisMsg::Heartbeat { gid, .. } => Some(*gid),
            IsisMsg::Cast(c) => Some(c.gid),
            IsisMsg::Direct(_) => None,
        }
    }

    /// Estimated wire size, given a payload sizing function.
    pub fn wire_bytes(&self, payload_bytes: impl Fn(&P) -> usize, state_bytes: usize) -> usize {
        const HDR: usize = 24;
        HDR + match self {
            IsisMsg::JoinReq { .. }
            | IsisMsg::JoinDenied { .. }
            | IsisMsg::LeaveReq { .. } => 8,
            IsisMsg::JoinForward { .. } | IsisMsg::SuspectReport { .. } => 12,
            IsisMsg::Flush { proposal, .. } => 16 + proposal.storage_bytes(),
            IsisMsg::FlushAck { buffers, .. } => {
                24 + buffers.len() * 32
                    + buffers.causal.iter().map(|(_, _, p)| payload_bytes(p)).sum::<usize>()
                    + buffers.fifo.iter().map(|(_, p)| payload_bytes(p)).sum::<usize>()
                    + buffers
                        .total_ordered
                        .iter()
                        .map(|(_, _, p)| payload_bytes(p))
                        .sum::<usize>()
                    + buffers
                        .total_unordered
                        .iter()
                        .map(|(_, p)| payload_bytes(p))
                        .sum::<usize>()
            }
            IsisMsg::InstallView { view, relay, state, floor, .. } => {
                16 + view.storage_bytes()
                    + relay.len() * 32
                    + relay.causal.iter().map(|(_, _, p)| payload_bytes(p)).sum::<usize>()
                    + relay.fifo.iter().map(|(_, p)| payload_bytes(p)).sum::<usize>()
                    + relay
                        .total_ordered
                        .iter()
                        .map(|(_, _, p)| payload_bytes(p))
                        .sum::<usize>()
                    + relay
                        .total_unordered
                        .iter()
                        .map(|(_, p)| payload_bytes(p))
                        .sum::<usize>()
                    + if state.is_some() { state_bytes } else { 0 }
                    + floor.as_ref().map_or(0, DeliveryFloor::wire_bytes)
            }
            IsisMsg::Cast(c) => {
                32 + c.vt.storage_bytes() + c.stab.wire_bytes() + payload_bytes(&c.payload)
            }
            IsisMsg::AbcastOrder { .. } => 32,
            IsisMsg::CastAck { .. } => 24,
            IsisMsg::Heartbeat { stab, .. } => 8 + stab.wire_bytes(),
            IsisMsg::Direct(p) => payload_bytes(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = IsisMsg<u32, ()>;

    fn cast(kind: CastKind) -> M {
        IsisMsg::Cast(CastData {
            gid: GroupId(1),
            view: 1,
            kind,
            id: MsgId {
                sender: Pid(0),
                view: 1,
                stream: kind.stream(),
                seq: 1,
            },
            vt: VClock::new(),
            stab: StabilityVector::default(),
            want_ack: false,
            payload: 7,
        })
    }

    #[test]
    fn categories_distinguish_cast_kinds() {
        assert_eq!(cast(CastKind::Causal).category(), "cast_causal");
        assert_eq!(cast(CastKind::Total).category(), "cast_total");
        assert_eq!(cast(CastKind::Fifo).category(), "cast_fifo");
        let hb: M = IsisMsg::Heartbeat {
            gid: GroupId(1),
            stab: StabilityVector::default(),
        };
        assert_eq!(hb.category(), "heartbeat");
    }

    #[test]
    fn group_extraction() {
        assert_eq!(cast(CastKind::Fifo).group(), Some(GroupId(1)));
        let d: M = IsisMsg::Direct(3);
        assert_eq!(d.group(), None);
    }

    #[test]
    fn relay_set_len_counts_all_streams() {
        let mut r: RelaySet<u32> = RelaySet::default();
        assert!(r.is_empty());
        let id = MsgId {
            sender: Pid(1),
            view: 1,
            stream: 0,
            seq: 1,
        };
        r.causal.push((id, VClock::new(), 1));
        r.fifo.push((id, 2));
        r.total_ordered.push((1, id, 3));
        r.total_unordered.push((id, 4));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = cast(CastKind::Causal).wire_bytes(|_| 10, 0);
        let large = cast(CastKind::Causal).wire_bytes(|_| 1_000, 0);
        assert_eq!(large - small, 990);
    }

    #[test]
    fn install_view_wire_bytes_include_state() {
        let v = GroupView::initial(GroupId(1), Pid(0));
        let with: IsisMsg<u32, ()> = IsisMsg::InstallView {
            gid: GroupId(1),
            attempt: 0,
            view: v.clone(),
            relay: RelaySet::default(),
            state: Some(()),
            floor: None,
        };
        let without: IsisMsg<u32, ()> = IsisMsg::InstallView {
            gid: GroupId(1),
            attempt: 0,
            view: v,
            relay: RelaySet::default(),
            state: None,
            floor: None,
        };
        assert_eq!(
            with.wire_bytes(|_| 0, 500) - without.wire_bytes(|_| 0, 500),
            500
        );
    }
}
