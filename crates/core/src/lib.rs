//! `isis-core` — virtually synchronous process groups (the "existing ISIS
//! toolkit" layer of Cooper & Birman 1989).
//!
//! This crate reimplements the ISIS model the paper builds on: *process
//! groups* addressed as a unit, *broadcast protocols* with ordering
//! guarantees (FBCAST, CBCAST, ABCAST), and *group views* whose changes are
//! ordered with respect to every message (GBCAST, realised as a flush
//! protocol). Together these give the virtual synchrony property: all
//! members surviving a view change have delivered the same message set.
//!
//! The hierarchical large-group extension — the paper's contribution —
//! lives in the `isis-hier` crate and uses this one for its leaf and leader
//! groups.
//!
//! # Architecture
//!
//! - [`types`]: group ids, views, message ids.
//! - [`vclock`]: vector timestamps for causal delivery.
//! - [`msg`]: the wire protocol.
//! - [`group`]: per-group data-plane state (ordering, stability, buffers).
//! - [`membership`]: the flush protocol (view changes).
//! - [`process`]: [`process::IsisProcess`], a `now-sim` process running the
//!   stack plus an [`app::Application`].
//! - [`testutil`]: recording application + cluster builders for tests.
//!
//! # Examples
//!
//! ```
//! use isis_core::testutil::cluster;
//! use isis_core::{CastKind, IsisConfig};
//!
//! let mut c = cluster(4, IsisConfig::default(), 7);
//! let sender = c.pids[0];
//! c.cast_and_settle(sender, CastKind::Total, "hello");
//! c.assert_identical_logs();
//! ```

pub mod app;
pub mod config;
pub mod group;
pub mod membership;
pub mod msg;
pub mod process;
pub mod testutil;
pub mod types;
pub mod vclock;

pub use app::{Application, MsgOf, Uplink};
pub use config::IsisConfig;
pub use group::Status;
pub use msg::{CastData, DeliveryFloor, IsisMsg, RelaySet, StabilityVector};
pub use process::IsisProcess;
pub use types::{CastKind, GroupId, GroupView, IsisError, MsgId, ViewId};
pub use vclock::{VClock, VOrd};
