//! Test and experiment scaffolding: a recording application and cluster
//! builders used by the test suites of every crate in the workspace.

use now_sim::{NodeId, Pid, Sim, SimConfig, SimDuration};

use crate::app::{Application, Uplink};
use crate::config::IsisConfig;
use crate::process::IsisProcess;
use crate::types::{CastKind, GroupId, GroupView, MsgId};

/// An application that records everything that happens to it. Its state
/// snapshot is the log of delivered payloads, so state transfer is
/// observable.
#[derive(Default, Debug)]
pub struct RecorderApp {
    /// Delivered casts in delivery order: `(gid, from, kind, payload)`.
    pub delivered: Vec<(GroupId, Pid, CastKind, String)>,
    /// Views in installation order.
    pub views: Vec<GroupView>,
    /// Direct messages received.
    pub directs: Vec<(Pid, String)>,
    /// Groups joined (first view containing us).
    pub joined: Vec<GroupId>,
    /// Groups left or excluded from.
    pub left: Vec<GroupId>,
    /// Groups stalled in a minority partition.
    pub stalled: Vec<GroupId>,
    /// Ack progress of our acked casts.
    pub acks: Vec<(MsgId, usize)>,
    /// Join denials received.
    pub denied: Vec<GroupId>,
    /// State installed at join time, if any.
    pub imported: Option<Vec<String>>,
}

impl RecorderApp {
    /// Payloads delivered for `gid`, in order.
    pub fn payloads(&self, gid: GroupId) -> Vec<String> {
        self.delivered
            .iter()
            .filter(|(g, _, _, _)| *g == gid)
            .map(|(_, _, _, p)| p.clone())
            .collect()
    }

    /// The most recently installed view of `gid`.
    pub fn last_view(&self, gid: GroupId) -> Option<&GroupView> {
        self.views.iter().rev().find(|v| v.gid == gid)
    }
}

impl Application for RecorderApp {
    type Payload = String;
    type State = Vec<String>;

    fn on_deliver(
        &mut self,
        gid: GroupId,
        from: Pid,
        kind: CastKind,
        payload: &String,
        _up: &mut Uplink<'_, '_, Self>,
    ) {
        self.delivered.push((gid, from, kind, payload.clone()));
    }

    fn on_direct(&mut self, from: Pid, payload: &String, _up: &mut Uplink<'_, '_, Self>) {
        self.directs.push((from, payload.clone()));
    }

    fn on_view(&mut self, view: &GroupView, joined: bool, _up: &mut Uplink<'_, '_, Self>) {
        if joined {
            self.joined.push(view.gid);
        }
        self.views.push(view.clone());
    }

    fn on_left(&mut self, gid: GroupId, _up: &mut Uplink<'_, '_, Self>) {
        self.left.push(gid);
    }

    fn on_stall(&mut self, gid: GroupId, _up: &mut Uplink<'_, '_, Self>) {
        self.stalled.push(gid);
    }

    fn on_cast_ack(&mut self, _gid: GroupId, id: MsgId, count: usize, _up: &mut Uplink<'_, '_, Self>) {
        self.acks.push((id, count));
    }

    fn on_join_denied(&mut self, gid: GroupId, _up: &mut Uplink<'_, '_, Self>) {
        self.denied.push(gid);
    }

    fn export_state(&self, gid: GroupId) -> Vec<String> {
        self.payloads(gid)
    }

    fn import_state(&mut self, _gid: GroupId, state: Vec<String>) {
        self.imported = Some(state);
    }

    fn payload_bytes(p: &String) -> usize {
        p.len()
    }
}

/// Builds `n` processes of an arbitrary application type, all members of
/// `gid`, over the given sim config. Returns once membership converged.
///
/// The factory is called once per process (index `0..n`); extra client
/// processes can be spawned afterwards on new nodes.
pub fn generic_cluster<A: Application>(
    n: usize,
    gid: GroupId,
    icfg: IsisConfig,
    sim_cfg: now_sim::SimConfig,
    mut mk: impl FnMut(usize) -> A,
) -> (Sim<IsisProcess<A>>, Vec<Pid>) {
    assert!(n >= 1);
    let mut sim: Sim<IsisProcess<A>> = Sim::new(sim_cfg);
    let nodes = sim.add_nodes(n);
    let pids: Vec<Pid> = nodes
        .iter()
        .enumerate()
        .map(|(i, &nd)| sim.spawn(nd, IsisProcess::new(mk(i), icfg.clone())))
        .collect();
    sim.invoke(pids[0], |p, ctx| p.create_group(gid, ctx).expect("fresh gid cannot collide"));
    for &p in &pids[1..] {
        let contact = pids[0];
        sim.invoke(p, move |proc_, ctx| proc_.join(gid, contact, ctx).expect("group was just created"));
    }
    let deadline = sim.now() + SimDuration::from_secs(300);
    loop {
        let formed = pids
            .iter()
            .all(|&p| sim.process(p).view_of(gid).is_some_and(|v| v.size() == n));
        if formed {
            return (sim, pids);
        }
        if sim.now() >= deadline {
            panic!("generic cluster of {n} did not form");
        }
        if !sim.step() {
            sim.run_for(SimDuration::from_millis(100));
        }
    }
}

/// A simulated cluster of [`RecorderApp`] processes all belonging to one
/// group.
pub struct Cluster {
    /// The simulator.
    pub sim: Sim<IsisProcess<RecorderApp>>,
    /// Member pids, in spawn (= join) order.
    pub pids: Vec<Pid>,
    /// Their host nodes.
    pub nodes: Vec<NodeId>,
    /// The group everyone joined.
    pub gid: GroupId,
}

/// Default wait bound for cluster formation.
const FORM_LIMIT: SimDuration = SimDuration::from_secs(120);

/// Builds `n` processes on `n` nodes, all members of one group.
///
/// The first pid creates the group; the rest join through it. Panics if the
/// cluster fails to form within a generous simulated-time bound.
pub fn cluster(n: usize, cfg: IsisConfig, seed: u64) -> Cluster {
    cluster_with_net(n, cfg, SimConfig::ideal(seed))
}

/// Like [`cluster`] but over a realistic LAN latency model.
pub fn cluster_lan(n: usize, cfg: IsisConfig, seed: u64) -> Cluster {
    cluster_with_net(n, cfg, SimConfig::lan(seed))
}

fn cluster_with_net(n: usize, cfg: IsisConfig, sim_cfg: SimConfig) -> Cluster {
    assert!(n >= 1);
    let gid = GroupId(1);
    let mut sim: Sim<IsisProcess<RecorderApp>> = Sim::new(sim_cfg);
    let nodes = sim.add_nodes(n);
    let pids: Vec<Pid> = nodes
        .iter()
        .map(|&nd| sim.spawn(nd, IsisProcess::new(RecorderApp::default(), cfg.clone())))
        .collect();
    sim.invoke(pids[0], |p, ctx| p.create_group(gid, ctx).expect("fresh gid cannot collide"));
    for &p in &pids[1..] {
        let contact = pids[0];
        sim.invoke(p, |proc_, ctx| proc_.join(gid, contact, ctx).expect("group was just created"));
    }
    let mut c = Cluster {
        sim,
        pids,
        nodes,
        gid,
    };
    c.await_membership(n, FORM_LIMIT);
    c
}

impl Cluster {
    /// Runs until every live process agrees on a view of `expect` members,
    /// panicking after `limit`.
    pub fn await_membership(&mut self, expect: usize, limit: SimDuration) {
        let deadline = self.sim.now() + limit;
        loop {
            // Converged when exactly `expect` live processes are members
            // and every member's view has `expect` members.
            let member_pids: Vec<Pid> = self
                .live_members()
                .into_iter()
                .filter(|&p| self.sim.process(p).is_member(self.gid))
                .collect();
            let agreed = member_pids.len() == expect
                && member_pids.iter().all(|&p| {
                    self.sim
                        .process(p)
                        .view_of(self.gid)
                        .is_some_and(|v| v.size() == expect)
                });
            if agreed {
                return;
            }
            if self.sim.now() >= deadline || !self.sim.step() {
                let views: Vec<String> = self
                    .pids
                    .iter()
                    .map(|&p| {
                        format!(
                            "{p}: {:?}",
                            self.sim.process(p).view_of(self.gid).map(|v| (
                                v.view_id,
                                v.members.clone()
                            ))
                        )
                    })
                    .collect();
                panic!(
                    "membership did not converge to {expect} by {}: {views:#?}",
                    self.sim.now()
                );
            }
        }
    }

    /// Pids still alive in the simulation.
    pub fn live_members(&self) -> Vec<Pid> {
        self.pids
            .iter()
            .copied()
            .filter(|&p| self.sim.is_alive(p))
            .collect()
    }

    /// Casts from `from` and runs until quiescence or `limit`.
    pub fn cast_and_settle(&mut self, from: Pid, kind: CastKind, payload: &str) {
        let gid = self.gid;
        let pl = payload.to_owned();
        self.sim
            .invoke(from, move |p, ctx| p.cast(gid, kind, pl, ctx).expect("caster is a member"))
            .expect("caster is alive");
        self.settle();
    }

    /// Runs for a generous bound or until the event queue drains.
    pub fn settle(&mut self) {
        let limit = self.sim.now() + SimDuration::from_secs(30);
        self.sim.run_until(limit);
    }

    /// The payload logs of all live members, for agreement checks.
    pub fn live_logs(&self) -> Vec<(Pid, Vec<String>)> {
        self.live_members()
            .iter()
            .map(|&p| (p, self.sim.process(p).app().payloads(self.gid)))
            .collect()
    }

    /// Asserts every live member delivered exactly the same payload
    /// sequence (order-sensitive).
    pub fn assert_identical_logs(&self) {
        let logs = self.live_logs();
        let Some((first_pid, first)) = logs.first() else {
            return;
        };
        for (p, log) in &logs[1..] {
            assert_eq!(
                log, first,
                "delivery logs diverge between {first_pid} and {p}"
            );
        }
    }

    /// Asserts every live member delivered the same payload *set* (order
    /// may differ; used for causal casts of concurrent messages).
    pub fn assert_identical_sets(&self) {
        let mut logs = self.live_logs();
        for (_, l) in logs.iter_mut() {
            l.sort();
        }
        let Some((first_pid, first)) = logs.first() else {
            return;
        };
        for (p, log) in &logs[1..] {
            assert_eq!(
                log, first,
                "delivery sets diverge between {first_pid} and {p}"
            );
        }
    }
}
