//! Core identifiers and data structures of the ISIS process group model.

use std::fmt;

use now_sim::Pid;

/// Names a process group.
///
/// In the paper, groups "are the only addressable entities which survive
/// individual processor failures". Symbolic name-to-`GroupId` mapping is the
/// job of the hierarchical name service (`isis-hier`); the core layer deals
/// in opaque ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u64);

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A view number: views of a group are installed in strictly increasing
/// `ViewId` order at every member.
pub type ViewId = u64;

/// Uniquely identifies one broadcast message.
///
/// `view` is the view in which the sender initiated the cast, `stream` the
/// ordering stream (one per [`CastKind`]), and `seq` the sender's per-view,
/// per-stream sequence number; together they are globally unique and form
/// the deduplication key during view-change relays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// Originating process.
    pub sender: Pid,
    /// View in which the message was sent.
    pub view: ViewId,
    /// Ordering stream (from [`CastKind::stream`]).
    pub stream: u8,
    /// Sender-local sequence number within that view and stream.
    pub seq: u64,
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}@v{}{}{}",
            self.sender,
            self.view,
            ["c", "f", "a"].get(self.stream as usize).unwrap_or(&"?"),
            self.seq
        )
    }
}

/// The ordering discipline of a broadcast, mirroring the ISIS protocol
/// family: FBCAST (FIFO per sender), CBCAST (causal), ABCAST (total).
///
/// GBCAST — ordering of membership changes with respect to everything —
/// is not a user-callable kind; it is realised by the flush protocol in
/// [`crate::membership`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastKind {
    /// FIFO order: messages from one sender are delivered in send order.
    Fifo,
    /// Causal order: if `send(m1)` happened-before `send(m2)`, every member
    /// delivers `m1` before `m2`.
    Causal,
    /// Total order: all members deliver all ABCASTs in the same order
    /// (which also respects each sender's FIFO order).
    Total,
}

impl CastKind {
    /// The stream tag used in [`MsgId`]: causal = 0, fifo = 1, total = 2.
    pub fn stream(self) -> u8 {
        match self {
            CastKind::Causal => 0,
            CastKind::Fifo => 1,
            CastKind::Total => 2,
        }
    }
}

/// A group view: the fundamental data structure representing a group
/// (section 3 of the paper).
///
/// Members are listed oldest-first; rank 0 (the oldest member) acts as the
/// view-change coordinator and as the ABCAST sequencer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupView {
    /// The group this view belongs to.
    pub gid: GroupId,
    /// Strictly increasing view number.
    pub view_id: ViewId,
    /// Members in join order (oldest first).
    pub members: Vec<Pid>,
}

impl GroupView {
    /// The initial singleton view of a freshly created group.
    pub fn initial(gid: GroupId, founder: Pid) -> GroupView {
        GroupView {
            gid,
            view_id: 1,
            members: vec![founder],
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: Pid) -> bool {
        self.members.contains(&p)
    }

    /// The rank of `p` (0 = oldest), or `None` if not a member.
    pub fn rank_of(&self, p: Pid) -> Option<usize> {
        self.members.iter().position(|&m| m == p)
    }

    /// The current coordinator / sequencer: the oldest member.
    ///
    /// # Panics
    ///
    /// Panics on an empty view, which is never installed.
    pub fn coordinator(&self) -> Pid {
        self.members[0]
    }

    /// Returns a successor view with `leaving` removed and `joining`
    /// appended (in the given order), and the view id incremented.
    pub fn successor(&self, leaving: &[Pid], joining: &[Pid]) -> GroupView {
        let mut members: Vec<Pid> = self
            .members
            .iter()
            .copied()
            .filter(|m| !leaving.contains(m))
            .collect();
        for &j in joining {
            if !members.contains(&j) {
                members.push(j);
            }
        }
        GroupView {
            gid: self.gid,
            view_id: self.view_id + 1,
            members,
        }
    }

    /// Whether this view contains a strict majority of `previous`'s members
    /// — the primary-partition test used when partitions are possible.
    pub fn is_majority_of(&self, previous: &GroupView) -> bool {
        let surviving = previous
            .members
            .iter()
            .filter(|m| self.contains(**m))
            .count();
        2 * surviving > previous.size()
    }

    /// An estimate of the bytes a process spends storing this view —
    /// the quantity bounded by the paper's hierarchical representation
    /// (experiment E7).
    pub fn storage_bytes(&self) -> usize {
        // gid + view_id + one pid per member.
        8 + 8 + 4 * self.members.len()
    }
}

/// Errors surfaced by the public ISIS API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsisError {
    /// The calling process is not a member of the group.
    NotMember(GroupId),
    /// The group id is already in use at this process.
    AlreadyMember(GroupId),
    /// The operation cannot proceed while a view change is in progress and
    /// the group is wedged. (Casts are buffered instead; only operations
    /// that cannot be buffered return this.)
    Wedged(GroupId),
    /// The group has stalled in a minority partition.
    Stalled(GroupId),
}

impl fmt::Display for IsisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsisError::NotMember(g) => write!(f, "not a member of {g}"),
            IsisError::AlreadyMember(g) => write!(f, "already a member of {g}"),
            IsisError::Wedged(g) => write!(f, "{g} is wedged by a view change"),
            IsisError::Stalled(g) => write!(f, "{g} stalled in a minority partition"),
        }
    }
}

impl std::error::Error for IsisError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ids: &[u32]) -> GroupView {
        GroupView {
            gid: GroupId(1),
            view_id: 3,
            members: ids.iter().map(|&i| Pid(i)).collect(),
        }
    }

    #[test]
    fn initial_view_is_singleton() {
        let v = GroupView::initial(GroupId(9), Pid(4));
        assert_eq!(v.view_id, 1);
        assert_eq!(v.members, vec![Pid(4)]);
        assert_eq!(v.coordinator(), Pid(4));
    }

    #[test]
    fn rank_and_membership() {
        let v = view(&[5, 3, 8]);
        assert_eq!(v.rank_of(Pid(3)), Some(1));
        assert_eq!(v.rank_of(Pid(9)), None);
        assert!(v.contains(Pid(8)));
        assert_eq!(v.coordinator(), Pid(5));
        assert_eq!(v.size(), 3);
    }

    #[test]
    fn successor_removes_and_appends() {
        let v = view(&[1, 2, 3]);
        let s = v.successor(&[Pid(2)], &[Pid(7), Pid(3)]);
        assert_eq!(s.view_id, 4);
        // Pid(3) was already present: not duplicated; Pid(7) appended last.
        assert_eq!(s.members, vec![Pid(1), Pid(3), Pid(7)]);
    }

    #[test]
    fn majority_test() {
        let old = view(&[1, 2, 3, 4, 5]);
        assert!(view(&[1, 2, 3]).is_majority_of(&old));
        assert!(!view(&[1, 2]).is_majority_of(&old));
        // A view of new processes only is never a majority.
        assert!(!view(&[8, 9, 10]).is_majority_of(&old));
        // Survivors of a 2-group: one of two is not a strict majority.
        let two = view(&[1, 2]);
        assert!(!view(&[1]).is_majority_of(&two));
    }

    #[test]
    fn storage_grows_linearly_with_members() {
        let small = view(&[1, 2]).storage_bytes();
        let big = GroupView {
            gid: GroupId(1),
            view_id: 1,
            members: (0..100).map(Pid).collect(),
        }
        .storage_bytes();
        assert_eq!(big - small, 4 * 98);
    }

    #[test]
    fn msgid_ordering_and_debug() {
        let a = MsgId {
            sender: Pid(1),
            view: 2,
            stream: CastKind::Causal.stream(),
            seq: 3,
        };
        let b = MsgId {
            sender: Pid(1),
            view: 2,
            stream: CastKind::Causal.stream(),
            seq: 4,
        };
        assert!(a < b);
        assert_eq!(format!("{a:?}"), "p1@v2c3");
    }

    #[test]
    fn msgid_streams_keep_same_seq_distinct() {
        let c = MsgId {
            sender: Pid(1),
            view: 1,
            stream: CastKind::Causal.stream(),
            seq: 1,
        };
        let f = MsgId {
            stream: CastKind::Fifo.stream(),
            ..c
        };
        let a = MsgId {
            stream: CastKind::Total.stream(),
            ..c
        };
        assert_ne!(c, f);
        assert_ne!(f, a);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            IsisError::NotMember(GroupId(2)).to_string(),
            "not a member of g2"
        );
        assert_eq!(
            IsisError::Stalled(GroupId(1)).to_string(),
            "g1 stalled in a minority partition"
        );
    }
}
