//! The application layer interface.
//!
//! An [`Application`] rides on top of an [`crate::process::IsisProcess`]:
//! the process runs the group protocols and calls back into the application
//! for deliveries, view changes, and state transfer. Applications act on
//! the world through an [`Uplink`], whose operations are buffered and
//! executed by the process after the callback returns — keeping callback
//! semantics simple and runs deterministic.

use now_sim::{Ctx, Pid, SimDuration, SimTime};

use crate::msg::IsisMsg;
use crate::types::{CastKind, GroupId, GroupView, MsgId};

/// Shorthand for the wire message type of an application.
pub type MsgOf<A> = IsisMsg<<A as Application>::Payload, <A as Application>::State>;

/// Application behaviour layered over the ISIS process group machinery.
///
/// All callbacks receive an [`Uplink`] for issuing casts, replies, and
/// timers. Callbacks are invoked in a deterministic order; within one
/// group, deliveries respect the requested broadcast ordering and view
/// changes are delivered between (never amid) the message sets of two
/// views.
pub trait Application: Sized + Send + 'static {
    /// Payload of casts and direct messages. `Send + Sync` (like the
    /// engine's `Process::Msg`) so in-flight messages can cross worker
    /// shards when a run executes in parallel (`NOW_SIM_JOBS`).
    type Payload: Clone + std::fmt::Debug + Send + Sync + 'static;
    /// State-transfer snapshot installed into joining members.
    type State: Clone + std::fmt::Debug + Default + Send + Sync + 'static;

    /// A group broadcast was delivered.
    fn on_deliver(
        &mut self,
        gid: GroupId,
        from: Pid,
        kind: CastKind,
        payload: &Self::Payload,
        up: &mut Uplink<'_, '_, Self>,
    );

    /// A point-to-point message was delivered (client/server traffic).
    fn on_direct(&mut self, _from: Pid, _payload: &Self::Payload, _up: &mut Uplink<'_, '_, Self>) {
    }

    /// A new view of a group this process belongs to was installed.
    /// `joined` is `true` the first time this process appears in the view.
    fn on_view(&mut self, _view: &GroupView, _joined: bool, _up: &mut Uplink<'_, '_, Self>) {}

    /// This process has left (or been excluded from) the group.
    fn on_left(&mut self, _gid: GroupId, _up: &mut Uplink<'_, '_, Self>) {}

    /// The group stalled in a minority partition (no primary view can be
    /// formed). Casting is suspended until the process rejoins.
    fn on_stall(&mut self, _gid: GroupId, _up: &mut Uplink<'_, '_, Self>) {}

    /// An acked cast reached `count` cumulative delivery acknowledgements.
    /// Invoked once per ack, so the application can trigger at its chosen
    /// resiliency threshold (the paper's `resiliency` parameter).
    fn on_cast_ack(
        &mut self,
        _gid: GroupId,
        _id: MsgId,
        _count: usize,
        _up: &mut Uplink<'_, '_, Self>,
    ) {
    }

    /// A join request could not be satisfied (unknown group at contact).
    fn on_join_denied(&mut self, _gid: GroupId, _up: &mut Uplink<'_, '_, Self>) {}

    /// An application timer set through [`Uplink::set_app_timer`] fired.
    fn on_app_timer(&mut self, _kind: u32, _up: &mut Uplink<'_, '_, Self>) {}

    /// The process has started.
    fn on_start(&mut self, _up: &mut Uplink<'_, '_, Self>) {}

    /// Produces a state snapshot for a member joining `gid`.
    ///
    /// Called on the view-change leader at the moment of the membership
    /// cut, so the snapshot is consistent with the delivered message set.
    fn export_state(&self, _gid: GroupId) -> Self::State {
        Self::State::default()
    }

    /// Installs a snapshot received while joining `gid`.
    fn import_state(&mut self, _gid: GroupId, _state: Self::State) {}

    /// Estimated wire size of a payload, for the latency model.
    fn payload_bytes(_p: &Self::Payload) -> usize {
        64
    }

    /// Estimated wire size of a state snapshot.
    fn state_bytes(_s: &Self::State) -> usize {
        256
    }
}

/// Buffered operations an application can request during a callback.
#[derive(Clone, Debug)]
pub enum UpOp<P> {
    /// Broadcast `payload` to a group with the given ordering.
    Cast {
        gid: GroupId,
        kind: CastKind,
        payload: P,
        want_ack: bool,
    },
    /// Point-to-point application message.
    Direct { to: Pid, payload: P },
    /// Create a new singleton group.
    CreateGroup { gid: GroupId },
    /// Ask `contact` to admit us to `gid`.
    Join { gid: GroupId, contact: Pid },
    /// Leave a group gracefully.
    Leave { gid: GroupId },
    /// Arm an application timer.
    AppTimer { delay: SimDuration, kind: u32 },
}

/// The application's handle onto the ISIS process during a callback.
///
/// Operations are buffered and executed after the callback returns;
/// queries (`now`, `me`, `view`) answer from the current snapshot.
pub struct Uplink<'a, 'b, A: Application> {
    pub(crate) ctx: &'a mut Ctx<'b, MsgOf<A>>,
    pub(crate) ops: &'a mut Vec<UpOp<A::Payload>>,
    pub(crate) view: Option<&'a GroupView>,
}

impl<'a, 'b, A: Application> Uplink<'a, 'b, A> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This process's pid.
    pub fn me(&self) -> Pid {
        self.ctx.me()
    }

    /// This process's incarnation number: 0 in its first life, bumped on
    /// every restart. Lets an application tell a rejoin from a first join.
    pub fn incarnation(&self) -> u32 {
        self.ctx.incarnation()
    }

    /// The view of the group the current callback concerns, when there is
    /// one (deliveries and view events; `None` for direct messages and
    /// timers).
    pub fn view(&self) -> Option<&GroupView> {
        self.view
    }

    /// Broadcasts `payload` to `gid` with the given ordering discipline.
    pub fn cast(&mut self, gid: GroupId, kind: CastKind, payload: A::Payload) {
        self.ops.push(UpOp::Cast {
            gid,
            kind,
            payload,
            want_ack: false,
        });
    }

    /// Broadcasts and requests per-delivery acknowledgements, reported via
    /// [`Application::on_cast_ack`].
    pub fn cast_acked(&mut self, gid: GroupId, kind: CastKind, payload: A::Payload) {
        self.ops.push(UpOp::Cast {
            gid,
            kind,
            payload,
            want_ack: true,
        });
    }

    /// Sends a point-to-point application message.
    pub fn direct(&mut self, to: Pid, payload: A::Payload) {
        self.ops.push(UpOp::Direct { to, payload });
    }

    /// Creates a new group with this process as sole member.
    pub fn create_group(&mut self, gid: GroupId) {
        self.ops.push(UpOp::CreateGroup { gid });
    }

    /// Requests admission to `gid` via `contact` (any current member).
    pub fn join(&mut self, gid: GroupId, contact: Pid) {
        self.ops.push(UpOp::Join { gid, contact });
    }

    /// Leaves `gid` gracefully.
    pub fn leave(&mut self, gid: GroupId) {
        self.ops.push(UpOp::Leave { gid });
    }

    /// Arms an application timer; fires [`Application::on_app_timer`].
    pub fn set_app_timer(&mut self, delay: SimDuration, kind: u32) {
        self.ops.push(UpOp::AppTimer { delay, kind });
    }

    /// Emits a labelled observation into the simulation log.
    pub fn observe(&mut self, label: &'static str, value: f64) {
        self.ctx.observe(label, value);
    }

    /// Adds one to a named global counter (interned on first use).
    pub fn bump(&mut self, name: &'static str) {
        self.ctx.bump(name);
    }

    /// Records a sample in a named global series (interned on first use).
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.ctx.sample(name, v);
    }

    /// Records a duration sample (milliseconds) in a named series.
    pub fn sample_duration(&mut self, name: &'static str, d: SimDuration) {
        self.ctx.sample_duration(name, d);
    }

    /// Registers (or looks up) a named counter, returning a dense handle
    /// for allocation-free bumping via [`Uplink::bump_id`].
    pub fn counter_id(&mut self, name: &'static str) -> now_sim::CounterId {
        self.ctx.counter_id(name)
    }

    /// Registers (or looks up) a named series, returning a dense handle.
    pub fn series_id(&mut self, name: &'static str) -> now_sim::SeriesId {
        self.ctx.series_id(name)
    }

    /// Adds one to an interned counter — a single array index.
    pub fn bump_id(&mut self, id: now_sim::CounterId) {
        self.ctx.bump_id(id);
    }

    /// Records a sample in an interned series — a single array index.
    pub fn sample_id(&mut self, id: now_sim::SeriesId, v: f64) {
        self.ctx.sample_id(id, v);
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut now_sim::DetRng {
        self.ctx.rng()
    }

    /// Whether a tracer is attached (lets callers skip building event
    /// payloads when tracing is off).
    pub fn tracing(&self) -> bool {
        self.ctx.tracing()
    }

    /// Records a trace event, lazily built only when tracing is on.
    /// Returns the event's sequence number (0 when tracing is off).
    pub fn trace_with(&mut self, f: impl FnOnce() -> now_sim::trace::EventKind) -> u64 {
        self.ctx.trace_with(f)
    }
}
