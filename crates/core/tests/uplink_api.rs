//! Exercises the harness-facing accessors of the core API: `app_mut`
//! priming and the deterministic `Uplink::rng` stream. Also serves as the
//! reachability witness for detlint rule R4 on these entry points.

use isis_core::testutil::cluster;
use isis_core::IsisConfig;
use now_sim::det_rand::Rng;

fn draws(seed: u64) -> Vec<u64> {
    let mut c = cluster(3, IsisConfig::default(), seed);
    let p = c.pids[0];
    c.sim
        .invoke(p, |proc_, ctx| {
            proc_.with_app(ctx, |_app, up| {
                (0..8)
                    .map(|_| up.rng().gen_range(0u64..1_000_000))
                    .collect::<Vec<u64>>()
            })
        })
        .expect("member is alive")
}

#[test]
fn uplink_rng_is_deterministic_per_seed() {
    assert_eq!(draws(11), draws(11));
    assert_ne!(draws(11), draws(12));
}

#[test]
fn app_mut_primes_harness_state() {
    let mut c = cluster(2, IsisConfig::default(), 5);
    let p = c.pids[0];
    c.sim.process_mut(p).app_mut().directs.push((p, "primed".into()));
    assert_eq!(
        c.sim.process(p).app().directs,
        vec![(p, "primed".to_string())]
    );
}
