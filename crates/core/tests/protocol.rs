//! End-to-end protocol tests for the ISIS core stack: ordering guarantees,
//! virtual synchrony across failures, membership changes, and state
//! transfer. All scenarios run on the deterministic simulator, so every
//! assertion is exact, not probabilistic.

use isis_core::testutil::{cluster, cluster_lan, Cluster};
use isis_core::{CastKind, GroupId, IsisConfig};
use now_sim::{Partition, SimDuration, SimTime};

fn settle_long(c: &mut Cluster) {
    let limit = c.sim.now() + SimDuration::from_secs(60);
    c.sim.run_until(limit);
}

// ---------------------------------------------------------------------
// Ordering guarantees
// ---------------------------------------------------------------------

#[test]
fn fbcast_preserves_per_sender_order() {
    let mut c = cluster_lan(5, IsisConfig::quiet(), 3);
    let s = c.pids[0];
    let gid = c.gid;
    for i in 0..20 {
        c.sim.invoke(s, |p, ctx| {
            p.cast(gid, CastKind::Fifo, format!("m{i}"), ctx).unwrap();
        });
    }
    settle_long(&mut c);
    let want: Vec<String> = (0..20).map(|i| format!("m{i}")).collect();
    for (pid, log) in c.live_logs() {
        assert_eq!(log, want, "member {pid} saw FIFO violation");
    }
}

#[test]
fn abcast_total_order_under_concurrent_senders() {
    let mut c = cluster_lan(6, IsisConfig::quiet(), 11);
    let gid = c.gid;
    // All members fire concurrently, several times.
    for round in 0..5 {
        for (i, &p) in c.pids.clone().iter().enumerate() {
            c.sim.invoke(p, |proc_, ctx| {
                proc_
                    .cast(gid, CastKind::Total, format!("r{round}s{i}"), ctx)
                    .unwrap();
            });
        }
    }
    settle_long(&mut c);
    c.assert_identical_logs();
    let (_, log) = &c.live_logs()[0];
    assert_eq!(log.len(), 30, "every ABCAST delivered exactly once");
}

#[test]
fn cbcast_agreement_on_concurrent_sends() {
    let mut c = cluster_lan(5, IsisConfig::quiet(), 17);
    let gid = c.gid;
    for (i, &p) in c.pids.clone().iter().enumerate() {
        c.sim.invoke(p, |proc_, ctx| {
            proc_
                .cast(gid, CastKind::Causal, format!("c{i}"), ctx)
                .unwrap();
        });
    }
    settle_long(&mut c);
    // Concurrent causal casts may be delivered in different orders, but the
    // set must agree and each member delivers all five.
    c.assert_identical_sets();
    for (_, log) in c.live_logs() {
        assert_eq!(log.len(), 5);
    }
}

#[test]
fn cbcast_respects_causal_chains() {
    // a casts m1; once b has delivered m1 it casts m2 (a genuine causal
    // successor). No member may deliver m2 before m1, whatever the jitter.
    for seed in 0..10 {
        let mut c = cluster_lan(5, IsisConfig::quiet(), 100 + seed);
        let gid = c.gid;
        let (a, b) = (c.pids[0], c.pids[1]);
        c.sim.invoke(a, |p, ctx| {
            p.cast(gid, CastKind::Causal, "m1".into(), ctx).unwrap();
        });
        // Wait until b has m1, then cast its reply.
        let deadline = c.sim.now() + SimDuration::from_secs(10);
        while c.sim.process(b).app().payloads(gid).is_empty() {
            assert!(c.sim.now() < deadline && c.sim.step(), "b never got m1");
        }
        c.sim.invoke(b, |p, ctx| {
            p.cast(gid, CastKind::Causal, "m2".into(), ctx).unwrap();
        });
        settle_long(&mut c);
        for (pid, log) in c.live_logs() {
            let i1 = log.iter().position(|m| m == "m1");
            let i2 = log.iter().position(|m| m == "m2");
            assert!(i1 < i2, "seed {seed}: {pid} delivered m2 before m1: {log:?}");
            assert_eq!(log.len(), 2);
        }
    }
}

#[test]
fn fbcast_streams_from_different_senders_interleave_freely() {
    let mut c = cluster_lan(4, IsisConfig::quiet(), 23);
    let gid = c.gid;
    let (a, b) = (c.pids[0], c.pids[1]);
    for i in 0..10 {
        c.sim.invoke(a, |p, ctx| {
            p.cast(gid, CastKind::Fifo, format!("a{i}"), ctx).unwrap();
        });
        c.sim.invoke(b, |p, ctx| {
            p.cast(gid, CastKind::Fifo, format!("b{i}"), ctx).unwrap();
        });
    }
    settle_long(&mut c);
    for (pid, log) in c.live_logs() {
        let a_seq: Vec<&String> = log.iter().filter(|m| m.starts_with('a')).collect();
        let b_seq: Vec<&String> = log.iter().filter(|m| m.starts_with('b')).collect();
        for (i, m) in a_seq.iter().enumerate() {
            assert_eq!(**m, format!("a{i}"), "per-sender order at {pid}");
        }
        for (i, m) in b_seq.iter().enumerate() {
            assert_eq!(**m, format!("b{i}"), "per-sender order at {pid}");
        }
        assert_eq!(log.len(), 20);
    }
}

// ---------------------------------------------------------------------
// Membership: joins, leaves, state transfer
// ---------------------------------------------------------------------

#[test]
fn joiner_receives_state_snapshot() {
    let mut c = cluster(3, IsisConfig::default(), 5);
    let gid = c.gid;
    c.cast_and_settle(c.pids[0], CastKind::Total, "pre-join-1");
    c.cast_and_settle(c.pids[1], CastKind::Total, "pre-join-2");

    // Spawn a fresh process and join through pids[2].
    let node = c.sim.add_nodes(1)[0];
    let newcomer = c.sim.spawn(
        node,
        isis_core::IsisProcess::new(
            isis_core::testutil::RecorderApp::default(),
            IsisConfig::default(),
        ),
    );
    let contact = c.pids[2];
    c.sim.invoke(newcomer, |p, ctx| {
        p.join(gid, contact, ctx).unwrap();
    });
    c.pids.push(newcomer);
    c.await_membership(4, SimDuration::from_secs(60));

    let app = c.sim.process(newcomer).app();
    assert_eq!(
        app.imported.as_deref(),
        Some(&["pre-join-1".to_string(), "pre-join-2".to_string()][..]),
        "state transfer must replay the pre-join history"
    );
    assert_eq!(app.joined, vec![gid]);

    // And the newcomer participates in subsequent broadcasts.
    c.cast_and_settle(newcomer, CastKind::Total, "post-join");
    for (_, log) in c.live_logs() {
        assert!(log.contains(&"post-join".to_string()));
    }
}

#[test]
fn graceful_leave_shrinks_view_everywhere() {
    let mut c = cluster(5, IsisConfig::default(), 9);
    let gid = c.gid;
    let leaver = c.pids[2];
    c.sim.invoke(leaver, |p, ctx| {
        p.leave(gid, ctx).unwrap();
    });
    c.await_membership(4, SimDuration::from_secs(60));
    assert!(!c.sim.process(leaver).is_member(gid));
    assert_eq!(c.sim.process(leaver).app().left, vec![gid]);
    for &p in &c.pids {
        if p == leaver {
            continue;
        }
        let v = c.sim.process(p).view_of(gid).unwrap();
        assert!(!v.contains(leaver));
        assert_eq!(v.size(), 4);
    }
}

#[test]
fn coordinator_can_leave_its_own_group() {
    let mut c = cluster(4, IsisConfig::default(), 13);
    let gid = c.gid;
    let coord = c.pids[0]; // Oldest member leads view changes.
    c.sim.invoke(coord, |p, ctx| {
        p.leave(gid, ctx).unwrap();
    });
    c.await_membership(3, SimDuration::from_secs(60));
    assert!(!c.sim.process(coord).is_member(gid));
    // The next-oldest member is now coordinator.
    let v = c.sim.process(c.pids[1]).view_of(gid).unwrap();
    assert_eq!(v.coordinator(), c.pids[1]);
}

#[test]
fn concurrent_joins_converge() {
    let mut c = cluster(2, IsisConfig::default(), 21);
    let gid = c.gid;
    let contact = c.pids[0];
    let nodes = c.sim.add_nodes(6);
    for nd in nodes {
        let p = c.sim.spawn(
            nd,
            isis_core::IsisProcess::new(
                isis_core::testutil::RecorderApp::default(),
                IsisConfig::default(),
            ),
        );
        c.sim.invoke(p, |proc_, ctx| {
            proc_.join(gid, contact, ctx).unwrap();
        });
        c.pids.push(p);
    }
    c.await_membership(8, SimDuration::from_secs(120));
    // All members agree on the final view.
    let v0 = c.sim.process(c.pids[0]).view_of(gid).unwrap().clone();
    for &p in &c.pids {
        assert_eq!(c.sim.process(p).view_of(gid), Some(&v0));
    }
}

#[test]
fn join_to_nonmember_is_denied() {
    let mut c = cluster(2, IsisConfig::default(), 31);
    let node = c.sim.add_nodes(1)[0];
    let outsider = c.sim.spawn(
        node,
        isis_core::IsisProcess::new(
            isis_core::testutil::RecorderApp::default(),
            IsisConfig::default(),
        ),
    );
    let joiner = c.sim.spawn(
        c.nodes[0],
        isis_core::IsisProcess::new(
            isis_core::testutil::RecorderApp::default(),
            IsisConfig::default(),
        ),
    );
    let unknown = GroupId(99);
    c.sim.invoke(joiner, |p, ctx| {
        p.join(unknown, outsider, ctx).unwrap();
    });
    c.settle();
    assert_eq!(c.sim.process(joiner).app().denied, vec![unknown]);
    assert!(!c.sim.process(joiner).is_member(unknown));
}

#[test]
fn joiner_crash_mid_join_leaves_the_contact_clean() {
    // A joiner dies with its join in flight: the contact's pending-joiner
    // bookkeeping must drain, no view may end up containing the corpse,
    // and the group keeps working — no leaked JoinState anywhere.
    for seed in 0..10 {
        let mut c = cluster_lan(3, IsisConfig::default(), 2_000 + seed);
        let gid = c.gid;
        let contact = c.pids[2];
        let node = c.sim.add_nodes(1)[0];
        let joiner = c.sim.spawn(
            node,
            isis_core::IsisProcess::new(
                isis_core::testutil::RecorderApp::default(),
                IsisConfig::default(),
            ),
        );
        c.sim.invoke(joiner, |p, ctx| {
            p.join(gid, contact, ctx).unwrap();
        });
        // Let the join travel a varying distance before the crash: step
        // until the contact has buffered the joiner (or a bounded number
        // of raw steps for the earliest interleavings).
        let raw_steps = (seed as usize) * 3;
        for _ in 0..raw_steps {
            if c.sim.process(contact).pending_joiners(gid) > 0 {
                break;
            }
            c.sim.step();
        }
        c.sim.crash(joiner);
        settle_long(&mut c);

        for &p in &c.pids {
            let proc_ = c.sim.process(p);
            assert_eq!(
                proc_.pending_joiners(gid),
                0,
                "seed {seed}: member {p} leaked pending-joiner state"
            );
            let v = proc_.view_of(gid).expect("still a member");
            assert!(
                !v.contains(joiner),
                "seed {seed}: dead joiner survives in {p}'s view"
            );
            assert_eq!(v.size(), 3, "seed {seed}: view shrank or grew at {p}");
        }
        // The group still makes progress after the aborted join.
        c.cast_and_settle(c.pids[0], CastKind::Total, "after-aborted-join");
        for (p, log) in c.live_logs() {
            assert!(
                log.contains(&"after-aborted-join".to_string()),
                "seed {seed}: {p} missed post-abort traffic"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Failures and virtual synchrony
// ---------------------------------------------------------------------

#[test]
fn member_crash_triggers_view_change() {
    let mut c = cluster(5, IsisConfig::default(), 41);
    let gid = c.gid;
    let victim = c.pids[3];
    c.sim.crash(victim);
    c.await_membership(4, SimDuration::from_secs(60));
    for &p in &c.pids {
        if p == victim {
            continue;
        }
        assert!(!c.sim.process(p).view_of(gid).unwrap().contains(victim));
    }
}

#[test]
fn coordinator_crash_recovers_membership() {
    let mut c = cluster(5, IsisConfig::default(), 43);
    let gid = c.gid;
    let coord = c.pids[0];
    c.sim.crash(coord);
    c.await_membership(4, SimDuration::from_secs(60));
    let v = c.sim.process(c.pids[1]).view_of(gid).unwrap();
    assert_eq!(v.coordinator(), c.pids[1]);
    assert_eq!(v.size(), 4);
}

#[test]
fn virtual_synchrony_under_sender_crash() {
    // A sender crashes immediately after multicasting; survivors must agree
    // on whether the message was delivered (all-or-nothing).
    for seed in 0..20 {
        let mut c = cluster_lan(5, IsisConfig::default(), 1_000 + seed);
        let gid = c.gid;
        let sender = c.pids[2];
        c.sim.invoke(sender, |p, ctx| {
            p.cast(gid, CastKind::Causal, "last-words".into(), ctx)
                .unwrap();
        });
        // Crash the sender before the multicast propagates everywhere.
        c.sim.crash(sender);
        c.await_membership(4, SimDuration::from_secs(60));
        settle_long(&mut c);
        let logs = c.live_logs();
        let delivered: Vec<bool> = logs
            .iter()
            .map(|(_, l)| l.contains(&"last-words".to_string()))
            .collect();
        assert!(
            delivered.iter().all(|&d| d) || delivered.iter().all(|&d| !d),
            "seed {seed}: survivors disagree on the crashed sender's message: {delivered:?}"
        );
    }
}

#[test]
fn virtual_synchrony_sequencer_crash_with_inflight_abcasts() {
    for seed in 0..20 {
        let mut c = cluster_lan(5, IsisConfig::default(), 2_000 + seed);
        let gid = c.gid;
        let sequencer = c.pids[0];
        // Several members fire ABCASTs, then the sequencer dies mid-stream.
        for &p in &c.pids.clone()[1..4] {
            c.sim.invoke(p, |proc_, ctx| {
                proc_
                    .cast(gid, CastKind::Total, format!("from-{}", p.0), ctx)
                    .unwrap();
            });
        }
        c.sim.crash(sequencer);
        c.await_membership(4, SimDuration::from_secs(60));
        settle_long(&mut c);
        c.assert_identical_logs();
        // The messages were re-sequenced by the new leader, none lost:
        // every survivor's own cast is in its log (it never crashed, so its
        // buffered copy must survive into the union).
        for (pid, log) in c.live_logs() {
            if pid == sequencer {
                continue;
            }
            if (1..4).contains(&c.pids.iter().position(|&x| x == pid).unwrap()) {
                assert!(
                    log.contains(&format!("from-{}", pid.0)),
                    "seed {seed}: {pid} lost its own ABCAST"
                );
            }
        }
    }
}

#[test]
fn casts_issued_during_view_change_are_not_lost() {
    let mut c = cluster(5, IsisConfig::default(), 53);
    let gid = c.gid;
    let victim = c.pids[4];
    c.sim.crash(victim);
    // Give the failure detector time to wedge the group, then cast while
    // the flush is (likely) in progress.
    c.sim
        .run_for(IsisConfig::default().fd_timeout + SimDuration::from_millis(20));
    for &p in &c.pids.clone()[..4] {
        c.sim.invoke(p, |proc_, ctx| {
            proc_
                .cast(gid, CastKind::Total, format!("wedged-{}", p.0), ctx)
                .unwrap();
        });
    }
    c.await_membership(4, SimDuration::from_secs(60));
    settle_long(&mut c);
    c.assert_identical_logs();
    let (_, log) = &c.live_logs()[0];
    for &p in &c.pids[..4] {
        assert!(
            log.contains(&format!("wedged-{}", p.0)),
            "cast from {p} was lost across the view change"
        );
    }
}

#[test]
fn double_crash_including_new_leader() {
    let mut c = cluster(6, IsisConfig::default(), 59);
    let gid = c.gid;
    // Kill the coordinator, and moments later its successor.
    c.sim.crash(c.pids[0]);
    c.sim.run_for(SimDuration::from_millis(300));
    c.sim.crash(c.pids[1]);
    c.await_membership(4, SimDuration::from_secs(120));
    let v = c.sim.process(c.pids[2]).view_of(gid).unwrap();
    assert_eq!(v.coordinator(), c.pids[2]);
    assert_eq!(v.size(), 4);
}

#[test]
fn cast_acks_reach_resiliency_threshold() {
    let mut c = cluster(5, IsisConfig::quiet(), 61);
    let gid = c.gid;
    let s = c.pids[0];
    c.sim.invoke(s, |p, ctx| {
        p.cast_acked(gid, CastKind::Causal, "need-acks".into(), ctx)
            .unwrap();
    });
    settle_long(&mut c);
    let acks = &c.sim.process(s).app().acks;
    // 4 peers each ack once; the app sees cumulative counts 1..=4.
    let counts: Vec<usize> = acks.iter().map(|(_, c)| *c).collect();
    assert_eq!(counts, vec![1, 2, 3, 4]);
}

// ---------------------------------------------------------------------
// Partitions
// ---------------------------------------------------------------------

#[test]
fn majority_partition_continues_minority_stalls() {
    let mut c = cluster(5, IsisConfig::partition_safe(), 71);
    let gid = c.gid;
    // Isolate two members.
    let minority_nodes = vec![c.nodes[3], c.nodes[4]];
    c.sim.set_partition(Partition::split(minority_nodes));
    c.sim.run_for(SimDuration::from_secs(20));

    // Majority side forms a 3-view and keeps working.
    for &p in &c.pids[..3] {
        let v = c.sim.process(p).view_of(gid).expect("majority keeps view");
        assert_eq!(v.size(), 3, "majority view at {p}");
    }
    let s = c.pids[0];
    c.sim.invoke(s, |p, ctx| {
        p.cast(gid, CastKind::Total, "majority-rules".into(), ctx)
            .unwrap();
    });
    c.sim.run_for(SimDuration::from_secs(5));
    for &p in &c.pids[..3] {
        assert!(c
            .sim
            .process(p)
            .app()
            .payloads(gid)
            .contains(&"majority-rules".to_string()));
    }

    // Minority side stalled rather than forming a split-brain view.
    for &p in &c.pids[3..] {
        let proc_ = c.sim.process(p);
        let stalled = proc_.app().stalled.contains(&gid);
        let still_old_view = proc_
            .view_of(gid)
            .is_some_and(|v| v.size() == 5);
        assert!(
            stalled || still_old_view,
            "{p} must not form a minority view"
        );
        assert!(
            !proc_.app().payloads(gid).contains(&"majority-rules".to_string()),
            "partitioned member received majority traffic"
        );
    }
}

#[test]
fn without_partition_safety_both_sides_diverge_by_design() {
    // Documents the failure-detector-trusting mode: a partition splits the
    // group into two independent views (the behaviour the primary-partition
    // rule exists to prevent).
    let mut c = cluster(4, IsisConfig::default(), 73);
    let gid = c.gid;
    c.sim
        .set_partition(Partition::split(vec![c.nodes[2], c.nodes[3]]));
    c.sim.run_for(SimDuration::from_secs(20));
    let va = c.sim.process(c.pids[0]).view_of(gid).unwrap();
    let vb = c.sim.process(c.pids[2]).view_of(gid).unwrap();
    assert_eq!(va.size(), 2);
    assert_eq!(vb.size(), 2);
    assert!(va.members != vb.members);
}

// ---------------------------------------------------------------------
// Liveness bookkeeping
// ---------------------------------------------------------------------

#[test]
fn heartbeats_keep_stable_buffers_bounded() {
    let mut c = cluster(4, IsisConfig::default(), 83);
    let gid = c.gid;
    for i in 0..50 {
        let s = c.pids[i % 4];
        c.sim.invoke(s, |p, ctx| {
            p.cast(gid, CastKind::Causal, format!("x{i}"), ctx).unwrap();
        });
        c.sim.run_for(SimDuration::from_millis(20));
    }
    // Let several heartbeat rounds propagate stability.
    c.sim.run_for(SimDuration::from_secs(5));
    for &p in &c.pids {
        let buffered = c.sim.process(p).relay_buffer_len(gid);
        assert!(
            buffered <= 8,
            "{p} retains {buffered} messages despite stability"
        );
    }
}

#[test]
fn quiet_config_sends_no_background_traffic() {
    let mut c = cluster(4, IsisConfig::quiet(), 89);
    let before = c.sim.stats().messages_sent;
    c.sim.run_for(SimDuration::from_secs(30));
    let after = c.sim.stats().messages_sent;
    assert_eq!(before, after, "quiet config must be silent when idle");
}

#[test]
fn harness_reported_suspicion_drives_view_change_in_quiet_mode() {
    let mut c = cluster(4, IsisConfig::quiet(), 97);
    let gid = c.gid;
    let victim = c.pids[3];
    c.sim.crash(victim);
    // No heartbeats: survivors must be told.
    for &p in &c.pids.clone()[..3] {
        c.sim.invoke(p, |proc_, ctx| {
            proc_.report_suspect(gid, victim, ctx).unwrap();
        });
    }
    c.await_membership(3, SimDuration::from_secs(60));
    assert_eq!(
        c.sim.process(c.pids[0]).view_of(gid).unwrap().size(),
        3
    );
}

#[test]
fn deterministic_replay_same_seed_same_history() {
    let run = |seed: u64| {
        let mut c = cluster_lan(5, IsisConfig::default(), seed);
        let gid = c.gid;
        for i in 0..10 {
            let s = c.pids[i % 5];
            c.sim.invoke(s, |p, ctx| {
                p.cast(gid, CastKind::Total, format!("d{i}"), ctx).unwrap();
            });
        }
        c.sim.crash(c.pids[4]);
        c.await_membership(4, SimDuration::from_secs(60));
        settle_long(&mut c);
        (
            c.sim.stats().messages_sent,
            c.live_logs(),
            c.sim.now(),
        )
    };
    assert_eq!(run(4242), run(4242));
}

#[test]
fn group_survives_total_silence_then_resumes() {
    let mut c = cluster(3, IsisConfig::default(), 101);
    let gid = c.gid;
    c.sim.run_until(SimTime(0) + SimDuration::from_secs(120));
    // Nobody was falsely suspected during two minutes of idling.
    for &p in &c.pids {
        assert_eq!(c.sim.process(p).view_of(gid).unwrap().size(), 3);
    }
    c.cast_and_settle(c.pids[1], CastKind::Total, "still-alive");
    for (_, log) in c.live_logs() {
        assert!(log.contains(&"still-alive".to_string()));
    }
}

#[test]
fn undetected_restart_rejoins_midview_without_double_delivery() {
    // A member dies and a fresh incarnation rejoins before the failure
    // detector notices: the view still contains the pid, so the join is
    // served by the idempotent branch of `handle_join_forward` — an
    // install of the *current* view with a mid-stream state snapshot.
    // The install's delivery floor must start the rejoiner at the
    // snapshot cut; without it, the next flush re-relays messages whose
    // effects the snapshot already contains and the application applies
    // them twice.
    let mut c = cluster(3, IsisConfig::default(), 4_242);
    let gid = c.gid;
    let contact = c.pids[0];
    let victim = c.pids[2];

    c.cast_and_settle(c.pids[0], CastKind::Total, "pre");
    let view_before = c
        .sim
        .process(contact)
        .view_of(gid)
        .expect("member")
        .view_id;

    c.sim.crash(victim);
    // Cast while the victim is down: delivered by the survivors and
    // folded into the rejoin snapshot, but unstable — the silent view
    // member holds the stability floor down — so the next flush will
    // carry it in its relay set.
    c.sim
        .invoke(c.pids[1], move |p, ctx| {
            p.cast(gid, CastKind::Total, "while-down".into(), ctx)
                .expect("caster is a member")
        })
        .expect("caster is alive");
    c.sim.run_for(SimDuration::from_millis(50));

    // A fresh incarnation rejoins well inside the detection timeout.
    assert_eq!(
        c.sim.restart_with(
            victim,
            isis_core::IsisProcess::new(
                isis_core::testutil::RecorderApp::default(),
                IsisConfig::default(),
            ),
        ),
        Some(1)
    );
    c.sim
        .invoke(victim, move |p, ctx| {
            p.join(gid, contact, ctx).expect("group exists")
        })
        .expect("restarted");
    c.sim.run_for(SimDuration::from_millis(100));

    // The group never noticed the death: same view id, and the snapshot
    // carried the survivors' deliveries.
    assert!(c.sim.process(victim).is_member(gid));
    assert_eq!(
        c.sim.process(contact).view_of(gid).expect("member").view_id,
        view_before
    );
    let imported = c
        .sim
        .process(victim)
        .app()
        .imported
        .clone()
        .expect("rejoin carried state");
    assert!(imported.contains(&"while-down".to_string()));

    // Force a flush: a newcomer joins, and the still-unstable casts ride
    // the view change's relay set past every member — including the
    // rejoiner, whose floor must recognize them as already applied.
    let node = c.sim.add_nodes(1)[0];
    let newcomer = c.sim.spawn(
        node,
        isis_core::IsisProcess::new(
            isis_core::testutil::RecorderApp::default(),
            IsisConfig::default(),
        ),
    );
    c.sim
        .invoke(newcomer, move |p, ctx| {
            p.join(gid, contact, ctx).expect("group exists")
        })
        .expect("spawned");
    c.settle();

    // Post-rejoin traffic flows; nothing from the snapshot was delivered
    // a second time.
    c.cast_and_settle(c.pids[1], CastKind::Total, "post");
    assert_eq!(
        c.sim.process(victim).app().payloads(gid),
        vec!["post".to_string()],
        "rejoiner re-applied snapshot-covered messages"
    );
}
