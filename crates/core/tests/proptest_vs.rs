//! Property-based tests: virtual synchrony invariants must hold under
//! arbitrary schedules of casts, crashes, and pauses.
//!
//! Payloads encode `(kind, sender, op-index)` so the checker can verify
//! per-stream ordering constraints from delivered logs alone.

use isis_core::testutil::{cluster_lan, Cluster};
use isis_core::{CastKind, IsisConfig};
use now_sim::{Pid, SimDuration};
use now_sim::detprop::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Member `who % alive` casts with kind `kind % 3`.
    Cast { who: usize, kind: usize },
    /// Crash member `who % alive` (bounded count).
    Crash { who: usize },
    /// Advance simulated time.
    Wait { ms: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0usize..8, 0usize..3).prop_map(|(who, kind)| Op::Cast { who, kind }),
        1 => (0usize..8).prop_map(|who| Op::Crash { who }),
        3 => (1u64..300).prop_map(|ms| Op::Wait { ms }),
    ]
}

fn kind_of(idx: usize) -> CastKind {
    match idx {
        0 => CastKind::Fifo,
        1 => CastKind::Causal,
        _ => CastKind::Total,
    }
}

fn kind_tag(idx: usize) -> &'static str {
    match idx {
        0 => "f",
        1 => "c",
        _ => "t",
    }
}

/// Runs the schedule and returns the cluster plus the set of members that
/// stayed alive throughout.
fn run_schedule(ops: &[Op], seed: u64) -> (Cluster, Vec<Pid>) {
    const N: usize = 5;
    const MAX_CRASHES: usize = 2;
    let mut c = cluster_lan(N, IsisConfig::default(), seed);
    let gid = c.gid;
    let mut crashes = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Cast { who, kind } => {
                let alive = c.live_members();
                let p = alive[who % alive.len()];
                let payload = format!("{}-s{}-i{}", kind_tag(*kind), p.0, i);
                let k = kind_of(*kind);
                c.sim.invoke(p, move |proc_, ctx| {
                    let _ = proc_.cast(gid, k, payload, ctx);
                });
            }
            Op::Crash { who } => {
                if crashes < MAX_CRASHES {
                    let alive = c.live_members();
                    if alive.len() > N - MAX_CRASHES {
                        let p = alive[who % alive.len()];
                        c.sim.crash(p);
                        crashes += 1;
                    }
                }
            }
            Op::Wait { ms } => {
                c.sim.run_for(SimDuration::from_millis(*ms));
            }
        }
    }
    // Let membership and deliveries settle completely.
    let expect = c.live_members().len();
    c.await_membership(expect, SimDuration::from_secs(120));
    c.sim.run_for(SimDuration::from_secs(30));
    let survivors = c.live_members();
    (c, survivors)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn virtual_synchrony_invariants_hold(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..10_000,
    ) {
        let (c, survivors) = run_schedule(&ops, seed);
        let gid = c.gid;
        let logs: Vec<(Pid, Vec<String>)> = survivors
            .iter()
            .map(|&p| (p, c.sim.process(p).app().payloads(gid)))
            .collect();

        // Invariant 1: no duplicates anywhere.
        for (p, log) in &logs {
            let mut sorted = log.clone();
            sorted.sort();
            let before = sorted.len();
            sorted.dedup();
            prop_assert_eq!(before, sorted.len(), "duplicate delivery at {}", p);
        }

        // Invariant 2: all-or-nothing agreement on every payload.
        let mut universe: Vec<String> = logs
            .iter()
            .flat_map(|(_, l)| l.iter().cloned())
            .collect();
        universe.sort();
        universe.dedup();
        for payload in &universe {
            let holders = logs.iter().filter(|(_, l)| l.contains(payload)).count();
            prop_assert!(
                holders == logs.len(),
                "payload {} delivered at {}/{} survivors",
                payload, holders, logs.len()
            );
        }

        // Invariant 3: total-order stream identical at every survivor.
        let totals: Vec<Vec<&String>> = logs
            .iter()
            .map(|(_, l)| l.iter().filter(|m| m.starts_with("t-")).collect())
            .collect();
        for t in &totals[1..] {
            prop_assert_eq!(&totals[0], t, "ABCAST order diverged");
        }

        // Invariant 4: per-sender order within each stream (op index in the
        // payload increases monotonically per (kind, sender)).
        for (p, log) in &logs {
            use std::collections::HashMap;
            let mut last: HashMap<(char, u32), usize> = HashMap::new();
            for m in log {
                let kind = m.as_bytes()[0] as char;
                let rest = &m[3..];
                let (s, i) = rest.split_once("-i").expect("payload format");
                let sender: u32 = s.parse().expect("sender id");
                let idx: usize = i.parse().expect("op index");
                if let Some(prev) = last.insert((kind, sender), idx) {
                    prop_assert!(
                        prev < idx,
                        "{}: stream ({}, s{}) delivered out of order",
                        p, kind, sender
                    );
                }
            }
        }
    }
}
