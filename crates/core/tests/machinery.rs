//! Deeper isis-core machinery tests: multi-group processes, stale and
//! cross-view traffic, message categories, state transfer under load,
//! and client-style direct traffic.

use isis_core::testutil::{cluster, RecorderApp};
use isis_core::{CastKind, GroupId, IsisConfig, IsisProcess};
use now_sim::{Pid, Sim, SimConfig, SimDuration, SimTime};

#[test]
fn one_process_in_many_groups() {
    // Three groups with overlapping membership; traffic in each stays in
    // each, and the per-group logs are independent.
    let mut sim: Sim<IsisProcess<RecorderApp>> = Sim::new(SimConfig::ideal(1));
    let nodes = sim.add_nodes(4);
    let pids: Vec<Pid> = nodes
        .iter()
        .map(|&n| sim.spawn(n, IsisProcess::with_defaults(RecorderApp::default())))
        .collect();
    let (g1, g2, g3) = (GroupId(1), GroupId(2), GroupId(3));
    sim.invoke(pids[0], move |p, ctx| p.create_group(g1, ctx).unwrap());
    sim.invoke(pids[0], move |p, ctx| p.create_group(g2, ctx).unwrap());
    sim.invoke(pids[1], move |p, ctx| p.create_group(g3, ctx).unwrap());
    let contact = pids[0];
    for &p in &pids[1..3] {
        sim.invoke(p, move |proc_, ctx| proc_.join(g1, contact, ctx).unwrap());
    }
    sim.invoke(pids[3], move |p, ctx| p.join(g2, contact, ctx).unwrap());
    let c1 = pids[1];
    sim.invoke(pids[2], move |p, ctx| p.join(g3, c1, ctx).unwrap());
    sim.run_for(SimDuration::from_secs(20));

    assert_eq!(sim.process(pids[0]).group_ids(), vec![g1, g2]);
    assert_eq!(sim.process(pids[1]).group_ids(), vec![g1, g3]);

    sim.invoke(pids[0], move |p, ctx| {
        p.cast(g1, CastKind::Total, "to-g1".into(), ctx).unwrap();
        p.cast(g2, CastKind::Total, "to-g2".into(), ctx).unwrap();
    });
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(sim.process(pids[1]).app().payloads(g1), vec!["to-g1"]);
    assert!(sim.process(pids[1]).app().payloads(g2).is_empty());
    assert_eq!(sim.process(pids[3]).app().payloads(g2), vec!["to-g2"]);
}

#[test]
fn per_category_send_counters_are_populated() {
    let mut c = cluster(3, IsisConfig::default(), 5);
    let _gid = c.gid;
    c.cast_and_settle(c.pids[0], CastKind::Total, "x");
    c.cast_and_settle(c.pids[1], CastKind::Causal, "y");
    c.sim.run_for(SimDuration::from_secs(2));
    let st = c.sim.stats();
    assert!(st.counter("isis.sent.cast_total") >= 2);
    assert!(st.counter("isis.sent.abcast_order") >= 2);
    assert!(st.counter("isis.sent.cast_causal") >= 2);
    assert!(st.counter("isis.sent.heartbeat") > 0);
    assert!(st.counter("isis.sent.install") >= 2, "joins installed views");
}

#[test]
fn direct_messages_bypass_groups() {
    let mut c = cluster(2, IsisConfig::quiet(), 7);
    let (a, b) = (c.pids[0], c.pids[1]);
    c.sim.invoke(a, move |p, ctx| {
        p.send_direct(b, "psst".into(), ctx);
    });
    c.sim.run_for(SimDuration::from_secs(1));
    assert_eq!(c.sim.process(b).app().directs, vec![(a, "psst".to_string())]);
    // No group delivery happened.
    assert!(c.sim.process(b).app().payloads(c.gid).is_empty());
}

#[test]
fn state_transfer_reflects_all_prior_deliveries_under_load() {
    let mut c = cluster(3, IsisConfig::default(), 11);
    let gid = c.gid;
    for i in 0..25 {
        let s = c.pids[i % 3];
        c.sim.invoke(s, move |p, ctx| {
            p.cast(gid, CastKind::Total, format!("h{i}"), ctx).unwrap();
        });
    }
    c.sim.run_for(SimDuration::from_secs(5));
    // Join mid-stream while more casts are flowing.
    let nd = c.sim.add_nodes(1)[0];
    let newbie = c
        .sim
        .spawn(nd, IsisProcess::with_defaults(RecorderApp::default()));
    let contact = c.pids[0];
    c.sim.invoke(newbie, move |p, ctx| p.join(gid, contact, ctx).unwrap());
    for i in 25..35 {
        let s = c.pids[i % 3];
        c.sim.invoke(s, move |p, ctx| {
            let _ = p.cast(gid, CastKind::Total, format!("h{i}"), ctx);
        });
        c.sim.run_for(SimDuration::from_millis(100));
    }
    c.pids.push(newbie);
    c.await_membership(4, SimDuration::from_secs(60));
    c.sim.run_for(SimDuration::from_secs(10));

    // The newbie's snapshot plus its own deliveries cover the full stream
    // with no gaps or duplicates.
    let app = c.sim.process(newbie).app();
    let mut all: Vec<String> = app.imported.clone().unwrap_or_default();
    all.extend(app.payloads(gid));
    let mut sorted = all.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), all.len(), "snapshot/delivery overlap");
    assert_eq!(all.len(), 35, "snapshot + deliveries must cover everything");
}

#[test]
fn stale_group_traffic_after_leaving_is_ignored() {
    let mut c = cluster(3, IsisConfig::default(), 13);
    let gid = c.gid;
    let leaver = c.pids[2];
    c.sim.invoke(leaver, move |p, ctx| p.leave(gid, ctx).unwrap());
    c.await_membership(2, SimDuration::from_secs(60));
    let before = c.sim.process(leaver).app().payloads(gid).len();
    c.cast_and_settle(c.pids[0], CastKind::Total, "post-leave");
    assert_eq!(
        c.sim.process(leaver).app().payloads(gid).len(),
        before,
        "a departed member must not receive group casts"
    );
}

#[test]
fn acked_cast_counts_survivors_only() {
    let mut c = cluster(5, IsisConfig::default(), 17);
    let gid = c.gid;
    let s = c.pids[0];
    // Crash one member, then fire an acked cast: at most 3 acks arrive.
    c.sim.crash(c.pids[4]);
    c.await_membership(4, SimDuration::from_secs(60));
    c.sim.invoke(s, move |p, ctx| {
        p.cast_acked(gid, CastKind::Causal, "count-me".into(), ctx)
            .unwrap();
    });
    c.sim.run_for(SimDuration::from_secs(5));
    let max_acks = c
        .sim
        .process(s)
        .app()
        .acks
        .iter()
        .map(|(_, n)| *n)
        .max()
        .unwrap_or(0);
    assert_eq!(max_acks, 3, "acks from the three live peers");
}

#[test]
fn wire_sizes_feed_the_byte_counters() {
    let mut c = cluster(3, IsisConfig::quiet(), 19);
    let gid = c.gid;
    c.sim.stats_mut().reset_window();
    let big = "x".repeat(2_000);
    c.sim.invoke(c.pids[0], move |p, ctx| {
        p.cast(gid, CastKind::Fifo, big, ctx).unwrap();
    });
    c.sim.run_for(SimDuration::from_secs(2));
    let st = c.sim.stats();
    assert!(
        st.bytes_sent >= 4_000,
        "two copies of a 2 KB payload: {} bytes",
        st.bytes_sent
    );
}

#[test]
fn causal_delay_counter_fires_under_cross_site_topology() {
    // a and b share a site; c is remote. b's reply (caused by a's message)
    // can reach c before a's original: the causal buffer must hold it.
    let mut sim: Sim<IsisProcess<RecorderApp>> = Sim::new(SimConfig::lan(23));
    let n_a = sim.add_node(now_sim::SiteId(0));
    let n_b = sim.add_node(now_sim::SiteId(0));
    let n_c = sim.add_node(now_sim::SiteId(1));
    let a = sim.spawn(n_a, IsisProcess::with_defaults(RecorderApp::default()));
    let b = sim.spawn(n_b, IsisProcess::with_defaults(RecorderApp::default()));
    let c = sim.spawn(n_c, IsisProcess::with_defaults(RecorderApp::default()));
    let gid = GroupId(1);
    sim.invoke(a, move |p, ctx| p.create_group(gid, ctx).unwrap());
    for &p in &[b, c] {
        sim.invoke(p, move |proc_, ctx| proc_.join(gid, a, ctx).unwrap());
    }
    let deadline = SimTime(0) + SimDuration::from_secs(120);
    while sim.now() < deadline {
        let ok = [a, b, c]
            .iter()
            .all(|&p| sim.process(p).view_of(gid).is_some_and(|v| v.size() == 3));
        if ok {
            break;
        }
        sim.step();
    }
    let mut delayed_total = 0;
    for round in 0..40 {
        // a sends a large m1 (slow over the WAN); b replies with a tiny m2
        // as soon as it sees m1.
        let payload = "m".repeat(1_500) + &round.to_string();
        sim.invoke(a, move |p, ctx| {
            let _ = p.cast(gid, CastKind::Causal, payload, ctx);
        });
        let before = sim.process(b).app().payloads(gid).len();
        let d2 = sim.now() + SimDuration::from_secs(5);
        while sim.process(b).app().payloads(gid).len() == before && sim.now() < d2 {
            sim.step();
        }
        sim.invoke(b, move |p, ctx| {
            let _ = p.cast(gid, CastKind::Causal, format!("r{round}"), ctx);
        });
        sim.run_for(SimDuration::from_millis(200));
        delayed_total = sim.stats().counter("isis.causal_delayed");
    }
    sim.run_for(SimDuration::from_secs(10));
    assert!(
        delayed_total > 0,
        "the topology must force at least one causally-held delivery"
    );
    // And the remote member still saw every m before its r.
    let log = sim.process(c).app().payloads(gid);
    for round in 0..40 {
        let m = log.iter().position(|x| x.ends_with(&round.to_string()) && x.starts_with('m'));
        let r = log.iter().position(|x| *x == format!("r{round}"));
        if let (Some(mi), Some(ri)) = (m, r) {
            assert!(mi < ri, "round {round}: reply before cause at {mi}/{ri}");
        }
    }
}
