//! The end-to-end seeded-bug pipeline proof:
//!
//! 1. seed a protocol fault (a divergent `ViewInstall` forged on leader
//!    crash — [`Sabotage::DivergentViewOnLeaderCrash`]),
//! 2. the fuzzer's generated scenarios find it,
//! 3. the delta-debugging shrinker reduces the violating schedule to a
//!    fraction of its original length,
//! 4. the shrunk scenario replays as a failing regression while the fault
//!    is present, and as a clean run once it is reverted.
//!
//! If any stage of this stops working — the monitors go blind, the
//! shrinker over-shrinks past the violation, replay loses determinism —
//! this test fails before a real bug gets the chance to slip through.

use now_chaos::gen::{generate, FAMILIES};
use now_chaos::run::{run_scenario, Sabotage};
use now_chaos::scenario::{Fault, Scenario, Step, Target};
use now_chaos::shrink::{shrink, ShrinkBudget};
use now_sim::detprop::ProptestConfig;

/// A deliberately noisy scenario whose only load-bearing step is a leader
/// crash; everything else is decoration the shrinker should strip.
fn noisy_leader_crash() -> Scenario {
    let mut steps = vec![Step {
        id: 0,
        after: vec![],
        at_us: 300_000,
        fault: Fault::Crash { target: Target::Leader(1) },
    }];
    for id in 1..8u32 {
        steps.push(Step {
            id,
            after: if id > 4 { vec![id - 4] } else { vec![] },
            at_us: u64::from(id) * 80_000,
            fault: Fault::Storm {
                origin: Target::Member(id),
                msgs: 4,
                gap_us: 15_000,
            },
        });
    }
    Scenario {
        family: "pipeline-test".into(),
        seed: 41,
        members: 6,
        resiliency: 3,
        max_leaf: 3,
        horizon_us: 2_500_000,
        steps,
    }
}

#[test]
fn seeded_bug_is_found_shrunk_and_replayable() {
    let sc = noisy_leader_crash();
    let sabotaged = |s: &Scenario| {
        run_scenario(s, Sabotage::DivergentViewOnLeaderCrash)
            .is_ok_and(|r| !r.is_clean())
    };

    // 1+2. The fuzzer pipeline finds the seeded fault.
    let rep = run_scenario(&sc, Sabotage::DivergentViewOnLeaderCrash).expect("resolves");
    assert!(!rep.is_clean(), "seeded divergence must be detected");
    assert_eq!(rep.violations[0].monitor, "VS-VIEW");
    assert!(
        rep.ops_applied < rep.ops_total,
        "fail-fast: hostility stops at the first violation \
         ({} of {} ops applied)",
        rep.ops_applied,
        rep.ops_total
    );

    // 3. The shrinker reduces the schedule to ≤ 25% of its length — the
    // budget honoring detprop's max_shrink_iters knob end to end.
    let budget = ShrinkBudget::from(&ProptestConfig { cases: 1, max_shrink_iters: 400 });
    assert_eq!(budget, ShrinkBudget::new(400));
    let shrunk = shrink(&sc, budget, sabotaged);
    assert!(
        shrunk.reduction() <= 0.25,
        "shrunk {} of {} steps (reduction {:.2})",
        shrunk.scenario.len(),
        shrunk.original_len,
        shrunk.reduction()
    );
    assert!(shrunk.iters_used <= 400);

    // The surviving schedule still contains a leader-group crash — the
    // trigger of the seeded fault.
    assert!(shrunk.scenario.steps.iter().any(|s| matches!(
        s.fault,
        Fault::Crash { target: Target::Leader(_) | Target::RootRep }
    )));

    // 4a. The shrunk counterexample replays as a failing regression while
    // the fault is in place, byte-stable through the corpus text format.
    let reparsed =
        Scenario::parse(&shrunk.scenario.to_text()).expect("shrunk scenario round-trips");
    assert_eq!(reparsed, shrunk.scenario);
    let replay = run_scenario(&reparsed, Sabotage::DivergentViewOnLeaderCrash)
        .expect("resolves");
    assert!(!replay.is_clean(), "shrunk counterexample must still fail");
    assert_eq!(replay.violations[0].monitor, "VS-VIEW");
    assert_eq!(replay.violations[0].pids.first().copied(), Some(4242));

    // 4b. With the fault reverted (no sabotage), the same scenario is
    // clean — the regression stays red exactly as long as the bug exists.
    let reverted = run_scenario(&reparsed, Sabotage::None).expect("resolves");
    assert!(
        reverted.is_clean(),
        "reverted fault must replay clean, got {:?}",
        reverted.violations
    );
}

/// A deliberately noisy scenario whose load-bearing core is one
/// crash→restart pair; the storms are decoration the shrinker strips.
fn noisy_crash_restart() -> Scenario {
    let mut steps = vec![
        Step {
            id: 0,
            after: vec![],
            at_us: 200_000,
            fault: Fault::Crash { target: Target::Member(1) },
        },
        Step {
            id: 1,
            after: vec![0],
            at_us: 0,
            fault: Fault::Restart { target: Target::Member(0), delay_us: 400_000 },
        },
    ];
    for id in 2..8u32 {
        steps.push(Step {
            id,
            after: if id > 5 { vec![id - 4] } else { vec![] },
            at_us: u64::from(id) * 90_000,
            fault: Fault::Storm {
                origin: Target::Member(id),
                msgs: 4,
                gap_us: 15_000,
            },
        });
    }
    Scenario {
        family: "pipeline-rejoin-test".into(),
        seed: 53,
        members: 6,
        resiliency: 2,
        max_leaf: 3,
        horizon_us: 2_500_000,
        steps,
    }
}

#[test]
fn seeded_resurrection_is_found_shrunk_and_replayable() {
    let sc = noisy_crash_restart();
    let sabotaged = |s: &Scenario| {
        run_scenario(s, Sabotage::StaleResurrectionOnRestart).is_ok_and(|r| !r.is_clean())
    };

    // 1+2. The forged resurrection is detected by VS-REJOIN.
    let rep = run_scenario(&sc, Sabotage::StaleResurrectionOnRestart).expect("resolves");
    assert!(!rep.is_clean(), "seeded resurrection must be detected");
    assert_eq!(rep.violations[0].monitor, "VS-REJOIN");

    // 3. The shrinker strips the decoration; the crash→restart pair (the
    // trigger) survives.
    let shrunk = shrink(&sc, ShrinkBudget::new(400), sabotaged);
    assert!(
        shrunk.reduction() <= 0.5,
        "shrunk {} of {} steps (reduction {:.2})",
        shrunk.scenario.len(),
        shrunk.original_len,
        shrunk.reduction()
    );
    assert!(shrunk
        .scenario
        .steps
        .iter()
        .any(|s| matches!(s.fault, Fault::Restart { .. })));

    // 4a. The shrunk counterexample replays as a failing regression,
    // byte-stable through the corpus text format.
    let reparsed =
        Scenario::parse(&shrunk.scenario.to_text()).expect("shrunk scenario round-trips");
    assert_eq!(reparsed, shrunk.scenario);
    let replay =
        run_scenario(&reparsed, Sabotage::StaleResurrectionOnRestart).expect("resolves");
    assert!(!replay.is_clean(), "shrunk counterexample must still fail");
    assert_eq!(replay.violations[0].monitor, "VS-REJOIN");

    // 4b. Without the seeded bug the same scenario is clean.
    let reverted = run_scenario(&reparsed, Sabotage::None).expect("resolves");
    assert!(
        reverted.is_clean(),
        "reverted fault must replay clean, got {:?}",
        reverted.violations
    );
}

#[test]
fn generated_scenarios_also_surface_the_seeded_bug() {
    // Not just the hand-built scenario: the generator's own families that
    // crash leader-group members trip the seeded fault too.
    let mut found = 0;
    for i in 0..10u64 {
        let sc = generate("rep-chain-kill", i, 77);
        let rep = run_scenario(&sc, Sabotage::DivergentViewOnLeaderCrash).expect("resolves");
        if !rep.is_clean() {
            found += 1;
        }
    }
    assert!(found > 0, "no rep-chain-kill scenario tripped the seeded bug");
}

#[test]
fn sweep_families_are_clean_without_sabotage() {
    // A miniature of the CI gate: every family, a few indices each, zero
    // violations against the real stack.
    for family in FAMILIES {
        for i in 0..3u64 {
            let sc = generate(family, i, 5);
            let rep = run_scenario(&sc, Sabotage::None).expect("resolves");
            assert!(
                rep.is_clean(),
                "{family}#{i} violated: {}",
                rep.violations[0]
            );
        }
    }
}
