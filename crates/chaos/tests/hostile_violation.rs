//! `now_trace::monitor::Violation` under injected hostility.
//!
//! Extends the `trace_inject.rs` acceptance probe from a quiet cluster to
//! an actively hostile one: the network is flapping (via the seeded
//! `now_sim::failure::partition_flaps` schedule) while a divergent
//! `ViewInstall` is forged mid-turbulence. The monitors must stay silent
//! about the *legitimate* turbulence, catch the forgery, name the
//! offending pids, and hand back a causal excerpt that survives the noise.

use isis_core::IsisConfig;
use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::large_cluster_with;
use now_sim::{failure, DetRng, NodeId, SimConfig, SimDuration};
use now_trace::{EventKind, Tracer, ViolationMode};

use now_chaos::run::{run_scenario, Sabotage};
use now_chaos::scenario::{Fault, Scenario, Step, Target};

#[test]
fn forged_install_during_partition_flaps_yields_an_excerpted_violation() {
    let mut c = large_cluster_with(
        6,
        LargeGroupConfig::new(2, 4).with_leaf_band(2, 3),
        IsisConfig::partition_safe(),
        SimConfig::ideal(137),
    );
    c.sim.set_tracer(
        Tracer::new()
            .with_monitors(ViolationMode::Record)
            .retain_all(),
    );

    // Hostility: a seeded flap schedule isolating one member's node.
    let minority: Vec<NodeId> = vec![c.sim.node_of(c.members[1])];
    let mut rng = DetRng::seed_from_u64(137);
    // Phases must outlast the failure detectors, or the flap is invisible
    // to the membership layer and no view ever changes.
    let plan = failure::partition_flaps(
        &minority,
        c.sim.now() + SimDuration::from_millis(50),
        SimDuration::from_millis(2_500),
        SimDuration::from_millis(100),
        2,
        &mut rng,
    );
    assert!(plan.last().is_some_and(|p| p.partition.is_healed()));
    for p in plan {
        c.sim.schedule_partition(p.at, p.partition);
    }
    // Traffic through the turbulence, then reconvergence.
    let origin = c.members[0];
    c.lbcast(origin, "mid-flap");
    c.run_for(SimDuration::from_secs(6));
    c.lbcast(origin, "post-heal");
    c.run_for(SimDuration::from_secs(6));

    let tracer = c.sim.tracer_mut().expect("tracer attached");
    assert!(
        tracer.violations().is_empty(),
        "legitimate flapping must not trip the monitors: {:?}",
        tracer.violations()
    );

    // Mid-hostility forgery: divergent membership for an agreed view.
    let install = tracer
        .events()
        .into_iter()
        .rev()
        .find(|e| matches!(e.kind, EventKind::ViewInstall { .. }))
        .expect("the flap caused traced view changes");
    let EventKind::ViewInstall { gid, view, members, .. } = install.kind.clone() else {
        unreachable!("matched ViewInstall above");
    };
    let mut forged = members;
    forged.push(4242);
    tracer.inject(
        install.at + 1,
        4242,
        Some(install.seq),
        EventKind::ViewInstall { gid, view, members: forged, joined: false },
    );

    let v = tracer
        .violations()
        .iter()
        .find(|v| v.monitor == "VS-VIEW")
        .expect("forged install caught despite ambient turbulence");
    assert_eq!(v.pids[0], 4242, "offender named first");
    assert!(v.pids.len() >= 2, "an agreeing installer is co-named");
    assert!(
        v.detail.contains("4242"),
        "detail names the offender: {}",
        v.detail
    );
    assert!(
        v.excerpt.iter().any(|e| e.seq == install.seq),
        "excerpt reaches back to the genuine install"
    );
    assert!(
        v.excerpt.last().is_some_and(|e| e.pid == 4242),
        "excerpt ends at the offending event"
    );
}

#[test]
fn scenario_level_flap_with_sabotage_names_offenders_end_to_end() {
    // The same property through the full chaos pipeline: a flap scenario
    // plus a leader crash, with the seeded divergence armed. The violation
    // that comes back out of `run_scenario` carries the offender pids and
    // a non-empty excerpt — no manual tracer handling anywhere.
    let sc = Scenario {
        family: "flap-sabotage".into(),
        seed: 61,
        members: 6,
        resiliency: 2,
        max_leaf: 3,
        horizon_us: 2_500_000,
        steps: vec![
            Step {
                id: 0,
                after: vec![],
                at_us: 100_000,
                fault: Fault::PartitionFlap {
                    cell: vec![Target::Member(2)],
                    period_us: 250_000,
                    flaps: 2,
                },
            },
            Step {
                id: 1,
                after: vec![0],
                at_us: 0,
                fault: Fault::Crash { target: Target::Leader(0) },
            },
        ],
    };
    let rep = run_scenario(&sc, Sabotage::DivergentViewOnLeaderCrash).expect("resolves");
    assert!(!rep.is_clean(), "seeded divergence under flap must be caught");
    let v = &rep.violations[0];
    assert_eq!(v.monitor, "VS-VIEW");
    assert_eq!(v.pids.first().copied(), Some(4242), "offender named first");
    assert!(!v.excerpt.is_empty(), "violation carries its causal excerpt");
    assert!(
        v.excerpt.last().is_some_and(|e| e.pid == 4242),
        "excerpt ends at the offending event"
    );

    // And without the sabotage the identical hostile scenario is clean.
    let clean = run_scenario(&sc, Sabotage::None).expect("resolves");
    assert!(clean.is_clean(), "got {:?}", clean.violations);
}
