//! Deterministic scenario generation: seven families of hostile schedules.
//!
//! Each family encodes one adversarial idea from the virtual-synchrony
//! failure model — correlated crashes inside one leaf, a flapping
//! partition that straddles the leader group, a crash landing inside the
//! flush window another crash just opened, killing every successive root
//! representative, a broadcast storm riding a split/heal, a mixed
//! churn grab-bag, and crash-recover churn where workstations die and
//! come back under fresh incarnations while traffic flows. Every scenario is a pure function of `(family, index,
//! base_seed)`: the per-scenario RNG is seeded from an FNV-1a hash of the
//! three, so sweep workers can partition the index space without
//! coordination and any report line identifies a replayable input.

use now_sim::{DetRng, Rng};

use crate::scenario::{Fault, Scenario, Step, Target};

/// The scenario families, in sweep round-robin order.
pub const FAMILIES: [&str; 7] = [
    "correlated-crashes",
    "leader-flap",
    "crash-during-flush",
    "rep-chain-kill",
    "storm-split-merge",
    "churn-mix",
    "crash-recover-churn",
];

/// FNV-1a over the identifying triple; the per-scenario seed.
pub fn scenario_seed(family: &str, index: u64, base_seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(family.as_bytes());
    eat(&index.to_le_bytes());
    eat(&base_seed.to_le_bytes());
    h
}

/// Generates the `index`-th scenario of `family` under `base_seed`.
///
/// # Panics
///
/// Panics on an unknown family name; callers iterate [`FAMILIES`].
pub fn generate(family: &str, index: u64, base_seed: u64) -> Scenario {
    let seed = scenario_seed(family, index, base_seed);
    let mut rng = DetRng::seed_from_u64(seed);
    let members = rng.gen_range(4..=9u32);
    let resiliency = rng.gen_range(2..=3u32);
    let max_leaf = rng.gen_range(3..=4u32);
    let mut sc = Scenario {
        family: family.to_string(),
        seed,
        members,
        resiliency,
        max_leaf,
        horizon_us: 3_000_000,
        steps: Vec::new(),
    };
    match family {
        "correlated-crashes" => correlated_crashes(&mut sc, &mut rng),
        "leader-flap" => leader_flap(&mut sc, &mut rng),
        "crash-during-flush" => crash_during_flush(&mut sc, &mut rng),
        "rep-chain-kill" => rep_chain_kill(&mut sc, &mut rng),
        "storm-split-merge" => storm_split_merge(&mut sc, &mut rng),
        "churn-mix" => churn_mix(&mut sc, &mut rng),
        "crash-recover-churn" => crash_recover_churn(&mut sc, &mut rng),
        other => panic!("unknown scenario family {other:?}"),
    }
    sc
}

/// A rack power failure: every member of one leaf dies within a tight
/// window, then a storm probes whether the survivors still agree.
fn correlated_crashes(sc: &mut Scenario, rng: &mut DetRng) {
    let anchor = rng.gen_range(0..sc.members);
    sc.steps.push(Step {
        id: 0,
        after: vec![],
        at_us: rng.gen_range(50_000..300_000),
        fault: Fault::CorrelatedCrash {
            targets: vec![Target::LeafOf(anchor)],
            spread_us: rng.gen_range(1_000..50_000),
        },
    });
    sc.steps.push(Step {
        id: 1,
        after: vec![0],
        at_us: 0,
        fault: Fault::Storm {
            origin: Target::Member(anchor + 1),
            msgs: rng.gen_range(3..10),
            gap_us: rng.gen_range(5_000..20_000),
        },
    });
}

/// A flapping partition that isolates part of the leader group, with
/// member traffic in flight; ends healed so reconvergence is also checked.
fn leader_flap(sc: &mut Scenario, rng: &mut DetRng) {
    let mut cell = vec![Target::Leader(rng.gen_range(0..sc.resiliency))];
    if rng.gen_bool(0.5) {
        cell.push(Target::Member(rng.gen_range(0..sc.members)));
    }
    sc.steps.push(Step {
        id: 0,
        after: vec![],
        at_us: rng.gen_range(50_000..200_000),
        fault: Fault::PartitionFlap {
            cell,
            period_us: rng.gen_range(150_000..400_000),
            flaps: rng.gen_range(2..=4),
        },
    });
    sc.steps.push(Step {
        id: 1,
        after: vec![],
        at_us: rng.gen_range(100_000..400_000),
        fault: Fault::Storm {
            origin: Target::Member(rng.gen_range(0..sc.members)),
            msgs: rng.gen_range(3..8),
            gap_us: rng.gen_range(20_000..80_000),
        },
    });
    sc.steps.push(Step { id: 2, after: vec![0], at_us: 0, fault: Fault::Heal });
}

/// A crash opens a flush; a second crash lands inside the flush window.
fn crash_during_flush(sc: &mut Scenario, rng: &mut DetRng) {
    let first = rng.gen_range(0..sc.members);
    let at = rng.gen_range(100_000..400_000);
    sc.steps.push(Step {
        id: 0,
        after: vec![],
        at_us: at,
        fault: Fault::Crash { target: Target::Member(first) },
    });
    // The view change triggered by step 0 is in progress: hit a sibling of
    // the same leaf (forcing the same flush to restart) moments later.
    sc.steps.push(Step {
        id: 1,
        after: vec![0],
        at_us: at + rng.gen_range(2_000..30_000),
        fault: Fault::Crash { target: Target::Member(first + 1) },
    });
    sc.steps.push(Step {
        id: 2,
        after: vec![],
        at_us: at.saturating_sub(20_000),
        fault: Fault::Storm {
            origin: Target::Member(first + 2),
            msgs: rng.gen_range(2..6),
            gap_us: rng.gen_range(10_000..40_000),
        },
    });
}

/// Kills whoever is the root representative, waits for the takeover, and
/// kills the successor too — a chain of `RootRep` crashes.
fn rep_chain_kill(sc: &mut Scenario, rng: &mut DetRng) {
    let kills = rng.gen_range(2..=3u32).min(sc.resiliency);
    let mut prev: Option<u32> = None;
    for i in 0..kills {
        sc.steps.push(Step {
            id: i,
            after: prev.into_iter().collect(),
            // Give each takeover time to complete before chasing it.
            at_us: rng.gen_range(200_000..600_000) * u64::from(i + 1),
            fault: Fault::Crash { target: Target::RootRep },
        });
        prev = Some(i);
    }
}

/// A broadcast storm while the membership is splitting and re-merging.
fn storm_split_merge(sc: &mut Scenario, rng: &mut DetRng) {
    let minority = Target::Member(rng.gen_range(0..sc.members));
    let at = rng.gen_range(50_000..200_000);
    sc.steps.push(Step {
        id: 0,
        after: vec![],
        at_us: at,
        fault: Fault::PartitionFlap {
            cell: vec![minority],
            period_us: rng.gen_range(200_000..500_000),
            flaps: rng.gen_range(1..=2),
        },
    });
    sc.steps.push(Step {
        id: 1,
        after: vec![],
        at_us: at,
        fault: Fault::Storm {
            origin: Target::Member(rng.gen_range(0..sc.members)),
            msgs: rng.gen_range(5..15),
            gap_us: rng.gen_range(10_000..50_000),
        },
    });
    sc.steps.push(Step { id: 2, after: vec![0], at_us: 0, fault: Fault::Heal });
}

/// Three to five independent faults with random dependency edges — the
/// unopinionated remainder of the space.
fn churn_mix(sc: &mut Scenario, rng: &mut DetRng) {
    let n = rng.gen_range(3..=5u32);
    for id in 0..n {
        // Edges only point at earlier ids, so the DAG is acyclic by
        // construction.
        let after = if id > 0 && rng.gen_bool(0.4) {
            vec![rng.gen_range(0..id)]
        } else {
            vec![]
        };
        let fault = match rng.gen_range(0..5u32) {
            0 => Fault::Crash { target: random_target(sc, rng) },
            1 => Fault::CorrelatedCrash {
                targets: vec![Target::LeafOf(rng.gen_range(0..sc.members))],
                spread_us: rng.gen_range(1_000..30_000),
            },
            2 => Fault::PartitionFlap {
                cell: vec![random_target(sc, rng)],
                period_us: rng.gen_range(100_000..300_000),
                flaps: rng.gen_range(1..=3),
            },
            3 => Fault::Storm {
                origin: Target::Member(rng.gen_range(0..sc.members)),
                msgs: rng.gen_range(2..8),
                gap_us: rng.gen_range(10_000..60_000),
            },
            _ => Fault::Heal,
        };
        sc.steps.push(Step {
            id,
            after,
            at_us: rng.gen_range(0..1_500_000),
            fault,
        });
    }
}

/// Workstations die and reboot under fresh incarnations while traffic
/// flows: one to three crash→restart pairs, each restart gated on its
/// crash, with storms riding the churn. Sometimes the restart lands while
/// a *second* crash's flush is still open — the rejoin must thread a
/// membership change already in progress.
fn crash_recover_churn(sc: &mut Scenario, rng: &mut DetRng) {
    let pairs = rng.gen_range(1..=3u32);
    let mut id = 0;
    for p in 0..pairs {
        let victim = rng.gen_range(0..sc.members);
        let crash_id = id;
        sc.steps.push(Step {
            id: crash_id,
            after: vec![],
            at_us: rng.gen_range(50_000..500_000) + u64::from(p) * 300_000,
            fault: Fault::Crash { target: Target::Member(victim) },
        });
        // The dead pool is index 0 right after this crash when pairs run
        // sequentially; under overlap any dead member is a fine comeback.
        sc.steps.push(Step {
            id: crash_id + 1,
            after: vec![crash_id],
            at_us: 0,
            fault: Fault::Restart {
                target: Target::Member(rng.gen_range(0..sc.members)),
                delay_us: rng.gen_range(100_000..800_000),
            },
        });
        id += 2;
    }
    sc.steps.push(Step {
        id,
        after: vec![],
        at_us: rng.gen_range(0..600_000),
        fault: Fault::Storm {
            origin: Target::Member(rng.gen_range(0..sc.members)),
            msgs: rng.gen_range(3..10),
            gap_us: rng.gen_range(10_000..60_000),
        },
    });
}

fn random_target(sc: &Scenario, rng: &mut DetRng) -> Target {
    match rng.gen_range(0..4u32) {
        0 => Target::Member(rng.gen_range(0..sc.members)),
        1 => Target::Leader(rng.gen_range(0..sc.resiliency)),
        2 => Target::RootRep,
        _ => Target::LeafOf(rng.gen_range(0..sc.members)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_resolvable_scenarios() {
        for family in FAMILIES {
            for i in 0..50u64 {
                let sc = generate(family, i, 1);
                assert!(!sc.is_empty(), "{family}#{i} has no steps");
                sc.schedule()
                    .unwrap_or_else(|e| panic!("{family}#{i} does not resolve: {e}"));
                assert!(sc.members >= 4 && sc.resiliency >= 2);
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_triple() {
        for family in FAMILIES {
            assert_eq!(generate(family, 3, 9), generate(family, 3, 9));
            assert_ne!(generate(family, 3, 9), generate(family, 4, 9));
            assert_ne!(generate(family, 3, 9), generate(family, 3, 10));
        }
    }

    #[test]
    fn scenarios_round_trip_through_the_corpus_format() {
        for family in FAMILIES {
            let sc = generate(family, 17, 2);
            let back = crate::scenario::Scenario::parse(&sc.to_text())
                .unwrap_or_else(|| panic!("{family} text form does not parse"));
            assert_eq!(back, sc);
        }
    }

    #[test]
    fn seeds_differ_across_families() {
        let seeds: std::collections::BTreeSet<u64> = FAMILIES
            .iter()
            .map(|f| scenario_seed(f, 0, 0))
            .collect();
        assert_eq!(seeds.len(), FAMILIES.len());
    }
}
