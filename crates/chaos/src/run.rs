//! Executes one scenario against the isis-hier stack with the now-trace
//! virtual-synchrony monitors armed as oracles.
//!
//! The runner builds a real `LargeCluster` (with `IsisConfig::
//! partition_safe()` — without the primary-partition rule a split network
//! would *legitimately* diverge and VS-PRIM would be meaningless), arms a
//! recording tracer once formation is complete, then walks the scenario's
//! resolved schedule applying each fault. Targets are resolved against the
//! live cluster at fire time, so `rootrep` means "whoever holds the role
//! *now*" — a rep-chain-kill really does chase successive takeovers.
//!
//! The monitors run in fail-fast style: after each applied operation the
//! runner checks for accumulated violations and stops injecting further
//! hostility, so a counterexample's report points at the first offending
//! op rather than the pile-up after it.
//!
//! [`Sabotage`] is the seeded-bug hook for the end-to-end pipeline test:
//! with `DivergentViewOnLeaderCrash`, the crash of a leader-group member
//! additionally forges a divergent `ViewInstall` into the trace — the kind
//! of protocol bug the monitors exist to catch — so tests can prove
//! fuzzer → violation → shrinker → regression replay without leaving a
//! real bug in the tree.

use std::collections::BTreeMap;

use now_sim::{failure, DetRng, NodeId, Partition, Pid, SimConfig, SimDuration, SimTime};
use now_trace::{EventKind, MsgKey, Tracer, Violation, ViolationMode};

use isis_core::IsisConfig;
use isis_hier::config::LargeGroupConfig;
use isis_hier::harness::{large_cluster_with, LargeCluster};

use crate::scenario::{Fault, Scenario, ScheduleError, Target};

/// Optional seeded protocol fault, used to prove the pipeline end-to-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// Run the stack as-is (the CI sweep).
    #[default]
    None,
    /// When a live leader-group member is crashed by a `crash` step, forge
    /// a `ViewInstall` that diverges from the genuine one (same group and
    /// view id, different membership, reported by pid 4242). VS-VIEW must
    /// flag it; if it does not, the oracle pipeline is broken.
    DivergentViewOnLeaderCrash,
    /// When a `restart` step revives a member, re-inject its last
    /// pre-crash `CastDeliver` right after the respawn — a zombie replaying
    /// its previous life's traffic before rejoining. VS-REJOIN must flag
    /// it; if it does not, the incarnation oracle is broken.
    StaleResurrectionOnRestart,
}

/// What one scenario execution produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Monitor violations, in detection order (empty on a clean run).
    pub violations: Vec<Violation>,
    /// Trace event census: event-kind name → occurrences.
    pub census: BTreeMap<&'static str, u64>,
    /// Operations applied before the run finished or failed fast.
    pub ops_applied: usize,
    /// Total operations the scenario expanded to.
    pub ops_total: usize,
}

impl RunReport {
    /// Whether the monitors stayed silent.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One expanded, concrete operation on the timeline.
#[derive(Clone, Debug)]
enum Op {
    Crash(Target),
    Flap { cell: Vec<Target>, period_us: u64, flaps: u32 },
    Lbcast { origin: Target, tag: u32 },
    Heal,
    Restart(Target),
}

/// Runs `sc` and reports what the monitors saw.
///
/// # Errors
///
/// Returns the scenario's [`ScheduleError`] when its DAG cannot resolve.
pub fn run_scenario(sc: &Scenario, sabotage: Sabotage) -> Result<RunReport, ScheduleError> {
    let ops = expand(sc)?;
    let mut c = build_cluster(sc);

    // Arm the oracles only once the group is formed: formation itself is
    // covered by the harness asserts, and an unarmed formation keeps the
    // hostile phase's trace focused on the faults.
    c.sim.set_tracer(
        Tracer::new()
            .with_monitors(ViolationMode::Record)
            .retain_all(),
    );

    let t0 = c.sim.now();
    let mut rng = DetRng::seed_from_u64(sc.seed ^ 0x6368_616f_735f_7278);
    let mut ops_applied = 0;
    let mut sabotaged = false;
    for (at_us, op) in &ops {
        c.run_until(t0 + SimDuration::from_micros(*at_us));
        apply(&mut c, op, &mut rng, sabotage, &mut sabotaged);
        ops_applied += 1;
        if c.sim.tracer().is_some_and(|t| !t.violations().is_empty()) {
            break; // fail fast: stop injecting, report the first offender
        }
    }

    // Settle: heal everything and give the stack time to reconverge with
    // the monitors still watching — late divergence is still a violation.
    c.sim.set_partition(Partition::connected());
    let last = ops.last().map_or(0, |(t, _)| *t);
    let end = t0 + SimDuration::from_micros(sc.horizon_us.max(last));
    c.run_until(end);
    c.run_for(SimDuration::from_secs(3));

    let tracer = c.sim.take_tracer().unwrap_or_default();
    let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in tracer.events() {
        *census.entry(ev.kind.name()).or_insert(0) += 1;
    }
    Ok(RunReport {
        violations: tracer.violations().to_vec(),
        census,
        ops_applied,
        ops_total: ops.len(),
    })
}

/// Expands the resolved step DAG into concrete timed operations, using the
/// `now_sim::failure` schedule helpers (jitter-free, so the expansion is a
/// pure function of the scenario).
fn expand(sc: &Scenario) -> Result<Vec<(u64, Op)>, ScheduleError> {
    let mut ops: Vec<(u64, Op)> = Vec::new();
    for (start, step) in sc.schedule()? {
        match &step.fault {
            Fault::Crash { target } => ops.push((start, Op::Crash(*target))),
            Fault::CorrelatedCrash { targets, spread_us } => {
                let k = targets.len() as u64;
                for (i, t) in targets.iter().enumerate() {
                    // Evenly spread across the window; a single target
                    // crashes at the window start.
                    let dt = if k > 1 { spread_us * i as u64 / (k - 1) } else { 0 };
                    ops.push((start + dt, Op::Crash(*t)));
                }
            }
            Fault::PartitionFlap { cell, period_us, flaps } => ops.push((
                start,
                Op::Flap { cell: cell.clone(), period_us: *period_us, flaps: *flaps },
            )),
            Fault::Storm { origin, msgs, gap_us } => {
                let mut rng = DetRng::seed_from_u64(sc.seed ^ step.id as u64);
                let times = failure::storm_times(
                    *msgs,
                    SimTime(start),
                    SimDuration::from_micros(*gap_us),
                    SimDuration::ZERO,
                    &mut rng,
                );
                for (i, t) in times.iter().enumerate() {
                    ops.push((t.0, Op::Lbcast { origin: *origin, tag: i as u32 }));
                }
            }
            Fault::Heal => ops.push((start, Op::Heal)),
            Fault::Restart { target, delay_us } => {
                ops.push((start + delay_us, Op::Restart(*target)))
            }
        }
    }
    ops.sort_by_key(|(t, _)| *t);
    Ok(ops)
}

fn build_cluster(sc: &Scenario) -> LargeCluster {
    let r = (sc.resiliency as usize).max(1);
    let max_leaf = (sc.max_leaf as usize).max(2);
    let min_leaf = 2.min(max_leaf);
    let cfg = LargeGroupConfig::new(r, max_leaf.max(r)).with_leaf_band(min_leaf, max_leaf);
    large_cluster_with(
        sc.members as usize,
        cfg,
        IsisConfig::partition_safe(),
        SimConfig::ideal(sc.seed),
    )
}

fn apply(
    c: &mut LargeCluster,
    op: &Op,
    rng: &mut DetRng,
    sabotage: Sabotage,
    sabotaged: &mut bool,
) {
    match op {
        Op::Crash(target) => {
            for pid in resolve(c, *target) {
                let was_leader = c.leaders.contains(&pid) && c.sim.is_alive(pid);
                c.sim.crash(pid);
                if was_leader
                    && sabotage == Sabotage::DivergentViewOnLeaderCrash
                    && !*sabotaged
                {
                    forge_divergent_view(c);
                    *sabotaged = true;
                }
            }
        }
        Op::Flap { cell, period_us, flaps } => {
            let nodes: Vec<NodeId> = resolve_many(c, cell)
                .into_iter()
                .map(|p| c.sim.node_of(p))
                .collect();
            if nodes.is_empty() {
                return;
            }
            let now = c.sim.now();
            let plan = failure::partition_flaps(
                &nodes,
                now,
                SimDuration::from_micros((*period_us).max(1)),
                SimDuration::ZERO,
                (*flaps).max(1),
                rng,
            );
            for p in plan {
                c.sim.schedule_partition(p.at, p.partition);
            }
        }
        Op::Lbcast { origin, tag } => {
            if let Some(pid) = resolve(c, *origin).first().copied() {
                let _ = c.lbcast(pid, &format!("storm-{tag}"));
            }
        }
        Op::Heal => c.sim.set_partition(Partition::connected()),
        Op::Restart(target) => {
            for pid in resolve_dead(c, *target) {
                if c.restart_member(pid).is_some()
                    && sabotage == Sabotage::StaleResurrectionOnRestart
                    && !*sabotaged
                {
                    forge_stale_resurrection(c, pid);
                    *sabotaged = true;
                }
            }
        }
    }
}

/// Resolves a role to the pids it denotes *right now*; dead or unresolvable
/// roles resolve to nothing and the op is skipped.
fn resolve(c: &LargeCluster, t: Target) -> Vec<Pid> {
    let live_members = c.live_members();
    let live_leaders: Vec<Pid> = c
        .leaders
        .iter()
        .copied()
        .filter(|&l| c.sim.is_alive(l))
        .collect();
    match t {
        Target::Member(i) => pick(&live_members, i),
        Target::Leader(i) => pick(&live_leaders, i),
        Target::RootRep => c
            .root_rep()
            .filter(|&p| c.sim.is_alive(p))
            .map(|p| vec![p])
            .unwrap_or_else(|| pick(&live_leaders, 0)),
        Target::LeafOf(i) => {
            let Some(&m) = live_members.get(i as usize % live_members.len().max(1)) else {
                return Vec::new();
            };
            let Some(leaf) = c.sim.process(m).app().leaf_of(c.lgid) else {
                return vec![m];
            };
            live_members
                .iter()
                .copied()
                .filter(|&p| c.sim.process(p).app().leaf_of(c.lgid) == Some(leaf))
                .collect()
        }
    }
}

/// Restart resolution is the mirror of [`resolve`]: a role picks among the
/// *crashed* members (there is nothing to restart among the living). A
/// `leafof` role restarts one dead member like `member` — its rack-mates
/// are gone with it, and the runner models one workstation rebooting.
fn resolve_dead(c: &LargeCluster, t: Target) -> Vec<Pid> {
    let dead_members: Vec<Pid> = c
        .members
        .iter()
        .copied()
        .filter(|&p| !c.sim.is_alive(p))
        .collect();
    let dead_leaders: Vec<Pid> = c
        .leaders
        .iter()
        .copied()
        .filter(|&p| !c.sim.is_alive(p))
        .collect();
    match t {
        Target::Member(i) | Target::LeafOf(i) => pick(&dead_members, i),
        Target::Leader(i) => pick(&dead_leaders, i),
        // "Whoever was root rep" is unknowable once it is dead; take the
        // first fallen leader, mirroring resolve's leader fallback.
        Target::RootRep => pick(&dead_leaders, 0),
    }
}

fn resolve_many(c: &LargeCluster, ts: &[Target]) -> Vec<Pid> {
    let mut out: Vec<Pid> = ts.iter().flat_map(|&t| resolve(c, t)).collect();
    out.sort();
    out.dedup();
    out
}

fn pick(pool: &[Pid], i: u32) -> Vec<Pid> {
    if pool.is_empty() {
        Vec::new()
    } else {
        vec![pool[i as usize % pool.len()]]
    }
}

/// The seeded bug: a `ViewInstall` that disagrees with a genuine install
/// about the membership of the same (group, view). Derived from the last
/// real install when one was observed since arming, otherwise a synthetic
/// pair on a group of its own — either way VS-VIEW must flag pid 4242.
fn forge_divergent_view(c: &mut LargeCluster) {
    let Some(tracer) = c.sim.tracer_mut() else { return };
    let last_install = tracer
        .events()
        .into_iter()
        .rev()
        .find(|ev| matches!(ev.kind, EventKind::ViewInstall { .. }));
    match last_install {
        Some(ev) => {
            if let EventKind::ViewInstall { gid, view, mut members, .. } = ev.kind {
                members.push(4242);
                tracer.inject(
                    ev.at + 1,
                    4242,
                    Some(ev.seq),
                    EventKind::ViewInstall { gid, view, members, joined: false },
                );
            }
        }
        None => {
            let at = 1;
            let base = tracer.inject(
                at,
                4241,
                None,
                EventKind::ViewInstall {
                    gid: 999_999,
                    view: 1,
                    members: vec![4241, 4242],
                    joined: true,
                },
            );
            tracer.inject(
                at + 1,
                4242,
                Some(base),
                EventKind::ViewInstall {
                    gid: 999_999,
                    view: 1,
                    members: vec![4241, 4242, 4243],
                    joined: true,
                },
            );
        }
    }
}

/// The seeded resurrection: right after `pid` respawns — before it can
/// install any post-restart view — replay its last pre-crash
/// `CastDeliver` as if the zombie picked up where its old life stopped.
/// Falls back to a synthetic delivery when the old life never delivered
/// anything; either way the pid has no rejoin view yet, so VS-REJOIN must
/// flag the delivery.
fn forge_stale_resurrection(c: &mut LargeCluster, pid: Pid) {
    let now = c.sim.now();
    let Some(tracer) = c.sim.tracer_mut() else { return };
    let prior = tracer
        .events()
        .into_iter()
        .rev()
        .find(|ev| ev.pid == pid.0 && matches!(ev.kind, EventKind::CastDeliver { .. }));
    let (cause, kind) = match prior {
        Some(ev) => (Some(ev.seq), ev.kind),
        None => (
            None,
            EventKind::CastDeliver {
                gid: 999_998,
                view: 1,
                msg: MsgKey { sender: pid.0, view: 1, stream: 2, seq: 1 },
                gseq: 1,
                relay: false,
                vt: Vec::new(),
            },
        ),
    };
    tracer.inject(now.0 + 1, pid.0, cause, kind);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Step;

    fn tiny(seed: u64, steps: Vec<Step>) -> Scenario {
        Scenario {
            family: "test".into(),
            seed,
            members: 5,
            resiliency: 2,
            max_leaf: 3,
            horizon_us: 2_000_000,
            steps,
        }
    }

    #[test]
    fn clean_scenario_produces_no_violations_and_a_census() {
        let sc = tiny(
            11,
            vec![
                Step {
                    id: 0,
                    after: vec![],
                    at_us: 100_000,
                    fault: Fault::Storm { origin: Target::Member(0), msgs: 5, gap_us: 10_000 },
                },
                Step {
                    id: 1,
                    after: vec![0],
                    at_us: 0,
                    fault: Fault::Crash { target: Target::Member(2) },
                },
            ],
        );
        let rep = run_scenario(&sc, Sabotage::None).expect("resolves");
        assert!(rep.is_clean(), "violations: {:?}", rep.violations);
        assert_eq!(rep.ops_applied, rep.ops_total);
        // The storm's broadcasts show up in the census.
        assert!(rep.census.get("LBCAST_SUBMIT").copied().unwrap_or(0) >= 5);
        assert!(rep.census.get("NET_DELIVER").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let sc = tiny(
            23,
            vec![Step {
                id: 0,
                after: vec![],
                at_us: 50_000,
                fault: Fault::PartitionFlap {
                    cell: vec![Target::Member(1)],
                    period_us: 200_000,
                    flaps: 2,
                },
            }],
        );
        let a = run_scenario(&sc, Sabotage::None).expect("resolves");
        let b = run_scenario(&sc, Sabotage::None).expect("resolves");
        assert_eq!(a.census, b.census, "same scenario+seed must replay identically");
        assert_eq!(a.violations.len(), b.violations.len());
    }

    #[test]
    fn crash_then_restart_rejoins_cleanly_under_the_monitors() {
        let sc = tiny(
            31,
            vec![
                Step {
                    id: 0,
                    after: vec![],
                    at_us: 100_000,
                    fault: Fault::Crash { target: Target::Member(1) },
                },
                Step {
                    id: 1,
                    after: vec![0],
                    at_us: 0,
                    fault: Fault::Restart { target: Target::Member(0), delay_us: 400_000 },
                },
                Step {
                    id: 2,
                    after: vec![1],
                    at_us: 0,
                    fault: Fault::Storm { origin: Target::Member(0), msgs: 3, gap_us: 20_000 },
                },
            ],
        );
        let rep = run_scenario(&sc, Sabotage::None).expect("resolves");
        assert!(rep.is_clean(), "violations: {:?}", rep.violations);
        assert_eq!(rep.census.get("RESTART").copied().unwrap_or(0), 1);
        assert!(
            rep.census.get("REJOIN_COMPLETE").copied().unwrap_or(0) >= 1,
            "the restarted member must finish rejoining; census: {:?}",
            rep.census
        );
    }

    #[test]
    fn restart_with_nothing_dead_is_a_skip_not_a_panic() {
        let sc = tiny(
            37,
            vec![Step {
                id: 0,
                after: vec![],
                at_us: 100_000,
                fault: Fault::Restart { target: Target::Member(0), delay_us: 1_000 },
            }],
        );
        let rep = run_scenario(&sc, Sabotage::None).expect("resolves");
        assert!(rep.is_clean(), "violations: {:?}", rep.violations);
        assert_eq!(rep.census.get("RESTART").copied().unwrap_or(0), 0);
    }

    #[test]
    fn stale_resurrection_sabotage_trips_the_rejoin_monitor() {
        let sc = tiny(
            41,
            vec![
                Step {
                    id: 0,
                    after: vec![],
                    at_us: 50_000,
                    fault: Fault::Storm { origin: Target::Member(1), msgs: 4, gap_us: 10_000 },
                },
                Step {
                    id: 1,
                    after: vec![0],
                    at_us: 0,
                    fault: Fault::Crash { target: Target::Member(1) },
                },
                Step {
                    id: 2,
                    after: vec![1],
                    at_us: 0,
                    fault: Fault::Restart { target: Target::Member(0), delay_us: 300_000 },
                },
            ],
        );
        let rep =
            run_scenario(&sc, Sabotage::StaleResurrectionOnRestart).expect("resolves");
        assert!(!rep.is_clean(), "the seeded resurrection must be caught");
        let v = rep
            .violations
            .iter()
            .find(|v| v.monitor == "VS-REJOIN")
            .expect("VS-REJOIN among the violations");
        assert!(!v.pids.is_empty(), "offender named");
        // The identical scenario without the seeded bug is clean.
        let clean = run_scenario(&sc, Sabotage::None).expect("resolves");
        assert!(clean.is_clean(), "violations: {:?}", clean.violations);
    }

    #[test]
    fn sabotage_trips_the_view_monitor_with_the_offender_named() {
        let sc = tiny(
            7,
            vec![Step {
                id: 0,
                after: vec![],
                at_us: 100_000,
                fault: Fault::Crash { target: Target::Leader(1) },
            }],
        );
        let rep = run_scenario(&sc, Sabotage::DivergentViewOnLeaderCrash).expect("resolves");
        assert!(!rep.is_clean(), "the seeded divergence must be caught");
        let v = &rep.violations[0];
        assert_eq!(v.monitor, "VS-VIEW");
        assert_eq!(v.pids.first().copied(), Some(4242), "offender named first");
        // And the identical scenario without the seeded bug is clean.
        let clean = run_scenario(&sc, Sabotage::None).expect("resolves");
        assert!(clean.is_clean(), "violations: {:?}", clean.violations);
    }
}


