//! Scenario-level delta debugging: minimise a violating schedule while the
//! violation persists.
//!
//! The shrinker is generic over the oracle — a closure that re-runs a
//! candidate and reports whether it *still fails*. Candidates come in
//! three escalating gentleness tiers: drop a whole step (fixing up
//! dangling `after` edges), weaken a fault (fewer correlated targets,
//! fewer flaps, fewer storm messages), and shorten durations (halve start
//! offsets, periods, gaps, spreads). A candidate is kept iff the oracle
//! still reports the violation; passes repeat until a fixpoint or the
//! budget runs out, so the result is locally minimal within budget.
//!
//! The budget honours `now_sim::detprop::ProptestConfig::max_shrink_iters`
//! via the [`From`] impl — the knob that `detprop` itself accepts but
//! (documentedly) never uses, because detprop does no value-level
//! shrinking. Here every oracle re-run consumes one iteration.

use now_sim::detprop::ProptestConfig;

use crate::scenario::{Fault, Scenario};

/// Re-run budget for one shrink session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkBudget {
    /// Maximum number of oracle re-runs.
    pub max_iters: u32,
}

impl ShrinkBudget {
    /// The default budget when none is configured (`max_shrink_iters: 0`).
    pub const DEFAULT_ITERS: u32 = 256;

    /// A budget of exactly `max_iters` re-runs.
    pub fn new(max_iters: u32) -> ShrinkBudget {
        ShrinkBudget { max_iters }
    }
}

impl Default for ShrinkBudget {
    fn default() -> ShrinkBudget {
        ShrinkBudget::new(ShrinkBudget::DEFAULT_ITERS)
    }
}

impl From<&ProptestConfig> for ShrinkBudget {
    /// `max_shrink_iters` taken at face value; `0` (the detprop default)
    /// means "use this shrinker's default budget".
    fn from(cfg: &ProptestConfig) -> ShrinkBudget {
        if cfg.max_shrink_iters == 0 {
            ShrinkBudget::default()
        } else {
            ShrinkBudget::new(cfg.max_shrink_iters)
        }
    }
}

/// Outcome of a shrink session.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimised scenario (still failing per the oracle).
    pub scenario: Scenario,
    /// Oracle re-runs consumed.
    pub iters_used: u32,
    /// Step count before shrinking.
    pub original_len: usize,
}

impl ShrinkReport {
    /// `shrunk steps / original steps`, the reduction the pipeline test
    /// asserts on (≤ 0.25 for the seeded bug).
    pub fn reduction(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.scenario.len() as f64 / self.original_len as f64
        }
    }
}

/// Minimises `sc` under `oracle` (which must return `true` while the
/// violation persists). `sc` itself is assumed failing; the result is the
/// smallest variant found that still fails.
pub fn shrink(
    sc: &Scenario,
    budget: ShrinkBudget,
    mut oracle: impl FnMut(&Scenario) -> bool,
) -> ShrinkReport {
    let original_len = sc.len();
    let mut current = sc.clone();
    let mut iters = 0u32;
    loop {
        let mut improved = false;
        for cand in candidates(&current) {
            if iters >= budget.max_iters {
                return ShrinkReport { scenario: current, iters_used: iters, original_len };
            }
            iters += 1;
            if oracle(&cand) {
                current = cand;
                improved = true;
                break; // restart candidate enumeration from the smaller base
            }
        }
        if !improved {
            return ShrinkReport { scenario: current, iters_used: iters, original_len };
        }
    }
}

/// All one-mutation simplifications of `sc`, most aggressive first.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Tier 1: drop each step outright.
    for drop_id in sc.steps.iter().map(|s| s.id).collect::<Vec<_>>() {
        let mut c = sc.clone();
        c.steps.retain(|s| s.id != drop_id);
        for s in &mut c.steps {
            s.after.retain(|&d| d != drop_id);
        }
        if !c.is_empty() {
            out.push(c);
        }
    }
    // Tier 2: weaken each fault in place.
    for (i, step) in sc.steps.iter().enumerate() {
        for weakened in weaken(&step.fault) {
            let mut c = sc.clone();
            c.steps[i].fault = weakened;
            out.push(c);
        }
    }
    // Tier 3: shorten — halve the step's start offset.
    for (i, step) in sc.steps.iter().enumerate() {
        if step.at_us > 0 {
            let mut c = sc.clone();
            c.steps[i].at_us /= 2;
            out.push(c);
        }
    }
    out
}

/// Strictly-weaker variants of one fault (empty when already minimal).
fn weaken(f: &Fault) -> Vec<Fault> {
    match f {
        Fault::Crash { .. } | Fault::Heal => Vec::new(),
        Fault::CorrelatedCrash { targets, spread_us } => {
            let mut out = Vec::new();
            if targets.len() > 1 {
                out.push(Fault::CorrelatedCrash {
                    targets: targets[..targets.len() - 1].to_vec(),
                    spread_us: *spread_us,
                });
            }
            if *spread_us > 0 {
                out.push(Fault::CorrelatedCrash {
                    targets: targets.clone(),
                    spread_us: spread_us / 2,
                });
            }
            out
        }
        Fault::PartitionFlap { cell, period_us, flaps } => {
            let mut out = Vec::new();
            if *flaps > 1 {
                out.push(Fault::PartitionFlap {
                    cell: cell.clone(),
                    period_us: *period_us,
                    flaps: flaps / 2,
                });
            }
            if cell.len() > 1 {
                out.push(Fault::PartitionFlap {
                    cell: cell[..cell.len() - 1].to_vec(),
                    period_us: *period_us,
                    flaps: *flaps,
                });
            }
            if *period_us > 1_000 {
                out.push(Fault::PartitionFlap {
                    cell: cell.clone(),
                    period_us: period_us / 2,
                    flaps: *flaps,
                });
            }
            out
        }
        Fault::Storm { origin, msgs, gap_us } => {
            let mut out = Vec::new();
            if *msgs > 1 {
                out.push(Fault::Storm { origin: *origin, msgs: msgs / 2, gap_us: *gap_us });
            }
            if *gap_us > 1_000 {
                out.push(Fault::Storm { origin: *origin, msgs: *msgs, gap_us: gap_us / 2 });
            }
            out
        }
        Fault::Restart { target, delay_us } => {
            // A sooner comeback is the weaker fault: less time for the
            // cluster to drift from the dead member's last life.
            if *delay_us > 1_000 {
                vec![Fault::Restart { target: *target, delay_us: delay_us / 2 }]
            } else {
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Step, Target};

    /// A scenario with one load-bearing step (the crash of member 0) and a
    /// pile of irrelevant decoration.
    fn noisy() -> Scenario {
        let mut steps = vec![Step {
            id: 0,
            after: vec![],
            at_us: 400_000,
            fault: Fault::Crash { target: Target::Member(0) },
        }];
        for id in 1..8u32 {
            steps.push(Step {
                id,
                after: if id > 4 { vec![id - 4] } else { vec![] },
                at_us: u64::from(id) * 100_000,
                fault: Fault::Storm {
                    origin: Target::Member(id),
                    msgs: 8,
                    gap_us: 20_000,
                },
            });
        }
        Scenario {
            family: "noisy".into(),
            seed: 1,
            members: 8,
            resiliency: 2,
            max_leaf: 3,
            horizon_us: 2_000_000,
            steps,
        }
    }

    /// Oracle: "fails" iff a crash of member 0 is still present.
    fn crash_of_member0(sc: &Scenario) -> bool {
        sc.steps.iter().any(|s| {
            matches!(s.fault, Fault::Crash { target: Target::Member(0) })
        })
    }

    #[test]
    fn shrinks_to_the_load_bearing_step() {
        let sc = noisy();
        let rep = shrink(&sc, ShrinkBudget::default(), crash_of_member0);
        assert_eq!(rep.scenario.len(), 1, "only the crash survives");
        assert!(crash_of_member0(&rep.scenario));
        assert!(rep.reduction() <= 0.25, "reduction {}", rep.reduction());
        // Duration shortening applies to the survivor too.
        assert!(rep.scenario.steps[0].at_us < 400_000);
        // The result still resolves and round-trips.
        rep.scenario.schedule().expect("resolves");
        assert_eq!(
            Scenario::parse(&rep.scenario.to_text()).expect("parses"),
            rep.scenario
        );
    }

    #[test]
    fn dropping_a_dep_fixes_up_after_edges() {
        let sc = noisy();
        // Every candidate must resolve: dangling `after` refs would be a
        // ScheduleError.
        for c in candidates(&sc) {
            c.schedule().expect("candidate resolves");
        }
    }

    #[test]
    fn budget_is_honoured_and_reported() {
        let sc = noisy();
        let rep = shrink(&sc, ShrinkBudget::new(3), crash_of_member0);
        assert!(rep.iters_used <= 3);
        assert!(!rep.scenario.is_empty());
    }

    #[test]
    fn budget_comes_from_proptest_config() {
        let cfg = ProptestConfig { cases: 1, max_shrink_iters: 7 };
        assert_eq!(ShrinkBudget::from(&cfg), ShrinkBudget::new(7));
        // The detprop default (0) maps to this shrinker's default.
        assert_eq!(
            ShrinkBudget::from(&ProptestConfig::default()),
            ShrinkBudget::default()
        );
    }

    #[test]
    fn weakening_never_strengthens() {
        let storm = Fault::Storm { origin: Target::Member(0), msgs: 8, gap_us: 10_000 };
        for w in weaken(&storm) {
            if let Fault::Storm { msgs, gap_us, .. } = w {
                assert!(msgs <= 8 && gap_us <= 10_000);
                assert!(msgs < 8 || gap_us < 10_000);
            }
        }
        assert!(weaken(&Fault::Heal).is_empty());
        let restart = Fault::Restart { target: Target::Member(0), delay_us: 8_000 };
        for w in weaken(&restart) {
            if let Fault::Restart { delay_us, .. } = w {
                assert!(delay_us < 8_000);
            }
        }
        assert!(
            weaken(&Fault::Restart { target: Target::Member(0), delay_us: 500 }).is_empty(),
            "an immediate restart is already minimal"
        );
    }
}
