//! The scenario model: a composable graph (DAG) of timed fault tasks.
//!
//! A [`Scenario`] describes one hostile run: the cluster shape, the
//! hostility horizon, and a set of [`Step`]s. Each step carries a
//! [`Fault`] primitive, an earliest start offset, and `after` edges naming
//! steps that must *finish* before it may begin — so correlated
//! compositions ("crash the new rep right after the flap heals", "storm
//! while the split is open") are expressed structurally instead of by
//! hand-tuned absolute times. [`Scenario::schedule`] resolves the DAG into
//! absolute start offsets and rejects unknown or cyclic dependencies.
//!
//! Targets are *roles*, not pids: `rootrep` resolves to whoever is the
//! root representative when the fault fires, `leafof:N` to the current
//! leaf co-members of member N. Role resolution at execution time is what
//! keeps a scenario meaningful after the shrinker drops steps — the
//! surviving steps still name live roles.
//!
//! Scenarios serialise to a line-based text format (see
//! [`Scenario::to_text`]) so shrunk counterexamples can be checked in as a
//! replayable regression corpus.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Who a fault targets; resolved against the live cluster when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// The `i`-th ordinary member, modulo the current live membership.
    Member(u32),
    /// The `i`-th leader-group member, modulo the live leaders.
    Leader(u32),
    /// Whoever is acting as root representative at fire time.
    RootRep,
    /// Every live member currently sharing a leaf with member `i`
    /// (the correlated-crash scope: one workstation rack, one leaf).
    LeafOf(u32),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Member(i) => write!(f, "member:{i}"),
            Target::Leader(i) => write!(f, "leader:{i}"),
            Target::RootRep => write!(f, "rootrep"),
            Target::LeafOf(i) => write!(f, "leafof:{i}"),
        }
    }
}

impl Target {
    /// Parses the `Display` form back.
    pub fn parse(s: &str) -> Option<Target> {
        if s == "rootrep" {
            return Some(Target::RootRep);
        }
        let (kind, idx) = s.split_once(':')?;
        let i: u32 = idx.parse().ok()?;
        match kind {
            "member" => Some(Target::Member(i)),
            "leader" => Some(Target::Leader(i)),
            "leafof" => Some(Target::LeafOf(i)),
            _ => None,
        }
    }
}

/// One fault primitive — the adversary's vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Crash the resolved target (instantaneous).
    Crash {
        /// Who dies.
        target: Target,
    },
    /// Correlated crashes: every resolved target dies within `spread_us`,
    /// evenly spaced (a rack power failure, a bad kernel push to one leaf).
    CorrelatedCrash {
        /// Who dies, in order.
        targets: Vec<Target>,
        /// Window over which the crashes land, in simulated microseconds.
        spread_us: u64,
    },
    /// A flapping partition: the targets' workstations are split off and
    /// re-healed `flaps` times, each phase lasting `period_us`. Always ends
    /// healed.
    PartitionFlap {
        /// Roles whose nodes form the minority cell.
        cell: Vec<Target>,
        /// Phase length in simulated microseconds.
        period_us: u64,
        /// Number of split/heal cycles.
        flaps: u32,
    },
    /// A message storm: `msgs` large-group broadcasts submitted by the
    /// origin, `gap_us` apart (traffic burst during whatever else is
    /// happening — splits, merges, takeovers).
    Storm {
        /// Who floods.
        origin: Target,
        /// Number of broadcasts.
        msgs: u32,
        /// Spacing in simulated microseconds.
        gap_us: u64,
    },
    /// Heal all partitions immediately.
    Heal,
    /// Restart a previously crashed member under a fresh incarnation,
    /// `delay_us` after the step fires (recovery is the fault's mirror:
    /// the adversary controls *when* the workstation comes back too).
    Restart {
        /// Who comes back. Resolved against *crashed* members — a dead
        /// pid keeps its role index from the original membership.
        target: Target,
        /// Delay between the step firing and the respawn, in simulated
        /// microseconds.
        delay_us: u64,
    },
}

impl Fault {
    /// How long the fault occupies the timeline, in microseconds — the DAG
    /// uses `start + duration` as the step's end for `after` edges.
    pub fn duration_us(&self) -> u64 {
        match self {
            Fault::Crash { .. } | Fault::Heal => 0,
            Fault::Restart { delay_us, .. } => *delay_us,
            Fault::CorrelatedCrash { spread_us, .. } => *spread_us,
            Fault::PartitionFlap { period_us, flaps, .. } => {
                2 * u64::from(*flaps) * *period_us
            }
            Fault::Storm { msgs, gap_us, .. } => u64::from(msgs.saturating_sub(1)) * *gap_us,
        }
    }

    /// Short kind tag used in the text format and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Crash { .. } => "crash",
            Fault::CorrelatedCrash { .. } => "corr",
            Fault::PartitionFlap { .. } => "flap",
            Fault::Storm { .. } => "storm",
            Fault::Heal => "heal",
            Fault::Restart { .. } => "restart",
        }
    }
}

/// One node of the scenario DAG: a fault, an earliest start, and the steps
/// that must end before it begins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Stable id, referenced by `after` edges (unique within a scenario).
    pub id: u32,
    /// Ids of steps that must *end* before this one starts.
    pub after: Vec<u32>,
    /// Earliest start, in microseconds after hostility begins.
    pub at_us: u64,
    /// What happens.
    pub fault: Fault,
}

/// A complete adversarial scenario: cluster shape + fault DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Generator family name (or `corpus` for checked-in reproductions).
    pub family: String,
    /// Simulation seed: same scenario + same seed = byte-identical run.
    pub seed: u64,
    /// Ordinary member count.
    pub members: u32,
    /// Leader-group size / broadcast resiliency.
    pub resiliency: u32,
    /// Maximum leaf size before a split.
    pub max_leaf: u32,
    /// Hostility window in microseconds; the runner settles afterwards.
    pub horizon_us: u64,
    /// The fault DAG.
    pub steps: Vec<Step>,
}

/// Why a scenario's DAG failed to resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// Two steps share an id.
    DuplicateId(u32),
    /// An `after` edge names a step that does not exist.
    UnknownDep { step: u32, dep: u32 },
    /// The `after` edges contain a cycle through this step.
    Cycle(u32),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::DuplicateId(id) => write!(f, "duplicate step id {id}"),
            ScheduleError::UnknownDep { step, dep } => {
                write!(f, "step {step} depends on unknown step {dep}")
            }
            ScheduleError::Cycle(id) => write!(f, "dependency cycle through step {id}"),
        }
    }
}

impl Scenario {
    /// Number of steps — the "schedule length" the shrinker minimises.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the scenario has no steps at all.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Resolves the DAG into `(start_us, step)` pairs sorted by start time
    /// (ties broken by step id, so execution order is deterministic).
    ///
    /// A step starts at `max(at_us, max over deps of dep_start + dep
    /// duration)`; the result's last end never exceeds the scenario's
    /// effective horizon (the runner extends the run if the DAG pushes past
    /// `horizon_us`).
    pub fn schedule(&self) -> Result<Vec<(u64, Step)>, ScheduleError> {
        let mut by_id: BTreeMap<u32, &Step> = BTreeMap::new();
        for s in &self.steps {
            if by_id.insert(s.id, s).is_some() {
                return Err(ScheduleError::DuplicateId(s.id));
            }
        }
        for s in &self.steps {
            for &d in &s.after {
                if !by_id.contains_key(&d) {
                    return Err(ScheduleError::UnknownDep { step: s.id, dep: d });
                }
            }
        }
        // Iterative DFS-free resolution: repeatedly settle steps whose deps
        // are all resolved. Bounded by |steps| rounds; leftover = cycle.
        let mut start: BTreeMap<u32, u64> = BTreeMap::new();
        let mut remaining: BTreeSet<u32> = by_id.keys().copied().collect();
        loop {
            let mut settled = Vec::new();
            for &id in &remaining {
                let s = by_id[&id];
                if s.after.iter().all(|d| start.contains_key(d)) {
                    let dep_floor = s
                        .after
                        .iter()
                        .map(|d| start[d] + by_id[d].fault.duration_us())
                        .max()
                        .unwrap_or(0);
                    settled.push((id, s.at_us.max(dep_floor)));
                }
            }
            if settled.is_empty() {
                break;
            }
            for (id, t) in settled {
                start.insert(id, t);
                remaining.remove(&id);
            }
        }
        if let Some(&id) = remaining.iter().next() {
            return Err(ScheduleError::Cycle(id));
        }
        let mut out: Vec<(u64, Step)> = self
            .steps
            .iter()
            .map(|s| (start[&s.id], s.clone()))
            .collect();
        out.sort_by_key(|(t, s)| (*t, s.id));
        Ok(out)
    }

    /// The end of the latest-finishing step, per the resolved schedule.
    pub fn last_end_us(&self) -> u64 {
        self.schedule()
            .map(|sched| {
                sched
                    .iter()
                    .map(|(t, s)| t + s.fault.duration_us())
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(self.horizon_us)
    }

    /// Serialises to the corpus text format:
    ///
    /// ```text
    /// scenario family=leader-flap seed=9 members=6 resiliency=2 max_leaf=3 horizon=4000000
    /// step id=0 at=100000 after=- crash target=leader:0
    /// step id=1 at=0 after=0 flap cell=member:1,member:4 period=50000 flaps=4
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "scenario family={} seed={} members={} resiliency={} max_leaf={} horizon={}\n",
            self.family, self.seed, self.members, self.resiliency, self.max_leaf, self.horizon_us
        );
        for s in &self.steps {
            let after = if s.after.is_empty() {
                "-".to_string()
            } else {
                s.after
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("step id={} at={} after={} ", s.id, s.at_us, after));
            match &s.fault {
                Fault::Crash { target } => out.push_str(&format!("crash target={target}")),
                Fault::CorrelatedCrash { targets, spread_us } => out.push_str(&format!(
                    "corr targets={} spread={spread_us}",
                    targets.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
                )),
                Fault::PartitionFlap { cell, period_us, flaps } => out.push_str(&format!(
                    "flap cell={} period={period_us} flaps={flaps}",
                    cell.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
                )),
                Fault::Storm { origin, msgs, gap_us } => {
                    out.push_str(&format!("storm origin={origin} msgs={msgs} gap={gap_us}"))
                }
                Fault::Heal => out.push_str("heal"),
                Fault::Restart { target, delay_us } => {
                    out.push_str(&format!("restart target={target} delay={delay_us}"))
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format; `#`-prefixed and blank lines are comments.
    /// Returns `None` on any malformation.
    pub fn parse(text: &str) -> Option<Scenario> {
        let mut sc: Option<Scenario> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next()? {
                "scenario" => {
                    let f = kv_map(words)?;
                    sc = Some(Scenario {
                        family: f.get("family")?.to_string(),
                        seed: num(&f, "seed")?,
                        members: num(&f, "members")?,
                        resiliency: num(&f, "resiliency")?,
                        max_leaf: num(&f, "max_leaf")?,
                        horizon_us: num(&f, "horizon")?,
                        steps: Vec::new(),
                    });
                }
                "step" => {
                    // `step id=.. at=.. after=.. <kind> <kind args>`: split
                    // the fixed head from the fault tail on the kind word.
                    let rest: Vec<&str> = words.collect();
                    let head: Vec<&str> =
                        rest.iter().take_while(|w| w.contains('=')).copied().collect();
                    let tail = &rest[head.len()..];
                    let h = kv_map(head.into_iter())?;
                    let kind = tail.first()?;
                    let fargs = kv_map(tail[1..].iter().copied())?;
                    let fault = match *kind {
                        "crash" => Fault::Crash { target: Target::parse(fargs.get("target")?)? },
                        "corr" => Fault::CorrelatedCrash {
                            targets: target_list(fargs.get("targets")?)?,
                            spread_us: num(&fargs, "spread")?,
                        },
                        "flap" => Fault::PartitionFlap {
                            cell: target_list(fargs.get("cell")?)?,
                            period_us: num(&fargs, "period")?,
                            flaps: num(&fargs, "flaps")?,
                        },
                        "storm" => Fault::Storm {
                            origin: Target::parse(fargs.get("origin")?)?,
                            msgs: num(&fargs, "msgs")?,
                            gap_us: num(&fargs, "gap")?,
                        },
                        "heal" => Fault::Heal,
                        "restart" => Fault::Restart {
                            target: Target::parse(fargs.get("target")?)?,
                            delay_us: num(&fargs, "delay")?,
                        },
                        _ => return None,
                    };
                    let after = match *h.get("after")? {
                        "-" => Vec::new(),
                        a => a
                            .split(',')
                            .map(|x| x.parse().ok())
                            .collect::<Option<Vec<u32>>>()?,
                    };
                    sc.as_mut()?.steps.push(Step {
                        id: num(&h, "id")?,
                        after,
                        at_us: num(&h, "at")?,
                        fault,
                    });
                }
                _ => return None,
            }
        }
        let sc = sc?;
        // A corpus file with an unresolvable DAG is rejected at parse time.
        sc.schedule().ok()?;
        Some(sc)
    }
}

fn kv_map<'a>(words: impl Iterator<Item = &'a str>) -> Option<BTreeMap<&'a str, &'a str>> {
    let mut m = BTreeMap::new();
    for w in words {
        let (k, v) = w.split_once('=')?;
        m.insert(k, v);
    }
    Some(m)
}

fn num<T: std::str::FromStr>(f: &BTreeMap<&str, &str>, k: &str) -> Option<T> {
    f.get(k)?.parse().ok()
}

fn target_list(s: &str) -> Option<Vec<Target>> {
    s.split(',').map(Target::parse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Scenario {
        Scenario {
            family: "demo".into(),
            seed: 7,
            members: 6,
            resiliency: 2,
            max_leaf: 3,
            horizon_us: 4_000_000,
            steps: vec![
                Step {
                    id: 0,
                    after: vec![],
                    at_us: 100_000,
                    fault: Fault::Storm { origin: Target::Member(1), msgs: 10, gap_us: 1_000 },
                },
                Step {
                    id: 1,
                    after: vec![0],
                    at_us: 0,
                    fault: Fault::Crash { target: Target::RootRep },
                },
                Step {
                    id: 2,
                    after: vec![0, 1],
                    at_us: 50_000,
                    fault: Fault::PartitionFlap {
                        cell: vec![Target::Leader(0), Target::Member(2)],
                        period_us: 40_000,
                        flaps: 3,
                    },
                },
            ],
        }
    }

    #[test]
    fn dag_resolves_after_edges_to_dep_ends() {
        let sched = demo().schedule().expect("acyclic");
        let t: BTreeMap<u32, u64> = sched.iter().map(|(t, s)| (s.id, *t)).collect();
        assert_eq!(t[&0], 100_000);
        // Step 1 waits for the storm's end: 100_000 + 9 * 1_000.
        assert_eq!(t[&1], 109_000);
        // Step 2's own floor (50_000) is dominated by its deps.
        assert_eq!(t[&2], 109_000);
        // Sorted by (time, id).
        let order: Vec<u32> = sched.iter().map(|(_, s)| s.id).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(demo().last_end_us(), 109_000 + 2 * 3 * 40_000);
    }

    #[test]
    fn dag_rejects_cycles_unknown_deps_and_dup_ids() {
        let mut sc = demo();
        sc.steps[0].after = vec![2];
        assert!(matches!(sc.schedule(), Err(ScheduleError::Cycle(_))));
        let mut sc = demo();
        sc.steps[1].after = vec![99];
        assert_eq!(
            sc.schedule(),
            Err(ScheduleError::UnknownDep { step: 1, dep: 99 })
        );
        let mut sc = demo();
        sc.steps[2].id = 0;
        assert_eq!(sc.schedule(), Err(ScheduleError::DuplicateId(0)));
    }

    #[test]
    fn text_format_round_trips() {
        let sc = demo();
        let text = sc.to_text();
        let back = Scenario::parse(&text).expect("parses");
        assert_eq!(back, sc);
        // Comments and blank lines are tolerated.
        let commented = format!("# provenance note\n\n{text}");
        assert_eq!(Scenario::parse(&commented).expect("parses"), sc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Scenario::parse("nonsense").is_none());
        assert!(Scenario::parse("scenario family=x seed=1").is_none(), "missing fields");
        let sc = demo();
        let bad = sc.to_text().replace("rootrep", "president");
        assert!(Scenario::parse(&bad).is_none());
        // A cyclic corpus file is rejected at parse time.
        let mut cyc = demo();
        cyc.steps[0].after = vec![2];
        assert!(Scenario::parse(&cyc.to_text()).is_none());
    }

    #[test]
    fn fault_durations() {
        assert_eq!(Fault::Crash { target: Target::Member(0) }.duration_us(), 0);
        assert_eq!(Fault::Heal.duration_us(), 0);
        assert_eq!(
            Fault::CorrelatedCrash { targets: vec![Target::Member(0)], spread_us: 500 }
                .duration_us(),
            500
        );
        assert_eq!(
            Fault::PartitionFlap { cell: vec![], period_us: 10, flaps: 4 }.duration_us(),
            80
        );
        assert_eq!(
            Fault::Storm { origin: Target::Member(0), msgs: 5, gap_us: 100 }.duration_us(),
            400
        );
        assert_eq!(
            Fault::Restart { target: Target::Member(0), delay_us: 2_000 }.duration_us(),
            2_000
        );
    }

    #[test]
    fn restart_fault_round_trips() {
        let mut sc = demo();
        sc.steps.push(Step {
            id: 3,
            after: vec![1],
            at_us: 0,
            fault: Fault::Restart { target: Target::Member(4), delay_us: 150_000 },
        });
        let back = Scenario::parse(&sc.to_text()).expect("parses");
        assert_eq!(back, sc);
        assert_eq!(sc.steps[3].fault.kind(), "restart");
    }
}
