//! Coverage census: which trace event kinds each scenario family actually
//! exercises.
//!
//! A fuzzer that only ever tickles `NET_SEND` is not testing the
//! interesting machinery; the census makes the sweep's coverage visible
//! and machine-checkable. Counts are aggregated per family across a sweep
//! and exported as JSON (hand-rolled — the workspace is dependency-free)
//! for `BENCH_artifacts/`.

use std::collections::BTreeMap;

use crate::run::RunReport;

/// Aggregated event-kind counts, per scenario family.
#[derive(Clone, Debug, Default)]
pub struct Census {
    families: BTreeMap<String, BTreeMap<&'static str, u64>>,
    scenarios: u64,
}

impl Census {
    /// An empty census.
    pub fn new() -> Census {
        Census::default()
    }

    /// Folds one run's per-kind counts into the family's totals.
    pub fn absorb(&mut self, family: &str, report: &RunReport) {
        let slot = self.families.entry(family.to_string()).or_default();
        for (kind, n) in &report.census {
            *slot.entry(kind).or_insert(0) += n;
        }
        self.scenarios += 1;
    }

    /// Scenarios absorbed so far.
    pub fn scenarios(&self) -> u64 {
        self.scenarios
    }

    /// Event kinds a family exercised at least once.
    pub fn kinds_of(&self, family: &str) -> Vec<&'static str> {
        self.families
            .get(family)
            .map(|m| m.iter().filter(|(_, &n)| n > 0).map(|(k, _)| *k).collect())
            .unwrap_or_default()
    }

    /// Event kinds exercised by *no* family — blind spots worth new
    /// scenario families.
    pub fn unexercised(&self, all_kinds: &[&'static str]) -> Vec<&'static str> {
        all_kinds
            .iter()
            .filter(|k| {
                !self
                    .families
                    .values()
                    .any(|m| m.get(*k).copied().unwrap_or(0) > 0)
            })
            .copied()
            .collect()
    }

    /// Serialises to JSON: `{"scenarios": N, "families": {name: {KIND: n}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenarios\": {},\n", self.scenarios));
        out.push_str("  \"families\": {\n");
        let nf = self.families.len();
        for (i, (family, kinds)) in self.families.iter().enumerate() {
            out.push_str(&format!("    {}: {{", json_str(family)));
            let nk = kinds.len();
            for (j, (kind, n)) in kinds.iter().enumerate() {
                out.push_str(&format!("{}: {}", json_str(kind), n));
                if j + 1 < nk {
                    out.push_str(", ");
                }
            }
            out.push('}');
            if i + 1 < nf {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// A terse per-family coverage table for the sweep's stdout summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (family, kinds) in &self.families {
            let exercised = kinds.values().filter(|&&n| n > 0).count();
            let events: u64 = kinds.values().sum();
            out.push_str(&format!(
                "{family}: {exercised} event kinds, {events} events\n"
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (keys here are identifiers, but corpus
/// details may carry arbitrary text).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fake_report(counts: &[(&'static str, u64)]) -> RunReport {
        RunReport {
            violations: Vec::new(),
            census: counts.iter().copied().collect::<BTreeMap<_, _>>(),
            ops_applied: 1,
            ops_total: 1,
        }
    }

    #[test]
    fn absorbs_and_aggregates_per_family() {
        let mut c = Census::new();
        c.absorb("flap", &fake_report(&[("VIEW_INSTALL", 2), ("NET_SEND", 10)]));
        c.absorb("flap", &fake_report(&[("VIEW_INSTALL", 3)]));
        c.absorb("storm", &fake_report(&[("LBCAST_SUBMIT", 7)]));
        assert_eq!(c.scenarios(), 3);
        assert_eq!(c.kinds_of("flap"), vec!["NET_SEND", "VIEW_INSTALL"]);
        assert_eq!(
            c.unexercised(&["VIEW_INSTALL", "LBCAST_SUBMIT", "GROUP_STALL"]),
            vec!["GROUP_STALL"]
        );
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let mut c = Census::new();
        c.absorb("flap", &fake_report(&[("VIEW_INSTALL", 5)]));
        let j = c.to_json();
        assert!(j.contains("\"scenarios\": 1"));
        assert!(j.contains("\"flap\": {\"VIEW_INSTALL\": 5}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn summary_lists_each_family() {
        let mut c = Census::new();
        c.absorb("flap", &fake_report(&[("VIEW_INSTALL", 5), ("NET_SEND", 1)]));
        assert_eq!(c.summary(), "flap: 2 event kinds, 6 events\n");
    }
}
