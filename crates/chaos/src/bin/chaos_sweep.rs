//! The sweep driver: replay the regression corpus, fuzz N fresh
//! scenarios round-robin across the families, shrink anything that
//! violates, and emit a coverage census.
//!
//! ```text
//! chaos_sweep [--scenarios N] [--seed S] [--census FILE] [--corpus DIR]
//!             [--shrink-iters K] [--save-findings] [--sabotage]
//!             [--sabotage-rejoin]
//! ```
//!
//! Exit status is non-zero iff any monitor violation was observed —
//! `ci.sh` gates the build on it. Output is deterministic for a fixed
//! seed, so two CI runs of the same tree produce identical logs.
//!
//! `--sabotage` arms the seeded divergent-`ViewInstall` fault
//! ([`Sabotage::DivergentViewOnLeaderCrash`]); `--sabotage-rejoin` arms
//! the seeded stale-incarnation resurrection
//! ([`Sabotage::StaleResurrectionOnRestart`]). Either way the sweep is
//! then *expected* to fail, which demonstrates the find → shrink → save
//! pipeline live and regenerates the checked-in corpus entries.

use std::path::PathBuf;
use std::process::ExitCode;

use now_chaos::census::Census;
use now_chaos::corpus;
use now_chaos::gen::{generate, FAMILIES};
use now_chaos::run::{run_scenario, Sabotage};
use now_chaos::scenario::Scenario;
use now_chaos::shrink::{shrink, ShrinkBudget};

struct Args {
    scenarios: u64,
    seed: u64,
    census: Option<PathBuf>,
    corpus: PathBuf,
    shrink_iters: u32,
    save_findings: bool,
    sabotage: Sabotage,
}

fn parse_args() -> Args {
    let mut args = Args {
        scenarios: 200,
        seed: 1,
        census: None,
        corpus: corpus::default_dir(),
        shrink_iters: ShrinkBudget::DEFAULT_ITERS,
        save_findings: false,
        sabotage: Sabotage::None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--scenarios" => {
                args.scenarios = val("--scenarios").parse().expect("--scenarios: not a number")
            }
            "--seed" => args.seed = val("--seed").parse().expect("--seed: not a number"),
            "--census" => args.census = Some(PathBuf::from(val("--census"))),
            "--corpus" => args.corpus = PathBuf::from(val("--corpus")),
            "--shrink-iters" => {
                args.shrink_iters = val("--shrink-iters")
                    .parse()
                    .expect("--shrink-iters: not a number")
            }
            "--save-findings" => args.save_findings = true,
            "--sabotage" => args.sabotage = Sabotage::DivergentViewOnLeaderCrash,
            "--sabotage-rejoin" => args.sabotage = Sabotage::StaleResurrectionOnRestart,
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut census = Census::new();
    let mut failures = 0u64;

    // 1. The regression corpus: every checked-in counterexample encodes a
    // bug that is supposed to be fixed — it must replay clean.
    let corpus_entries = corpus::load_dir(&args.corpus).expect("corpus loads");
    for (name, sc) in &corpus_entries {
        let rep = run_scenario(sc, Sabotage::None).expect("corpus scenario resolves");
        census.absorb(&format!("corpus:{name}"), &rep);
        if rep.is_clean() {
            println!("corpus {name}: clean ({} steps)", sc.len());
        } else {
            failures += 1;
            println!("corpus {name}: REGRESSION — {}", describe(&rep.violations[0]));
        }
    }

    // 2. Fresh scenarios, round-robin across families so every family gets
    // an equal slice regardless of the total.
    for i in 0..args.scenarios {
        let family = FAMILIES[(i % FAMILIES.len() as u64) as usize];
        let index = i / FAMILIES.len() as u64;
        let sc = generate(family, index, args.seed);
        let rep = run_scenario(&sc, args.sabotage).expect("generated scenario resolves");
        census.absorb(family, &rep);
        if !rep.is_clean() {
            failures += 1;
            report_finding(&sc, family, index, &args);
        }
        if (i + 1) % 100 == 0 {
            println!("… {}/{} scenarios, {failures} violations", i + 1, args.scenarios);
        }
    }

    // 3. Census artifact + summary.
    if let Some(path) = &args.census {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("census dir");
        }
        std::fs::write(path, census.to_json()).expect("census write");
        println!("census written to {}", path.display());
    }
    print!("{}", census.summary());
    println!(
        "chaos sweep: {} corpus replays, {} scenarios, {failures} violations",
        corpus_entries.len(),
        args.scenarios
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints a violating scenario's report, shrinks it, and optionally saves
/// the shrunk counterexample into the corpus directory.
fn report_finding(sc: &Scenario, family: &str, index: u64, args: &Args) {
    println!("VIOLATION in {family}#{index} (seed {}):", args.seed);
    let rep = run_scenario(sc, args.sabotage).expect("resolves");
    for v in &rep.violations {
        println!("  {}", describe(v));
    }
    let budget = ShrinkBudget::new(args.shrink_iters);
    let shrunk = shrink(sc, budget, |cand| {
        run_scenario(cand, args.sabotage).is_ok_and(|r| !r.is_clean())
    });
    println!(
        "  shrunk {} -> {} steps in {} re-runs; minimal reproduction:",
        shrunk.original_len,
        shrunk.scenario.len(),
        shrunk.iters_used
    );
    for line in shrunk.scenario.to_text().lines() {
        println!("    {line}");
    }
    if args.save_findings {
        let name = format!("{family}-{index}-seed{}", args.seed);
        let provenance = format!(
            "found by chaos_sweep --seed {} ({family}#{index}); shrunk {} -> {} steps",
            args.seed,
            shrunk.original_len,
            shrunk.scenario.len()
        );
        let path = corpus::save(&args.corpus, &name, &shrunk.scenario, &provenance)
            .expect("corpus save");
        println!("  saved to {}", path.display());
    }
}

fn describe(v: &now_trace::Violation) -> String {
    format!(
        "{} at t={} (seq {}): pids {:?} — {}",
        v.monitor, v.at, v.seq, v.pids, v.detail
    )
}
