//! `now-chaos`: an adversarial scenario fuzzer for the hierarchical
//! process-group stack, with the virtual-synchrony monitors as oracles.
//!
//! The paper's reliability story rests on the virtual-synchrony
//! guarantees holding *under failures* — exactly the regime ordinary tests
//! under-sample. This crate generates deterministic hostile fault
//! schedules ([`gen`]), expressed as composable DAGs of timed fault tasks
//! ([`scenario`]), runs each against a real `isis-hier` cluster with the
//! `now-trace` monitors armed ([`run`]), delta-debugs any violating
//! schedule down to a minimal counterexample ([`shrink`]), and keeps the
//! survivors as a replayable regression corpus ([`corpus`]). A coverage
//! census ([`census`]) reports which trace event kinds each scenario
//! family actually exercises, so blind spots are visible rather than
//! assumed away.
//!
//! Everything is a pure function of seeds: same scenario + same seed =
//! byte-identical run, which is what makes a one-line report
//! (`family, index, base seed`) a complete bug reproduction.
//!
//! Entry points: [`gen::generate`] → [`run::run_scenario`] →
//! [`shrink::shrink`]; `cargo run -p now-chaos --bin chaos_sweep` drives
//! the whole pipeline (and is wired into `ci.sh`).

pub mod census;
pub mod corpus;
pub mod gen;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use census::Census;
pub use run::{run_scenario, RunReport, Sabotage};
pub use scenario::{Fault, Scenario, ScheduleError, Step, Target};
pub use shrink::{shrink, ShrinkBudget, ShrinkReport};
