//! The regression corpus: shrunk counterexamples checked in as `.scn`
//! files and replayed by CI on every run.
//!
//! A corpus file is the scenario text format (see
//! [`Scenario::to_text`](crate::scenario::Scenario::to_text)) preceded by
//! `#` provenance comments. Files are replayed in filename order so the
//! corpus run is deterministic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scenario::Scenario;

/// Loads every `*.scn` under `dir`, sorted by filename. A missing
/// directory is an empty corpus, not an error; an unparsable file is.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, Scenario)>> {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "scn"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let text = fs::read_to_string(&path)?;
        let sc = Scenario::parse(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus file {} does not parse", path.display()),
            )
        })?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push((name, sc));
    }
    Ok(out)
}

/// Writes `sc` as `dir/<name>.scn` with a provenance header. Creates the
/// directory as needed; returns the path written.
pub fn save(dir: &Path, name: &str, sc: &Scenario, provenance: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.scn"));
    let mut body = String::new();
    for line in provenance.lines() {
        body.push_str("# ");
        body.push_str(line);
        body.push('\n');
    }
    body.push_str(&sc.to_text());
    fs::write(&path, body)?;
    Ok(path)
}

/// The in-tree corpus directory, resolved relative to this crate so tests
/// and the sweep binary agree regardless of working directory.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn save_then_load_round_trips_with_provenance() {
        let dir = std::env::temp_dir().join("now-chaos-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let a = generate("leader-flap", 0, 5);
        let b = generate("churn-mix", 1, 5);
        save(&dir, "b-second", &b, "found by sweep seed=5\nshrunk 5 -> 2 steps")
            .expect("save");
        save(&dir, "a-first", &a, "prov").expect("save");
        let loaded = load_dir(&dir).expect("load");
        // Filename order, not insertion order.
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "a-first");
        assert_eq!(loaded[0].1, a);
        assert_eq!(loaded[1].1, b);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = std::env::temp_dir().join("now-chaos-no-such-dir");
        let _ = fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).expect("ok").is_empty());
    }

    #[test]
    fn unparsable_corpus_file_is_an_error() {
        let dir = std::env::temp_dir().join("now-chaos-bad-corpus");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("bad.scn"), "scenario nonsense").expect("write");
        assert!(load_dir(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checked_in_corpus_parses() {
        // Whatever ships in crates/chaos/corpus must always load.
        let corpus = load_dir(&default_dir()).expect("in-tree corpus loads");
        for (name, sc) in &corpus {
            assert!(!sc.is_empty(), "{name} is empty");
            sc.schedule().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
