//! The daemon: many [`Process`] instances in one OS process, real sockets
//! between daemons.
//!
//! One daemon is a small thread ensemble around a single-threaded core:
//!
//! - the **core thread** owns every hosted process, the [`Endpoint`], the
//!   timer wheel, and the routing table. All protocol callbacks run here,
//!   so a process never sees concurrency — exactly the execution model the
//!   sim provides, minus determinism;
//! - an **accept thread** takes inbound connections and hands each to a
//!   **reader thread**, which reassembles frames, enforces the session's
//!   monotonic wire sequence, decodes payloads, and forwards them to the
//!   core over a channel;
//! - one **writer thread per peer daemon** owns the outgoing connection,
//!   dialing with exponential backoff and reconnecting (with a fresh
//!   `Hello`) whenever the peer drops.
//!
//! This shape — one owning core, message-passing satellites, shared
//! flags only as `Arc`-wrapped atomics — is a lintable contract: detlint
//! rule R9 bans locks and interior-mutability cells across `crates/net`,
//! so cross-thread mutable state cannot flow outside the channels and
//! declared atomics you see in this file.
//!
//! The core implements [`Transport`]: a `Send` to a pid hosted here is a
//! local queue push; a `Send` to a remote pid is one encoded frame on the
//! destination daemon's writer channel. Timers are a `BTreeMap` keyed by
//! wall-clock deadline, fired by the core between channel receives. The
//! clock is microseconds since a cluster-wide `Instant` epoch shared by
//! every daemon of a run, so merged trace timelines are comparable.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use now_sim::trace::EventKind as TraceKind;
use now_sim::{dispatch, Action, Ctx, Endpoint, Pid, Process, SimTime, TimerId, Transport};

use crate::codec::{encode_frame, Frame, FrameBuf};
use crate::wire::{decode_msg, encode_msg, Wire};

/// Where a daemon listens: a unix socket path or a loopback TCP address.
#[derive(Clone, Debug)]
pub enum Addr {
    /// Unix domain socket (the default for local clusters: no ports to
    /// collide, the file namespace scopes the run).
    Unix(PathBuf),
    /// TCP socket, expected to be loopback.
    Tcp(SocketAddr),
}

impl Addr {
    fn bind(&self) -> io::Result<AnyListener> {
        match self {
            Addr::Unix(path) => {
                // A stale socket file from a dead run blocks bind; it
                // cannot belong to a live daemon of *this* run, which
                // picks fresh paths.
                let _ = std::fs::remove_file(path);
                Ok(AnyListener::Unix(UnixListener::bind(path)?))
            }
            Addr::Tcp(addr) => Ok(AnyListener::Tcp(TcpListener::bind(addr)?)),
        }
    }

    fn connect(&self) -> io::Result<Box<dyn StreamIo>> {
        match self {
            Addr::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
            Addr::Tcp(addr) => Ok(Box::new(TcpStream::connect(addr)?)),
        }
    }

    /// Removes a unix socket file; no-op for TCP.
    pub fn cleanup(&self) {
        if let Addr::Unix(path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

trait StreamIo: Read + Write + Send {}
impl StreamIo for UnixStream {}
impl StreamIo for TcpStream {}

enum AnyListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl AnyListener {
    fn accept(&self) -> io::Result<Box<dyn StreamIo>> {
        match self {
            AnyListener::Unix(l) => Ok(Box::new(l.accept()?.0)),
            AnyListener::Tcp(l) => Ok(Box::new(l.accept()?.0)),
        }
    }
}

/// Static description of one daemon's place in a cluster.
#[derive(Clone)]
pub struct DaemonConfig {
    /// This daemon's index into `addrs`.
    pub index: u32,
    /// Listen address of every daemon in the cluster, by index.
    pub addrs: Vec<Addr>,
    /// `routing[pid.0]` = index of the daemon hosting that pid.
    pub routing: Arc<Vec<u32>>,
    /// Cluster-wide clock epoch; all daemons of a run share one `Instant`
    /// so their microsecond timestamps are mutually comparable.
    pub epoch: Instant,
    /// Seed for the endpoint's deterministic RNG stream (protocol-level
    /// random choices stay seeded even on the real backend).
    pub seed: u64,
}

/// A control closure run on the core thread (harness invocations, state
/// queries, tracer extraction).
type CtlFn<P> = Box<dyn FnOnce(&mut DaemonCore<P>) + Send>;

enum Incoming<P: Process> {
    /// A decoded message off a peer session, already validated.
    Net { from: Pid, to: Pid, msg: P::Msg },
    /// See [`CtlFn`].
    Ctl(CtlFn<P>),
    /// Exit the core loop.
    Shutdown,
}

/// The single-threaded heart of a daemon: hosted processes, endpoint,
/// timers, routing. Lives on the core thread; reachable from outside only
/// through [`Daemon::with_core`] closures.
pub struct DaemonCore<P: Process> {
    index: u32,
    epoch: Instant,
    routing: Arc<Vec<u32>>,
    procs: BTreeMap<u32, P>,
    ep: Endpoint<P::Msg>,
    /// Per-peer outgoing frame channels (None at our own slot).
    peers: Vec<Option<Sender<Vec<u8>>>>,
    /// Next outgoing wire seq per peer session.
    peer_seq: Vec<u64>,
    /// Armed timers: (deadline µs, timer id) → (owner pid, kind).
    timers: BTreeMap<(u64, u64), (Pid, u32)>,
    /// timer id → deadline µs, for O(log n) cancellation.
    armed: HashMap<u64, u64>,
    /// Same-daemon deliveries awaiting the next loop turn.
    local_q: VecDeque<(Pid, Pid, P::Msg, Option<u64>)>,
}

impl<P: Process> DaemonCore<P>
where
    P::Msg: Wire,
{
    /// Advances the endpoint clock to wall time (µs since the cluster
    /// epoch). Never moves backwards.
    fn refresh_clock(&mut self) {
        let t = SimTime(self.epoch.elapsed().as_micros() as u64);
        if t > self.ep.now() {
            self.ep.set_now(t);
        }
    }

    /// This daemon's index in the cluster.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The hosted process for `pid`, if alive here.
    pub fn proc(&self, pid: Pid) -> Option<&P> {
        self.procs.get(&pid.0)
    }

    /// Pids hosted (and still alive) on this daemon.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().map(|&p| Pid(p)).collect()
    }

    /// The shared process-hosting runtime (stats, observations, tracer).
    pub fn endpoint(&self) -> &Endpoint<P::Msg> {
        &self.ep
    }

    /// Mutable endpoint access (attach/extract tracers, reset stats).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint<P::Msg> {
        &mut self.ep
    }

    /// Hosts a new process: records the spawn and runs `on_start`.
    fn spawn_proc(&mut self, pid: Pid, proc_: P) {
        self.refresh_clock();
        self.procs.insert(pid.0, proc_);
        self.ep.stats_mut().ensure_proc(pid);
        if self.ep.tracing() {
            self.ep
                .trace(pid, None, TraceKind::Spawn { node: self.index });
        }
        let (_, mut actions) = {
            let DaemonCore { procs, ep, .. } = self;
            let Some(p) = procs.get_mut(&pid.0) else {
                return;
            };
            ep.run(pid, 0, None, |ctx| p.on_start(ctx))
        };
        dispatch(self, pid, &mut actions, None);
        self.ep.give_back(actions);
    }

    /// Runs `f` against the hosted process `pid` under a live [`Ctx`],
    /// applying its buffered effects — the daemon-side mirror of
    /// `Sim::invoke`. Returns `None` when `pid` is not hosted here.
    pub fn invoke<R>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        self.refresh_clock();
        let (r, mut actions) = {
            let DaemonCore { procs, ep, .. } = self;
            let p = procs.get_mut(&pid.0)?;
            ep.run(pid, 0, None, |ctx| f(p, ctx))
        };
        dispatch(self, pid, &mut actions, None);
        self.ep.give_back(actions);
        self.drain_local();
        Some(r)
    }

    fn send_one(&mut self, from: Pid, to: Pid, msg: P::Msg, cause: Option<u64>) {
        let nbytes = P::wire_size(&msg);
        let send_seq = if self.ep.tracing() {
            Some(self.ep.trace(
                from,
                cause,
                TraceKind::NetSend {
                    to: to.0,
                    bytes: nbytes as u64,
                },
            ))
        } else {
            None
        };
        self.ep.stats_mut().record_send(from, to, nbytes);
        match self.routing.get(to.0 as usize).copied() {
            Some(d) if d == self.index => {
                self.local_q.push_back((from, to, msg, send_seq));
            }
            Some(d) => {
                let payload = encode_msg(&msg);
                let d = d as usize;
                self.peer_seq[d] += 1;
                let mut frame = Vec::with_capacity(payload.len() + 28);
                encode_frame(
                    &Frame::Data {
                        seq: self.peer_seq[d],
                        from: from.0,
                        to: to.0,
                        payload,
                    },
                    &mut frame,
                );
                let sent = self.peers[d]
                    .as_ref()
                    .is_some_and(|tx| tx.send(frame).is_ok());
                if !sent {
                    self.drop_msg(from, to, send_seq);
                }
            }
            None => self.drop_msg(from, to, send_seq),
        }
    }

    fn drop_msg(&mut self, from: Pid, to: Pid, send_seq: Option<u64>) {
        if self.ep.tracing() {
            self.ep.trace(
                from,
                send_seq,
                TraceKind::NetDrop {
                    to: to.0,
                    send: send_seq.unwrap_or(0),
                },
            );
        }
        self.ep.stats_mut().record_drop(to);
    }

    /// Delivers one message to a locally hosted pid (`send_seq` is the
    /// local `NetSend` trace seq; `None` for messages off the wire, whose
    /// send event lives in the origin daemon's trace).
    fn deliver(&mut self, from: Pid, to: Pid, msg: P::Msg, send_seq: Option<u64>) {
        self.refresh_clock();
        if !self.procs.contains_key(&to.0) {
            self.drop_msg(from, to, send_seq);
            return;
        }
        let dseq = if self.ep.tracing() {
            Some(self.ep.trace(
                to,
                send_seq,
                TraceKind::NetDeliver {
                    from: from.0,
                    send: send_seq.unwrap_or(0),
                },
            ))
        } else {
            None
        };
        self.ep.stats_mut().record_delivery(to);
        let (_, mut actions) = {
            let DaemonCore { procs, ep, .. } = self;
            let Some(p) = procs.get_mut(&to.0) else {
                return;
            };
            ep.run(to, 0, dseq, |ctx| p.on_message(from, msg, ctx))
        };
        dispatch(self, to, &mut actions, dseq);
        self.ep.give_back(actions);
    }

    fn drain_local(&mut self) {
        while let Some((from, to, msg, seq)) = self.local_q.pop_front() {
            self.deliver(from, to, msg, seq);
        }
    }

    /// Fires every timer whose deadline has passed.
    fn fire_due_timers(&mut self) {
        loop {
            self.refresh_clock();
            let now_us = self.ep.now().as_micros();
            let Some((&(at, tid), &(pid, kind))) = self.timers.first_key_value() else {
                return;
            };
            if at > now_us {
                return;
            }
            self.timers.remove(&(at, tid));
            self.armed.remove(&tid);
            if !self.procs.contains_key(&pid.0) {
                continue;
            }
            let cause = if self.ep.tracing() {
                Some(self.ep.trace(
                    pid,
                    None,
                    TraceKind::TimerFire {
                        kind: u64::from(kind),
                    },
                ))
            } else {
                None
            };
            let (_, mut actions) = {
                let DaemonCore { procs, ep, .. } = self;
                let Some(p) = procs.get_mut(&pid.0) else {
                    continue;
                };
                ep.run(pid, 0, cause, |ctx| p.on_timer(TimerId(tid), kind, ctx))
            };
            dispatch(self, pid, &mut actions, cause);
            self.ep.give_back(actions);
            self.drain_local();
        }
    }

    /// How long the core may block waiting for input before a timer is due.
    fn idle_timeout(&mut self) -> Duration {
        const MAX_IDLE: Duration = Duration::from_millis(25);
        self.refresh_clock();
        let now_us = self.ep.now().as_micros();
        match self.timers.first_key_value() {
            Some((&(at, _), _)) if at <= now_us => Duration::ZERO,
            Some((&(at, _), _)) => Duration::from_micros(at - now_us).min(MAX_IDLE),
            None => MAX_IDLE,
        }
    }
}

impl<P: Process> Transport<P::Msg> for DaemonCore<P>
where
    P::Msg: Wire,
{
    fn clock(&self) -> SimTime {
        self.ep.now()
    }

    fn apply(&mut self, from: Pid, action: Action<P::Msg>, cause: Option<u64>) {
        match action {
            Action::Send { to, msg } => self.send_one(from, to, msg, cause),
            Action::Multicast { dsts, msg } => {
                for to in dsts {
                    self.send_one(from, to, msg.clone(), cause);
                }
            }
            Action::SetTimer { id, kind, at } => {
                self.timers.insert((at.as_micros(), id.0), (from, kind));
                self.armed.insert(id.0, at.as_micros());
            }
            Action::CancelTimer(id) => {
                if let Some(at) = self.armed.remove(&id.0) {
                    self.timers.remove(&(at, id.0));
                }
            }
            Action::Halt => {
                self.procs.remove(&from.0);
                if self.ep.tracing() {
                    self.ep.trace(from, cause, TraceKind::Halt);
                }
            }
        }
    }
}

/// Handle to a running daemon (threads + control channel). Dropping it
/// without [`Daemon::shutdown`] aborts the threads ungracefully; prefer an
/// explicit shutdown.
pub struct Daemon<P: Process> {
    index: u32,
    addr: Addr,
    tx: Sender<Incoming<P>>,
    core: Option<JoinHandle<()>>,
    listener: Option<JoinHandle<()>>,
    writers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl<P: Process + Send> Daemon<P>
where
    P::Msg: Wire + Send,
{
    /// Binds the listen socket, spawns the thread ensemble, and boots the
    /// given processes (each gets its `on_start` on the core thread).
    pub fn spawn(cfg: DaemonConfig, procs: Vec<(Pid, P)>) -> io::Result<Daemon<P>> {
        let index = cfg.index;
        let addr = cfg.addrs[index as usize].clone();
        let listener = addr.bind()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Incoming<P>>();

        let mut peers: Vec<Option<Sender<Vec<u8>>>> = Vec::new();
        let mut writers = Vec::new();
        for (d, peer_addr) in cfg.addrs.iter().enumerate() {
            if d as u32 == index {
                peers.push(None);
                continue;
            }
            let (wtx, wrx) = mpsc::channel::<Vec<u8>>();
            peers.push(Some(wtx));
            let peer_addr = peer_addr.clone();
            let flag = Arc::clone(&shutdown);
            let peer_index = d as u32;
            writers.push(thread::spawn(move || {
                writer_loop(peer_addr, index, peer_index, wrx, flag)
            }));
        }

        let accept_tx = tx.clone();
        let accept_flag = Arc::clone(&shutdown);
        let listener_thread =
            thread::spawn(move || accept_loop::<P>(listener, accept_tx, accept_flag));

        let n_daemons = cfg.addrs.len();
        let core_thread = thread::spawn(move || {
            let mut core = DaemonCore {
                index,
                epoch: cfg.epoch,
                routing: cfg.routing,
                procs: BTreeMap::new(),
                ep: Endpoint::new(cfg.seed),
                peers,
                peer_seq: vec![0; n_daemons],
                timers: BTreeMap::new(),
                armed: HashMap::new(),
                local_q: VecDeque::new(),
            };
            for (pid, p) in procs {
                core.spawn_proc(pid, p);
            }
            core.drain_local();
            loop {
                core.fire_due_timers();
                core.drain_local();
                let timeout = core.idle_timeout();
                match rx.recv_timeout(timeout) {
                    Ok(Incoming::Net { from, to, msg }) => {
                        core.deliver(from, to, msg, None);
                        core.drain_local();
                    }
                    Ok(Incoming::Ctl(f)) => f(&mut core),
                    Ok(Incoming::Shutdown) => break,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Core (and with it every outgoing channel sender) drops here,
            // which is what lets the writer threads exit.
        });

        Ok(Daemon {
            index,
            addr,
            tx,
            core: Some(core_thread),
            listener: Some(listener_thread),
            writers,
            shutdown,
        })
    }

    /// This daemon's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Runs `f` on the core thread and returns its result; `None` if the
    /// daemon already shut down.
    pub fn with_core<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut DaemonCore<P>) -> R + Send + 'static,
    ) -> Option<R> {
        let (rtx, rrx) = mpsc::channel();
        self.tx
            .send(Incoming::Ctl(Box::new(move |core| {
                let _ = rtx.send(f(core));
            })))
            .ok()?;
        rrx.recv().ok()
    }

    /// Invokes a callback on a hosted process under a live [`Ctx`], like
    /// `Sim::invoke` (the harness entry point for joins, casts, queries).
    pub fn invoke<R: Send + 'static>(
        &self,
        pid: Pid,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R + Send + 'static,
    ) -> Option<R> {
        self.with_core(move |core| core.invoke(pid, f)).flatten()
    }

    /// Stops the thread ensemble and removes the unix socket file. Must be
    /// called from outside the core thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Incoming::Shutdown);
        if let Some(h) = self.core.take() {
            let _ = h.join();
        }
        // The accept loop is blocked in accept(); a throwaway connection
        // unblocks it so it can observe the flag and exit.
        let _ = self.addr.connect();
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        for h in self.writers.drain(..) {
            let _ = h.join();
        }
        self.addr.cleanup();
    }
}

impl<P: Process> Drop for Daemon<P> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Incoming::Shutdown);
        self.addr.cleanup();
    }
}

fn accept_loop<P: Process>(
    listener: AnyListener,
    tx: Sender<Incoming<P>>,
    shutdown: Arc<AtomicBool>,
) where
    P::Msg: Wire + Send,
{
    loop {
        match listener.accept() {
            Ok(conn) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let tx = tx.clone();
                thread::spawn(move || reader_loop::<P>(conn, tx));
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Reads one peer session: `Hello` preamble, then `Data` frames with a
/// strictly increasing wire seq. Any codec error or seq regression kills
/// the session (the peer's writer will redial).
fn reader_loop<P: Process>(mut conn: Box<dyn StreamIo>, tx: Sender<Incoming<P>>)
where
    P::Msg: Wire,
{
    let mut fb = FrameBuf::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut peer: Option<u32> = None;
    let mut last_seq = 0u64;
    loop {
        let n = match conn.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        fb.extend(&buf[..n]);
        loop {
            match fb.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Hello { daemon })) => {
                    if peer.replace(daemon).is_some() {
                        // A second Hello on one session is a peer bug.
                        return;
                    }
                }
                Ok(Some(Frame::Data {
                    seq,
                    from,
                    to,
                    payload,
                })) => {
                    if peer.is_none() || seq <= last_seq {
                        return;
                    }
                    last_seq = seq;
                    let Ok(msg) = decode_msg::<P::Msg>(&payload) else {
                        return;
                    };
                    if tx
                        .send(Incoming::Net {
                            from: Pid(from),
                            to: Pid(to),
                            msg,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    }
}

/// Owns the outgoing connection to one peer: dial with exponential backoff,
/// announce ourselves, then stream frames; on any write error, reconnect
/// and resume with the frame that failed.
fn writer_loop(
    addr: Addr,
    my_index: u32,
    peer_index: u32,
    rx: Receiver<Vec<u8>>,
    shutdown: Arc<AtomicBool>,
) {
    const BACKOFF_START: Duration = Duration::from_millis(10);
    const BACKOFF_CAP: Duration = Duration::from_secs(1);
    let mut pending: Option<Vec<u8>> = None;
    let mut attempt = 0u64;
    'session: loop {
        let mut backoff = BACKOFF_START;
        let mut conn = loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match addr.connect() {
                Ok(c) => break c,
                Err(_) => {
                    attempt += 1;
                    thread::sleep(jittered(backoff, my_index, peer_index, attempt));
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
            }
        };
        let mut hello = Vec::new();
        encode_frame(&Frame::Hello { daemon: my_index }, &mut hello);
        if conn.write_all(&hello).is_err() {
            continue 'session;
        }
        loop {
            let frame = match pending.take() {
                Some(f) => f,
                None => match rx.recv() {
                    Ok(f) => f,
                    Err(_) => return,
                },
            };
            if conn.write_all(&frame).is_err() {
                pending = Some(frame);
                continue 'session;
            }
        }
    }
}

/// Backoff with deterministic per-peer jitter: an FNV-1a hash of (dialer,
/// peer, attempt) spreads each delay over `[base, base * 1.5)`, so after a
/// daemon outage its whole fleet of dialers does not double 10ms → 1s in
/// lockstep and stampede the recovering listener. Pure function of the
/// triple — no wall-clock randomness, so redial schedules are replayable.
fn jittered(base: Duration, me: u32, peer: u32, attempt: u64) -> Duration {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in me
        .to_le_bytes()
        .into_iter()
        .chain(peer.to_le_bytes())
        .chain(attempt.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let frac = u32::from((h >> 32) as u8); // 0..=255 of well-mixed bits
    base + base * frac / 512
}

#[cfg(test)]
mod backoff_tests {
    use super::jittered;
    use std::time::Duration;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(40);
        for me in 0..4u32 {
            for peer in 0..4u32 {
                for attempt in 1..6u64 {
                    let d = jittered(base, me, peer, attempt);
                    assert_eq!(d, jittered(base, me, peer, attempt), "pure function");
                    assert!(d >= base, "never shorter than the base delay");
                    assert!(d < base + base / 2, "at most +50%: {d:?}");
                }
            }
        }
    }

    #[test]
    fn peers_decorrelate_instead_of_herding() {
        // Across a 16-dialer fleet hitting the same recovering daemon, the
        // first-retry delays must not all collapse onto one instant.
        let base = Duration::from_millis(10);
        let delays: std::collections::BTreeSet<Duration> =
            (0..16u32).map(|me| jittered(base, me, 99, 1)).collect();
        assert!(
            delays.len() >= 8,
            "thundering herd: only {} distinct delays across 16 dialers",
            delays.len()
        );
    }
}
