//! `now-cluster` — boot an `isis-hier` hierarchy across several daemons on
//! localhost and replay experiments E1 and E9 over real sockets.
//!
//! ```text
//! now-cluster smoke                 # 8 members / 2 daemons, short replays
//! now-cluster full                  # 64 members / 4 daemons (the paper scale)
//! now-cluster --members 16 --daemons 3 --tcp --e1 5 --e9 20
//! ```
//!
//! Exit status is non-zero when boot/formation/replay fails or the merged
//! trace violates any virtual-synchrony monitor.

use now_net::cluster::{run, ClusterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: now-cluster [smoke|full] [--members N] [--daemons K] [--tcp] \
         [--e1 ROUNDS] [--e9 QUOTES] [--rate QPS] [--seed S]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ClusterConfig::smoke();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> usize {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("now-cluster: {what} needs a numeric value");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "smoke" => cfg = ClusterConfig::smoke(),
            "full" => cfg = ClusterConfig::full(),
            "--members" => cfg.members = num("--members"),
            "--daemons" => cfg.daemons = num("--daemons"),
            "--tcp" => cfg.tcp = true,
            "--e1" => cfg.e1_rounds = num("--e1"),
            "--e9" => cfg.e9_quotes = num("--e9"),
            "--rate" => cfg.e9_rate = num("--rate") as u32,
            "--seed" => cfg.seed = num("--seed") as u64,
            _ => usage(),
        }
    }

    println!(
        "now-cluster: {} members + {} leaders across {} daemons ({})",
        cfg.members,
        cfg.cfg.resiliency.max(1),
        cfg.daemons,
        if cfg.tcp { "loopback tcp" } else { "unix sockets" },
    );
    match run(&cfg) {
        Ok(r) => {
            println!("formation: {} ms", r.formation_ms);
            println!(
                "E1 cast latency: {}/{} rounds, p50 {} us, p99 {} us, max {} us",
                r.e1.completed, r.e1.rounds, r.e1.p50_us, r.e1.p99_us, r.e1.max_us
            );
            println!(
                "E9 trading room: {}/{} deliveries (ratio {:.3}), drain {} ms",
                r.e9.delivered,
                r.e9.expected,
                r.e9.ratio(),
                r.e9.drain_ms
            );
            println!(
                "wire: {} messages; trace: {} events, {} monitor violations",
                r.messages_sent, r.events, r.violations
            );
            if r.violations > 0 {
                eprintln!("now-cluster: FAILED (monitor violations)");
                std::process::exit(1);
            }
            println!("now-cluster: OK");
        }
        Err(e) => {
            eprintln!("now-cluster: FAILED ({e})");
            std::process::exit(1);
        }
    }
}
