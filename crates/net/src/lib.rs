//! `now-net` — a real localhost transport backend for the protocol stack.
//!
//! Everything else in this workspace runs inside the deterministic
//! simulator. This crate is the production on-ramp: a [`daemon::Daemon`]
//! hosts many [`now_sim::Process`] instances in one OS process and speaks a
//! length-prefixed binary codec (see [`codec`]) over unix sockets or
//! loopback TCP to its peer daemons. The protocol crates are unchanged —
//! they were written against [`now_sim::Transport`], and the daemon is
//! simply a second implementation of that trait whose clock is wall time
//! and whose message fabric is real sockets.
//!
//! What carries over from the simulator and what does not:
//!
//! - **carries over**: the full ISIS/hier protocol stack, the trace event
//!   stream (`NetSend`/`NetDeliver`/`ViewInstall`/…) and therefore the
//!   virtual-synchrony invariant monitors, the stats counters;
//! - **does not**: determinism. Timestamps are wall-clock microseconds,
//!   message interleavings depend on the OS scheduler, and two runs will
//!   not be byte-identical. The sim remains the verification substrate;
//!   this backend exists to show the same binaries surviving a real
//!   network fabric (the paper's "network of workstations").
//!
//! The [`cluster`] module boots several daemons on localhost, forms a
//! 64-process `isis-hier` hierarchy across them, and replays experiments
//! E1 (cast/abcast latency) and E9 (trading room) end-to-end; the
//! `now-cluster` binary is its CLI.

pub mod cluster;
pub mod codec;
pub mod daemon;
pub mod wire;

pub use cluster::{ClusterConfig, ClusterReport};
pub use codec::{decode_frame, encode_frame, CodecError, Frame, FrameBuf, MAX_FRAME_BODY};
pub use daemon::{Addr, Daemon, DaemonConfig};
pub use wire::{Wire, WireReader};
