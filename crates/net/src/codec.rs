//! The length-prefixed binary frame layer.
//!
//! Every frame on a daemon-to-daemon connection is:
//!
//! ```text
//! [u32 LE body_len][u16 LE magic 0x4E57 "NW"][u8 version = 1][u8 kind][body]
//! ```
//!
//! where `body_len` counts everything after the length word (so a frame
//! occupies `4 + body_len` bytes) and `kind` selects the body layout:
//!
//! - `0` **Hello** — `[u32 LE daemon]`: sent once per connection by the
//!   dialing daemon to identify itself.
//! - `1` **Data** — `[u64 LE seq][u32 LE from][u32 LE to][payload…]`: one
//!   protocol message from pid `from` to pid `to`. `seq` is the session's
//!   monotonic wire sequence number (starts at 1, increments by 1); the
//!   receiver rejects regressions, which would indicate a duplicated or
//!   reordered stream. The payload is the [`crate::wire::Wire`] encoding
//!   of the message type.
//!
//! Malformed input — truncated frames, bodies over [`MAX_FRAME_BODY`],
//! wrong magic/version, unknown kinds — yields [`CodecError`], never a
//! panic: these bytes come off a socket and are untrusted.

use std::fmt;

/// Magic bytes "NW" (little-endian u16) opening every frame body.
pub const MAGIC: u16 = 0x4E57;
/// Codec version; bumped on any layout change.
pub const VERSION: u8 = 1;
/// Maximum accepted body length (16 MiB). Larger claims are rejected
/// before any allocation, so a corrupt length word cannot OOM the daemon.
pub const MAX_FRAME_BODY: usize = 16 * 1024 * 1024;

const KIND_HELLO: u8 = 0;
const KIND_DATA: u8 = 1;

/// Why a frame (or a payload inside one) failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced length.
    Truncated,
    /// The length word claims more than [`MAX_FRAME_BODY`] bytes.
    Oversized(usize),
    /// The magic bytes were wrong — this is not a now-net stream.
    BadMagic(u16),
    /// The peer speaks a different codec version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// An enum tag inside a payload was out of range.
    BadTag(&'static str, u64),
    /// A payload decoded cleanly but left bytes over.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::Oversized(n) => write!(f, "frame body of {n} bytes exceeds cap"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            CodecError::BadTag(what, t) => write!(f, "bad {what} tag {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A decoded frame. `Data` payloads stay as raw bytes here; the caller
/// picks the message type to decode them with (the frame layer is
/// payload-agnostic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection preamble: the dialing daemon's index.
    Hello {
        /// Index of the daemon that opened the connection.
        daemon: u32,
    },
    /// One routed protocol message.
    Data {
        /// Per-session monotonic wire sequence number (from 1).
        seq: u64,
        /// Sending pid.
        from: u32,
        /// Destination pid.
        to: u32,
        /// `Wire`-encoded message bytes.
        payload: Vec<u8>,
    },
}

/// Appends the full encoding of `frame` (length word included) to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let len_at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    match frame {
        Frame::Hello { daemon } => {
            out.push(KIND_HELLO);
            out.extend_from_slice(&daemon.to_le_bytes());
        }
        Frame::Data {
            seq,
            from,
            to,
            payload,
        } => {
            out.push(KIND_DATA);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&to.to_le_bytes());
            out.extend_from_slice(payload);
        }
    }
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Decodes one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read more
/// bytes and retry), `Ok(Some((frame, consumed)))` on success, and an error
/// for anything structurally invalid.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, CodecError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(CodecError::Oversized(body_len));
    }
    if body_len < 4 {
        // Magic + version + kind alone take four bytes.
        return Err(CodecError::Truncated);
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    let body = &buf[4..4 + body_len];
    let magic = u16::from_le_bytes([body[0], body[1]]);
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    if body[2] != VERSION {
        return Err(CodecError::BadVersion(body[2]));
    }
    let kind = body[3];
    let rest = &body[4..];
    let frame = match kind {
        KIND_HELLO => {
            if rest.len() != 4 {
                return Err(CodecError::Truncated);
            }
            Frame::Hello {
                daemon: u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]),
            }
        }
        KIND_DATA => {
            if rest.len() < 16 {
                return Err(CodecError::Truncated);
            }
            let seq = u64::from_le_bytes([
                rest[0], rest[1], rest[2], rest[3], rest[4], rest[5], rest[6], rest[7],
            ]);
            let from = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
            let to = u32::from_le_bytes([rest[12], rest[13], rest[14], rest[15]]);
            Frame::Data {
                seq,
                from,
                to,
                payload: rest[16..].to_vec(),
            }
        }
        k => return Err(CodecError::BadKind(k)),
    };
    Ok(Some((frame, 4 + body_len)))
}

/// Accumulating frame reassembler for a byte stream: feed socket reads in,
/// pull complete frames out.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow without bound.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered. Errors are
    /// terminal for the stream: framing is lost, the connection must drop.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, CodecError> {
        match decode_frame(&self.buf[self.start..])? {
            Some((frame, used)) => {
                self.start += used;
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, payload: &[u8]) -> Frame {
        Frame::Data {
            seq,
            from: 3,
            to: 9,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrip_hello_and_data() {
        let mut out = Vec::new();
        encode_frame(&Frame::Hello { daemon: 2 }, &mut out);
        encode_frame(&data(1, b"abc"), &mut out);
        let (f1, n1) = decode_frame(&out).expect("decode").expect("complete");
        assert_eq!(f1, Frame::Hello { daemon: 2 });
        let (f2, n2) = decode_frame(&out[n1..]).expect("decode").expect("complete");
        assert_eq!(f2, data(1, b"abc"));
        assert_eq!(n1 + n2, out.len());
    }

    #[test]
    fn partial_input_asks_for_more() {
        let mut out = Vec::new();
        encode_frame(&data(7, b"payload"), &mut out);
        for cut in 0..out.len() {
            assert_eq!(decode_frame(&out[..cut]).expect("prefix is not an error"), None);
        }
    }

    #[test]
    fn oversized_claim_rejected_without_allocating() {
        let mut bad = ((MAX_FRAME_BODY + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(decode_frame(&bad), Err(CodecError::Oversized(_))));
    }

    #[test]
    fn garbage_magic_and_version_rejected() {
        let mut out = Vec::new();
        encode_frame(&Frame::Hello { daemon: 0 }, &mut out);
        let mut bad_magic = out.clone();
        bad_magic[4] ^= 0xFF;
        assert!(matches!(decode_frame(&bad_magic), Err(CodecError::BadMagic(_))));
        let mut bad_version = out.clone();
        bad_version[6] = 99;
        assert!(matches!(decode_frame(&bad_version), Err(CodecError::BadVersion(99))));
        let mut bad_kind = out;
        bad_kind[7] = 42;
        assert!(matches!(decode_frame(&bad_kind), Err(CodecError::BadKind(42))));
    }

    #[test]
    fn frame_buf_reassembles_split_stream() {
        let mut out = Vec::new();
        for i in 0..5u64 {
            encode_frame(&data(i + 1, &[i as u8; 10]), &mut out);
        }
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for chunk in out.chunks(3) {
            fb.extend(chunk);
            while let Some(f) = fb.next_frame().expect("clean stream") {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], data(5, &[4u8; 10]));
    }
}
