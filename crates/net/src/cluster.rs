//! Multi-daemon localhost clusters: boot, formation, experiment replays.
//!
//! This is the real-network mirror of `isis_hier::harness`: it boots `K`
//! daemons on localhost (unix sockets by default), spreads the leader
//! group and the large-group members across them round-robin, drives the
//! same formation sequence the sim harness uses (create → leader joins →
//! member joins), and then replays two of the paper's experiments over the
//! wire:
//!
//! - **E1 replay** — cast/abcast latency: rounds of large-group broadcasts
//!   from rotating senders, each timed from submission until every member
//!   has delivered it;
//! - **E9 replay** — the trading room: a quote feed streams symbol quotes
//!   through the hierarchy at a fixed rate and the report gives the
//!   delivery ratio across all analysts plus the post-feed drain time.
//!
//! Every daemon runs a retaining [`Tracer`], and after shutdown the per-
//! daemon event logs are merged on the shared clock and replayed through a
//! fresh [`Monitors`] set — the same virtual-synchrony invariants the sim
//! enforces, now checked against a real run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use now_sim::trace::{Monitors, TraceEvent, Tracer};
use now_sim::Pid;

use isis_core::{IsisConfig, IsisProcess};
use isis_hier::harness::RecorderBiz;
use isis_hier::{HierApp, LargeGroupConfig, LargeGroupId};

use crate::daemon::{Addr, Daemon, DaemonConfig};

/// The hosted process type of a cluster: the full ISIS + hierarchy stack
/// over the recording business application.
pub type ClusterProc = IsisProcess<HierApp<RecorderBiz>>;

/// Parameters of one cluster run.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Large-group member count (the paper's full run uses 64).
    pub members: usize,
    /// Number of daemons the processes are spread across.
    pub daemons: usize,
    /// Hierarchy shape (resiliency doubles as the leader-group size).
    pub cfg: LargeGroupConfig,
    /// Use loopback TCP instead of unix sockets.
    pub tcp: bool,
    /// E1 replay rounds (0 skips the replay).
    pub e1_rounds: usize,
    /// E9 replay quote count (0 skips the replay).
    pub e9_quotes: usize,
    /// E9 feed rate in quotes per second.
    pub e9_rate: u32,
    /// Seed for the endpoints' protocol-level RNG streams.
    pub seed: u64,
}

impl ClusterConfig {
    /// The CI smoke shape: 8 members in 2 daemons, short replays.
    pub fn smoke() -> ClusterConfig {
        ClusterConfig {
            members: 8,
            daemons: 2,
            cfg: LargeGroupConfig::new(2, 4),
            tcp: false,
            e1_rounds: 3,
            e9_quotes: 10,
            e9_rate: 40,
            seed: 42,
        }
    }

    /// The paper-scale run: 64 members across 4 daemons.
    pub fn full() -> ClusterConfig {
        ClusterConfig {
            members: 64,
            daemons: 4,
            cfg: LargeGroupConfig::new(3, 4),
            tcp: false,
            e1_rounds: 8,
            e9_quotes: 40,
            e9_rate: 40,
            seed: 42,
        }
    }
}

/// Latency percentiles over a set of completed rounds, in microseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Rounds attempted.
    pub rounds: usize,
    /// Rounds where every member delivered before the deadline.
    pub completed: usize,
    /// Median completion latency (µs).
    pub p50_us: u64,
    /// 99th-percentile completion latency (µs).
    pub p99_us: u64,
    /// Worst completion latency (µs).
    pub max_us: u64,
}

impl LatencyStats {
    fn from_samples(rounds: usize, mut us: Vec<u64>) -> LatencyStats {
        us.sort_unstable();
        let pick = |q: f64| -> u64 {
            if us.is_empty() {
                return 0;
            }
            let idx = ((us.len() - 1) as f64 * q).round() as usize;
            us[idx]
        };
        LatencyStats {
            rounds,
            completed: us.len(),
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: us.last().copied().unwrap_or(0),
        }
    }
}

/// Outcome of the E9 (trading room) replay.
#[derive(Clone, Debug, Default)]
pub struct E9Report {
    /// Quotes streamed by the feed.
    pub quotes: usize,
    /// `quotes × analysts` — the deliveries a lossless run produces.
    pub expected: usize,
    /// Deliveries actually observed across all analysts.
    pub delivered: usize,
    /// Milliseconds from the last quote's submission until every analyst
    /// had the full stream (deadline-capped).
    pub drain_ms: u64,
}

impl E9Report {
    /// Fraction of expected deliveries observed.
    pub fn ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }
}

/// Everything a cluster run reports.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Member count.
    pub members: usize,
    /// Daemon count.
    pub daemons: usize,
    /// Wall milliseconds from boot until the hierarchy was fully formed.
    pub formation_ms: u64,
    /// E1 replay latencies.
    pub e1: LatencyStats,
    /// E9 replay outcome.
    pub e9: E9Report,
    /// Total messages sent, summed over daemons.
    pub messages_sent: u64,
    /// Trace events recorded across all daemons.
    pub events: usize,
    /// Virtual-synchrony monitor violations found in the merged trace.
    pub violations: usize,
}

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn make_addrs(daemons: usize, tcp: bool) -> Vec<Addr> {
    let run = RUN_COUNTER.fetch_add(1, Ordering::SeqCst);
    let pid = std::process::id();
    if tcp {
        // Derive a port window from the OS pid so concurrent test
        // processes rarely collide; bind errors surface as Err from run().
        let base = 30000 + ((u64::from(pid) * 131 + run * 17) % 20000) as u16;
        (0..daemons)
            .map(|d| {
                Addr::Tcp(std::net::SocketAddr::from((
                    [127, 0, 0, 1],
                    base + d as u16,
                )))
            })
            .collect()
    } else {
        let dir = std::env::temp_dir();
        (0..daemons)
            .map(|d| Addr::Unix(dir.join(format!("now-cluster-{pid}-{run}-{d}.sock"))))
            .collect()
    }
}

struct Cluster {
    daemons: Vec<Daemon<ClusterProc>>,
    routing: Vec<u32>,
    lgid: LargeGroupId,
    leaders: Vec<Pid>,
    members: Vec<Pid>,
    epoch: Instant,
}

impl Cluster {
    fn daemon_of(&self, pid: Pid) -> &Daemon<ClusterProc> {
        &self.daemons[self.routing[pid.0 as usize] as usize]
    }

    /// True once `pred` holds for the app state of every pid in `pids`.
    fn all_apps(
        &self,
        pids: &[Pid],
        pred: impl Fn(&HierApp<RecorderBiz>) -> bool + Send + Sync + Clone + 'static,
    ) -> bool {
        for (d, daemon) in self.daemons.iter().enumerate() {
            let mine: Vec<u32> = pids
                .iter()
                .filter(|p| self.routing[p.0 as usize] == d as u32)
                .map(|p| p.0)
                .collect();
            if mine.is_empty() {
                continue;
            }
            let pred = pred.clone();
            let ok = daemon
                .with_core(move |core| {
                    mine.iter()
                        .all(|&p| core.proc(Pid(p)).is_some_and(|proc_| pred(proc_.app())))
                })
                .unwrap_or(false);
            if !ok {
                return false;
            }
        }
        true
    }

    /// Polls `cond` until it returns true or `limit` elapses.
    fn wait_for(&self, limit: Duration, mut cond: impl FnMut(&Cluster) -> bool) -> bool {
        let deadline = Instant::now() + limit;
        loop {
            if cond(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Boots the cluster, forms the hierarchy, replays E1 and E9, checks the
/// merged trace against the VS monitors, and tears everything down.
pub fn run(cfg: &ClusterConfig) -> Result<ClusterReport, String> {
    let lgid = LargeGroupId(1);
    let nleaders = cfg.cfg.resiliency.max(1);
    let total = nleaders + cfg.members;
    let daemons = cfg.daemons.max(1);
    let addrs = make_addrs(daemons, cfg.tcp);
    let routing: Vec<u32> = (0..total).map(|p| (p % daemons) as u32).collect();
    let routing_arc = Arc::new(routing.clone());
    let epoch = Instant::now();

    // Boot: every process exists from the start; the hierarchy is formed
    // by explicit invocations afterwards, exactly like the sim harness.
    let mut handles = Vec::new();
    for d in 0..daemons {
        let procs: Vec<(Pid, ClusterProc)> = (0..total)
            .filter(|p| routing[*p] == d as u32)
            .map(|p| {
                (
                    Pid(p as u32),
                    IsisProcess::new(
                        HierApp::with_timers(RecorderBiz::default(), cfg.cfg.clone()),
                        IsisConfig::default(),
                    ),
                )
            })
            .collect();
        let daemon = Daemon::spawn(
            DaemonConfig {
                index: d as u32,
                addrs: addrs.clone(),
                routing: Arc::clone(&routing_arc),
                epoch,
                seed: cfg.seed.wrapping_add(d as u64),
            },
            procs,
        )
        .map_err(|e| format!("daemon {d} failed to boot: {e}"))?;
        daemon.with_core(|core| {
            core.endpoint_mut()
                .set_tracer(Tracer::new().retain_all());
        });
        handles.push(daemon);
    }

    let leaders: Vec<Pid> = (0..nleaders).map(|p| Pid(p as u32)).collect();
    let members: Vec<Pid> = (nleaders..total).map(|p| Pid(p as u32)).collect();
    let cluster = Cluster {
        daemons: handles,
        routing,
        lgid,
        leaders: leaders.clone(),
        members: members.clone(),
        epoch,
    };

    let report = (|| {
        form(&cluster, cfg)?;
        let formation_ms = epoch.elapsed().as_millis() as u64;
        let e1 = replay_e1(&cluster, cfg.e1_rounds)?;
        let e9 = replay_e9(&cluster, cfg.e9_quotes, cfg.e9_rate)?;
        Ok::<_, String>((formation_ms, e1, e9))
    })();

    // Tear down and collect traces even when a phase failed, so sockets
    // never leak.
    let mut messages_sent = 0u64;
    let mut tracers: Vec<Tracer> = Vec::new();
    for d in &cluster.daemons {
        if let Some(sent) = d.with_core(|core| core.endpoint().stats().messages_sent) {
            messages_sent += sent;
        }
        if let Some(Some(tr)) = d.with_core(|core| core.endpoint_mut().take_tracer()) {
            tracers.push(tr);
        }
    }
    for d in cluster.daemons {
        d.shutdown();
    }

    let (formation_ms, e1, e9) = report?;
    let (events, violations) = check_merged_trace(tracers);

    Ok(ClusterReport {
        members: cfg.members,
        daemons,
        formation_ms,
        e1,
        e9,
        messages_sent,
        events,
        violations,
    })
}

/// Drives the harness formation sequence over the wire.
fn form(cluster: &Cluster, cfg: &ClusterConfig) -> Result<(), String> {
    let lgid = cluster.lgid;
    let nleaders = cluster.leaders.len();
    let shape = cfg.cfg.clone();
    let first = cluster.leaders[0];
    cluster.daemon_of(first).invoke(first, move |p, ctx| {
        p.with_app(ctx, move |app, up| app.create_large(lgid, shape, up));
    });
    for &l in &cluster.leaders[1..] {
        cluster.daemon_of(l).invoke(l, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.join_leader_group(lgid, first, up));
        });
    }
    let leader_gid = lgid.leader_gid();
    let leaders = cluster.leaders.clone();
    let formed = cluster.wait_for(Duration::from_secs(30), |c| {
        c.all_apps(&leaders, move |_| true)
            && leaders.iter().all(|&l| {
                c.daemon_of(l)
                    .invoke(l, move |p, _ctx| {
                        p.view_of(leader_gid).is_some_and(|v| v.size() == nleaders)
                    })
                    .unwrap_or(false)
            })
    });
    if !formed {
        return Err("leader group never formed".into());
    }

    for &m in &cluster.members {
        cluster.daemon_of(m).invoke(m, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.join_large(lgid, first, up));
        });
    }
    let members = cluster.members.clone();
    let want = cluster.members.len();
    let joined = cluster.wait_for(Duration::from_secs(120), |c| {
        c.all_apps(&members, move |app| app.is_large_member(lgid))
            && c.daemon_of(first)
                .invoke(first, move |p, _ctx| {
                    p.app()
                        .leader_view(lgid)
                        .is_some_and(|v| v.total_members() == want)
                })
                .unwrap_or(false)
    });
    if !joined {
        let n = cluster
            .members
            .iter()
            .filter(|&&m| {
                cluster
                    .daemon_of(m)
                    .invoke(m, move |p, _ctx| p.app().is_large_member(lgid))
                    .unwrap_or(false)
            })
            .count();
        return Err(format!("large group never formed ({n}/{want} joined)"));
    }
    Ok(())
}

/// E1 replay: timed rounds of large-group broadcasts.
fn replay_e1(cluster: &Cluster, rounds: usize) -> Result<LatencyStats, String> {
    let lgid = cluster.lgid;
    let mut samples = Vec::new();
    for i in 0..rounds {
        let sender = cluster.members[i % cluster.members.len()];
        let payload = format!("e1:{i}");
        let started = Instant::now();
        let pl = payload.clone();
        cluster.daemon_of(sender).invoke(sender, move |p, ctx| {
            p.with_app(ctx, move |app, up| {
                app.lbcast(lgid, pl, up);
            });
        });
        let members = cluster.members.clone();
        let done = cluster.wait_for(Duration::from_secs(15), |c| {
            let pl = payload.clone();
            c.all_apps(&members, move |app| {
                app.biz().lbcast_payloads(lgid).contains(&pl)
            })
        });
        if !done {
            return Err(format!("E1 round {i} never completed"));
        }
        samples.push(started.elapsed().as_micros() as u64);
    }
    Ok(LatencyStats::from_samples(rounds, samples))
}

/// E9 replay: the trading-room quote stream.
fn replay_e9(cluster: &Cluster, quotes: usize, rate: u32) -> Result<E9Report, String> {
    if quotes == 0 {
        return Ok(E9Report::default());
    }
    let lgid = cluster.lgid;
    let feed = cluster.members[0];
    let gap = Duration::from_micros(1_000_000 / u64::from(rate.max(1)));
    const SYMS: [&str; 4] = ["IBM", "DEC", "SUN", "HP"];
    for q in 0..quotes {
        let sent_us = cluster.epoch.elapsed().as_micros() as u64;
        let payload = format!("q:{}:{}:{}", SYMS[q % SYMS.len()], q, sent_us);
        cluster.daemon_of(feed).invoke(feed, move |p, ctx| {
            p.with_app(ctx, move |app, up| {
                app.lbcast(lgid, payload, up);
            });
        });
        thread::sleep(gap);
    }
    let last_submit = Instant::now();
    let members = cluster.members.clone();
    let drained = cluster.wait_for(Duration::from_secs(30), |c| {
        c.all_apps(&members, move |app| {
            app.biz()
                .lbcast_payloads(lgid)
                .iter()
                .filter(|p| p.starts_with("q:"))
                .count()
                >= quotes
        })
    });
    let drain_ms = last_submit.elapsed().as_millis() as u64;
    let mut delivered = 0usize;
    for &m in &cluster.members {
        delivered += cluster
            .daemon_of(m)
            .invoke(m, move |p, _ctx| {
                p.app()
                    .biz()
                    .lbcast_payloads(lgid)
                    .iter()
                    .filter(|s| s.starts_with("q:"))
                    .count()
            })
            .unwrap_or(0);
    }
    let report = E9Report {
        quotes,
        expected: quotes * cluster.members.len(),
        delivered,
        drain_ms,
    };
    if !drained {
        return Err(format!(
            "E9 never drained: {}/{} deliveries",
            report.delivered, report.expected
        ));
    }
    Ok(report)
}

/// Merges the per-daemon event logs on the shared clock and replays them
/// through a fresh monitor set. Returns (events, violations).
fn check_merged_trace(tracers: Vec<Tracer>) -> (usize, usize) {
    let mut merged: Vec<(u64, usize, TraceEvent)> = Vec::new();
    for (d, tr) in tracers.into_iter().enumerate() {
        for ev in tr.events() {
            merged.push((ev.at, d, ev));
        }
    }
    merged.sort_by_key(|a| (a.0, a.1, a.2.seq));
    let mut monitors = Monitors::new();
    let mut violations = 0usize;
    let n = merged.len();
    for (_, _, ev) in &merged {
        violations += monitors.observe(ev).len();
    }
    (n, violations)
}
