//! Binary payload encoding for the protocol stack's message types.
//!
//! The simulator never serialises anything — messages move between
//! processes as cloned Rust values. The real backend needs bytes, so this
//! module defines a small [`Wire`] trait (little-endian, length-prefixed
//! collections, one tag byte per enum variant) and implements it for the
//! whole `IsisMsg`/`HierPayload` stack. The trait is local, so the orphan
//! rule lets us cover the upstream types directly.
//!
//! Decoding never panics: every claim in the input (lengths, tags,
//! sequence counts) is validated against the remaining bytes and yields
//! [`CodecError`] on mismatch — socket input is untrusted.
//!
//! The `decode` tag matches end in a `BadTag` catch-all, so a variant
//! added to a protocol enum without a decode arm *compiles* and only
//! fails against a live peer. detlint rule R8 closes that gap: it
//! cross-checks the variants named by every `encode`/`decode` pair here
//! against the enum definitions, and any drift fails the lint.

use now_sim::Pid;

use isis_core::{
    CastData, CastKind, DeliveryFloor, GroupId, GroupView, IsisMsg, MsgId, RelaySet,
    StabilityVector, VClock,
};
use isis_hier::{
    CtlMsg, HierPayload, HierState, LargeGroupId, LbcastId, LbcastStatus, LeaderCmd, TreeMsg,
};
use isis_hier::{HierView, LeafDesc};

use crate::codec::CodecError;

/// Cursor over a received payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a collection length and sanity-checks it against the bytes
    /// actually available (every element costs at least one byte), so a
    /// corrupt length cannot trigger a huge allocation.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Symmetric binary encoding. Implementations must satisfy
/// `decode(encode(x)) == x` (the codec property tests check this for the
/// full message stack).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a message into a fresh byte vector.
pub fn encode_msg<M: Wire>(msg: &M) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(&mut out);
    out
}

/// Decodes a message, requiring the buffer to be consumed exactly.
pub fn decode_msg<M: Wire>(buf: &[u8]) -> Result<M, CodecError> {
    let mut r = WireReader::new(buf);
    let m = M::decode(&mut r)?;
    r.finish()?;
    Ok(m)
}

// ------------------------------------------------------------ primitives --

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadTag("usize", v))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag("bool", u64::from(t))),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let n = r.len()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(CodecError::BadTag("option", u64::from(t))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let n = r.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

// ------------------------------------------------------------- identifiers --

impl Wire for Pid {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Pid(r.u32()?))
    }
}

impl Wire for GroupId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(GroupId(r.u64()?))
    }
}

impl Wire for LargeGroupId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(LargeGroupId(r.u32()?))
    }
}

impl Wire for LbcastId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(LbcastId {
            origin: Pid::decode(r)?,
            seq: r.u64()?,
        })
    }
}

impl Wire for MsgId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sender.encode(out);
        self.view.encode(out);
        self.stream.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(MsgId {
            sender: Pid::decode(r)?,
            view: r.u64()?,
            stream: r.u8()?,
            seq: r.u64()?,
        })
    }
}

impl Wire for CastKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CastKind::Fifo => 0,
            CastKind::Causal => 1,
            CastKind::Total => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(CastKind::Fifo),
            1 => Ok(CastKind::Causal),
            2 => Ok(CastKind::Total),
            t => Err(CodecError::BadTag("cast_kind", u64::from(t))),
        }
    }
}

impl Wire for VClock {
    fn encode(&self, out: &mut Vec<u8>) {
        let entries: Vec<(Pid, u64)> = self.iter().collect();
        entries.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let entries = Vec::<(Pid, u64)>::decode(r)?;
        let mut vc = VClock::default();
        for (p, v) in entries {
            vc.set(p, v);
        }
        Ok(vc)
    }
}

impl Wire for GroupView {
    fn encode(&self, out: &mut Vec<u8>) {
        self.gid.encode(out);
        self.view_id.encode(out);
        self.members.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(GroupView {
            gid: GroupId::decode(r)?,
            view_id: r.u64()?,
            members: Vec::decode(r)?,
        })
    }
}

// -------------------------------------------------------------- isis-core --

impl Wire for StabilityVector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.cvt.encode(out);
        self.fvt.encode(out);
        self.adel.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(StabilityVector {
            view: r.u64()?,
            cvt: VClock::decode(r)?,
            fvt: VClock::decode(r)?,
            adel: r.u64()?,
        })
    }
}

impl<P: Wire> Wire for CastData<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.gid.encode(out);
        self.view.encode(out);
        self.kind.encode(out);
        self.id.encode(out);
        self.vt.encode(out);
        self.stab.encode(out);
        self.want_ack.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(CastData {
            gid: GroupId::decode(r)?,
            view: r.u64()?,
            kind: CastKind::decode(r)?,
            id: MsgId::decode(r)?,
            vt: VClock::decode(r)?,
            stab: StabilityVector::decode(r)?,
            want_ack: bool::decode(r)?,
            payload: P::decode(r)?,
        })
    }
}

impl<P: Wire> Wire for RelaySet<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.causal.encode(out);
        self.fifo.encode(out);
        self.total_ordered.encode(out);
        self.total_unordered.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(RelaySet {
            causal: Vec::decode(r)?,
            fifo: Vec::decode(r)?,
            total_ordered: Vec::decode(r)?,
            total_unordered: Vec::decode(r)?,
        })
    }
}

impl Wire for DeliveryFloor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cvt.encode(out);
        self.fdel.encode(out);
        self.adel.encode(out);
        self.delivered.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(DeliveryFloor {
            cvt: VClock::decode(r)?,
            fdel: VClock::decode(r)?,
            adel: r.u64()?,
            delivered: Vec::decode(r)?,
        })
    }
}

impl<P: Wire, S: Wire> Wire for IsisMsg<P, S> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            IsisMsg::JoinReq { gid } => {
                out.push(0);
                gid.encode(out);
            }
            IsisMsg::JoinForward { gid, joiner } => {
                out.push(1);
                gid.encode(out);
                joiner.encode(out);
            }
            IsisMsg::JoinDenied { gid } => {
                out.push(2);
                gid.encode(out);
            }
            IsisMsg::LeaveReq { gid } => {
                out.push(3);
                gid.encode(out);
            }
            IsisMsg::SuspectReport { gid, suspect } => {
                out.push(4);
                gid.encode(out);
                suspect.encode(out);
            }
            IsisMsg::Flush {
                gid,
                attempt,
                proposal,
            } => {
                out.push(5);
                gid.encode(out);
                attempt.encode(out);
                proposal.encode(out);
            }
            IsisMsg::FlushAck {
                gid,
                attempt,
                member_view,
                stab,
                buffers,
            } => {
                out.push(6);
                gid.encode(out);
                attempt.encode(out);
                member_view.encode(out);
                stab.encode(out);
                buffers.encode(out);
            }
            IsisMsg::InstallView {
                gid,
                attempt,
                view,
                relay,
                state,
                floor,
            } => {
                out.push(7);
                gid.encode(out);
                attempt.encode(out);
                view.encode(out);
                relay.encode(out);
                state.encode(out);
                floor.encode(out);
            }
            IsisMsg::Cast(c) => {
                out.push(8);
                c.encode(out);
            }
            IsisMsg::AbcastOrder {
                gid,
                view,
                gseq,
                id,
            } => {
                out.push(9);
                gid.encode(out);
                view.encode(out);
                gseq.encode(out);
                id.encode(out);
            }
            IsisMsg::CastAck { gid, id } => {
                out.push(10);
                gid.encode(out);
                id.encode(out);
            }
            IsisMsg::Heartbeat { gid, stab } => {
                out.push(11);
                gid.encode(out);
                stab.encode(out);
            }
            IsisMsg::Direct(p) => {
                out.push(12);
                p.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => IsisMsg::JoinReq {
                gid: GroupId::decode(r)?,
            },
            1 => IsisMsg::JoinForward {
                gid: GroupId::decode(r)?,
                joiner: Pid::decode(r)?,
            },
            2 => IsisMsg::JoinDenied {
                gid: GroupId::decode(r)?,
            },
            3 => IsisMsg::LeaveReq {
                gid: GroupId::decode(r)?,
            },
            4 => IsisMsg::SuspectReport {
                gid: GroupId::decode(r)?,
                suspect: Pid::decode(r)?,
            },
            5 => IsisMsg::Flush {
                gid: GroupId::decode(r)?,
                attempt: r.u64()?,
                proposal: GroupView::decode(r)?,
            },
            6 => IsisMsg::FlushAck {
                gid: GroupId::decode(r)?,
                attempt: r.u64()?,
                member_view: r.u64()?,
                stab: StabilityVector::decode(r)?,
                buffers: RelaySet::decode(r)?,
            },
            7 => IsisMsg::InstallView {
                gid: GroupId::decode(r)?,
                attempt: r.u64()?,
                view: GroupView::decode(r)?,
                relay: RelaySet::decode(r)?,
                state: Option::decode(r)?,
                floor: Option::decode(r)?,
            },
            8 => IsisMsg::Cast(CastData::decode(r)?),
            9 => IsisMsg::AbcastOrder {
                gid: GroupId::decode(r)?,
                view: r.u64()?,
                gseq: r.u64()?,
                id: MsgId::decode(r)?,
            },
            10 => IsisMsg::CastAck {
                gid: GroupId::decode(r)?,
                id: MsgId::decode(r)?,
            },
            11 => IsisMsg::Heartbeat {
                gid: GroupId::decode(r)?,
                stab: StabilityVector::decode(r)?,
            },
            12 => IsisMsg::Direct(P::decode(r)?),
            t => return Err(CodecError::BadTag("isis_msg", u64::from(t))),
        })
    }
}

// -------------------------------------------------------------- isis-hier --

impl Wire for LbcastStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            LbcastStatus::Resilient => 0,
            LbcastStatus::Complete => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(LbcastStatus::Resilient),
            1 => Ok(LbcastStatus::Complete),
            t => Err(CodecError::BadTag("lbcast_status", u64::from(t))),
        }
    }
}

impl Wire for LeafDesc {
    fn encode(&self, out: &mut Vec<u8>) {
        self.gid.encode(out);
        self.contacts.encode(out);
        self.size.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(LeafDesc {
            gid: GroupId::decode(r)?,
            contacts: Vec::decode(r)?,
            size: usize::decode(r)?,
        })
    }
}

impl Wire for HierView {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lgid.encode(out);
        self.epoch.encode(out);
        self.fanout.encode(out);
        self.resiliency.encode(out);
        self.leaves.encode(out);
        self.leader_contacts.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(HierView {
            lgid: LargeGroupId::decode(r)?,
            epoch: r.u64()?,
            fanout: usize::decode(r)?,
            resiliency: usize::decode(r)?,
            leaves: Vec::decode(r)?,
            leader_contacts: Vec::decode(r)?,
        })
    }
}

impl<Q: Wire> Wire for TreeMsg<Q> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TreeMsg::Submit { lgid, id, payload } => {
                out.push(0);
                lgid.encode(out);
                id.encode(out);
                payload.encode(out);
            }
            TreeMsg::Forward {
                lgid,
                epoch,
                lseq,
                id,
                payload,
            } => {
                out.push(1);
                lgid.encode(out);
                epoch.encode(out);
                lseq.encode(out);
                id.encode(out);
                payload.encode(out);
            }
            TreeMsg::LeafDeliver {
                lgid,
                epoch,
                lseq,
                id,
                ack_to,
                payload,
            } => {
                out.push(2);
                lgid.encode(out);
                epoch.encode(out);
                lseq.encode(out);
                id.encode(out);
                ack_to.encode(out);
                payload.encode(out);
            }
            TreeMsg::MemberAck { lgid, lseq } => {
                out.push(3);
                lgid.encode(out);
                lseq.encode(out);
            }
            TreeMsg::SubtreeAck {
                lgid,
                epoch,
                lseq,
                leaf,
            } => {
                out.push(4);
                lgid.encode(out);
                epoch.encode(out);
                lseq.encode(out);
                leaf.encode(out);
            }
            TreeMsg::OriginAck { lgid, id, status } => {
                out.push(5);
                lgid.encode(out);
                id.encode(out);
                status.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => TreeMsg::Submit {
                lgid: LargeGroupId::decode(r)?,
                id: LbcastId::decode(r)?,
                payload: Q::decode(r)?,
            },
            1 => TreeMsg::Forward {
                lgid: LargeGroupId::decode(r)?,
                epoch: r.u64()?,
                lseq: r.u64()?,
                id: LbcastId::decode(r)?,
                payload: Q::decode(r)?,
            },
            2 => TreeMsg::LeafDeliver {
                lgid: LargeGroupId::decode(r)?,
                epoch: r.u64()?,
                lseq: r.u64()?,
                id: LbcastId::decode(r)?,
                ack_to: Option::decode(r)?,
                payload: Q::decode(r)?,
            },
            3 => TreeMsg::MemberAck {
                lgid: LargeGroupId::decode(r)?,
                lseq: r.u64()?,
            },
            4 => TreeMsg::SubtreeAck {
                lgid: LargeGroupId::decode(r)?,
                epoch: r.u64()?,
                lseq: r.u64()?,
                leaf: GroupId::decode(r)?,
            },
            5 => TreeMsg::OriginAck {
                lgid: LargeGroupId::decode(r)?,
                id: LbcastId::decode(r)?,
                status: LbcastStatus::decode(r)?,
            },
            t => return Err(CodecError::BadTag("tree_msg", u64::from(t))),
        })
    }
}

impl Wire for CtlMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtlMsg::JoinLargeReq { lgid } => {
                out.push(0);
                lgid.encode(out);
            }
            CtlMsg::JoinAssign {
                lgid,
                leaf,
                contacts,
            } => {
                out.push(1);
                lgid.encode(out);
                leaf.encode(out);
                contacts.encode(out);
            }
            CtlMsg::JoinCreateLeaf { lgid, leaf } => {
                out.push(2);
                lgid.encode(out);
                leaf.encode(out);
            }
            CtlMsg::JoinLargeDenied { lgid } => {
                out.push(3);
                lgid.encode(out);
            }
            CtlMsg::ContactsUpdate {
                lgid,
                leaf,
                contacts,
                size,
            } => {
                out.push(4);
                lgid.encode(out);
                leaf.encode(out);
                contacts.encode(out);
                size.encode(out);
            }
            CtlMsg::LeafDeadReport { lgid, leaf } => {
                out.push(5);
                lgid.encode(out);
                leaf.encode(out);
            }
            CtlMsg::HierPush { view, propagate } => {
                out.push(6);
                view.encode(out);
                propagate.encode(out);
            }
            CtlMsg::SplitLeaf {
                lgid,
                leaf,
                new_leaf,
            } => {
                out.push(7);
                lgid.encode(out);
                leaf.encode(out);
                new_leaf.encode(out);
            }
            CtlMsg::DoSplit {
                lgid,
                new_leaf,
                movers,
                leader_contacts,
            } => {
                out.push(8);
                lgid.encode(out);
                new_leaf.encode(out);
                movers.encode(out);
                leader_contacts.encode(out);
            }
            CtlMsg::DissolveLeaf {
                lgid,
                leaf,
                target,
                target_contacts,
            } => {
                out.push(9);
                lgid.encode(out);
                leaf.encode(out);
                target.encode(out);
                target_contacts.encode(out);
            }
            CtlMsg::DoDissolve {
                lgid,
                target,
                target_contacts,
                leader_contacts,
            } => {
                out.push(10);
                lgid.encode(out);
                target.encode(out);
                target_contacts.encode(out);
                leader_contacts.encode(out);
            }
            CtlMsg::LeafBeacon {
                lgid,
                leaf,
                epoch,
                contacts,
            } => {
                out.push(11);
                lgid.encode(out);
                leaf.encode(out);
                epoch.encode(out);
                contacts.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => CtlMsg::JoinLargeReq {
                lgid: LargeGroupId::decode(r)?,
            },
            1 => CtlMsg::JoinAssign {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                contacts: Vec::decode(r)?,
            },
            2 => CtlMsg::JoinCreateLeaf {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
            },
            3 => CtlMsg::JoinLargeDenied {
                lgid: LargeGroupId::decode(r)?,
            },
            4 => CtlMsg::ContactsUpdate {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                contacts: Vec::decode(r)?,
                size: usize::decode(r)?,
            },
            5 => CtlMsg::LeafDeadReport {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
            },
            6 => CtlMsg::HierPush {
                view: HierView::decode(r)?,
                propagate: bool::decode(r)?,
            },
            7 => CtlMsg::SplitLeaf {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                new_leaf: GroupId::decode(r)?,
            },
            8 => CtlMsg::DoSplit {
                lgid: LargeGroupId::decode(r)?,
                new_leaf: GroupId::decode(r)?,
                movers: Vec::decode(r)?,
                leader_contacts: Vec::decode(r)?,
            },
            9 => CtlMsg::DissolveLeaf {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                target: GroupId::decode(r)?,
                target_contacts: Vec::decode(r)?,
            },
            10 => CtlMsg::DoDissolve {
                lgid: LargeGroupId::decode(r)?,
                target: GroupId::decode(r)?,
                target_contacts: Vec::decode(r)?,
                leader_contacts: Vec::decode(r)?,
            },
            11 => CtlMsg::LeafBeacon {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                epoch: r.u64()?,
                contacts: Vec::decode(r)?,
            },
            t => return Err(CodecError::BadTag("ctl_msg", u64::from(t))),
        })
    }
}

impl Wire for LeaderCmd {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LeaderCmd::Assign { lgid, joiner } => {
                out.push(0);
                lgid.encode(out);
                joiner.encode(out);
            }
            LeaderCmd::MintLeaf { lgid, founder } => {
                out.push(1);
                lgid.encode(out);
                founder.encode(out);
            }
            LeaderCmd::Contacts {
                lgid,
                leaf,
                contacts,
                size,
            } => {
                out.push(2);
                lgid.encode(out);
                leaf.encode(out);
                contacts.encode(out);
                size.encode(out);
            }
            LeaderCmd::LeafDead { lgid, leaf } => {
                out.push(3);
                lgid.encode(out);
                leaf.encode(out);
            }
            LeaderCmd::Split { lgid, leaf } => {
                out.push(4);
                lgid.encode(out);
                leaf.encode(out);
            }
            LeaderCmd::Dissolve { lgid, leaf, target } => {
                out.push(5);
                lgid.encode(out);
                leaf.encode(out);
                target.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => LeaderCmd::Assign {
                lgid: LargeGroupId::decode(r)?,
                joiner: Pid::decode(r)?,
            },
            1 => LeaderCmd::MintLeaf {
                lgid: LargeGroupId::decode(r)?,
                founder: Pid::decode(r)?,
            },
            2 => LeaderCmd::Contacts {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                contacts: Vec::decode(r)?,
                size: usize::decode(r)?,
            },
            3 => LeaderCmd::LeafDead {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
            },
            4 => LeaderCmd::Split {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
            },
            5 => LeaderCmd::Dissolve {
                lgid: LargeGroupId::decode(r)?,
                leaf: GroupId::decode(r)?,
                target: GroupId::decode(r)?,
            },
            t => return Err(CodecError::BadTag("leader_cmd", u64::from(t))),
        })
    }
}

impl<Q: Wire> Wire for HierPayload<Q> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HierPayload::Biz(q) => {
                out.push(0);
                q.encode(out);
            }
            HierPayload::Tree(t) => {
                out.push(1);
                t.encode(out);
            }
            HierPayload::Ctl(c) => {
                out.push(2);
                c.encode(out);
            }
            HierPayload::Cmd(c) => {
                out.push(3);
                c.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => HierPayload::Biz(Q::decode(r)?),
            1 => HierPayload::Tree(TreeMsg::decode(r)?),
            2 => HierPayload::Ctl(CtlMsg::decode(r)?),
            3 => HierPayload::Cmd(LeaderCmd::decode(r)?),
            t => return Err(CodecError::BadTag("hier_payload", u64::from(t))),
        })
    }
}

impl<S: Wire> Wire for HierState<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HierState::None => out.push(0),
            HierState::Leaf(s) => {
                out.push(1);
                s.encode(out);
            }
            HierState::Leader {
                view,
                next_slot,
                resiliency,
                min_leaf,
                max_leaf,
            } => {
                out.push(2);
                view.encode(out);
                next_slot.encode(out);
                resiliency.encode(out);
                min_leaf.encode(out);
                max_leaf.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => HierState::None,
            1 => HierState::Leaf(S::decode(r)?),
            2 => HierState::Leader {
                view: HierView::decode(r)?,
                next_slot: r.u32()?,
                resiliency: usize::decode(r)?,
                min_leaf: usize::decode(r)?,
                max_leaf: usize::decode(r)?,
            },
            t => return Err(CodecError::BadTag("hier_state", u64::from(t))),
        })
    }
}
