//! Codec hardening: deterministic property tests for the frame layer and
//! the `Wire` payload encoding of the full cluster message type.
//!
//! The roundtrip property is stated over bytes — `encode(decode(bytes)) ==
//! bytes` for freshly encoded values — because the protocol enums do not
//! implement `PartialEq`; byte equality under a deterministic encoder is
//! the same statement. The rejection properties feed truncations, bit
//! flips, and raw garbage through both layers and require an error (or a
//! clean "need more bytes"), never a panic or an oversized allocation.

use now_sim::detprop::collection::vec as pvec;
use now_sim::detprop::prelude::*;
use now_sim::{prop_oneof, proptest};
use now_sim::Pid;

use isis_core::{
    CastData, CastKind, DeliveryFloor, GroupId, GroupView, IsisMsg, MsgId, RelaySet,
    StabilityVector, VClock,
};
use isis_hier::{
    CtlMsg, HierPayload, HierState, HierView, LargeGroupId, LbcastId, LbcastStatus, LeafDesc,
    LeaderCmd, TreeMsg,
};

use now_net::codec::{decode_frame, encode_frame, CodecError, Frame, MAX_FRAME_BODY};
use now_net::wire::{decode_msg, encode_msg};

/// The message type the real cluster ships: the whole stack.
type ClusterMsg = IsisMsg<HierPayload<String>, HierState<Vec<String>>>;

// ---------------------------------------------------------- strategies --

fn pid() -> impl Strategy<Value = Pid> + Clone {
    any::<u32>().prop_map(Pid)
}

fn short_string() -> impl Strategy<Value = String> + Clone {
    pvec(any::<u8>(), 0..12)
        .prop_map(|b| b.into_iter().map(|c| char::from(b'a' + (c % 26))).collect())
}

fn vclock() -> impl Strategy<Value = VClock> + Clone {
    pvec((pid(), any::<u64>()), 0..4).prop_map(|entries| {
        let mut vc = VClock::default();
        for (p, v) in entries {
            vc.set(p, v);
        }
        vc
    })
}

fn msg_id() -> impl Strategy<Value = MsgId> + Clone {
    (pid(), any::<u64>(), any::<u8>(), any::<u64>()).prop_map(|(sender, view, stream, seq)| {
        MsgId {
            sender,
            view,
            stream,
            seq,
        }
    })
}

fn cast_kind() -> impl Strategy<Value = CastKind> + Clone {
    prop_oneof![
        Just(CastKind::Fifo),
        Just(CastKind::Causal),
        Just(CastKind::Total),
    ]
}

fn delivery_floor() -> impl Strategy<Value = DeliveryFloor> + Clone {
    (vclock(), vclock(), any::<u64>(), prop::collection::vec(msg_id(), 0..4)).prop_map(
        |(cvt, fdel, adel, delivered)| DeliveryFloor {
            cvt,
            fdel,
            adel,
            delivered,
        },
    )
}

fn stab() -> impl Strategy<Value = StabilityVector> + Clone {
    (any::<u64>(), vclock(), vclock(), any::<u64>()).prop_map(|(view, cvt, fvt, adel)| {
        StabilityVector {
            view,
            cvt,
            fvt,
            adel,
        }
    })
}

fn group_view() -> impl Strategy<Value = GroupView> + Clone {
    (any::<u64>(), any::<u64>(), pvec(pid(), 0..6)).prop_map(|(gid, view_id, members)| GroupView {
        gid: GroupId(gid),
        view_id,
        members,
    })
}

fn lbcast_id() -> impl Strategy<Value = LbcastId> + Clone {
    (pid(), any::<u64>()).prop_map(|(origin, seq)| LbcastId { origin, seq })
}

fn leaf_desc() -> impl Strategy<Value = LeafDesc> + Clone {
    (any::<u64>(), pvec(pid(), 0..4), any::<u16>()).prop_map(|(gid, contacts, size)| LeafDesc {
        gid: GroupId(gid),
        contacts,
        size: size as usize,
    })
}

fn hier_view() -> impl Strategy<Value = HierView> + Clone {
    (
        (any::<u32>(), any::<u64>()),
        (0usize..8, 0usize..5),
        pvec(leaf_desc(), 0..4),
        pvec(pid(), 0..3),
    )
        .prop_map(
            |((lgid, epoch), (fanout, resiliency), leaves, leader_contacts)| HierView {
                lgid: LargeGroupId(lgid),
                epoch,
                fanout,
                resiliency,
                leaves,
                leader_contacts,
            },
        )
}

fn tree_msg() -> impl Strategy<Value = TreeMsg<String>> + Clone {
    let lgid = || any::<u32>().prop_map(LargeGroupId);
    prop_oneof![
        (lgid(), lbcast_id(), short_string())
            .prop_map(|(lgid, id, payload)| TreeMsg::Submit { lgid, id, payload }),
        ((lgid(), any::<u64>(), any::<u64>()), lbcast_id(), short_string()).prop_map(
            |((lgid, epoch, lseq), id, payload)| TreeMsg::Forward {
                lgid,
                epoch,
                lseq,
                id,
                payload
            }
        ),
        (
            (lgid(), any::<u64>(), any::<u64>()),
            lbcast_id(),
            prop_oneof![Just(None), pid().prop_map(Some)],
            short_string()
        )
            .prop_map(|((lgid, epoch, lseq), id, ack_to, payload)| TreeMsg::LeafDeliver {
                lgid,
                epoch,
                lseq,
                id,
                ack_to,
                payload
            }),
        (lgid(), any::<u64>()).prop_map(|(lgid, lseq)| TreeMsg::MemberAck { lgid, lseq }),
        ((lgid(), any::<u64>(), any::<u64>()), any::<u64>()).prop_map(
            |((lgid, epoch, lseq), leaf)| TreeMsg::SubtreeAck {
                lgid,
                epoch,
                lseq,
                leaf: GroupId(leaf)
            }
        ),
        (
            lgid(),
            lbcast_id(),
            prop_oneof![Just(LbcastStatus::Resilient), Just(LbcastStatus::Complete)]
        )
            .prop_map(|(lgid, id, status)| TreeMsg::OriginAck { lgid, id, status }),
    ]
}

fn ctl_msg() -> impl Strategy<Value = CtlMsg> + Clone {
    let lgid = || any::<u32>().prop_map(LargeGroupId);
    let gid = || any::<u64>().prop_map(GroupId);
    prop_oneof![
        lgid().prop_map(|lgid| CtlMsg::JoinLargeReq { lgid }),
        (lgid(), gid(), pvec(pid(), 0..4)).prop_map(|(lgid, leaf, contacts)| CtlMsg::JoinAssign {
            lgid,
            leaf,
            contacts
        }),
        (lgid(), gid()).prop_map(|(lgid, leaf)| CtlMsg::JoinCreateLeaf { lgid, leaf }),
        (lgid(), gid(), pvec(pid(), 0..4), 0usize..9).prop_map(
            |(lgid, leaf, contacts, size)| CtlMsg::ContactsUpdate {
                lgid,
                leaf,
                contacts,
                size
            }
        ),
        (hier_view(), any::<bool>())
            .prop_map(|(view, propagate)| CtlMsg::HierPush { view, propagate }),
        (lgid(), gid(), pvec(pid(), 0..4), pvec(pid(), 0..3)).prop_map(
            |(lgid, new_leaf, movers, leader_contacts)| CtlMsg::DoSplit {
                lgid,
                new_leaf,
                movers,
                leader_contacts
            }
        ),
        ((lgid(), gid(), any::<u64>()), pvec(pid(), 0..4)).prop_map(
            |((lgid, leaf, epoch), contacts)| CtlMsg::LeafBeacon {
                lgid,
                leaf,
                epoch,
                contacts
            }
        ),
    ]
}

fn leader_cmd() -> impl Strategy<Value = LeaderCmd> + Clone {
    let lgid = || any::<u32>().prop_map(LargeGroupId);
    let gid = || any::<u64>().prop_map(GroupId);
    prop_oneof![
        (lgid(), pid()).prop_map(|(lgid, joiner)| LeaderCmd::Assign { lgid, joiner }),
        (lgid(), pid()).prop_map(|(lgid, founder)| LeaderCmd::MintLeaf { lgid, founder }),
        (lgid(), gid(), pvec(pid(), 0..4), 0usize..9).prop_map(
            |(lgid, leaf, contacts, size)| LeaderCmd::Contacts {
                lgid,
                leaf,
                contacts,
                size
            }
        ),
        (lgid(), gid()).prop_map(|(lgid, leaf)| LeaderCmd::LeafDead { lgid, leaf }),
        (lgid(), gid(), gid())
            .prop_map(|(lgid, leaf, target)| LeaderCmd::Dissolve { lgid, leaf, target }),
    ]
}

fn payload() -> impl Strategy<Value = HierPayload<String>> + Clone {
    prop_oneof![
        short_string().prop_map(HierPayload::Biz),
        tree_msg().prop_map(HierPayload::Tree),
        ctl_msg().prop_map(HierPayload::Ctl),
        leader_cmd().prop_map(HierPayload::Cmd),
    ]
}

fn hier_state() -> impl Strategy<Value = HierState<Vec<String>>> + Clone {
    prop_oneof![
        Just(HierState::None),
        pvec(short_string(), 0..4).prop_map(HierState::Leaf),
        (hier_view(), any::<u32>(), (0usize..5, 0usize..5, 0usize..9)).prop_map(
            |(view, next_slot, (resiliency, min_leaf, max_leaf))| HierState::Leader {
                view,
                next_slot,
                resiliency,
                min_leaf,
                max_leaf
            }
        ),
    ]
}

fn cast_data() -> impl Strategy<Value = CastData<HierPayload<String>>> + Clone {
    (
        (any::<u64>(), any::<u64>(), cast_kind(), msg_id()),
        (vclock(), stab(), any::<bool>(), payload()),
    )
        .prop_map(
            |((gid, view, kind, id), (vt, stab, want_ack, payload))| CastData {
                gid: GroupId(gid),
                view,
                kind,
                id,
                vt,
                stab,
                want_ack,
                payload,
            },
        )
}

fn relay_set() -> impl Strategy<Value = RelaySet<HierPayload<String>>> + Clone {
    (
        pvec((msg_id(), vclock(), payload()), 0..3),
        pvec((msg_id(), payload()), 0..3),
        pvec((any::<u64>(), msg_id(), payload()), 0..3),
        pvec((msg_id(), payload()), 0..2),
    )
        .prop_map(|(causal, fifo, total_ordered, total_unordered)| RelaySet {
            causal,
            fifo,
            total_ordered,
            total_unordered,
        })
}

fn cluster_msg() -> impl Strategy<Value = ClusterMsg> + Clone {
    let gid = || any::<u64>().prop_map(GroupId);
    prop_oneof![
        gid().prop_map(|gid| IsisMsg::JoinReq { gid }),
        (gid(), pid()).prop_map(|(gid, joiner)| IsisMsg::JoinForward { gid, joiner }),
        (gid(), pid()).prop_map(|(gid, suspect)| IsisMsg::SuspectReport { gid, suspect }),
        (gid(), any::<u64>(), group_view()).prop_map(|(gid, attempt, proposal)| IsisMsg::Flush {
            gid,
            attempt,
            proposal
        }),
        ((gid(), any::<u64>(), any::<u64>()), stab(), relay_set()).prop_map(
            |((gid, attempt, member_view), stab, buffers)| IsisMsg::FlushAck {
                gid,
                attempt,
                member_view,
                stab,
                buffers
            }
        ),
        (
            (gid(), any::<u64>()),
            group_view(),
            relay_set(),
            (
                prop_oneof![Just(None), hier_state().prop_map(Some)],
                prop_oneof![Just(None), delivery_floor().prop_map(Some)]
            )
        )
            .prop_map(|((gid, attempt), view, relay, (state, floor))| IsisMsg::InstallView {
                gid,
                attempt,
                view,
                relay,
                state,
                floor
            }),
        cast_data().prop_map(IsisMsg::Cast),
        ((gid(), any::<u64>(), any::<u64>()), msg_id()).prop_map(
            |((gid, view, gseq), id)| IsisMsg::AbcastOrder {
                gid,
                view,
                gseq,
                id
            }
        ),
        (gid(), msg_id()).prop_map(|(gid, id)| IsisMsg::CastAck { gid, id }),
        (gid(), stab()).prop_map(|(gid, stab)| IsisMsg::Heartbeat { gid, stab }),
        payload().prop_map(IsisMsg::Direct),
    ]
}

// ----------------------------------------------------------- properties --

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Full-stack payload roundtrip: decode inverts encode, and the
    /// re-encoding is byte-identical (the encoder is canonical).
    #[test]
    fn wire_roundtrip_is_byte_identical(msg in cluster_msg()) {
        let bytes = encode_msg(&msg);
        let back: ClusterMsg = decode_msg(&bytes).expect("fresh encoding must decode");
        prop_assert_eq!(encode_msg(&back), bytes);
    }

    /// A data frame carries any payload bytes through intact.
    #[test]
    fn frame_roundtrip(seq in any::<u64>(), from in any::<u32>(), to in any::<u32>(),
                       payload in pvec(any::<u8>(), 0..64)) {
        let frame = Frame::Data { seq, from, to, payload };
        let mut out = Vec::new();
        encode_frame(&frame, &mut out);
        let (got, used) = decode_frame(&out).expect("clean").expect("complete");
        prop_assert_eq!(used, out.len());
        prop_assert_eq!(got, frame);
    }

    /// Every strict prefix of a frame is "need more bytes", never an error
    /// or a panic.
    #[test]
    fn truncated_frames_ask_for_more(msg in cluster_msg(), cut in any::<u16>()) {
        let frame = Frame::Data { seq: 1, from: 0, to: 1, payload: encode_msg(&msg) };
        let mut out = Vec::new();
        encode_frame(&frame, &mut out);
        let cut = (cut as usize) % out.len();
        prop_assert!(matches!(decode_frame(&out[..cut]), Ok(None)));
    }

    /// A truncated payload inside a well-framed message is rejected with
    /// an error, without panicking.
    #[test]
    fn truncated_payloads_error_cleanly(msg in cluster_msg(), cut in any::<u16>()) {
        let bytes = encode_msg(&msg);
        if bytes.is_empty() {
            return;
        }
        let cut = (cut as usize) % bytes.len();
        prop_assert!(decode_msg::<ClusterMsg>(&bytes[..cut]).is_err());
    }

    /// Raw garbage never panics either layer: the frame layer wants magic
    /// bytes, the payload layer wants a valid tag tree.
    #[test]
    fn garbage_never_panics(bytes in pvec(any::<u8>(), 0..96)) {
        let _ = decode_frame(&bytes);
        let _ = decode_msg::<ClusterMsg>(&bytes);
    }

    /// Flipping one byte of a frame yields more-bytes, an error, or a
    /// decodable frame — never a panic (payload corruption surfaces at the
    /// Wire layer instead).
    #[test]
    fn bit_flips_never_panic(msg in cluster_msg(), at in any::<u16>(),
                             flip in (0u8..255).prop_map(|b| b + 1)) {
        let frame = Frame::Data { seq: 9, from: 2, to: 3, payload: encode_msg(&msg) };
        let mut out = Vec::new();
        encode_frame(&frame, &mut out);
        let at = (at as usize) % out.len();
        out[at] ^= flip;
        if let Ok(Some((Frame::Data { payload, .. }, _))) = decode_frame(&out) {
            let _ = decode_msg::<ClusterMsg>(&payload);
        }
    }
}

/// Oversized length claims are rejected before any allocation happens.
#[test]
fn oversized_claims_rejected() {
    let mut bad = ((MAX_FRAME_BODY + 1) as u32).to_le_bytes().to_vec();
    bad.extend_from_slice(&[0u8; 16]);
    assert!(matches!(decode_frame(&bad), Err(CodecError::Oversized(_))));
    // And inside a payload: a Vec claiming more elements than there are
    // bytes left must fail fast instead of reserving the claim.
    let mut vec_claim = u32::MAX.to_le_bytes().to_vec();
    vec_claim.extend_from_slice(&[0u8; 4]);
    assert!(decode_msg::<Vec<String>>(&vec_claim).is_err());
}

/// The Wire trait is also directly usable for plain composites.
#[test]
fn wire_covers_plain_composites() {
    let v: Vec<(Pid, u64)> = vec![(Pid(1), 9), (Pid(2), 0)];
    let bytes = encode_msg(&v);
    let back: Vec<(Pid, u64)> = decode_msg(&bytes).expect("roundtrip");
    assert_eq!(back, v);
    let o: Option<String> = Some("hello".into());
    let back: Option<String> = decode_msg(&encode_msg(&o)).expect("roundtrip");
    assert_eq!(back, o);
}
