//! Subdivided parallel computation, hierarchical variant: work is
//! subdivided *along the tree* — each representative hands at most
//! `fanout` child subtrees their share plus splits its own leaf's share
//! among leaf members, and partial results fold back up the same paths.
//! No process talks to more than `fanout + leaf_size` others, in contrast
//! to the flat tool's single initiator contacting all `n` members.

use std::collections::BTreeMap;

use now_sim::Pid;

use isis_core::{CastKind, GroupId, GroupView};

use isis_hier::{LargeApp, LargeGroupId, LargeUplink};

pub use crate::flat::parallel::{expected_sum, kernel};

/// Number of leaves in the subtree rooted at `idx` of an implicit
/// `fanout`-ary tree over `n` leaves.
pub fn subtree_leaves(idx: usize, n: usize, fanout: usize) -> usize {
    if idx >= n {
        return 0;
    }
    let mut count = 0;
    let mut stack = vec![idx];
    while let Some(i) = stack.pop() {
        count += 1;
        let lo = fanout * i + 1;
        stack.extend((lo..lo + fanout).filter(|&c| c < n));
    }
    count
}

/// Wire payload of the hierarchical parallel-computation tool.
#[derive(Clone, Debug)]
pub enum HParMsg {
    /// Range assignment flowing down the tree (origin → root rep →
    /// child reps).
    Task {
        task: u64,
        origin: Pid,
        lo: u64,
        hi: u64,
    },
    /// Leaf-internal share assignment (leaf cast, split by rank).
    LeafTask { task: u64, lo: u64, hi: u64 },
    /// Leaf member → its rep: partial result.
    Part { task: u64, partial: u64 },
    /// Child rep → parent rep: folded subtree result.
    SubResult { task: u64, partial: u64 },
    /// Root rep → origin: the total.
    Total { task: u64, total: u64 },
}

/// Per-task folding state at a representative.
#[derive(Debug)]
struct Fold {
    origin: Pid,
    sum: u64,
    awaiting_children: usize,
    awaiting_members: usize,
    is_root: bool,
    parent: Option<Pid>,
}

/// A member of the hierarchical parallel-computation service.
pub struct TreeParallel {
    /// The large group.
    pub lgid: LargeGroupId,
    leaf_view: Option<GroupView>,
    next_task: u64,
    folds: BTreeMap<u64, Fold>,
    /// Completed tasks at their origins.
    pub results: BTreeMap<u64, u64>,
    /// The root-rep contact used to start tasks (directory role).
    pub root_contact: Option<Pid>,
}

impl TreeParallel {
    /// Creates a member.
    pub fn new(lgid: LargeGroupId) -> TreeParallel {
        TreeParallel {
            lgid,
            leaf_view: None,
            next_task: 0,
            folds: BTreeMap::new(),
            results: BTreeMap::new(),
            root_contact: None,
        }
    }

    /// Starts a computation over `lo..hi`. `root` is the root leaf's
    /// representative (from the directory). Returns the task id.
    pub fn run(
        &mut self,
        root: Pid,
        lo: u64,
        hi: u64,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) -> u64 {
        self.next_task += 1;
        let task = self.next_task * 1_000_000 + up.me().0 as u64;
        up.direct(
            root,
            HParMsg::Task {
                task,
                origin: up.me(),
                lo,
                hi,
            },
        );
        task
    }

    /// The total of a finished task (origin side).
    pub fn result(&self, task: u64) -> Option<u64> {
        self.results.get(&task).copied()
    }

    fn fold_in(
        &mut self,
        task: u64,
        partial: u64,
        from_child: bool,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        let Some(f) = self.folds.get_mut(&task) else {
            return;
        };
        f.sum += partial;
        if from_child {
            f.awaiting_children = f.awaiting_children.saturating_sub(1);
        } else {
            f.awaiting_members = f.awaiting_members.saturating_sub(1);
        }
        if f.awaiting_children == 0 && f.awaiting_members == 0 {
            let f = self.folds.remove(&task).expect("checked above");
            if f.is_root {
                if f.origin == up.me() {
                    self.results.insert(task, f.sum);
                } else {
                    up.direct(f.origin, HParMsg::Total { task, total: f.sum });
                }
            } else if let Some(p) = f.parent {
                up.direct(
                    p,
                    HParMsg::SubResult {
                        task,
                        partial: f.sum,
                    },
                );
            }
        }
    }
}

impl LargeApp for TreeParallel {
    type Payload = HParMsg;
    type LeafState = ();

    fn on_lbcast(
        &mut self,
        _lgid: LargeGroupId,
        _origin: Pid,
        _payload: &HParMsg,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    fn on_direct(&mut self, from: Pid, payload: &HParMsg, up: &mut LargeUplink<'_, '_, '_, Self>) {
        match payload {
            HParMsg::Task {
                task,
                origin,
                lo,
                hi,
            } => {
                // We must be a rep with a routing slice to subdivide.
                let Some(slice) = up.routing_slice(self.lgid) else {
                    up.bump("tool.hpar.no_slice");
                    return;
                };
                let Some(view) = self.leaf_view.clone() else {
                    return;
                };
                let me = up.me();
                let span = hi - lo;
                // Weights: our own leaf counts as one leaf; each child
                // subtree by its leaf count.
                let slice = slice.clone();
                let child_weights: Vec<(Pid, usize)> = slice
                    .children
                    .iter()
                    .enumerate()
                    .filter_map(|(k, c)| {
                        let idx = slice.fanout * slice.my_index + 1 + k;
                        let w = subtree_leaves(idx, slice.num_leaves, slice.fanout);
                        c.rep().map(|r| (r, w))
                    })
                    .collect();
                let total_w: usize =
                    1 + child_weights.iter().map(|(_, w)| *w).sum::<usize>();
                // Cumulative boundaries tile [lo, hi) exactly — no range
                // is lost to per-share rounding.
                let mut acc: usize = 0;
                let lo = *lo;
                let mut give = |w: usize| {
                    let s = lo + (span as u128 * acc as u128 / total_w as u128) as u64;
                    acc += w;
                    let e = lo + (span as u128 * acc as u128 / total_w as u128) as u64;
                    (s, e)
                };
                // Our leaf's share first (weight 1), split by rank.
                let (ls, le) = give(1);
                let n = view.size() as u64;
                let lspan = le - ls;
                self.folds.insert(
                    *task,
                    Fold {
                        origin: *origin,
                        sum: 0,
                        awaiting_children: child_weights.len(),
                        awaiting_members: view.size(),
                        is_root: slice.is_root(),
                        parent: if slice.is_root() { None } else { Some(from) },
                    },
                );
                for (rank, &m) in view.members.iter().enumerate() {
                    let s = ls + lspan * rank as u64 / n;
                    let e = ls + lspan * (rank as u64 + 1) / n;
                    if m == me {
                        let partial: u64 = (s..e).map(kernel).sum();
                        self.fold_in(*task, partial, false, up);
                    } else {
                        up.direct(m, HParMsg::LeafTask { task: *task, lo: s, hi: e });
                    }
                }
                // Children get the rest, weighted.
                for (rep, w) in child_weights {
                    let (s, e) = give(w);
                    up.direct(
                        rep,
                        HParMsg::Task {
                            task: *task,
                            origin: *origin,
                            lo: s,
                            hi: e,
                        },
                    );
                }
            }
            HParMsg::LeafTask { task, lo, hi } => {
                let partial: u64 = (*lo..*hi).map(kernel).sum();
                up.direct(from, HParMsg::Part { task: *task, partial });
            }
            HParMsg::Part { task, partial } => self.fold_in(*task, *partial, false, up),
            HParMsg::SubResult { task, partial } => self.fold_in(*task, *partial, true, up),
            HParMsg::Total { task, total } => {
                self.results.insert(*task, *total);
            }
        }
    }

    fn on_leaf_cast(
        &mut self,
        _leaf: GroupId,
        _from: Pid,
        _kind: CastKind,
        _payload: &HParMsg,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
    }

    fn on_leaf_view(
        &mut self,
        _lgid: LargeGroupId,
        view: &GroupView,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.leaf_view = Some(view.clone());
    }

    fn payload_bytes(_p: &HParMsg) -> usize {
        40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_leaf_counts_partition_the_tree() {
        // A 13-leaf tree with fanout 3: children of the root are 1,2,3.
        let n = 13;
        let f = 3;
        let total: usize = (1..=f)
            .map(|c| subtree_leaves(c, n, f))
            .sum::<usize>()
            + 1;
        assert_eq!(total, n);
    }

    #[test]
    fn subtree_of_leafless_index_is_zero() {
        assert_eq!(subtree_leaves(99, 10, 3), 0);
    }
}
