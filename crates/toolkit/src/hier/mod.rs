//! Hierarchical variants of the toolkit tools, restructured per section 4
//! of the paper: requests are broadcast to individual subgroups, work and
//! data are partitioned across leaves, and no process's load grows with
//! the size of the large group.

pub mod parallel;
pub mod service;

pub use parallel::{HParMsg, TreeParallel};
pub use service::{home_leaf, Directory, HSvcMsg, LeafServiceApp};
