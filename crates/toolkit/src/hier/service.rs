//! Hierarchical services: the toolkit rebuilt the way section 4 of the
//! paper prescribes — "the large group is used for naming purposes to
//! identify the service, but requests are broadcast to individual
//! subgroups".
//!
//! One [`LeafServiceApp`] combines, per leaf subgroup:
//!
//! - **coordinator-cohort** request execution (cost `2·leaf_size` per
//!   request instead of the flat tool's `2·n` — experiments E1/E2);
//! - a **partitioned replicated store**: keys are sharded across leaves
//!   (each leaf is the resilient home of its shard);
//! - **distributed transactions**: two-phase commit whose participants are
//!   leaf subgroups, with replicated staging so a leaf tolerates member
//!   failures mid-transaction;
//! - **distributed mutual exclusion**: each lock lives in one leaf's
//!   replicated queue; waiters anywhere are notified directly.
//!
//! Key-to-leaf routing uses a *directory* (leaf gid → contacts) supplied
//! by the caller; the paper defers the large-scale name service to future
//! work (section 5), so the directory plays that role here.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use now_sim::trace::EventKind as TraceKind;
use now_sim::{Pid, SimDuration, SimTime};

use isis_core::{CastKind, GroupId, GroupView};

use isis_hier::{LargeApp, LargeGroupId, LargeUplink};

use crate::common::{apply_command, shard_of, KvState, ReqId};

/// A directory snapshot: each leaf's gid and contact list, in tree order.
/// Plays the role of the paper's (future-work) name service.
pub type Directory = Vec<(GroupId, Vec<Pid>)>;

/// Routes a key to its home leaf in a directory.
pub fn home_leaf<'d>(dir: &'d Directory, key: &str) -> &'d (GroupId, Vec<Pid>) {
    assert!(!dir.is_empty(), "empty directory");
    &dir[shard_of(key, dir.len())]
}

/// Applies one transactional write. Values of the form `+n` / `-n` are
/// numeric deltas against the current value (read-modify-write under the
/// transaction's lock); anything else is a blind put.
pub fn apply_write(state: &mut KvState, key: &str, value: &str) {
    let delta = value
        .strip_prefix('+')
        .map(|d| d.parse::<i64>())
        .or_else(|| value.strip_prefix('-').map(|d| d.parse::<i64>().map(|v| -v)));
    match delta {
        Some(Ok(d)) => {
            let cur: i64 = state.get(key).and_then(|s| s.parse().ok()).unwrap_or(0);
            state.put(key, &(cur + d).to_string());
        }
        _ => state.put(key, value),
    }
}

/// Wire payload of the hierarchical service.
#[derive(Clone, Debug)]
pub enum HSvcMsg {
    // ------------------------------ coordinator-cohort (per leaf) -----
    /// Client → every member of one leaf.
    Request { req: ReqId, body: String },
    /// Leaf rep → leaf (causal cast): executed result for the cohorts.
    Result { req: ReqId, body: String, reply: String },
    /// Leaf rep → client.
    Reply { req: ReqId, reply: String },

    // ---------------------------------------- transactions (2PC) -----
    /// Txn coordinator → participant leaf rep: stage these writes.
    Prepare {
        txn: u64,
        coord: Pid,
        writes: Vec<(String, String)>,
    },
    /// Participant leaf rep → txn coordinator.
    Vote { txn: u64, leaf: GroupId, ok: bool },
    /// Txn coordinator → participant leaf reps: final decision.
    Decide { txn: u64, commit: bool },
    /// Intra-leaf (total cast): replicate the staged writes + locks.
    Stage {
        txn: u64,
        coord: Pid,
        writes: Vec<(String, String)>,
    },
    /// Intra-leaf (total cast): apply or discard the stage.
    Finish { txn: u64, commit: bool },

    // ------------------------------------------- mutual exclusion -----
    /// Waiter → lock-home leaf rep.
    MAcquire { lock: String, waiter: Pid },
    /// Holder → lock-home leaf rep.
    MRelease { lock: String, holder: Pid },
    /// Intra-leaf (total cast): replicated queue operations.
    MQueue { lock: String, waiter: Pid },
    MDequeue { lock: String, holder: Pid },
    /// Lock-home leaf rep → waiter: you hold the lock now.
    MGrant { lock: String },

    // ---------------------------------------------- shard migration -----
    /// Intra-leaf (total cast): a member migrating in from a dissolved or
    /// split leaf contributes that leaf's shard; receivers adopt keys they
    /// do not already own (idempotent across multiple movers).
    MergeShard { entries: Vec<(String, String)> },
}

/// Timer kind for client-side retries.
const RETRY_TICK: u32 = 1;

/// A transaction staged at a participant leaf.
#[derive(Clone, Debug)]
struct StagedTxn {
    coord: Pid,
    writes: Vec<(String, String)>,
    ok: bool,
    staged_at: SimTime,
}

/// One participant's share of a transaction: its leaf, the writes staged
/// there, and the contact list used to reach its representative.
type LeafWrites = (GroupId, Vec<(String, String)>, Vec<Pid>);

/// Coordinator-side transaction progress.
#[derive(Clone, Debug)]
struct TxnProgress {
    participants: Vec<(GroupId, Vec<Pid>)>,
    votes: BTreeMap<GroupId, bool>,
    decided: Option<bool>,
    writes_by_leaf: Vec<LeafWrites>,
    started: SimTime,
}

/// The hierarchical service application (see module docs).
pub struct LeafServiceApp {
    /// The large group this service instance belongs to.
    pub lgid: LargeGroupId,

    // ---- per-leaf replicated state ----
    /// This leaf's shard of the store.
    pub state: KvState,
    pending: BTreeMap<ReqId, String>,
    completed: BTreeSet<ReqId>,
    /// Requests this member executed (acting-member accounting, E1).
    pub executed: Vec<ReqId>,
    /// Current leaf view.
    leaf_view: Option<GroupView>,
    /// Keys locked by staged transactions: key -> txn.
    lock_table: BTreeMap<String, u64>,
    staged: BTreeMap<u64, StagedTxn>,
    /// Replicated per-lock waiter queues (mutex tool).
    lock_queues: BTreeMap<String, VecDeque<Pid>>,

    // ---- client / coordinator side ----
    next_seq: u64,
    next_txn: u64,
    /// Replies to our requests.
    pub replies: BTreeMap<ReqId, String>,
    outstanding: BTreeMap<ReqId, (String, Vec<Pid>, SimTime)>,
    txns: BTreeMap<u64, TxnProgress>,
    /// Transaction outcomes: txn -> committed.
    pub txn_results: BTreeMap<u64, bool>,
    /// Locks we currently hold (granted by their home leaves).
    pub held_locks: Vec<String>,
    /// Shard carried across a leaf migration, broadcast after arrival.
    carry: Option<Vec<(String, String)>>,
    /// Retry pacing.
    pub retry: SimDuration,
    /// Participants abort staged transactions older than this (presumed
    /// abort when the coordinator vanishes).
    pub txn_abort_after: SimDuration,
}

impl LeafServiceApp {
    /// Creates a member (or client) of the service in `lgid`.
    pub fn new(lgid: LargeGroupId) -> LeafServiceApp {
        LeafServiceApp {
            lgid,
            state: KvState::new(),
            pending: BTreeMap::new(),
            completed: BTreeSet::new(),
            executed: Vec::new(),
            leaf_view: None,
            lock_table: BTreeMap::new(),
            staged: BTreeMap::new(),
            lock_queues: BTreeMap::new(),
            next_seq: 0,
            next_txn: 0,
            replies: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            txns: BTreeMap::new(),
            txn_results: BTreeMap::new(),
            held_locks: Vec::new(),
            carry: None,
            retry: SimDuration::from_millis(1_500),
            txn_abort_after: SimDuration::from_secs(20),
        }
    }

    fn i_am_rep(&self, me: Pid) -> bool {
        self.leaf_view
            .as_ref()
            .is_some_and(|v| v.coordinator() == me)
    }

    /// Number of logged-but-incomplete requests at this member.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    // ------------------------------------------------------------------
    // Client API (routing through a directory)
    // ------------------------------------------------------------------

    /// Sends `body` to the leaf owning its key (falling back to the first
    /// leaf for keyless commands). Returns the request id.
    pub fn send_request(
        &mut self,
        dir: &Directory,
        body: &str,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) -> ReqId {
        let key = crate::common::key_of(body).unwrap_or("");
        let (_, contacts) = home_leaf(dir, key);
        self.send_request_to(contacts, body, up)
    }

    /// Sends `body` to an explicit leaf contact list (the paper's pattern:
    /// the request is broadcast to one subgroup).
    pub fn send_request_to(
        &mut self,
        leaf_members: &[Pid],
        body: &str,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) -> ReqId {
        self.next_seq += 1;
        let req = ReqId {
            client: up.me(),
            seq: self.next_seq,
        };
        let (client, rseq) = (req.client.0, req.seq);
        up.trace_with(|| TraceKind::ReqSend { client, rseq });
        self.outstanding
            .insert(req, (body.to_owned(), leaf_members.to_vec(), up.now()));
        for &m in leaf_members {
            up.direct(
                m,
                HSvcMsg::Request {
                    req,
                    body: body.to_owned(),
                },
            );
        }
        if self.outstanding.len() == 1 {
            up.set_timer(self.retry, RETRY_TICK);
        }
        req
    }

    /// Begins a two-phase-commit transaction writing `writes`, with
    /// participants = the leaves owning the keys. Returns the txn id.
    pub fn begin_txn(
        &mut self,
        dir: &Directory,
        writes: &[(String, String)],
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) -> u64 {
        self.next_txn += 1;
        let txn = self.next_txn * 1_000_000 + up.me().0 as u64;
        type Share = (Vec<(String, String)>, Vec<Pid>);
        let mut by_leaf: BTreeMap<GroupId, Share> = BTreeMap::new();
        for (k, v) in writes {
            let (gid, contacts) = home_leaf(dir, k);
            let e = by_leaf
                .entry(*gid)
                .or_insert_with(|| (Vec::new(), contacts.clone()));
            e.0.push((k.clone(), v.clone()));
        }
        let progress = TxnProgress {
            participants: by_leaf
                .iter()
                .map(|(g, (_, c))| (*g, c.clone()))
                .collect(),
            votes: BTreeMap::new(),
            decided: None,
            writes_by_leaf: by_leaf
                .iter()
                .map(|(g, (w, c))| (*g, w.clone(), c.clone()))
                .collect(),
            started: up.now(),
        };
        for (_, w, contacts) in &progress.writes_by_leaf {
            if let Some(&rep) = contacts.first() {
                up.direct(
                    rep,
                    HSvcMsg::Prepare {
                        txn,
                        coord: up.me(),
                        writes: w.clone(),
                    },
                );
            }
        }
        self.txns.insert(txn, progress);
        up.set_timer(self.retry, RETRY_TICK);
        txn
    }

    /// Requests a lock (its home leaf queues us and grants in FIFO order).
    pub fn acquire_lock(
        &mut self,
        dir: &Directory,
        lock: &str,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        let (_, contacts) = home_leaf(dir, lock);
        if let Some(&rep) = contacts.first() {
            up.direct(
                rep,
                HSvcMsg::MAcquire {
                    lock: lock.to_owned(),
                    waiter: up.me(),
                },
            );
        }
    }

    /// Releases a held lock.
    pub fn release_lock(
        &mut self,
        dir: &Directory,
        lock: &str,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.held_locks.retain(|l| l != lock);
        let (_, contacts) = home_leaf(dir, lock);
        if let Some(&rep) = contacts.first() {
            up.direct(
                rep,
                HSvcMsg::MRelease {
                    lock: lock.to_owned(),
                    holder: up.me(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Server internals
    // ------------------------------------------------------------------

    fn execute(&mut self, req: ReqId, up: &mut LargeUplink<'_, '_, '_, Self>) {
        let Some(body) = self.pending.get(&req).cloned() else {
            return;
        };
        let reply = apply_command(&mut self.state, &body);
        self.executed.push(req);
        self.pending.remove(&req);
        self.completed.insert(req);
        let (client, rseq) = (req.client.0, req.seq);
        up.trace_with(|| TraceKind::ReqExec { client, rseq });
        up.direct(
            req.client,
            HSvcMsg::Reply {
                req,
                reply: reply.clone(),
            },
        );
        up.leaf_cast(
            self.lgid,
            CastKind::Causal,
            HSvcMsg::Result { req, body, reply },
        );
        up.bump("tool.hsvc.executed");
    }

    fn coord_check_txn(&mut self, txn: u64, up: &mut LargeUplink<'_, '_, '_, Self>) {
        let Some(p) = self.txns.get_mut(&txn) else {
            return;
        };
        if p.decided.is_some() {
            return;
        }
        let all_voted = p
            .participants
            .iter()
            .all(|(g, _)| p.votes.contains_key(g));
        if !all_voted {
            return;
        }
        let commit = p.votes.values().all(|&ok| ok);
        p.decided = Some(commit);
        let targets: Vec<Pid> = p
            .participants
            .iter()
            .filter_map(|(_, c)| c.first().copied())
            .collect();
        for rep in targets {
            up.direct(rep, HSvcMsg::Decide { txn, commit });
        }
        self.txn_results.insert(txn, commit);
        self.txns.remove(&txn);
        up.bump(if commit {
            "tool.txn.committed"
        } else {
            "tool.txn.aborted"
        });
    }
}

impl LargeApp for LeafServiceApp {
    type Payload = HSvcMsg;
    type LeafState = (KvState, Vec<(ReqId, String)>, Vec<(String, Vec<Pid>)>);

    fn on_lbcast(
        &mut self,
        _lgid: LargeGroupId,
        _origin: Pid,
        _payload: &HSvcMsg,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        // The service tools use leaf-scoped traffic only; large-group
        // broadcasts are available to the application above.
    }

    fn on_direct(&mut self, from: Pid, payload: &HSvcMsg, up: &mut LargeUplink<'_, '_, '_, Self>) {
        match payload {
            HSvcMsg::Request { req, body } => {
                if self.completed.contains(req) || self.leaf_view.is_none() {
                    return;
                }
                self.pending.insert(*req, body.clone());
                if self.i_am_rep(up.me()) {
                    self.execute(*req, up);
                }
            }
            HSvcMsg::Reply { req, reply } => {
                self.outstanding.remove(req);
                self.replies.insert(*req, reply.clone());
                let (client, rseq) = (req.client.0, req.seq);
                up.trace_with(|| TraceKind::ReqReply { client, rseq });
            }
            HSvcMsg::Result { .. } => {}
            HSvcMsg::Prepare { txn, coord, writes } => {
                if !self.i_am_rep(up.me()) {
                    return;
                }
                if let Some(st) = self.staged.get(txn) {
                    // Duplicate prepare: re-vote our recorded decision.
                    let leaf = self.leaf_view.as_ref().expect("rep has view").gid;
                    up.direct(
                        *coord,
                        HSvcMsg::Vote {
                            txn: *txn,
                            leaf,
                            ok: st.ok,
                        },
                    );
                    return;
                }
                up.leaf_cast(
                    self.lgid,
                    CastKind::Total,
                    HSvcMsg::Stage {
                        txn: *txn,
                        coord: *coord,
                        writes: writes.clone(),
                    },
                );
            }
            HSvcMsg::Vote { txn, leaf, ok } => {
                if let Some(p) = self.txns.get_mut(txn) {
                    p.votes.insert(*leaf, *ok);
                }
                self.coord_check_txn(*txn, up);
            }
            HSvcMsg::Decide { txn, commit } => {
                if self.i_am_rep(up.me()) && self.staged.contains_key(txn) {
                    up.leaf_cast(
                        self.lgid,
                        CastKind::Total,
                        HSvcMsg::Finish {
                            txn: *txn,
                            commit: *commit,
                        },
                    );
                }
            }
            HSvcMsg::MAcquire { lock, waiter } => {
                if self.i_am_rep(up.me()) {
                    up.leaf_cast(
                        self.lgid,
                        CastKind::Total,
                        HSvcMsg::MQueue {
                            lock: lock.clone(),
                            waiter: *waiter,
                        },
                    );
                }
            }
            HSvcMsg::MRelease { lock, holder } => {
                if self.i_am_rep(up.me()) {
                    up.leaf_cast(
                        self.lgid,
                        CastKind::Total,
                        HSvcMsg::MDequeue {
                            lock: lock.clone(),
                            holder: *holder,
                        },
                    );
                }
            }
            HSvcMsg::MGrant { lock } => {
                if !self.held_locks.contains(lock) {
                    self.held_locks.push(lock.clone());
                }
            }
            // Leaf-cast-only messages arriving point-to-point are protocol
            // errors.
            HSvcMsg::Stage { .. } | HSvcMsg::Finish { .. } | HSvcMsg::MQueue { .. }
            | HSvcMsg::MDequeue { .. } | HSvcMsg::MergeShard { .. } => {
                up.bump("tool.hsvc.misrouted")
            }
        }
        let _ = from;
    }

    fn on_leaf_cast(
        &mut self,
        leaf: GroupId,
        from: Pid,
        _kind: CastKind,
        payload: &HSvcMsg,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        match payload {
            HSvcMsg::Result { req, body, .. } => {
                if from != up.me() && !self.completed.contains(req) {
                    apply_command(&mut self.state, body);
                }
                self.pending.remove(req);
                self.completed.insert(*req);
            }
            HSvcMsg::Stage { txn, coord, writes } => {
                // Delivered in the same total order at every leaf member:
                // the lock check is deterministic.
                let conflict = writes.iter().any(|(k, _)| {
                    self.lock_table.get(k).is_some_and(|t| t != txn)
                });
                if !conflict {
                    for (k, _) in writes {
                        self.lock_table.insert(k.clone(), *txn);
                    }
                }
                self.staged.insert(
                    *txn,
                    StagedTxn {
                        coord: *coord,
                        writes: writes.clone(),
                        ok: !conflict,
                        staged_at: up.now(),
                    },
                );
                if self.i_am_rep(up.me()) {
                    up.direct(
                        *coord,
                        HSvcMsg::Vote {
                            txn: *txn,
                            leaf,
                            ok: !conflict,
                        },
                    );
                }
            }
            HSvcMsg::Finish { txn, commit } => {
                if let Some(st) = self.staged.remove(txn) {
                    if *commit && st.ok {
                        for (k, v) in &st.writes {
                            apply_write(&mut self.state, k, v);
                        }
                    }
                    self.lock_table.retain(|_, t| t != txn);
                }
            }
            HSvcMsg::MQueue { lock, waiter } => {
                let q = self.lock_queues.entry(lock.clone()).or_default();
                let grant = q.is_empty();
                if !q.contains(waiter) {
                    q.push_back(*waiter);
                }
                if grant && self.i_am_rep(up.me()) {
                    up.direct(*waiter, HSvcMsg::MGrant { lock: lock.clone() });
                }
            }
            HSvcMsg::MDequeue { lock, holder } => {
                let mut next = None;
                if let Some(q) = self.lock_queues.get_mut(lock) {
                    if q.front() == Some(holder) {
                        q.pop_front();
                        next = q.front().copied();
                    }
                    if q.is_empty() {
                        self.lock_queues.remove(lock);
                    }
                }
                if let Some(w) = next {
                    if self.i_am_rep(up.me()) {
                        up.direct(w, HSvcMsg::MGrant { lock: lock.clone() });
                    }
                }
            }
            HSvcMsg::MergeShard { entries } => {
                for (k, v) in entries {
                    if self.state.get(k).is_none() {
                        self.state.put(k, v);
                    }
                }
            }
            // Request/reply, 2PC coordination and lock traffic travel
            // point-to-point (see `on_direct`); enumerate them so a new
            // HSvcMsg variant forces a routing decision here.
            HSvcMsg::Request { .. }
            | HSvcMsg::Reply { .. }
            | HSvcMsg::Prepare { .. }
            | HSvcMsg::Vote { .. }
            | HSvcMsg::Decide { .. }
            | HSvcMsg::MAcquire { .. }
            | HSvcMsg::MRelease { .. }
            | HSvcMsg::MGrant { .. } => up.bump("tool.hsvc.misrouted_cast"),
        }
    }

    fn on_migrating(
        &mut self,
        _lgid: LargeGroupId,
        _from: Option<GroupId>,
        _to: GroupId,
        _up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        // Snapshot our (old) leaf's shard before the join replaces it.
        self.carry = Some(
            self.state
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
    }

    fn on_joined_large(
        &mut self,
        lgid: LargeGroupId,
        _leaf: GroupId,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        if let Some(entries) = self.carry.take() {
            if !entries.is_empty() {
                up.leaf_cast(lgid, CastKind::Total, HSvcMsg::MergeShard { entries });
            }
        }
    }

    fn on_leaf_view(
        &mut self,
        _lgid: LargeGroupId,
        view: &GroupView,
        up: &mut LargeUplink<'_, '_, '_, Self>,
    ) {
        self.leaf_view = Some(view.clone());
        let me = up.me();
        if view.coordinator() == me {
            // Takeover duties: finish logged requests, re-vote staged
            // transactions, re-grant current lock holders (grants are
            // idempotent at the waiters).
            let todo: Vec<ReqId> = self.pending.keys().copied().collect();
            for req in todo {
                up.bump("tool.hsvc.takeover_exec");
                self.execute(req, up);
            }
            let votes: Vec<(u64, Pid, bool)> = self
                .staged
                .iter()
                .map(|(t, st)| (*t, st.coord, st.ok))
                .collect();
            for (txn, coord, ok) in votes {
                up.direct(
                    coord,
                    HSvcMsg::Vote {
                        txn,
                        leaf: view.gid,
                        ok,
                    },
                );
            }
            // Prune dead waiters from lock queues and re-grant heads.
            let mut grants: Vec<(String, Pid)> = Vec::new();
            for (lock, q) in self.lock_queues.iter_mut() {
                let head_before = q.front().copied();
                q.retain(|p| view.contains(*p) || *p == me || head_before == Some(*p));
                if let Some(&h) = q.front() {
                    grants.push((lock.clone(), h));
                }
            }
            for (lock, h) in grants {
                up.direct(h, HSvcMsg::MGrant { lock });
            }
        }
    }

    fn on_timer(&mut self, kind: u32, up: &mut LargeUplink<'_, '_, '_, Self>) {
        if kind != RETRY_TICK {
            return;
        }
        let now = up.now();
        let retry = self.retry;
        // Client request retries.
        let due: Vec<(ReqId, String, Vec<Pid>)> = self
            .outstanding
            .iter_mut()
            .filter(|(_, (_, _, last))| now.since(*last) >= retry)
            .map(|(req, (body, members, last))| {
                *last = now;
                (*req, body.clone(), members.clone())
            })
            .collect();
        for (req, body, members) in due {
            up.bump("tool.hsvc.client_retry");
            for m in members {
                up.direct(m, HSvcMsg::Request { req, body: body.clone() });
            }
        }
        // Coordinator: re-prepare participants that have not voted.
        let reprep: Vec<(u64, Pid, Vec<LeafWrites>)> = self
            .txns
            .iter()
            .filter(|(_, p)| p.decided.is_none() && now.since(p.started) >= retry)
            .map(|(t, p)| {
                (
                    *t,
                    up.me(),
                    p.writes_by_leaf
                        .iter()
                        .filter(|(g, _, _)| !p.votes.contains_key(g))
                        .cloned()
                        .collect(),
                )
            })
            .collect();
        for (txn, coord, parts) in reprep {
            for (_, writes, contacts) in parts {
                if let Some(&rep) = contacts.first() {
                    up.direct(rep, HSvcMsg::Prepare { txn, coord, writes });
                }
            }
        }
        // Participant: presumed-abort for abandoned stages.
        let abort_after = self.txn_abort_after;
        let stale: Vec<u64> = self
            .staged
            .iter()
            .filter(|(_, st)| now.since(st.staged_at) >= abort_after)
            .map(|(t, _)| *t)
            .collect();
        for txn in stale {
            if self.i_am_rep(up.me()) {
                up.bump("tool.txn.presumed_abort");
                up.leaf_cast(
                    self.lgid,
                    CastKind::Total,
                    HSvcMsg::Finish { txn, commit: false },
                );
            }
        }
        if !self.outstanding.is_empty() || !self.txns.is_empty() || !self.staged.is_empty() {
            up.set_timer(self.retry, RETRY_TICK);
        }
    }

    fn export_leaf_state(&self, _lgid: LargeGroupId, _leaf: GroupId) -> Self::LeafState {
        (
            self.state.clone(),
            self.pending.iter().map(|(r, b)| (*r, b.clone())).collect(),
            self.lock_queues
                .iter()
                .map(|(l, q)| (l.clone(), q.iter().copied().collect()))
                .collect(),
        )
    }

    fn import_leaf_state(
        &mut self,
        _lgid: LargeGroupId,
        _leaf: GroupId,
        state: Self::LeafState,
    ) {
        self.state = state.0;
        self.pending = state.1.into_iter().collect();
        self.lock_queues = state
            .2
            .into_iter()
            .map(|(l, q)| (l, q.into_iter().collect()))
            .collect();
    }

    fn payload_bytes(p: &HSvcMsg) -> usize {
        16 + match p {
            HSvcMsg::Request { body, .. } => body.len(),
            HSvcMsg::Result { body, reply, .. } => body.len() + reply.len(),
            HSvcMsg::Reply { reply, .. } => reply.len(),
            HSvcMsg::Prepare { writes, .. } | HSvcMsg::Stage { writes, .. } => {
                writes.iter().map(|(k, v)| k.len() + v.len() + 8).sum()
            }
            HSvcMsg::Vote { .. } | HSvcMsg::Decide { .. } | HSvcMsg::Finish { .. } => 16,
            HSvcMsg::MAcquire { lock, .. }
            | HSvcMsg::MRelease { lock, .. }
            | HSvcMsg::MQueue { lock, .. }
            | HSvcMsg::MDequeue { lock, .. }
            | HSvcMsg::MGrant { lock } => lock.len() + 8,
            HSvcMsg::MergeShard { entries } => {
                entries.iter().map(|(k, v)| k.len() + v.len() + 8).sum()
            }
        }
    }
}
