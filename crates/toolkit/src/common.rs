//! Shared building blocks of the toolkit: request identifiers, the
//! replicated key-value state used by stateful services, and deterministic
//! request routing.

use std::collections::BTreeMap;

use now_sim::Pid;

/// Identifies one client request (unique per client process).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReqId {
    /// The requesting process.
    pub client: Pid,
    /// Client-local sequence number.
    pub seq: u64,
}

/// A deterministic replicated key-value state, the canonical "service
/// state" replicated by the coordinator-cohort tool and the partitioned
/// store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvState {
    entries: BTreeMap<String, String>,
    /// Count of updates applied (for cheap progress checks).
    pub version: u64,
}

impl KvState {
    /// Creates an empty state.
    pub fn new() -> KvState {
        KvState::default()
    }

    /// Reads a key.
    pub fn get(&self, k: &str) -> Option<&String> {
        self.entries.get(k)
    }

    /// Writes a key.
    pub fn put(&mut self, k: &str, v: &str) {
        self.entries.insert(k.to_owned(), v.to_owned());
        self.version += 1;
    }

    /// Removes a key; returns whether it existed.
    pub fn remove(&mut self, k: &str) -> bool {
        let hit = self.entries.remove(k).is_some();
        if hit {
            self.version += 1;
        }
        hit
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &String)> {
        self.entries.iter()
    }
}

/// The canonical request language of the toolkit services: a tiny
/// deterministic command set over [`KvState`].
///
/// `GET k` / `PUT k v` / `DEL k` / `CAS k old new` / `ADD k delta`
/// (numeric read-modify-write). Unknown commands echo back, which keeps
/// pure message-counting experiments payload-agnostic.
pub fn apply_command(state: &mut KvState, body: &str) -> String {
    let mut it = body.split_whitespace();
    match it.next() {
        Some("GET") => {
            let k = it.next().unwrap_or("");
            state.get(k).cloned().unwrap_or_else(|| "<nil>".into())
        }
        Some("PUT") => {
            let k = it.next().unwrap_or("");
            let v = it.next().unwrap_or("");
            state.put(k, v);
            "OK".into()
        }
        Some("DEL") => {
            let k = it.next().unwrap_or("");
            if state.remove(k) {
                "OK".into()
            } else {
                "<nil>".into()
            }
        }
        Some("CAS") => {
            let k = it.next().unwrap_or("");
            let old = it.next().unwrap_or("");
            let new = it.next().unwrap_or("");
            let cur = state.get(k).cloned().unwrap_or_default();
            if cur == old {
                state.put(k, new);
                "OK".into()
            } else {
                format!("FAIL {cur}")
            }
        }
        Some("ADD") => {
            let k = it.next().unwrap_or("");
            let delta: i64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let cur: i64 = state
                .get(k)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let new = cur + delta;
            state.put(k, &new.to_string());
            new.to_string()
        }
        _ => format!("ECHO {body}"),
    }
}

/// Whether a command mutates state (used by read-one/write-all variants).
pub fn is_read_only(body: &str) -> bool {
    matches!(body.split_whitespace().next(), Some("GET") | None)
}

/// Deterministic key-to-shard routing (FNV-1a), used to assign keys and
/// locks to leaves.
pub fn shard_of(key: &str, shards: usize) -> usize {
    assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Extracts the key a command addresses (for routing).
pub fn key_of(body: &str) -> Option<&str> {
    let mut it = body.split_whitespace();
    let cmd = it.next()?;
    match cmd {
        "GET" | "PUT" | "DEL" | "CAS" | "ADD" => it.next(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_basic_ops() {
        let mut s = KvState::new();
        assert_eq!(apply_command(&mut s, "GET a"), "<nil>");
        assert_eq!(apply_command(&mut s, "PUT a 1"), "OK");
        assert_eq!(apply_command(&mut s, "GET a"), "1");
        assert_eq!(apply_command(&mut s, "DEL a"), "OK");
        assert_eq!(apply_command(&mut s, "DEL a"), "<nil>");
        assert_eq!(s.version, 2);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let mut s = KvState::new();
        apply_command(&mut s, "PUT k v1");
        assert_eq!(apply_command(&mut s, "CAS k v1 v2"), "OK");
        assert_eq!(apply_command(&mut s, "CAS k v1 v3"), "FAIL v2");
        assert_eq!(s.get("k").unwrap(), "v2");
    }

    #[test]
    fn add_is_numeric_rmw() {
        let mut s = KvState::new();
        assert_eq!(apply_command(&mut s, "ADD c 5"), "5");
        assert_eq!(apply_command(&mut s, "ADD c -2"), "3");
        assert_eq!(apply_command(&mut s, "ADD c x"), "3");
    }

    #[test]
    fn unknown_commands_echo() {
        let mut s = KvState::new();
        assert_eq!(apply_command(&mut s, "PING 123"), "ECHO PING 123");
        assert_eq!(s.version, 0);
    }

    #[test]
    fn read_only_detection() {
        assert!(is_read_only("GET x"));
        assert!(!is_read_only("PUT x 1"));
        assert!(!is_read_only("ADD x 1"));
    }

    #[test]
    fn shard_routing_is_deterministic_and_spread() {
        assert_eq!(shard_of("abc", 7), shard_of("abc", 7));
        let mut hit = [0usize; 8];
        for i in 0..800 {
            hit[shard_of(&format!("key{i}"), 8)] += 1;
        }
        for (i, &h) in hit.iter().enumerate() {
            assert!(h > 40, "shard {i} starved: {h}");
        }
    }

    #[test]
    fn key_extraction() {
        assert_eq!(key_of("PUT abc 1"), Some("abc"));
        assert_eq!(key_of("GET abc"), Some("abc"));
        assert_eq!(key_of("NOP"), None);
    }

    #[test]
    fn req_id_ordering() {
        let a = ReqId { client: Pid(1), seq: 1 };
        let b = ReqId { client: Pid(1), seq: 2 };
        assert!(a < b);
    }
}
