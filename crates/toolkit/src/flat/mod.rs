//! Flat (non-hierarchical) variants of the ISIS toolkit tools — the
//! baseline whose costs the paper analyses.

pub mod mutex;
pub mod parallel;
pub mod repldata;
pub mod service;

pub use mutex::{FlatMutex, MutexMsg};
pub use parallel::{FlatParallel, ParMsg};
pub use repldata::{ReplData, ReplMsg};
pub use service::{FlatService, SvcMsg};
