//! The data-replication tool, flat variant: every member holds a full
//! copy of the store; writes are ABCAST so all replicas apply the same
//! sequence; reads are answered locally ("read-any / write-all") — the
//! classic ISIS replication tool the paper lists alongside
//! coordinator-cohort.
//!
//! Compared to [`crate::flat::service::FlatService`], there is no
//! designated executor: *every* member applies every write, which is the
//! cheapest flat design for read-heavy data — and still costs `n` messages
//! per write plus `O(n)` storage per member, which the hierarchical
//! partitioned store (`crate::hier::service`) bounds per leaf.

use std::collections::BTreeMap;

use now_sim::Pid;

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};

use crate::common::{apply_command, KvState};

/// Wire payload of the replication tool.
#[derive(Clone, Debug)]
pub enum ReplMsg {
    /// A replicated update (ABCAST within the group).
    Update { body: String },
    /// Client → any replica: read a key.
    Read { key: String, ticket: u64 },
    /// Replica → client.
    ReadReply { ticket: u64, value: Option<String> },
}

/// One replica (or client) of the replicated store.
#[derive(Default)]
pub struct ReplData {
    group: Option<GroupId>,
    /// The replicated state.
    pub state: KvState,
    /// Updates applied, in order (for convergence checks).
    pub applied: Vec<String>,
    // Client side.
    next_ticket: u64,
    /// Read results: ticket → value.
    pub reads: BTreeMap<u64, Option<String>>,
}

impl ReplData {
    /// Creates an empty replica.
    pub fn new() -> ReplData {
        ReplData::default()
    }

    /// Member: issues a replicated write (any `apply_command` mutation).
    pub fn update(&mut self, body: &str, up: &mut Uplink<'_, '_, Self>) {
        let Some(gid) = self.group else { return };
        up.cast(
            gid,
            CastKind::Total,
            ReplMsg::Update {
                body: body.to_owned(),
            },
        );
    }

    /// Client: reads `key` from one replica (read-any). The reply lands in
    /// [`ReplData::reads`] under the returned ticket.
    pub fn read_from(&mut self, replica: Pid, key: &str, up: &mut Uplink<'_, '_, Self>) -> u64 {
        self.next_ticket += 1;
        let ticket = self.next_ticket;
        up.direct(
            replica,
            ReplMsg::Read {
                key: key.to_owned(),
                ticket,
            },
        );
        ticket
    }
}

impl Application for ReplData {
    type Payload = ReplMsg;
    type State = (KvState, Vec<String>);

    fn on_deliver(
        &mut self,
        _gid: GroupId,
        _from: Pid,
        _kind: CastKind,
        payload: &ReplMsg,
        _up: &mut Uplink<'_, '_, Self>,
    ) {
        if let ReplMsg::Update { body } = payload {
            apply_command(&mut self.state, body);
            self.applied.push(body.clone());
        }
    }

    fn on_direct(&mut self, from: Pid, payload: &ReplMsg, up: &mut Uplink<'_, '_, Self>) {
        match payload {
            ReplMsg::Read { key, ticket } => {
                up.direct(
                    from,
                    ReplMsg::ReadReply {
                        ticket: *ticket,
                        value: self.state.get(key).cloned(),
                    },
                );
            }
            ReplMsg::ReadReply { ticket, value } => {
                self.reads.insert(*ticket, value.clone());
            }
            ReplMsg::Update { .. } => {}
        }
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, _up: &mut Uplink<'_, '_, Self>) {
        self.group = Some(view.gid);
    }

    fn export_state(&self, _gid: GroupId) -> Self::State {
        (self.state.clone(), self.applied.clone())
    }

    fn import_state(&mut self, _gid: GroupId, state: Self::State) {
        self.state = state.0;
        self.applied = state.1;
    }

    fn payload_bytes(p: &ReplMsg) -> usize {
        16 + match p {
            ReplMsg::Update { body } => body.len(),
            ReplMsg::Read { key, .. } => key.len(),
            ReplMsg::ReadReply { value, .. } => value.as_ref().map_or(0, String::len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::testutil::generic_cluster;
    use isis_core::{IsisConfig, IsisProcess};
    use now_sim::{Sim, SimConfig, SimDuration};

    const GID: GroupId = GroupId(11);

    fn replicas(n: usize, seed: u64) -> (Sim<IsisProcess<ReplData>>, Vec<Pid>) {
        generic_cluster(n, GID, IsisConfig::default(), SimConfig::ideal(seed), |_| {
            ReplData::new()
        })
    }

    #[test]
    fn concurrent_writers_converge_to_one_history() {
        let (mut sim, reps) = replicas(4, 1);
        for (i, &r) in reps.clone().iter().enumerate() {
            for k in 0..5 {
                sim.invoke(r, move |p, ctx| {
                    p.with_app(ctx, |app, up| app.update(&format!("ADD c{i} {k}"), up));
                });
            }
        }
        sim.run_for(SimDuration::from_secs(5));
        let h0 = sim.process(reps[0]).app().applied.clone();
        assert_eq!(h0.len(), 20);
        for &r in &reps[1..] {
            assert_eq!(sim.process(r).app().applied, h0, "histories diverged");
        }
    }

    #[test]
    fn read_any_returns_the_replicated_value() {
        let (mut sim, reps) = replicas(3, 3);
        sim.invoke(reps[0], |p, ctx| {
            p.with_app(ctx, |app, up| app.update("PUT greeting hello", up));
        });
        sim.run_for(SimDuration::from_secs(2));
        let nd = sim.add_nodes(1)[0];
        let client = sim.spawn(nd, IsisProcess::with_defaults(ReplData::new()));
        let replica = reps[2];
        let ticket = sim
            .invoke(client, move |p, ctx| {
                p.with_app(ctx, |app, up| app.read_from(replica, "greeting", up))
            })
            .unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.process(client).app().reads.get(&ticket),
            Some(&Some("hello".to_string()))
        );
    }

    #[test]
    fn replica_failure_preserves_the_store() {
        let (mut sim, reps) = replicas(3, 5);
        sim.invoke(reps[0], |p, ctx| {
            p.with_app(ctx, |app, up| app.update("PUT k v", up));
        });
        sim.run_for(SimDuration::from_secs(2));
        sim.crash(reps[0]);
        sim.run_for(SimDuration::from_secs(10));
        for &r in &reps[1..] {
            assert_eq!(sim.process(r).app().state.get("k").map(String::as_str), Some("v"));
        }
        // Writes keep flowing through the survivors.
        sim.invoke(reps[1], |p, ctx| {
            p.with_app(ctx, |app, up| app.update("PUT k2 v2", up));
        });
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(
            sim.process(reps[2]).app().state.get("k2").map(String::as_str),
            Some("v2")
        );
    }

    #[test]
    fn joining_replica_inherits_state_and_history() {
        let (mut sim, reps) = replicas(2, 7);
        for i in 0..10 {
            sim.invoke(reps[i % 2], move |p, ctx| {
                p.with_app(ctx, |app, up| app.update(&format!("PUT k{i} {i}"), up));
            });
        }
        sim.run_for(SimDuration::from_secs(2));
        let nd = sim.add_nodes(1)[0];
        let newbie = sim.spawn(nd, IsisProcess::with_defaults(ReplData::new()));
        let contact = reps[0];
        sim.invoke(newbie, move |p, ctx| p.join(GID, contact, ctx).unwrap());
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.process(newbie).app().state.len(), 10);
        assert_eq!(sim.process(newbie).app().applied.len(), 10);
    }
}
