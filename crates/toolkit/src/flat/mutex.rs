//! Distributed mutual exclusion, flat variant: an ABCAST-ordered request
//! queue. Every member delivers `Acquire`/`Release` events in the same
//! total order, so all replicas of each lock's FIFO queue agree and the
//! holder is always unambiguous — the classic ISIS toolkit construction.

use std::collections::{BTreeMap, VecDeque};

use now_sim::Pid;

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};

/// Wire payload of the mutex tool.
#[derive(Clone, Debug)]
pub enum MutexMsg {
    /// Request the named lock (ABCAST).
    Acquire { lock: String },
    /// Release the named lock (ABCAST).
    Release { lock: String },
}

/// One member of a mutual-exclusion group.
#[derive(Default)]
pub struct FlatMutex {
    /// Per-lock FIFO queues (replicated identically at every member).
    queues: BTreeMap<String, VecDeque<Pid>>,
    /// Locks this member currently holds.
    pub held: Vec<String>,
    /// History of `(lock, holder)` grants observed, for invariant checks.
    pub grants: Vec<(String, Pid)>,
    group: Option<GroupId>,
}

impl FlatMutex {
    /// Creates an idle member.
    pub fn new() -> FlatMutex {
        FlatMutex::default()
    }

    /// Requests `lock`; the grant materialises when our queue entry
    /// reaches the head (observable via [`FlatMutex::holds`]).
    pub fn acquire(&mut self, lock: &str, up: &mut Uplink<'_, '_, Self>) {
        let Some(gid) = self.group else { return };
        up.cast(
            gid,
            CastKind::Total,
            MutexMsg::Acquire { lock: lock.to_owned() },
        );
    }

    /// Releases a held lock.
    pub fn release(&mut self, lock: &str, up: &mut Uplink<'_, '_, Self>) {
        let Some(gid) = self.group else { return };
        up.cast(
            gid,
            CastKind::Total,
            MutexMsg::Release { lock: lock.to_owned() },
        );
    }

    /// Whether this member currently holds `lock`.
    pub fn holds(&self, lock: &str) -> bool {
        self.held.iter().any(|l| l == lock)
    }

    /// The current holder of `lock` in the replicated queue, if any.
    pub fn holder_of(&self, lock: &str) -> Option<Pid> {
        self.queues.get(lock).and_then(|q| q.front().copied())
    }

    /// Queue length for a lock (holder included).
    pub fn queue_len(&self, lock: &str) -> usize {
        self.queues.get(lock).map_or(0, VecDeque::len)
    }

    fn note_grants(&mut self, me: Pid) {
        self.held = self
            .queues
            .iter()
            .filter(|(_, q)| q.front() == Some(&me))
            .map(|(l, _)| l.clone())
            .collect();
    }
}

impl Application for FlatMutex {
    type Payload = MutexMsg;
    type State = Vec<(String, Vec<Pid>)>;

    fn on_deliver(
        &mut self,
        _gid: GroupId,
        from: Pid,
        _kind: CastKind,
        payload: &MutexMsg,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        match payload {
            MutexMsg::Acquire { lock } => {
                let q = self.queues.entry(lock.clone()).or_default();
                if !q.contains(&from) {
                    q.push_back(from);
                }
                if q.front() == Some(&from) {
                    self.grants.push((lock.clone(), from));
                }
            }
            MutexMsg::Release { lock } => {
                if let Some(q) = self.queues.get_mut(lock) {
                    if q.front() == Some(&from) {
                        q.pop_front();
                        if let Some(&next) = q.front() {
                            self.grants.push((lock.clone(), next));
                        }
                    } else {
                        // A release from a non-holder is a protocol error
                        // by the app; drop it deterministically.
                        up.bump("tool.mutex.bogus_release");
                    }
                    if q.is_empty() {
                        self.queues.remove(lock);
                    }
                }
            }
        }
        self.note_grants(up.me());
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, up: &mut Uplink<'_, '_, Self>) {
        self.group = Some(view.gid);
        // Failed members release everything they held or queued for: the
        // view change is totally ordered with the lock traffic, so every
        // survivor prunes identically.
        let mut freed: Vec<(String, Pid)> = Vec::new();
        for (lock, q) in self.queues.iter_mut() {
            let had = q.front().copied();
            q.retain(|p| view.contains(*p));
            if let Some(&now_head) = q.front() {
                if had != Some(now_head) {
                    freed.push((lock.clone(), now_head));
                }
            }
        }
        self.queues.retain(|_, q| !q.is_empty());
        for g in freed {
            self.grants.push(g);
        }
        self.note_grants(up.me());
    }

    fn export_state(&self, _gid: GroupId) -> Self::State {
        self.queues
            .iter()
            .map(|(l, q)| (l.clone(), q.iter().copied().collect()))
            .collect()
    }

    fn import_state(&mut self, _gid: GroupId, state: Self::State) {
        self.queues = state
            .into_iter()
            .map(|(l, q)| (l, q.into_iter().collect()))
            .collect();
    }

    fn payload_bytes(p: &MutexMsg) -> usize {
        16 + match p {
            MutexMsg::Acquire { lock } | MutexMsg::Release { lock } => lock.len(),
        }
    }
}
