//! Subdivided parallel computation, flat variant: an initiator scatters a
//! numeric range across all group members and folds the partial results.
//!
//! The work function is deliberately simple and verifiable: the task is to
//! compute `sum of f(i) for i in lo..hi`, with each member taking a
//! contiguous slice by view rank. The flat cost is one scatter + one gather
//! message per member, paid by the single initiator — the per-process load
//! the hierarchical variant (`crate::hier::parallel`) bounds by `fanout`.

use std::collections::BTreeMap;

use now_sim::Pid;

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};

/// The deterministic work kernel: cheap, non-trivial, verifiable.
pub fn kernel(i: u64) -> u64 {
    (i.wrapping_mul(2_654_435_761) % 1_000) + 1
}

/// Reference result for `lo..hi`, for test verification.
pub fn expected_sum(lo: u64, hi: u64) -> u64 {
    (lo..hi).map(kernel).sum()
}

/// Wire payload of the parallel-computation tool.
#[derive(Clone, Debug)]
pub enum ParMsg {
    /// Initiator → worker: compute `kernel` over `lo..hi` for `task`.
    Scatter { task: u64, lo: u64, hi: u64 },
    /// Worker → initiator: partial result.
    Gather { task: u64, partial: u64 },
}

/// A member of a parallel-computation group (any member may initiate).
#[derive(Default)]
pub struct FlatParallel {
    view: Option<GroupView>,
    next_task: u64,
    /// Initiator-side: per-task remaining worker count and running sum.
    collecting: BTreeMap<u64, (usize, u64)>,
    /// Completed tasks: task -> total.
    pub results: BTreeMap<u64, u64>,
}

impl FlatParallel {
    /// Creates an idle member.
    pub fn new() -> FlatParallel {
        FlatParallel::default()
    }

    /// Starts a computation over `lo..hi`, scattering slices to every
    /// member (including ourselves). Returns the task id, or `None` when
    /// no view is installed yet.
    pub fn run(&mut self, lo: u64, hi: u64, up: &mut Uplink<'_, '_, Self>) -> Option<u64> {
        let view = self.view.clone()?;
        assert!(hi >= lo);
        self.next_task += 1;
        let task = self.next_task * 1_000_000 + up.me().0 as u64;
        let n = view.size() as u64;
        let span = hi - lo;
        self.collecting.insert(task, (view.size(), 0));
        for (rank, &m) in view.members.iter().enumerate() {
            let s = lo + span * rank as u64 / n;
            let e = lo + span * (rank as u64 + 1) / n;
            up.direct(m, ParMsg::Scatter { task, lo: s, hi: e });
        }
        Some(task)
    }

    /// The total for a finished task.
    pub fn result(&self, task: u64) -> Option<u64> {
        self.results.get(&task).copied()
    }
}

impl Application for FlatParallel {
    type Payload = ParMsg;
    type State = ();

    fn on_direct(&mut self, from: Pid, payload: &ParMsg, up: &mut Uplink<'_, '_, Self>) {
        match payload {
            ParMsg::Scatter { task, lo, hi } => {
                let partial: u64 = (*lo..*hi).map(kernel).sum();
                up.direct(from, ParMsg::Gather { task: *task, partial });
            }
            ParMsg::Gather { task, partial } => {
                if let Some((left, sum)) = self.collecting.get_mut(task) {
                    *sum += partial;
                    *left -= 1;
                    if *left == 0 {
                        let total = *sum;
                        self.collecting.remove(task);
                        self.results.insert(*task, total);
                        up.observe("parallel.done", *task as f64);
                    }
                }
            }
        }
    }

    fn on_deliver(
        &mut self,
        _gid: GroupId,
        _from: Pid,
        _kind: CastKind,
        _payload: &ParMsg,
        _up: &mut Uplink<'_, '_, Self>,
    ) {
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, _up: &mut Uplink<'_, '_, Self>) {
        self.view = Some(view.clone());
    }

    fn payload_bytes(_p: &ParMsg) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_deterministic_and_bounded() {
        assert_eq!(kernel(42), kernel(42));
        for i in 0..1_000 {
            let k = kernel(i);
            assert!((1..=1_000).contains(&k));
        }
    }

    #[test]
    fn expected_sum_is_additive() {
        assert_eq!(
            expected_sum(0, 100),
            expected_sum(0, 40) + expected_sum(40, 100)
        );
    }
}
