//! The coordinator-cohort tool, flat (non-hierarchical) variant — the
//! paper's worked example of a tool that does not scale:
//!
//! > "A client of such a service broadcasts its request to all members of
//! > the group, one of whose members is chosen to handle the request. This
//! > member, the coordinator, is monitored by the other group members, the
//! > cohorts, and should the coordinator fail, one of the cohorts is
//! > selected to take over as the new coordinator. When the coordinator has
//! > completed the request, the result is returned to the client, and
//! > copies of the result are broadcast to the cohorts."
//!
//! With `n` members this costs exactly `2n` messages per request
//! (`n` request copies + 1 client reply + `n-1` result copies), which
//! experiment E1 measures.

use std::collections::{BTreeMap, BTreeSet};

use now_sim::trace::EventKind as TraceKind;
use now_sim::{Pid, SimDuration, SimTime};

use isis_core::{Application, CastKind, GroupId, GroupView, Uplink};

use crate::common::{apply_command, KvState, ReqId};

/// Wire payload of the flat coordinator-cohort service.
#[derive(Clone, Debug)]
pub enum SvcMsg {
    /// Client → every member: a request (the client's "broadcast").
    Request { req: ReqId, body: String },
    /// Coordinator → cohorts (CBCAST): the executed result, so cohorts
    /// apply the same state change and discard the logged request.
    Result { req: ReqId, body: String, reply: String },
    /// Coordinator → client: the reply.
    Reply { req: ReqId, reply: String },
}

/// One member's (or client's) coordinator-cohort state.
///
/// The same application type serves both roles: group members execute
/// requests; clients issue them with [`FlatService::send_request`] and
/// collect replies in [`FlatService::replies`].
pub struct FlatService {
    /// The service group.
    pub gid: GroupId,
    /// Current view (members only).
    view: Option<GroupView>,
    /// Replicated service state.
    pub state: KvState,
    /// Requests logged but not yet completed: the cohort's log.
    pending: BTreeMap<ReqId, String>,
    /// Recently completed requests (deduplication).
    completed: BTreeSet<ReqId>,
    /// Requests this member actually executed (for E1's "acting member"
    /// count and coordinator-failover tests).
    pub executed: Vec<ReqId>,

    // --- client side ---
    next_seq: u64,
    /// Replies received: req -> reply.
    pub replies: BTreeMap<ReqId, String>,
    /// Outstanding client requests for retry: req -> (body, members, last).
    outstanding: BTreeMap<ReqId, (String, Vec<Pid>, SimTime)>,
    /// Client retry interval.
    pub retry: SimDuration,
}

/// Timer kind used for client retries.
const RETRY_TICK: u32 = 1;

impl FlatService {
    /// Creates a member (or client) of the service on group `gid`.
    pub fn new(gid: GroupId) -> FlatService {
        FlatService {
            gid,
            view: None,
            state: KvState::new(),
            pending: BTreeMap::new(),
            completed: BTreeSet::new(),
            executed: Vec::new(),
            next_seq: 0,
            replies: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            retry: SimDuration::from_millis(1_500),
        }
    }

    /// Whether this member currently acts as the coordinator.
    pub fn i_am_coordinator(&self, me: Pid) -> bool {
        self.view
            .as_ref()
            .is_some_and(|v| v.coordinator() == me)
    }

    /// Number of requests logged but not completed (cohort log size).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Client: broadcasts a request to every member of the service group.
    /// Returns the request id.
    pub fn send_request(
        &mut self,
        members: &[Pid],
        body: &str,
        up: &mut Uplink<'_, '_, Self>,
    ) -> ReqId {
        self.next_seq += 1;
        let req = ReqId {
            client: up.me(),
            seq: self.next_seq,
        };
        let (client, rseq) = (req.client.0, req.seq);
        up.trace_with(|| TraceKind::ReqSend { client, rseq });
        self.outstanding
            .insert(req, (body.to_owned(), members.to_vec(), up.now()));
        for &m in members {
            up.direct(
                m,
                SvcMsg::Request {
                    req,
                    body: body.to_owned(),
                },
            );
        }
        if self.outstanding.len() == 1 {
            up.set_app_timer(self.retry, RETRY_TICK);
        }
        req
    }

    fn execute(&mut self, req: ReqId, up: &mut Uplink<'_, '_, Self>) {
        let Some(body) = self.pending.get(&req).cloned() else {
            return;
        };
        let reply = apply_command(&mut self.state, &body);
        self.executed.push(req);
        self.pending.remove(&req);
        self.completed.insert(req);
        let (client, rseq) = (req.client.0, req.seq);
        up.trace_with(|| TraceKind::ReqExec { client, rseq });
        up.direct(
            req.client,
            SvcMsg::Reply {
                req,
                reply: reply.clone(),
            },
        );
        up.cast(
            self.gid,
            CastKind::Causal,
            SvcMsg::Result {
                req,
                body,
                reply,
            },
        );
        up.bump("tool.svc.executed");
    }
}

impl Application for FlatService {
    type Payload = SvcMsg;
    type State = (KvState, Vec<(ReqId, String)>);

    fn on_direct(&mut self, _from: Pid, payload: &SvcMsg, up: &mut Uplink<'_, '_, Self>) {
        match payload {
            SvcMsg::Request { req, body } => {
                if self.completed.contains(req) || self.view.is_none() {
                    return;
                }
                self.pending.insert(*req, body.clone());
                if self.i_am_coordinator(up.me()) {
                    self.execute(*req, up);
                }
            }
            SvcMsg::Reply { req, reply } => {
                self.outstanding.remove(req);
                self.replies.insert(*req, reply.clone());
                let (client, rseq) = (req.client.0, req.seq);
                up.trace_with(|| TraceKind::ReqReply { client, rseq });
            }
            SvcMsg::Result { .. } => {}
        }
    }

    fn on_deliver(
        &mut self,
        _gid: GroupId,
        from: Pid,
        _kind: CastKind,
        payload: &SvcMsg,
        up: &mut Uplink<'_, '_, Self>,
    ) {
        if let SvcMsg::Result { req, body, .. } = payload {
            // Cohorts apply the coordinator's decision and discard the log
            // entry. The coordinator itself already applied it.
            if from != up.me() && !self.completed.contains(req) {
                apply_command(&mut self.state, body);
            }
            self.pending.remove(req);
            self.completed.insert(*req);
        }
    }

    fn on_view(&mut self, view: &GroupView, _joined: bool, up: &mut Uplink<'_, '_, Self>) {
        if view.gid != self.gid {
            return;
        }
        self.view = Some(view.clone());
        // Coordinator takeover: execute everything still logged, oldest
        // first — the failed coordinator may have died mid-request.
        if view.coordinator() == up.me() {
            let todo: Vec<ReqId> = self.pending.keys().copied().collect();
            for req in todo {
                up.bump("tool.svc.takeover_exec");
                self.execute(req, up);
            }
        }
    }

    fn on_app_timer(&mut self, kind: u32, up: &mut Uplink<'_, '_, Self>) {
        if kind != RETRY_TICK {
            return;
        }
        let now = up.now();
        let retry = self.retry;
        let due: Vec<(ReqId, String, Vec<Pid>)> = self
            .outstanding
            .iter_mut()
            .filter(|(_, (_, _, last))| now.since(*last) >= retry)
            .map(|(req, (body, members, last))| {
                *last = now;
                (*req, body.clone(), members.clone())
            })
            .collect();
        for (req, body, members) in due {
            up.bump("tool.svc.client_retry");
            for m in members {
                up.direct(m, SvcMsg::Request { req, body: body.clone() });
            }
        }
        if !self.outstanding.is_empty() {
            up.set_app_timer(self.retry, RETRY_TICK);
        }
    }

    fn export_state(&self, _gid: GroupId) -> Self::State {
        (
            self.state.clone(),
            self.pending.iter().map(|(r, b)| (*r, b.clone())).collect(),
        )
    }

    fn import_state(&mut self, _gid: GroupId, state: Self::State) {
        self.state = state.0;
        self.pending = state.1.into_iter().collect();
    }

    fn payload_bytes(p: &SvcMsg) -> usize {
        16 + match p {
            SvcMsg::Request { body, .. } => body.len(),
            SvcMsg::Result { body, reply, .. } => body.len() + reply.len(),
            SvcMsg::Reply { reply, .. } => reply.len(),
        }
    }
}
