//! `isis-toolkit` — the ISIS toolkit tools in flat and hierarchical form.
//!
//! The paper argues at the level of *tools*: the coordinator-cohort
//! example costs `2n` messages per request in a flat group and the
//! hierarchy bounds it by leaf size. This crate provides both variants of
//! each tool the paper names (coordinator-cohort services, replicated
//! data, distributed mutual exclusion, subdivided parallel computation,
//! distributed transactions) so the experiments can compare them directly.
//!
//! - [`flat`]: plain `isis-core` applications over one group.
//! - [`hier`]: `isis-hier` business applications over leaf subgroups.
//! - [`common`]: the replicated key-value state and request language both
//!   variants share.
//!
//! # Examples
//!
//! The replication tool: three replicas, one totally ordered update
//! stream, identical state everywhere.
//!
//! ```
//! use isis_core::testutil::generic_cluster;
//! use isis_core::{GroupId, IsisConfig};
//! use isis_toolkit::flat::ReplData;
//! use now_sim::{SimConfig, SimDuration};
//!
//! let gid = GroupId(11);
//! let (mut sim, reps) = generic_cluster(
//!     3, gid, IsisConfig::default(), SimConfig::ideal(1), |_| ReplData::new(),
//! );
//! sim.invoke(reps[0], |p, ctx| {
//!     p.with_app(ctx, |app, up| app.update("PUT answer 42", up));
//! });
//! sim.run_for(SimDuration::from_secs(2));
//! for &r in &reps {
//!     assert_eq!(sim.process(r).app().state.get("answer").unwrap(), "42");
//! }
//! ```

pub mod common;
pub mod flat;
pub mod hier;

pub use common::{apply_command, is_read_only, key_of, shard_of, KvState, ReqId};
