//! End-to-end tests of the toolkit tools, flat and hierarchical.

use isis_core::testutil::generic_cluster;
use isis_core::{GroupId, IsisConfig, IsisProcess};
use isis_hier::{HierApp, LargeGroupConfig, LargeGroupId};
use isis_toolkit::flat::{FlatMutex, FlatParallel, FlatService};
use isis_toolkit::hier::{Directory, LeafServiceApp, TreeParallel};
use now_sim::{Pid, Sim, SimConfig, SimDuration, SimTime};

const GID: GroupId = GroupId(7);

// ---------------------------------------------------------------------
// Flat coordinator-cohort
// ---------------------------------------------------------------------

fn flat_svc_cluster(
    n: usize,
    icfg: IsisConfig,
    seed: u64,
) -> (Sim<IsisProcess<FlatService>>, Vec<Pid>, Pid) {
    let (mut sim, pids) = generic_cluster(
        n,
        GID,
        icfg.clone(),
        SimConfig::ideal(seed),
        |_| FlatService::new(GID),
    );
    // A client outside the group.
    let nd = sim.add_nodes(1)[0];
    let client = sim.spawn(nd, IsisProcess::new(FlatService::new(GID), icfg));
    (sim, pids, client)
}

#[test]
fn flat_service_round_trip_and_replication() {
    let (mut sim, pids, client) = flat_svc_cluster(5, IsisConfig::default(), 1);
    let members = pids.clone();
    let req = sim
        .invoke(client, move |p, ctx| {
            p.with_app(ctx, |app, up| app.send_request(&members, "PUT x 42", up))
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(
        sim.process(client).app().replies.get(&req).map(String::as_str),
        Some("OK")
    );
    // Every member replicated the write.
    for &m in &pids {
        assert_eq!(
            sim.process(m).app().state.get("x").map(String::as_str),
            Some("42"),
            "replica {m} missing the write"
        );
        assert_eq!(sim.process(m).app().pending_len(), 0);
    }
    // Exactly one member executed it.
    let execs: usize = pids
        .iter()
        .map(|&m| sim.process(m).app().executed.len())
        .sum();
    assert_eq!(execs, 1);
}

#[test]
fn flat_service_costs_exactly_2n_messages() {
    // The paper: "a service request will involve 2n messages in the
    // absence of process failures, and will require action by all n
    // members". Quiet config: the only traffic is the request itself.
    for n in [2usize, 4, 8, 16] {
        let (mut sim, pids, client) = flat_svc_cluster(n, IsisConfig::quiet(), 5);
        sim.run_for(SimDuration::from_secs(2));
        sim.stats_mut().reset_window();
        let members = pids.clone();
        sim.invoke(client, move |p, ctx| {
            p.with_app(ctx, |app, up| app.send_request(&members, "PUT k v", up))
        });
        sim.run_for(SimDuration::from_secs(2));
        let sent = sim.stats().messages_sent;
        assert_eq!(
            sent as usize,
            2 * n,
            "flat request with n={n} should cost exactly 2n messages"
        );
        // ... and every member acted (received + processed the request).
        for &m in &pids {
            assert!(sim.stats().proc(m).received >= 1);
        }
    }
}

#[test]
fn flat_service_survives_coordinator_crash() {
    let (mut sim, pids, client) = flat_svc_cluster(5, IsisConfig::default(), 9);
    let coordinator = pids[0];
    // Request arrives everywhere; kill the coordinator before it can act
    // is racy, so kill it and then send — the cohort takeover path runs
    // when the view changes.
    sim.crash(coordinator);
    let members = pids.clone();
    let req = sim
        .invoke(client, move |p, ctx| {
            p.with_app(ctx, |app, up| app.send_request(&members, "PUT y 7", up))
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(20));
    assert_eq!(
        sim.process(client).app().replies.get(&req).map(String::as_str),
        Some("OK"),
        "client reply after coordinator failover"
    );
    for &m in &pids[1..] {
        assert_eq!(
            sim.process(m).app().state.get("y").map(String::as_str),
            Some("7")
        );
    }
}

#[test]
fn flat_service_no_duplicate_execution_under_retry() {
    let (mut sim, pids, client) = flat_svc_cluster(4, IsisConfig::default(), 13);
    let members = pids.clone();
    sim.invoke(client, move |p, ctx| {
        p.with_app(ctx, |app, up| {
            app.retry = SimDuration::from_millis(200);
            app.send_request(&members, "ADD counter 1", up)
        })
    });
    // Let several client retries fire even though the service answered.
    sim.run_for(SimDuration::from_secs(5));
    for &m in &pids {
        assert_eq!(
            sim.process(m).app().state.get("counter").map(String::as_str),
            Some("1"),
            "retries must not re-execute at {m}"
        );
    }
}

// ---------------------------------------------------------------------
// Flat mutual exclusion
// ---------------------------------------------------------------------

#[test]
fn mutex_grants_are_exclusive_and_fifo() {
    let (mut sim, pids) = generic_cluster(
        4,
        GID,
        IsisConfig::quiet(),
        SimConfig::ideal(21),
        |_| FlatMutex::new(),
    );
    for &p in &pids {
        sim.invoke(p, |proc_, ctx| {
            proc_.with_app(ctx, |app, up| app.acquire("L", up));
        });
    }
    sim.run_for(SimDuration::from_secs(2));
    // Exactly one holder, and everyone agrees who it is.
    let holders: Vec<Pid> = pids
        .iter()
        .copied()
        .filter(|&p| sim.process(p).app().holds("L"))
        .collect();
    assert_eq!(holders.len(), 1);
    let agreed: Vec<Option<Pid>> = pids
        .iter()
        .map(|&p| sim.process(p).app().holder_of("L"))
        .collect();
    assert!(agreed.iter().all(|h| *h == Some(holders[0])));

    // Release cascades through the whole queue in FIFO order.
    let mut order = vec![holders[0]];
    for _ in 0..3 {
        let h = order.last().copied().unwrap();
        sim.invoke(h, |proc_, ctx| {
            proc_.with_app(ctx, |app, up| app.release("L", up));
        });
        sim.run_for(SimDuration::from_secs(1));
        let now: Vec<Pid> = pids
            .iter()
            .copied()
            .filter(|&p| sim.process(p).app().holds("L"))
            .collect();
        assert_eq!(now.len(), 1);
        assert!(!order.contains(&now[0]), "a pid was granted twice");
        order.push(now[0]);
    }
}

#[test]
fn mutex_holder_crash_frees_the_lock() {
    let (mut sim, pids) = generic_cluster(
        4,
        GID,
        IsisConfig::default(),
        SimConfig::ideal(23),
        |_| FlatMutex::new(),
    );
    let (a, b) = (pids[1], pids[2]);
    sim.invoke(a, |p, ctx| p.with_app(ctx, |app, up| app.acquire("L", up)));
    sim.run_for(SimDuration::from_secs(1));
    sim.invoke(b, |p, ctx| p.with_app(ctx, |app, up| app.acquire("L", up)));
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.process(a).app().holds("L"));
    sim.crash(a);
    sim.run_for(SimDuration::from_secs(20));
    assert!(
        sim.process(b).app().holds("L"),
        "lock must pass to the next waiter after the holder crashes"
    );
}

// ---------------------------------------------------------------------
// Flat parallel computation
// ---------------------------------------------------------------------

#[test]
fn flat_parallel_computes_the_right_sum() {
    let (mut sim, pids) = generic_cluster(
        6,
        GID,
        IsisConfig::quiet(),
        SimConfig::ideal(31),
        |_| FlatParallel::new(),
    );
    let task = sim
        .invoke(pids[2], |p, ctx| {
            p.with_app(ctx, |app, up| app.run(0, 10_000, up))
        })
        .unwrap()
        .unwrap();
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(
        sim.process(pids[2]).app().result(task),
        Some(isis_toolkit::flat::parallel::expected_sum(0, 10_000))
    );
}

// ---------------------------------------------------------------------
// Hierarchical service
// ---------------------------------------------------------------------

type HierCluster = (
    Sim<IsisProcess<HierApp<LeafServiceApp>>>,
    LargeGroupId,
    Vec<Pid>,
    Vec<Pid>,
);

fn hier_cluster(n: usize, seed: u64) -> HierCluster {
    let lgid = LargeGroupId(1);
    let cfg = LargeGroupConfig::new(2, 3);
    let mut sim: Sim<IsisProcess<HierApp<LeafServiceApp>>> =
        Sim::new(SimConfig::ideal(seed));
    let nleaders = cfg.resiliency;
    let leaders: Vec<Pid> = (0..nleaders)
        .map(|_| {
            let nd = sim.add_nodes(1)[0];
            sim.spawn(
                nd,
                IsisProcess::new(
                    HierApp::with_timers(LeafServiceApp::new(lgid), cfg.clone()),
                    IsisConfig::default(),
                ),
            )
        })
        .collect();
    let cfg2 = cfg.clone();
    sim.invoke(leaders[0], move |p, ctx| {
        p.with_app(ctx, move |app, up| app.create_large(lgid, cfg2, up));
    });
    for &l in &leaders[1..] {
        let contact = leaders[0];
        sim.invoke(l, move |p, ctx| {
            p.with_app(ctx, move |app, up| app.join_leader_group(lgid, contact, up));
        });
    }
    sim.run_for(SimDuration::from_secs(5));
    let members: Vec<Pid> = (0..n)
        .map(|_| {
            let nd = sim.add_nodes(1)[0];
            let p = sim.spawn(
                nd,
                IsisProcess::new(
                    HierApp::with_timers(LeafServiceApp::new(lgid), cfg.clone()),
                    IsisConfig::default(),
                ),
            );
            let contact = leaders[0];
            sim.invoke(p, move |proc_, ctx| {
                proc_.with_app(ctx, move |app, up| app.join_large(lgid, contact, up));
            });
            p
        })
        .collect();
    // Wait for formation.
    let deadline = sim.now() + SimDuration::from_secs(300);
    loop {
        let ok = members
            .iter()
            .all(|&m| sim.process(m).app().is_large_member(lgid))
            && sim
                .process(leaders[0])
                .app()
                .leader_view(lgid)
                .is_some_and(|v| v.total_members() == n);
        if ok {
            break;
        }
        assert!(sim.now() < deadline, "hier service cluster failed to form");
        if !sim.step() {
            sim.run_for(SimDuration::from_millis(100));
        }
    }
    (sim, lgid, leaders, members)
}

fn directory(
    sim: &Sim<IsisProcess<HierApp<LeafServiceApp>>>,
    leader: Pid,
    lgid: LargeGroupId,
) -> Directory {
    sim.process(leader)
        .app()
        .leader_view(lgid)
        .expect("leader view")
        .leaves
        .iter()
        .map(|l| (l.gid, l.contacts.clone()))
        .collect()
}

#[test]
fn hier_service_routes_by_key_and_replies() {
    let (mut sim, lgid, leaders, members) = hier_cluster(12, 41);
    let dir = directory(&sim, leaders[0], lgid);
    // A client joins nothing; it just talks to leaf contacts.
    let nd = sim.add_nodes(1)[0];
    let client = sim.spawn(
        nd,
        IsisProcess::new(
            HierApp::new(LeafServiceApp::new(lgid)),
            IsisConfig::default(),
        ),
    );
    let d2 = dir.clone();
    let req = sim
        .invoke(client, move |p, ctx| {
            p.with_app(ctx, |app, up| {
                let mut out = None;
                app.with_business(up, |biz, lup| {
                    out = Some(biz.send_request(&d2, "PUT alpha 9", lup));
                });
                out.unwrap()
            })
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(5));
    let reply = sim
        .process(client)
        .app()
        .biz()
        .replies
        .get(&req)
        .cloned();
    assert_eq!(reply.as_deref(), Some("OK"));
    // The owning leaf replicated the key; other leaves did not see it.
    let holders = members
        .iter()
        .filter(|&&m| sim.process(m).app().biz().state.get("alpha").is_some())
        .count();
    assert!(holders >= 2, "write must be replicated within the home leaf");
    assert!(
        holders <= 7,
        "write must not spread beyond one leaf (+joins)"
    );
    let _ = members;
}

#[test]
fn hier_txn_commits_across_leaves() {
    let (mut sim, lgid, leaders, members) = hier_cluster(12, 43);
    let dir = directory(&sim, leaders[0], lgid);
    assert!(dir.len() >= 2, "need multiple leaves for a distributed txn");
    let initiator = members[0];
    // Find two keys living in different leaves.
    let (k1, k2) = two_keys_in_different_leaves(&dir);
    let writes = vec![
        (k1.clone(), "100".to_string()),
        (k2.clone(), "200".to_string()),
    ];
    let d2 = dir.clone();
    let txn = sim
        .invoke(initiator, move |p, ctx| {
            p.with_app(ctx, |app, up| {
                let mut out = None;
                app.with_business(up, |biz, lup| {
                    out = Some(biz.begin_txn(&d2, &writes, lup));
                });
                out.unwrap()
            })
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(
        sim.process(initiator).app().biz().txn_results.get(&txn),
        Some(&true),
        "transaction must commit"
    );
    // Both leaves applied their writes.
    let v1 = read_key(&sim, &members, &k1);
    let v2 = read_key(&sim, &members, &k2);
    assert_eq!(v1.as_deref(), Some("100"));
    assert_eq!(v2.as_deref(), Some("200"));
}

fn two_keys_in_different_leaves(dir: &Directory) -> (String, String) {
    let mut k1: Option<(String, usize)> = None;
    for i in 0..1_000 {
        let k = format!("key{i}");
        let shard = isis_toolkit::shard_of(&k, dir.len());
        match &k1 {
            None => k1 = Some((k, shard)),
            Some((first, s1)) if shard != *s1 => {
                return (first.clone(), k);
            }
            _ => {}
        }
    }
    panic!("could not find keys in two leaves");
}

fn read_key(
    sim: &Sim<IsisProcess<HierApp<LeafServiceApp>>>,
    members: &[Pid],
    key: &str,
) -> Option<String> {
    members
        .iter()
        .filter(|&&m| sim.is_alive(m))
        .find_map(|&m| sim.process(m).app().biz().state.get(key).cloned())
}

#[test]
fn hier_txn_conflict_aborts_one() {
    let (mut sim, lgid, leaders, members) = hier_cluster(12, 47);
    let dir = directory(&sim, leaders[0], lgid);
    let (k1, k2) = two_keys_in_different_leaves(&dir);
    let (a, b) = (members[0], members[1]);
    let writes_a = vec![(k1.clone(), "A".into()), (k2.clone(), "A".into())];
    let writes_b = vec![(k2.clone(), "B".into()), (k1.clone(), "B".into())];
    let (da, db) = (dir.clone(), dir.clone());
    let ta = sim
        .invoke(a, move |p, ctx| {
            p.with_app(ctx, |app, up| {
                let mut out = None;
                app.with_business(up, |biz, lup| out = Some(biz.begin_txn(&da, &writes_a, lup)));
                out.unwrap()
            })
        })
        .unwrap();
    let tb = sim
        .invoke(b, move |p, ctx| {
            p.with_app(ctx, |app, up| {
                let mut out = None;
                app.with_business(up, |biz, lup| out = Some(biz.begin_txn(&db, &writes_b, lup)));
                out.unwrap()
            })
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(30));
    let ra = sim.process(a).app().biz().txn_results.get(&ta).copied();
    let rb = sim.process(b).app().biz().txn_results.get(&tb).copied();
    // At least one aborts (lock conflict); both committing would be a
    // serializability violation given the opposite lock orders.
    assert!(
        !(ra == Some(true) && rb == Some(true)),
        "conflicting transactions both committed: {ra:?} {rb:?}"
    );
    assert!(ra.is_some() && rb.is_some(), "both must terminate: {ra:?} {rb:?}");
    // Values are consistent: both keys hold the same writer's value (or
    // one txn fully won and the other fully lost).
    let v1 = read_key(&sim, &members, &k1);
    let v2 = read_key(&sim, &members, &k2);
    if ra == Some(true) {
        assert_eq!((v1.as_deref(), v2.as_deref()), (Some("A"), Some("A")));
    } else if rb == Some(true) {
        assert_eq!((v1.as_deref(), v2.as_deref()), (Some("B"), Some("B")));
    }
}

#[test]
fn hier_lock_is_exclusive_across_leaves() {
    let (mut sim, lgid, leaders, members) = hier_cluster(9, 53);
    let dir = directory(&sim, leaders[0], lgid);
    let (a, b) = (members[2], members[7]);
    for &p in &[a, b] {
        let d = dir.clone();
        sim.invoke(p, move |proc_, ctx| {
            proc_.with_app(ctx, |app, up| {
                app.with_business(up, |biz, lup| biz.acquire_lock(&d, "global-lock", lup));
            });
        });
    }
    sim.run_for(SimDuration::from_secs(5));
    let ha = sim.process(a).app().biz().held_locks.contains(&"global-lock".to_string());
    let hb = sim.process(b).app().biz().held_locks.contains(&"global-lock".to_string());
    assert!(ha ^ hb, "exactly one process may hold the lock: a={ha} b={hb}");
    // Release passes it over.
    let holder = if ha { a } else { b };
    let waiter = if ha { b } else { a };
    let d = dir.clone();
    sim.invoke(holder, move |proc_, ctx| {
        proc_.with_app(ctx, |app, up| {
            app.with_business(up, |biz, lup| biz.release_lock(&d, "global-lock", lup));
        });
    });
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim
        .process(waiter)
        .app()
        .biz()
        .held_locks
        .contains(&"global-lock".to_string()));
}

// ---------------------------------------------------------------------
// Hierarchical parallel computation
// ---------------------------------------------------------------------

#[test]
fn tree_parallel_computes_the_right_sum() {
    let lgid = LargeGroupId(1);
    let cfg = LargeGroupConfig::new(2, 3);
    let mut sim: Sim<IsisProcess<HierApp<TreeParallel>>> = Sim::new(SimConfig::ideal(61));
    let nd = sim.add_nodes(1)[0];
    let leader = sim.spawn(
        nd,
        IsisProcess::new(
            HierApp::with_timers(TreeParallel::new(lgid), cfg.clone()),
            IsisConfig::default(),
        ),
    );
    let cfg2 = cfg.clone();
    sim.invoke(leader, move |p, ctx| {
        p.with_app(ctx, move |app, up| app.create_large(lgid, cfg2, up));
    });
    sim.run_for(SimDuration::from_secs(2));
    let members: Vec<Pid> = (0..18)
        .map(|_| {
            let nd = sim.add_nodes(1)[0];
            let p = sim.spawn(
                nd,
                IsisProcess::new(
                    HierApp::with_timers(TreeParallel::new(lgid), cfg.clone()),
                    IsisConfig::default(),
                ),
            );
            sim.invoke(p, move |proc_, ctx| {
                proc_.with_app(ctx, move |app, up| app.join_large(lgid, leader, up));
            });
            p
        })
        .collect();
    let deadline = SimTime(0) + SimDuration::from_secs(300);
    loop {
        let formed = members
            .iter()
            .all(|&m| sim.process(m).app().is_large_member(lgid))
            && sim
                .process(leader)
                .app()
                .leader_view(lgid)
                .is_some_and(|v| v.total_members() == 18);
        if formed {
            break;
        }
        assert!(sim.now() < deadline);
        if !sim.step() {
            sim.run_for(SimDuration::from_millis(100));
        }
    }
    let root = sim
        .process(leader)
        .app()
        .leader_view(lgid)
        .unwrap()
        .root()
        .unwrap()
        .rep()
        .unwrap();
    let origin = members[11];
    let task = sim
        .invoke(origin, move |p, ctx| {
            p.with_app(ctx, |app, up| {
                let mut out = None;
                app.with_business(up, |biz, lup| out = Some(biz.run(root, 0, 50_000, lup)));
                out.unwrap()
            })
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(20));
    assert_eq!(
        sim.process(origin).app().biz().result(task),
        Some(isis_toolkit::hier::parallel::expected_sum(0, 50_000)),
        "tree scatter/gather must cover the whole range exactly once"
    );
}
