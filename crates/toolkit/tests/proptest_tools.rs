//! Property-based tests of the toolkit: the command language over the
//! replicated store, and the mutual-exclusion tool's safety/liveness
//! invariants under random schedules.

use isis_core::testutil::generic_cluster;
use isis_core::{GroupId, IsisConfig};
use isis_toolkit::common::{apply_command, KvState};
use isis_toolkit::flat::FlatMutex;
use now_sim::{Pid, SimConfig, SimDuration};
use now_sim::detprop::prelude::*;

// ---------------------------------------------------------------------
// KvState / command language
// ---------------------------------------------------------------------

fn cmd_strategy() -> impl Strategy<Value = String> {
    let key = prop_oneof![Just("a"), Just("b"), Just("c")];
    prop_oneof![
        key.clone().prop_map(|k| format!("GET {k}")),
        (key.clone(), 0u32..100).prop_map(|(k, v)| format!("PUT {k} {v}")),
        key.clone().prop_map(|k| format!("DEL {k}")),
        (key.clone(), -50i64..50).prop_map(|(k, d)| format!("ADD {k} {d}")),
        (key, 0u32..3, 0u32..3).prop_map(|(k, o, n)| format!("CAS {k} {o} {n}")),
    ]
}

proptest! {
    #[test]
    fn command_replay_is_deterministic(cmds in prop::collection::vec(cmd_strategy(), 0..60)) {
        let mut s1 = KvState::new();
        let mut s2 = KvState::new();
        let r1: Vec<String> = cmds.iter().map(|c| apply_command(&mut s1, c)).collect();
        let r2: Vec<String> = cmds.iter().map(|c| apply_command(&mut s2, c)).collect();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn reads_never_mutate(cmds in prop::collection::vec(cmd_strategy(), 0..40)) {
        let mut s = KvState::new();
        for c in &cmds {
            apply_command(&mut s, c);
        }
        let v0 = s.version;
        let snapshot = s.clone();
        for k in ["a", "b", "c"] {
            apply_command(&mut s, &format!("GET {k}"));
        }
        prop_assert_eq!(s.version, v0);
        prop_assert_eq!(s, snapshot);
    }

    #[test]
    fn add_is_commutative_in_total(deltas in prop::collection::vec(-100i64..100, 1..30)) {
        let mut forward = KvState::new();
        for d in &deltas {
            apply_command(&mut forward, &format!("ADD k {d}"));
        }
        let mut backward = KvState::new();
        for d in deltas.iter().rev() {
            apply_command(&mut backward, &format!("ADD k {d}"));
        }
        prop_assert_eq!(forward.get("k"), backward.get("k"));
        let total: i64 = deltas.iter().sum();
        prop_assert_eq!(forward.get("k").unwrap(), &total.to_string());
    }
}

// ---------------------------------------------------------------------
// Mutual exclusion under random schedules
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MxOp {
    Acquire { who: usize, lock: u8 },
    Release { who: usize, lock: u8 },
    Crash { who: usize },
    Wait { ms: u64 },
}

fn mx_strategy() -> impl Strategy<Value = MxOp> {
    prop_oneof![
        4 => (0usize..8, 0u8..2).prop_map(|(who, lock)| MxOp::Acquire { who, lock }),
        3 => (0usize..8, 0u8..2).prop_map(|(who, lock)| MxOp::Release { who, lock }),
        1 => (0usize..8).prop_map(|who| MxOp::Crash { who }),
        3 => (50u64..400).prop_map(|ms| MxOp::Wait { ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn mutex_safety_under_random_schedules(
        ops in prop::collection::vec(mx_strategy(), 1..30),
        seed in 0u64..10_000,
    ) {
        const N: usize = 5;
        let gid = GroupId(3);
        let (mut sim, pids) = generic_cluster(
            N,
            gid,
            IsisConfig::default(),
            SimConfig::ideal(seed),
            |_| FlatMutex::new(),
        );
        let mut crashes = 0;
        for op in &ops {
            match op {
                MxOp::Acquire { who, lock } => {
                    let alive: Vec<Pid> =
                        pids.iter().copied().filter(|&p| sim.is_alive(p)).collect();
                    let p = alive[who % alive.len()];
                    let l = format!("L{lock}");
                    sim.invoke(p, move |proc_, ctx| {
                        proc_.with_app(ctx, |app, up| app.acquire(&l, up));
                    });
                }
                MxOp::Release { who, lock } => {
                    let alive: Vec<Pid> =
                        pids.iter().copied().filter(|&p| sim.is_alive(p)).collect();
                    let p = alive[who % alive.len()];
                    let l = format!("L{lock}");
                    sim.invoke(p, move |proc_, ctx| {
                        proc_.with_app(ctx, |app, up| {
                            // Only meaningful releases; bogus ones are
                            // dropped by the protocol anyway.
                            if app.holds(&l) {
                                app.release(&l, up);
                            }
                        });
                    });
                }
                MxOp::Crash { who } => {
                    if crashes < 2 {
                        let alive: Vec<Pid> =
                            pids.iter().copied().filter(|&p| sim.is_alive(p)).collect();
                        if alive.len() > 3 {
                            sim.crash(alive[who % alive.len()]);
                            crashes += 1;
                        }
                    }
                }
                MxOp::Wait { ms } => sim.run_for(SimDuration::from_millis(*ms)),
            }
            // Safety after every step: never two holders of one lock.
            for lock in ["L0", "L1"] {
                let holders: Vec<Pid> = pids
                    .iter()
                    .copied()
                    .filter(|&p| sim.is_alive(p) && sim.process(p).app().holds(lock))
                    .collect();
                prop_assert!(
                    holders.len() <= 1,
                    "two holders of {}: {:?}", lock, holders
                );
            }
        }
        // Liveness: after settling, any queued lock has a live holder.
        sim.run_for(SimDuration::from_secs(30));
        for lock in ["L0", "L1"] {
            let survivors: Vec<Pid> =
                pids.iter().copied().filter(|&p| sim.is_alive(p)).collect();
            let queued = survivors
                .iter()
                .any(|&p| sim.process(p).app().queue_len(lock) > 0);
            if queued {
                let holder_alive = survivors.iter().any(|&p| {
                    sim.process(p)
                        .app()
                        .holder_of(lock)
                        .is_some_and(|h| sim.is_alive(h))
                });
                prop_assert!(holder_alive, "lock {} queued but held by a ghost", lock);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tree subdivision math (hier parallel tool)
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn subtree_leaf_counts_partition_the_tree(
        nleaves in 1usize..300,
        fanout in 1usize..10,
    ) {
        use isis_toolkit::hier::parallel::subtree_leaves;
        let total: usize = (1..=fanout)
            .map(|c| subtree_leaves(c, nleaves, fanout))
            .sum::<usize>()
            + 1;
        prop_assert_eq!(total, nleaves.max(1));
    }
}
