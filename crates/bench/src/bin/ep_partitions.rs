//! Experiment binary: prints the PARTITIONS table (see DESIGN.md).
fn main() {
    isis_bench::experiments::partitions(isis_bench::quick_mode()).print();
}
