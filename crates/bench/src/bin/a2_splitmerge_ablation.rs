//! Experiment binary: prints the A2 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::a2(isis_bench::quick_mode()).print();
}
