//! Experiment binary: prints the E2 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e2(isis_bench::quick_mode()).print();
}
