//! Experiment binary: prints the E10 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e10(isis_bench::quick_mode()).print();
}
