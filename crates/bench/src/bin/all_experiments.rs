//! Runs the full experiment suite and prints every table — the input for
//! EXPERIMENTS.md — then re-runs a compact microbench set and writes the
//! machine-readable `BENCH_results.json` (per-experiment headline numbers
//! plus microbench timings) so the performance trajectory can be tracked
//! across PRs instead of only via prose tables.

use isis_bench::enginebench;
use isis_bench::experiments as ex;
use isis_bench::harness::flat_service;
use isis_bench::microbench::{self, BatchSize, Criterion};
use isis_bench::report::json_escape;
use isis_core::testutil::cluster;
use isis_core::{CastData, CastKind, GroupId, IsisConfig, IsisMsg, MsgId, StabilityVector, VClock};
use isis_hier::{HierPayload, HierState};
use now_sim::{Pid, SimDuration};

/// The message type `now-cluster` ships over the wire: the full stack.
type WireMsg = IsisMsg<HierPayload<String>, HierState<Vec<String>>>;

/// A realistic hot-path frame payload: causal cast, 16-entry vector clock,
/// short application payload.
fn codec_specimen() -> WireMsg {
    let mut vt = VClock::new();
    let mut cvt = VClock::new();
    for i in 0..16u32 {
        vt.set(Pid(i), u64::from(i) * 3 + 1);
        cvt.set(Pid(i), u64::from(i) * 2 + 1);
    }
    IsisMsg::Cast(CastData {
        gid: GroupId(9),
        view: 4,
        kind: CastKind::Causal,
        id: MsgId { sender: Pid(5), view: 4, stream: 1, seq: 321 },
        vt,
        stab: StabilityVector { view: 4, cvt: cvt.clone(), fvt: cvt, adel: 17 },
        want_ack: true,
        payload: HierPayload::Biz("q:IBM:42:123456789".to_string()),
    })
}

fn main() {
    let q = isis_bench::quick_mode();
    let jobs = isis_bench::jobs();
    let t0 = std::time::Instant::now();
    let tables = [
        ex::e1(q), ex::e2(q), ex::e3(q), ex::e4(q), ex::e5(q), ex::e6(q),
        ex::e7(q), ex::e8(q), ex::e9(q), ex::e10(q), ex::a1(q), ex::a2(q),
        ex::partitions(q), ex::availability(q),
    ];
    let wall_clock_s = t0.elapsed().as_secs_f64();
    for t in &tables {
        t.print();
    }
    println!("sweep wall-clock: {wall_clock_s:.2} s with {jobs} job(s)");

    // Full runs also sweep the engine's internal worker-shard count
    // (`NOW_SIM_JOBS` analogue, pinned per-sim) over a fixed workload.
    // Results are byte-identical by construction — this table reports the
    // *wall-clock* scaling, which is machine-dependent and therefore lives
    // outside the deterministic experiment tables.
    let par_table = if q { None } else { Some(par_scaling()) };
    if let Some(t) = &par_table {
        t.print();
    }

    println!("== microbench ==");
    microbenches(q);
    let records = microbench::take_records();

    let exp_json: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    let mb_json: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}",
                json_escape(&r.name),
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                r.samples
            )
        })
        .collect();
    let par_json = par_table
        .as_ref()
        .map(|t| format!(",\n\"par_scaling\": {}", t.to_json()))
        .unwrap_or_default();
    let json = format!(
        "{{\n\"quick\": {},\n\"jobs\": {},\n\"wall_clock_s\": {:.3},\n\"experiments\": [\n{}\n],\n\"microbench\": [\n{}\n]{}\n}}\n",
        q,
        jobs,
        wall_clock_s,
        exp_json.join(",\n"),
        mb_json.join(",\n"),
        par_json
    );
    match std::fs::write("BENCH_results.json", &json) {
        Ok(()) => println!(
            "wrote BENCH_results.json ({} experiments, {} microbenches)",
            tables.len(),
            records.len()
        ),
        Err(e) => eprintln!("could not write BENCH_results.json: {e}"),
    }
}

/// Wall-clock scaling of the conservative parallel engine (`now_sim::par`)
/// across worker-shard counts on the two engine fixtures. Each point also
/// re-checks that the run's bytes (deliveries, kernel checksums, final
/// clock) match the 1-shard reference — scaling must never buy a different
/// answer. Best of 3 runs per point; speedup is relative to 1 shard.
fn par_scaling() -> isis_bench::Table {
    use isis_bench::report::f;
    let mut t = isis_bench::Table::new(
        "PAR",
        "parallel engine: wall-clock vs worker shards (output byte-identical at every point)",
        &["fixture", "jobs", "wall_ms", "speedup", "bytes_match"],
    );
    fn best_of(runs: u32, mut run: impl FnMut() -> (f64, String)) -> (f64, String) {
        let mut best = f64::INFINITY;
        let mut digest = String::new();
        for _ in 0..runs {
            let (ms, d) = run();
            if ms < best {
                best = ms;
            }
            digest = d;
        }
        (best, digest)
    }
    type Fixture = Box<dyn Fn(usize) -> (f64, String)>;
    let fixtures: Vec<(&str, Fixture)> = vec![
        (
            "relay_ring_n64",
            Box::new(|j| {
                let (mut sim, pids) = enginebench::relay_ring_jobs(64, 5, j);
                sim.take_tracer();
                let t0 = std::time::Instant::now();
                let total = enginebench::run_relay_ring(&mut sim, &pids, 300);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                let digest = format!(
                    "{total}/{:x}/{}",
                    enginebench::relay_digest(&sim, &pids),
                    sim.now().as_micros()
                );
                (ms, digest)
            }),
        ),
        (
            "fanout_n64",
            Box::new(|j| {
                let (mut sim, hub) = enginebench::fanout_star_jobs(64, 6, j);
                sim.take_tracer();
                let t0 = std::time::Instant::now();
                let done = enginebench::run_fanout_star(&mut sim, hub, 200);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                (ms, format!("{done}/{}", sim.now().as_micros()))
            }),
        ),
    ];
    for (name, fixture) in fixtures {
        let mut base_ms = 0.0;
        let mut base_digest = String::new();
        for jobs in [1usize, 2, 4, 8] {
            let (ms, digest) = best_of(3, || fixture(jobs));
            if jobs == 1 {
                base_ms = ms;
                base_digest = digest.clone();
            }
            t.row(vec![
                name.to_string(),
                jobs.to_string(),
                f(ms),
                f(base_ms / ms),
                (digest == base_digest).to_string(),
            ]);
        }
    }
    t.note("bytes_match: the shard layout reproduced the 1-shard deliveries/checksums/clock exactly");
    t.note("wall-clock only — determinism tests prove the output bytes are layout-invariant");
    t
}

/// A compact subset of `benches/hotpaths.rs`, cheap enough to ride along
/// with every experiment sweep.
///
/// The benchmark sims always run untraced, even when `NOW_TRACE`/
/// `NOW_MONITORS` arm the experiment sweeps above: the committed
/// `BENCH_results.json` baseline is untraced, and `bench_gate` must
/// compare like with like.
fn microbenches(quick: bool) {
    let mut c = Criterion::default();

    let mut g = c.benchmark_group("vclock");
    g.sample_size(if quick { 20 } else { 50 });
    g.bench_function("bump_merge_compare_16", |b| {
        let mut a = VClock::new();
        let mut other = VClock::new();
        for i in 0..16u32 {
            a.set(Pid(i), u64::from(i) + 1);
            other.set(Pid(i), (u64::from(i) * 7) % 13 + 1);
        }
        b.iter(|| {
            let mut x = a.clone();
            x.bump(Pid(3));
            x.merge(&other);
            std::hint::black_box(x.compare(&other));
        });
    });
    g.bench_function("deliverable_16", |b| {
        let mut delivered = VClock::new();
        let mut stamp = VClock::new();
        for i in 0..16u32 {
            delivered.set(Pid(i), 10);
            stamp.set(Pid(i), 10);
        }
        stamp.set(Pid(5), 11);
        b.iter(|| std::hint::black_box(delivered.deliverable(Pid(5), &stamp)));
    });
    g.finish();

    let mut g = c.benchmark_group("flat_group");
    g.sample_size(5)
        .time_budget(std::time::Duration::from_secs(if quick { 2 } else { 5 }));
    g.bench_function("abcast_n8", |b| {
        b.iter_batched(
            || {
                let mut cl = cluster(8, IsisConfig::quiet(), 42);
                cl.sim.take_tracer();
                cl
            },
            |mut cl| {
                let sender = cl.pids[0];
                let gid = cl.gid;
                for i in 0..10 {
                    cl.sim.invoke(sender, move |p, ctx| {
                        p.cast(gid, CastKind::Total, format!("m{i}"), ctx).unwrap();
                    });
                }
                cl.sim.run_for(SimDuration::from_secs(5));
                assert_eq!(cl.sim.process(cl.pids[1]).app().payloads(gid).len(), 10);
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();

    // The whole-simulation fixtures below are orders of magnitude heavier
    // than the nanosecond routines above, so they sample under a time
    // budget: 3–5 meaningful samples instead of a fixed count.
    let sim_budget = std::time::Duration::from_secs(if quick { 2 } else { 5 });

    let mut g = c.benchmark_group("sim_step");
    g.sample_size(5).time_budget(sim_budget);
    g.bench_function("relay_ring_n64", |b| {
        b.iter_batched(
            || {
                let (mut sim, pids) = enginebench::relay_ring(64, 5);
                sim.take_tracer();
                (sim, pids)
            },
            |(mut sim, pids)| {
                assert_eq!(enginebench::run_relay_ring(&mut sim, &pids, 300), 64 * 301);
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("multicast");
    g.sample_size(5).time_budget(sim_budget);
    g.bench_function("fanout_n64", |b| {
        b.iter_batched(
            || {
                let (mut sim, hub) = enginebench::fanout_star(64, 6);
                sim.take_tracer();
                (sim, hub)
            },
            |(mut sim, hub)| {
                assert_eq!(enginebench::run_fanout_star(&mut sim, hub, 200), 200);
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();

    // The same fixtures with the worker-shard count pinned: `_j1` is the
    // sequential reference, `_j4` takes the conservative parallel path
    // (byte-identical output; only wall-clock may differ). Both sit on the
    // bench_gate watchlist so a regression in either path trips CI.
    let mut g = c.benchmark_group("sim_step_par");
    g.sample_size(5).time_budget(sim_budget);
    for jobs in [1usize, 4] {
        g.bench_function(format!("relay_ring_n64_j{jobs}"), |b| {
            b.iter_batched(
                || {
                    let (mut sim, pids) = enginebench::relay_ring_jobs(64, 5, jobs);
                    sim.take_tracer();
                    (sim, pids)
                },
                |(mut sim, pids)| {
                    assert_eq!(enginebench::run_relay_ring(&mut sim, &pids, 300), 64 * 301);
                },
                BatchSize::PerIteration,
            );
        });
        g.bench_function(format!("fanout_n64_j{jobs}"), |b| {
            b.iter_batched(
                || {
                    let (mut sim, hub) = enginebench::fanout_star_jobs(64, 6, jobs);
                    sim.take_tracer();
                    (sim, hub)
                },
                |(mut sim, hub)| {
                    assert_eq!(enginebench::run_fanout_star(&mut sim, hub, 200), 200);
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("codec");
    g.sample_size(if quick { 20 } else { 50 });
    {
        // A realistic wire message: a causal cast with a populated vector
        // clock, the shape that dominates now-net traffic.
        let msg = codec_specimen();
        let bytes = now_net::wire::encode_msg(&msg);
        g.bench_function("encode_cast", |b| {
            let mut out = Vec::with_capacity(bytes.len());
            b.iter(|| {
                out.clear();
                let frame = now_net::codec::Frame::Data {
                    seq: 7,
                    from: 1,
                    to: 2,
                    payload: now_net::wire::encode_msg(std::hint::black_box(&msg)),
                };
                now_net::codec::encode_frame(&frame, &mut out);
                std::hint::black_box(out.len());
            });
        });
        let mut framed = Vec::new();
        now_net::codec::encode_frame(
            &now_net::codec::Frame::Data { seq: 7, from: 1, to: 2, payload: bytes },
            &mut framed,
        );
        g.bench_function("decode_cast", |b| {
            b.iter(|| {
                let (frame, used) = now_net::codec::decode_frame(std::hint::black_box(&framed))
                    .expect("valid")
                    .expect("complete");
                assert_eq!(used, framed.len());
                let now_net::codec::Frame::Data { payload, .. } = frame else {
                    unreachable!("specimen is a data frame")
                };
                let back: WireMsg = now_net::wire::decode_msg(&payload).expect("roundtrip");
                std::hint::black_box(back);
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("request_path");
    g.sample_size(if quick { 3 } else { 10 });
    g.bench_function("flat_request_n8", |b| {
        b.iter_batched(
            || {
                let mut svc = flat_service(8, 7);
                svc.sim.take_tracer();
                svc
            },
            |mut svc| {
                let members = svc.members.clone();
                svc.sim.invoke(svc.client, move |p, ctx| {
                    p.with_app(ctx, |app, up| app.send_request(&members, "PUT k v", up))
                });
                svc.sim.run_for(SimDuration::from_secs(2));
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}
