//! Runs the full experiment suite and prints every table — the input for
//! EXPERIMENTS.md.
fn main() {
    let q = isis_bench::quick_mode();
    use isis_bench::experiments as ex;
    for t in [
        ex::e1(q), ex::e2(q), ex::e3(q), ex::e4(q), ex::e5(q), ex::e6(q),
        ex::e7(q), ex::e8(q), ex::e9(q), ex::e10(q), ex::a1(q), ex::a2(q),
        ex::partitions(q),
    ] {
        t.print();
    }
}
