//! Microbench regression gate: compares the freshly generated
//! `BENCH_results.json` against a committed baseline and fails (exit 1)
//! when a watched hot-path benchmark regresses by more than 2×.
//!
//! Usage: `bench_gate <baseline.json> <fresh.json>`
//!
//! The compared statistic is the per-benchmark *minimum*, not the median:
//! the CI sweep runs in QUICK mode with as few as 3 samples on a machine
//! still hot from the test suite, where the median of 3 is dominated by
//! scheduler noise. The minimum is the least contaminated estimate of the
//! true cost, and a genuine 2× regression raises the minimum too.
//!
//! Only the microbench block is compared — experiment tables are covered
//! by the determinism tests, and wall-clock fields are machine-dependent.
//! Benchmarks present in the fresh file but not the baseline are reported
//! and skipped, so adding a bench never trips the gate retroactively.

use std::process::ExitCode;

/// Name prefixes/exacts under watch. A trailing `/` makes it a group
/// prefix; anything else must match the full `group/name` id.
const WATCH: &[&str] = &[
    "vclock/",
    "sim_step/",
    "sim_step_par/",
    "multicast/",
    "codec/",
    "flat_group/abcast_n8",
    "request_path/flat_request_n8",
];

const MAX_RATIO: f64 = 2.0;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let base = match minima(&base_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_gate: {base_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fresh = match minima(&fresh_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_gate: {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let mut compared = 0usize;
    for (name, fresh_med) in &fresh {
        if !watched(name) {
            continue;
        }
        let Some(base_med) = base.iter().find(|(n, _)| n == name).map(|(_, m)| *m) else {
            println!("bench_gate: {name:<40} new benchmark, no baseline — skipped");
            continue;
        };
        compared += 1;
        let ratio = if base_med == 0 {
            1.0
        } else {
            *fresh_med as f64 / base_med as f64
        };
        let verdict = if ratio > MAX_RATIO { "REGRESSED" } else { "ok" };
        println!(
            "bench_gate: {name:<40} baseline {base_med:>10} ns | fresh {fresh_med:>10} ns | x{ratio:<5.2} {verdict}"
        );
        if ratio > MAX_RATIO {
            failed = true;
        }
    }
    if compared == 0 {
        eprintln!("bench_gate: no watched benchmarks in common — refusing to pass vacuously");
        return ExitCode::FAILURE;
    }
    if failed {
        eprintln!("bench_gate: FAIL — a watched minimum regressed more than {MAX_RATIO}x");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: pass ({compared} benchmarks within {MAX_RATIO}x of baseline)");
    ExitCode::SUCCESS
}

fn watched(name: &str) -> bool {
    WATCH
        .iter()
        .any(|w| if let Some(p) = w.strip_suffix('/') { name.starts_with(p) && name[p.len()..].starts_with('/') } else { name == *w })
}

/// Extracts `(name, min_ns)` pairs from the `"microbench"` array of a
/// `BENCH_results.json`. The file is produced by our own writer, so the
/// parser only has to handle that fixed shape — each record is one
/// `{...}` object containing `"name"` and `"min_ns"` fields.
fn minima(path: &str) -> Result<Vec<(String, u128)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let block = text
        .split("\"microbench\":")
        .nth(1)
        .ok_or("no \"microbench\" block")?;
    let mut out = Vec::new();
    for obj in block.split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        let name = field_str(obj, "name").ok_or("record without name")?;
        let min = field_u128(obj, "min_ns").ok_or("record without min_ns")?;
        out.push((name, min));
    }
    if out.is_empty() {
        return Err("empty microbench block".into());
    }
    Ok(out)
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = obj.split(&pat).nth(1)?;
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

fn field_u128(obj: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let rest = obj.split(&pat).nth(1)?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}
