//! Experiment binary: prints the E9 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e9(isis_bench::quick_mode()).print();
}
