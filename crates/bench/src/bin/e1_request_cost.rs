//! Experiment binary: prints the E1 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e1(isis_bench::quick_mode()).print();
}
