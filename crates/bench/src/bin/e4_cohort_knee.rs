//! Experiment binary: prints the E4 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e4(isis_bench::quick_mode()).print();
}
