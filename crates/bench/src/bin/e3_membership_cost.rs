//! Experiment binary: prints the E3 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e3(isis_bench::quick_mode()).print();
}
