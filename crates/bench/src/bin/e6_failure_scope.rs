//! Experiment binary: prints the E6 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e6(isis_bench::quick_mode()).print();
}
