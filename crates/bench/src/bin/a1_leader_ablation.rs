//! Experiment binary: prints the A1 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::a1(isis_bench::quick_mode()).print();
}
