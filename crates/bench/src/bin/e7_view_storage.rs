//! Experiment binary: prints the E7 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e7(isis_bench::quick_mode()).print();
}
