//! Produces a real protocol trace for the `tracectl` quickstart and the CI
//! artifact sweep: a flat coordinator-cohort service handles requests and
//! survives a member crash under a monitor-armed tracer, then the full
//! event log is written to `BENCH_artifacts/trace_demo.trace` (TSV, one
//! event per line — feed it to `cargo run -p now-trace --bin tracectl`).
//!
//! Exits nonzero if any invariant monitor fired: a violation on this clean
//! scenario means the protocol stack regressed.

use std::process::ExitCode;

use isis_bench::harness::{flat_service, FLAT_GID};
use now_sim::SimDuration;
use now_trace::{Tracer, ViolationMode};

fn main() -> ExitCode {
    let mut svc = flat_service(6, 2026);
    svc.sim.set_tracer(
        Tracer::new()
            .with_monitors(ViolationMode::Record)
            .retain_all(),
    );

    svc.one_request("PUT k v");
    svc.one_request("GET k");

    // A member crash mid-service: view change + coordinator continuity.
    let victim = svc.members[2];
    svc.sim.crash(victim);
    for &m in &svc.members.clone() {
        if m != victim {
            svc.sim.invoke(m, move |p, ctx| {
                let _ = p.report_suspect(FLAT_GID, victim, ctx);
            });
        }
    }
    svc.sim.run_for(SimDuration::from_secs(10));
    svc.one_request("PUT k v2");

    let tracer = svc.sim.take_tracer().expect("tracer was attached");
    let violations = tracer.violations().to_vec();
    let events = tracer.events();
    let tsv = tracer.to_tsv();

    if let Err(e) = std::fs::create_dir_all("BENCH_artifacts") {
        eprintln!("cannot create BENCH_artifacts: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write("BENCH_artifacts/trace_demo.trace", &tsv) {
        eprintln!("cannot write trace: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote BENCH_artifacts/trace_demo.trace ({} events, {} monitored, {} violations)",
        events.len(),
        tracer.monitored_events(),
        violations.len()
    );
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
