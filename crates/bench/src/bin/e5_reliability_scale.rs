//! Experiment binary: prints the E5 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e5(isis_bench::quick_mode()).print();
}
