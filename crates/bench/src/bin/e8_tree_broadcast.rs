//! Experiment binary: prints the E8 table (see DESIGN.md).
fn main() {
    isis_bench::experiments::e8(isis_bench::quick_mode()).print();
}
