//! Raw-engine microbench fixtures: tiny processes with no protocol logic
//! on top, so `sim_step/*` and `multicast/*` time the simulator itself —
//! event pop, route, deliver, and multicast fan-out — rather than ISIS.
//!
//! The fixtures are shaped for the conservative parallel engine
//! (`NOW_SIM_JOBS`, see `now_sim::par`): they run on the LAN latency model
//! (1 ms base latency = 1 ms of lookahead per window), keep one message in
//! flight *per process* rather than one per simulation, and burn a small
//! deterministic compute kernel on every delivery. Each lookahead window
//! then carries `n` independent deliveries that worker shards can chew
//! through concurrently; with `jobs = 1` the same fixtures degrade to the
//! plain sequential hot path. Byte-for-byte results (deliveries, checksums,
//! final clock) are identical at any job count — only wall-clock changes.

use now_sim::{Ctx, Pid, Process, Sim, SimConfig, SimTime};

/// SplitMix64 rounds per relay delivery: the stand-in for per-message
/// application work (deserialize, apply, log). Sized so a delivery costs
/// on the order of a microsecond — enough for a 1 ms window of them to
/// amortise the parallel engine's per-window barrier.
pub const RELAY_WORK: u32 = 256;

/// SplitMix64 rounds per fan-out `Ping` delivery at a spoke.
pub const FAN_WORK: u32 = 256;

/// Deterministic compute kernel: `rounds` SplitMix64 scrambles folded into
/// `x`. Pure integer arithmetic, no allocation — the cheapest honest proxy
/// for "the process did something with the message".
#[inline]
pub fn spin(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= z ^ (z >> 31);
    }
    x
}

/// Quiescence bound for the fixture runners: generous against any hop
/// count the benches use, tight enough to catch a livelocked fixture.
const RUN_LIMIT: SimTime = SimTime(3_600_000_000); // one simulated hour

/// Ring relay: each delivery folds the compute kernel into a checksum and
/// forwards the remaining hop count to the next peer. The runner seeds one
/// token *per relay*, so `n` messages circulate concurrently and every
/// 1 ms latency window carries `n` deliveries.
pub struct Relay {
    next: Pid,
    /// Deliveries observed at this relay.
    pub delivered: u64,
    /// Kernel output folded across this relay's deliveries.
    pub checksum: u64,
}

impl Process for Relay {
    type Msg = u64;

    fn on_message(&mut self, _from: Pid, hops: u64, ctx: &mut Ctx<'_, u64>) {
        self.delivered += 1;
        self.checksum ^= spin(hops, RELAY_WORK);
        if hops > 0 {
            ctx.send(self.next, hops - 1);
        }
    }
}

/// Builds a ring of `n` relays on the LAN latency model; the worker-shard
/// count comes from `NOW_SIM_JOBS` (see [`relay_ring_jobs`] to pin it).
pub fn relay_ring(n: usize, seed: u64) -> (Sim<Relay>, Vec<Pid>) {
    relay_ring_with(n, SimConfig::lan(seed))
}

/// [`relay_ring`] with an explicit worker-shard count.
pub fn relay_ring_jobs(n: usize, seed: u64, jobs: usize) -> (Sim<Relay>, Vec<Pid>) {
    relay_ring_with(n, SimConfig::lan(seed).with_jobs(jobs))
}

fn relay_ring_with(n: usize, cfg: SimConfig) -> (Sim<Relay>, Vec<Pid>) {
    assert!(n >= 2, "a ring needs at least two relays");
    let mut sim = Sim::new(cfg);
    let nodes = sim.add_nodes(n);
    let pids: Vec<Pid> = nodes
        .iter()
        .map(|&nd| {
            sim.spawn(
                nd,
                Relay {
                    next: Pid(0),
                    delivered: 0,
                    checksum: 0,
                },
            )
        })
        .collect();
    for (i, &p) in pids.iter().enumerate() {
        let next = pids[(i + 1) % n];
        sim.invoke(p, move |r, _ctx| r.next = next);
    }
    (sim, pids)
}

/// Seeds one `hops`-hop token at every relay, runs to quiescence, and
/// returns the total number of deliveries (always `n · (hops + 1)`: each
/// token's seed delivery plus one per forwarded hop).
pub fn run_relay_ring(sim: &mut Sim<Relay>, pids: &[Pid], hops: u64) -> u64 {
    for &p in pids {
        sim.invoke(p, move |r, ctx| ctx.send(r.next, hops));
    }
    assert!(sim.run_to_quiescence(RUN_LIMIT), "relay ring did not quiesce");
    pids.iter().map(|&p| sim.process(p).delivered).sum()
}

/// XOR of every relay's checksum: a one-word digest of the whole run that
/// any nondeterminism (ordering, payload, hop count) would perturb.
pub fn relay_digest(sim: &Sim<Relay>, pids: &[Pid]) -> u64 {
    pids.iter().map(|&p| sim.process(p).checksum).fold(0, |a, c| a ^ c)
}

/// Star fan-out message: the hub multicasts a heap payload, spokes ack it.
#[derive(Clone, Debug)]
pub enum FanMsg {
    /// Hub → every spoke. The body rides in one shared envelope.
    Ping { round: u32, body: String },
    /// Spoke → hub.
    Ack,
}

/// Star hub/spoke: the hub multicasts `Ping` to every spoke; each spoke
/// burns the compute kernel on the payload and acks. Once a full round of
/// acks is back the hub starts another, keeping up to [`FAN_BURST`] rounds
/// outstanding so the event queue always holds a window's worth of
/// independent deliveries.
pub struct Fanout {
    spokes: Vec<Pid>,
    acks: usize,
    rounds_left: u32,
    /// Rounds fully acknowledged at the hub.
    pub rounds_done: u32,
    /// Kernel output folded across this process's `Ping` deliveries.
    pub checksum: u64,
}

/// How many multicast rounds the hub keeps in flight at once.
pub const FAN_BURST: u32 = 4;

impl Process for Fanout {
    type Msg = FanMsg;

    fn on_message(&mut self, from: Pid, msg: FanMsg, ctx: &mut Ctx<'_, FanMsg>) {
        match msg {
            FanMsg::Ping { round, body } => {
                self.checksum ^= spin(u64::from(round) ^ body.len() as u64, FAN_WORK);
                ctx.send(from, FanMsg::Ack);
            }
            FanMsg::Ack => {
                self.acks += 1;
                if self.acks == self.spokes.len() {
                    self.acks = 0;
                    self.rounds_done += 1;
                    if self.rounds_left > 0 {
                        self.rounds_left -= 1;
                        start_round(self, ctx);
                    }
                }
            }
        }
    }
}

fn start_round(hub: &mut Fanout, ctx: &mut Ctx<'_, FanMsg>) {
    ctx.multicast(
        hub.spokes.iter().copied(),
        FanMsg::Ping {
            round: hub.rounds_left,
            body: "quote: ACME 42.17 +0.3".into(),
        },
    );
}

/// Builds a hub plus `n - 1` spokes on the LAN latency model; returns the
/// sim and the hub's pid. Worker-shard count from `NOW_SIM_JOBS` (see
/// [`fanout_star_jobs`] to pin it).
pub fn fanout_star(n: usize, seed: u64) -> (Sim<Fanout>, Pid) {
    fanout_star_with(n, SimConfig::lan(seed))
}

/// [`fanout_star`] with an explicit worker-shard count.
pub fn fanout_star_jobs(n: usize, seed: u64, jobs: usize) -> (Sim<Fanout>, Pid) {
    fanout_star_with(n, SimConfig::lan(seed).with_jobs(jobs))
}

fn fanout_star_with(n: usize, cfg: SimConfig) -> (Sim<Fanout>, Pid) {
    assert!(n >= 2, "a star needs a hub and at least one spoke");
    let mut sim = Sim::new(cfg);
    let nodes = sim.add_nodes(n);
    let pids: Vec<Pid> = nodes
        .iter()
        .map(|&nd| {
            sim.spawn(
                nd,
                Fanout {
                    spokes: Vec::new(),
                    acks: 0,
                    rounds_left: 0,
                    rounds_done: 0,
                    checksum: 0,
                },
            )
        })
        .collect();
    let hub = pids[0];
    let spokes: Vec<Pid> = pids[1..].to_vec();
    sim.invoke(hub, move |h, _ctx| h.spokes = spokes);
    (sim, hub)
}

/// Runs `rounds` fully-acknowledged multicast rounds (up to [`FAN_BURST`]
/// outstanding at a time), runs to quiescence, and returns how many
/// completed.
pub fn run_fanout_star(sim: &mut Sim<Fanout>, hub: Pid, rounds: u32) -> u32 {
    let burst = FAN_BURST.min(rounds);
    sim.invoke(hub, move |h, ctx| {
        h.rounds_left = rounds - burst;
        for _ in 0..burst {
            start_round(h, ctx);
        }
    });
    assert!(sim.run_to_quiescence(RUN_LIMIT), "fan-out star did not quiesce");
    sim.process(hub).rounds_done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_ring_delivers_every_hop() {
        let (mut sim, pids) = relay_ring(8, 1);
        assert_eq!(run_relay_ring(&mut sim, &pids, 100), 8 * 101);
    }

    #[test]
    fn fanout_star_completes_every_round() {
        let (mut sim, hub) = fanout_star(16, 2);
        assert_eq!(run_fanout_star(&mut sim, hub, 50), 50);
    }

    #[test]
    fn fixtures_are_deterministic() {
        let run = || {
            let (mut sim, hub) = fanout_star(9, 3);
            let done = run_fanout_star(&mut sim, hub, 20);
            (done, sim.process(hub).checksum, sim.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_fixture_runs_are_byte_identical() {
        // The fixtures are exactly the workload `par_eligible` wants (64
        // processes, LAN lookahead, a full queue), so jobs = 4 takes the
        // real sharded path — and must reproduce the sequential run's
        // deliveries, checksums, and final clock bit for bit.
        let relay = |jobs| {
            let (mut sim, pids) = relay_ring_jobs(64, 5, jobs);
            let total = run_relay_ring(&mut sim, &pids, 40);
            (total, relay_digest(&sim, &pids), sim.now())
        };
        assert_eq!(relay(1), relay(4));

        let fan = |jobs| {
            let (mut sim, hub) = fanout_star_jobs(64, 6, jobs);
            let done = run_fanout_star(&mut sim, hub, 30);
            let sum: u64 = (0..64u32)
                .map(|i| sim.process(Pid(i)).checksum)
                .fold(0, |a, c| a ^ c);
            (done, sum, sim.now())
        };
        assert_eq!(fan(1), fan(4));
    }
}
