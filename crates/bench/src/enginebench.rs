//! Raw-engine microbench fixtures: tiny processes with no protocol logic
//! on top, so `sim_step/*` and `multicast/*` time the simulator itself —
//! event pop, route, deliver, and multicast fan-out — rather than ISIS.

use now_sim::{Ctx, Pid, Process, Sim, SimConfig};

/// Ring relay: each delivery forwards the remaining hop count to the next
/// peer. One live message circulates, so a run of `hops` hops is exactly
/// `hops` pop→invoke→route cycles of the engine.
pub struct Relay {
    next: Pid,
    delivered: u64,
}

impl Process for Relay {
    type Msg = u64;

    fn on_message(&mut self, _from: Pid, hops: u64, ctx: &mut Ctx<'_, u64>) {
        self.delivered += 1;
        if hops > 0 {
            ctx.send(self.next, hops - 1);
        }
    }
}

/// Builds a ring of `n` relays on an ideal network.
pub fn relay_ring(n: usize, seed: u64) -> (Sim<Relay>, Vec<Pid>) {
    assert!(n >= 2, "a ring needs at least two relays");
    let mut sim = Sim::new(SimConfig::ideal(seed));
    let nodes = sim.add_nodes(n);
    let pids: Vec<Pid> = nodes
        .iter()
        .map(|&nd| {
            sim.spawn(
                nd,
                Relay {
                    next: Pid(0),
                    delivered: 0,
                },
            )
        })
        .collect();
    for (i, &p) in pids.iter().enumerate() {
        let next = pids[(i + 1) % n];
        sim.invoke(p, move |r, _ctx| r.next = next);
    }
    (sim, pids)
}

/// Sends one message around the ring for `hops` hops and returns the total
/// number of deliveries observed (always `hops + 1`: the seed delivery plus
/// one per forwarded hop).
pub fn run_relay_ring(sim: &mut Sim<Relay>, pids: &[Pid], hops: u64) -> u64 {
    sim.invoke(pids[0], move |r, ctx| ctx.send(r.next, hops));
    while sim.step() {}
    let mut total = 0;
    for &p in pids {
        sim.invoke(p, |r, _ctx| total += std::mem::take(&mut r.delivered));
    }
    while sim.step() {}
    total
}

/// Star fan-out message: the hub multicasts a heap payload, spokes ack it.
#[derive(Clone, Debug)]
pub enum FanMsg {
    /// Hub → every spoke. The body rides in one shared envelope.
    Ping { round: u32, body: String },
    /// Spoke → hub.
    Ack,
}

/// Star hub/spoke: the hub multicasts `Ping` to every spoke, and once all
/// acks are back it starts the next round. Each round is one `multicast`
/// action fanned out to `n - 1` destinations plus `n - 1` ack sends.
pub struct Fanout {
    spokes: Vec<Pid>,
    acks: usize,
    rounds_left: u32,
    /// Rounds fully acknowledged at the hub.
    pub rounds_done: u32,
}

impl Process for Fanout {
    type Msg = FanMsg;

    fn on_message(&mut self, from: Pid, msg: FanMsg, ctx: &mut Ctx<'_, FanMsg>) {
        match msg {
            FanMsg::Ping { .. } => ctx.send(from, FanMsg::Ack),
            FanMsg::Ack => {
                self.acks += 1;
                if self.acks == self.spokes.len() {
                    self.acks = 0;
                    self.rounds_done += 1;
                    if self.rounds_left > 0 {
                        self.rounds_left -= 1;
                        start_round(self, ctx);
                    }
                }
            }
        }
    }
}

fn start_round(hub: &mut Fanout, ctx: &mut Ctx<'_, FanMsg>) {
    ctx.multicast(
        hub.spokes.iter().copied(),
        FanMsg::Ping {
            round: hub.rounds_left,
            body: "quote: ACME 42.17 +0.3".into(),
        },
    );
}

/// Builds a hub plus `n - 1` spokes on an ideal network; returns the sim
/// and the hub's pid.
pub fn fanout_star(n: usize, seed: u64) -> (Sim<Fanout>, Pid) {
    assert!(n >= 2, "a star needs a hub and at least one spoke");
    let mut sim = Sim::new(SimConfig::ideal(seed));
    let nodes = sim.add_nodes(n);
    let pids: Vec<Pid> = nodes
        .iter()
        .map(|&nd| {
            sim.spawn(
                nd,
                Fanout {
                    spokes: Vec::new(),
                    acks: 0,
                    rounds_left: 0,
                    rounds_done: 0,
                },
            )
        })
        .collect();
    let hub = pids[0];
    let spokes: Vec<Pid> = pids[1..].to_vec();
    sim.invoke(hub, move |h, _ctx| h.spokes = spokes);
    (sim, hub)
}

/// Runs `rounds` fully-acknowledged multicast rounds and returns how many
/// completed.
pub fn run_fanout_star(sim: &mut Sim<Fanout>, hub: Pid, rounds: u32) -> u32 {
    sim.invoke(hub, move |h, ctx| {
        h.rounds_left = rounds.saturating_sub(1);
        start_round(h, ctx);
    });
    while sim.step() {}
    let mut done = 0;
    sim.invoke(hub, |h, _ctx| done = h.rounds_done);
    while sim.step() {}
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_sim::SimDuration;

    #[test]
    fn relay_ring_delivers_every_hop() {
        let (mut sim, pids) = relay_ring(8, 1);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(run_relay_ring(&mut sim, &pids, 1_000), 1_001);
    }

    #[test]
    fn fanout_star_completes_every_round() {
        let (mut sim, hub) = fanout_star(16, 2);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(run_fanout_star(&mut sim, hub, 50), 50);
    }

    #[test]
    fn fixtures_are_deterministic() {
        let run = || {
            let (mut sim, hub) = fanout_star(9, 3);
            let done = run_fanout_star(&mut sim, hub, 20);
            (done, sim.now())
        };
        assert_eq!(run(), run());
    }
}
