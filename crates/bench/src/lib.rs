//! `isis-bench` — the experiment harness: every quantitative claim in the
//! paper has an experiment here (E1–E10), plus two design ablations
//! (A1–A2) and a partition scenario. Each `e*`/`a*` binary prints the
//! corresponding table; `QUICK=1` shrinks the sweeps.

pub mod enginebench;
pub mod experiments;
pub mod harness;
pub mod microbench;
pub mod par_sweep;
pub mod report;

pub use par_sweep::{jobs, par_sweep, par_sweep_jobs};
pub use report::{quick_mode, Table};
