//! `microbench`: a small wall-clock benchmarking harness with a
//! criterion-shaped API.
//!
//! The hot-path benchmarks in `benches/hotpaths.rs` were written against the
//! `criterion` crate; this module supplies the subset they use so the
//! workspace has zero external dependencies and still produces useful
//! timings. Methodology is deliberately simple: one warm-up iteration, then
//! `sample_size` timed samples, reporting min/median/mean per sample.
//!
//! Wall-clock reads (`Instant::now`) are allowed *here* — measurement is the
//! whole point — but nowhere under `crates/{sim,core,hier,toolkit}`; detlint
//! rule R2 enforces that split.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement; only the variant the
/// benchmarks use is provided.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation, setup excluded from timing.
    PerIteration,
}

/// Top-level harness handle, one per benchmark binary.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness; an argv filter substring (as with criterion) limits
    /// which benchmark names run.
    pub fn new() -> Criterion {
        let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Ends the group (kept for API parity; output is already flushed).
    pub fn finish(&mut self) {}
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly; its return value is passed through
    /// `black_box` semantics by being dropped after the timer stops.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = routine();
            let dt = t0.elapsed();
            std::hint::black_box(out);
            self.samples.push(dt);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            std::hint::black_box(out);
            self.samples.push(dt);
        }
    }
}

/// One benchmark's timing summary, as kept in the record registry for
/// machine-readable export (`BENCH_results.json`).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full `group/name` benchmark id.
    pub name: String,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Median sample, nanoseconds.
    pub median_ns: u128,
    /// Mean of all samples, nanoseconds.
    pub mean_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

static RECORDS: std::sync::Mutex<Vec<BenchRecord>> = std::sync::Mutex::new(Vec::new());

/// Drains every timing summary recorded by `bench_function` runs since the
/// last call.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *RECORDS.lock().expect("record registry poisoned"))
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    RECORDS.lock().expect("record registry poisoned").push(BenchRecord {
        name: name.to_owned(),
        min_ns: min.as_nanos(),
        median_ns: median.as_nanos(),
        mean_ns: mean.as_nanos(),
        samples: sorted.len(),
    });
    println!(
        "{name:<40} min {:>10} | median {:>10} | mean {:>10} | n={}",
        fmt(min),
        fmt(median),
        fmt(mean),
        sorted.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares the benchmark registration function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::microbench::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut count = 0u32;
        g.bench_function("iter", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.finish();
        // warm-up + 5 samples
        assert_eq!(count, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(4);
        let mut setups = 0u32;
        let mut runs = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |_| {
                    runs += 1;
                },
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, 5);
        assert_eq!(runs, 5);
    }

    #[test]
    fn records_are_registered_for_export() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("reg");
        g.sample_size(3);
        g.bench_function("probe", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
        let recs = take_records();
        assert!(recs.iter().any(|r| r.name == "reg/probe" && r.samples == 3));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(500)).ends_with('s'));
    }
}
